"""Table 4 benchmark: UIO generation statistics across the benchmark suite.

One benchmark per circuit: time ``compute_uio_table`` (the paper's ``time``
column) and assert the structural facts the table reports — the number of
states with UIOs never exceeds the state count, lengths respect ``L = N_SV``,
and every produced sequence is genuinely unique (re-proved against the
machine).
"""

from __future__ import annotations

import pytest

from conftest import bench_circuits
from repro.benchmarks import get_spec, load_circuit
from repro.uio.search import compute_uio_table


@pytest.mark.parametrize("name", bench_circuits())
def test_uio_generation(benchmark, name):
    table = load_circuit(name)
    spec = get_spec(name)
    uio = benchmark.pedantic(
        compute_uio_table, args=(table,), rounds=1, iterations=1
    )
    assert 0 <= uio.n_found <= spec.n_states
    assert uio.max_found_length <= spec.n_state_variables
    uio.verify(table)
    if spec.n_fill_states >= 2:
        # Identical completion states are equivalent: provably no UIOs.
        for state in range(spec.n_core_states, spec.n_states):
            assert not uio.has(state)

"""Live progress heartbeats with ledger-informed ETA (``--progress``).

A :class:`ProgressMeter` emits throttled ``done/total`` heartbeat lines
through the structured logger's NOTE level (default-visible, stderr), so
long sweeps — the 31-circuit ATPG run, a multi-circuit table regeneration
— stop being silent for minutes at a time::

    [note ] progress: atpg planet: 128/442 (12.3/s, eta 26s)

ETA sources, best first:

* **Measured rate** — once at least one item completed, the remaining
  count over the observed rate.  This is exact for homogeneous work and
  self-correcting for skewed work.
* **Ledger history** — before the first completion, the cost model
  predicts total wall seconds from past ledger records of the same
  command on *similar workloads*: each record's wall seconds are divided
  by its summed workload units (``N_ST × 2^N_PIC`` per circuit — the
  transition count the paper's tables scale with), and the median
  seconds-per-unit rate prices the current circuit set.  This is the
  first consumer of the ledger-driven cost prediction ROADMAP item 5
  (campaign bin-packing) builds on.

Everything is off unless :func:`enable_progress` was called (the CLI's
``--progress`` flag); :func:`meter` returns ``None`` when disabled so
instrumented loops cost one ``None`` check.
"""

from __future__ import annotations

import time
from statistics import median
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.obs.log import get_logger

__all__ = [
    "CostModel",
    "ProgressMeter",
    "enable_progress",
    "meter",
    "predict_wall_s",
    "progress_enabled",
    "set_command_context",
]

_LOG = get_logger("progress")

_ENABLED = False

#: The CLI command currently executing (set by ``repro-fsatpg``'s driver);
#: meters without an explicit ``command`` predict their ETA from this
#: command's ledger history.
_COMMAND: str | None = None


def enable_progress(on: bool = True) -> None:
    """Turn heartbeat emission on or off process-wide."""
    global _ENABLED
    _ENABLED = on


def progress_enabled() -> bool:
    return _ENABLED


def set_command_context(command: str | None) -> None:
    """Name the running CLI command for default ETA lookups."""
    global _COMMAND
    _COMMAND = command


class ProgressMeter:
    """Throttled done/total heartbeat with rate and ETA.

    ``interval_s`` bounds the emission rate, not the update rate —
    ``update()`` is cheap enough to call per item.  ``expected_s`` seeds
    the ETA before the first completion (usually a cost-model prediction).
    """

    def __init__(
        self,
        label: str,
        total: int,
        *,
        interval_s: float = 1.0,
        expected_s: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        emit: Callable[[str], None] | None = None,
    ) -> None:
        self.label = label
        self.total = total
        self.done = 0
        self.interval_s = interval_s
        self.expected_s = expected_s
        self._clock = clock
        self._emit = emit if emit is not None else self._emit_note
        self._start = clock()
        self._last_emit = self._start - interval_s  # first update may emit
        self.emitted = 0

    @staticmethod
    def _emit_note(line: str) -> None:
        _LOG.note(line)

    def eta_s(self) -> float | None:
        """Seconds remaining: measured rate, else the seeded expectation."""
        if self.done > 0:
            elapsed = self._clock() - self._start
            if elapsed > 0:
                rate = self.done / elapsed
                return (self.total - self.done) / rate if rate > 0 else None
        if self.expected_s is not None:
            return max(0.0, self.expected_s - (self._clock() - self._start))
        return None

    def _line(self) -> str:
        elapsed = self._clock() - self._start
        rate = self.done / elapsed if elapsed > 0 else 0.0
        eta = self.eta_s()
        eta_text = f", eta {eta:.0f}s" if eta is not None else ""
        return (
            f"{self.label}: {self.done}/{self.total} "
            f"({rate:.1f}/s{eta_text})"
        )

    def update(self, done: int = 1) -> None:
        """Advance by ``done`` items; emits when the throttle window passed."""
        self.done += done
        now = self._clock()
        if self.done < self.total and now - self._last_emit < self.interval_s:
            return
        self._last_emit = now
        self.emitted += 1
        self._emit(self._line())

    def finish(self) -> None:
        """Emit the final line (idempotent once ``done == total``)."""
        if self.done < self.total:
            self.done = self.total
        elapsed = self._clock() - self._start
        rate = self.total / elapsed if elapsed > 0 else 0.0
        self.emitted += 1
        self._emit(
            f"{self.label}: done {self.total}/{self.total} "
            f"in {elapsed:.1f}s ({rate:.1f}/s)"
        )


# ------------------------------------------------------------------ cost model


def _workload_units(circuits: Iterable[str]) -> float:
    """Σ over circuits of N_ST × 2^N_PI — the transition count each table
    command and ATPG sweep scales with.  Unknown circuits contribute 0."""
    from repro.benchmarks.registry import circuit_names, get_spec

    known = set(circuit_names())
    units = 0.0
    for name in circuits:
        if name not in known:
            continue
        units += float(get_spec(name).n_transitions)
    return units


class CostModel:
    """Seconds-per-workload-unit rates fitted from ledger history."""

    def __init__(self, records: Sequence[Mapping[str, Any]]) -> None:
        self.records = records

    def rate(self, command: str) -> float | None:
        """Median s/unit over this command's usable ledger records."""
        rates: list[float] = []
        for record in self.records:
            if record.get("command") != command:
                continue
            if record.get("exit_code", 0) != 0:
                continue
            wall_s = record.get("wall_s", 0.0)
            if not isinstance(wall_s, (int, float)) or wall_s <= 0:
                continue
            circuits = record.get("circuits")
            if not isinstance(circuits, list) or not circuits:
                continue
            units = _workload_units(circuits)
            if units <= 0:
                continue
            rates.append(float(wall_s) / units)
        if not rates:
            return None
        return median(rates)

    def predict_wall_s(
        self, command: str, circuits: Iterable[str]
    ) -> float | None:
        """Predicted wall seconds for ``command`` over ``circuits``."""
        rate = self.rate(command)
        if rate is None:
            return None
        units = _workload_units(circuits)
        if units <= 0:
            return None
        return rate * units


def predict_wall_s(command: str, circuits: Iterable[str]) -> float | None:
    """ETA prediction from the active ledger, or ``None`` without history."""
    from repro.obs.ledger import read_records

    try:
        records = read_records()
    except Exception:  # pragma: no cover - ledger read never raises today
        return None
    if not records:
        return None
    return CostModel(records).predict_wall_s(command, circuits)


def meter(
    label: str,
    total: int,
    *,
    command: str | None = None,
    circuits: Iterable[str] = (),
    interval_s: float = 1.0,
) -> ProgressMeter | None:
    """A live meter when ``--progress`` is on (else ``None``).

    With ``command``/``circuits`` the ETA is seeded from ledger history
    before the first item completes.
    """
    if not _ENABLED or total <= 0:
        return None
    expected_s = None
    resolved = command if command is not None else _COMMAND
    if resolved is not None:
        expected_s = predict_wall_s(resolved, circuits)
    return ProgressMeter(
        label, total, interval_s=interval_s, expected_s=expected_s
    )

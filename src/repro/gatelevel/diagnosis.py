"""Dictionary-based fault diagnosis on top of the fault simulator.

A production test flow does not stop at detection: when silicon fails, the
pass/fail pattern over the test set is matched against a precomputed *fault
dictionary* to locate candidate defects.  This module builds the pass/fail
dictionary with the compiled fault simulator (one simulation per test over
the whole universe) and diagnoses observed signatures:

* exact matches — faults whose simulated signature equals the observation
  (several faults may share a signature; they are indistinguishable by
  this test set, the diagnosis returns the whole class);
* nearest candidates — ranked by Hamming distance, for defects outside the
  modeled universe (e.g. a bridge when only stuck-at faults were
  dictionary-ed).

The diagnostic *resolution* of a test set — how many faults are uniquely
distinguished — is a quality metric of the paper's functional tests that
the original evaluation never looked at; ``resolution()`` reports it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.testset import ScanTest, TestSet
from repro.errors import FaultSimulationError
from repro.fsm.state_table import StateTable
from repro.gatelevel.compiled import CompiledFaultSimulator
from repro.gatelevel.fault_sim import Fault
from repro.gatelevel.scan import ScanCircuit

__all__ = ["FaultDictionary", "observed_signature"]


def observed_signature(
    circuit: ScanCircuit,
    table: StateTable,
    tests: Sequence[ScanTest],
    fault: Fault,
) -> tuple[bool, ...]:
    """The pass/fail signature a tester would record for ``fault``.

    ``True`` means the test *failed* (the fault was observed).
    """
    simulator = CompiledFaultSimulator(circuit, table, [fault])
    return tuple(bool(simulator.detect_mask(test)) for test in tests)


@dataclass(frozen=True)
class Diagnosis:
    """Outcome of one signature lookup."""

    exact: tuple[Fault, ...]
    #: (distance, faults) pairs for the nearest non-exact signatures
    nearest: tuple[tuple[int, tuple[Fault, ...]], ...]

    @property
    def is_exact(self) -> bool:
        return bool(self.exact)


class FaultDictionary:
    """Pass/fail dictionary of a test set over a fault universe."""

    def __init__(
        self,
        tests: tuple[ScanTest, ...],
        signatures: dict[Fault, tuple[bool, ...]],
    ) -> None:
        self.tests = tests
        self.signatures = signatures
        self._by_signature: dict[tuple[bool, ...], list[Fault]] = {}
        for fault, signature in signatures.items():
            self._by_signature.setdefault(signature, []).append(fault)

    @classmethod
    def build(
        cls,
        circuit: ScanCircuit,
        table: StateTable,
        tests: TestSet | Sequence[ScanTest],
        faults: Sequence[Fault],
    ) -> "FaultDictionary":
        """Simulate every test over the whole universe, once."""
        test_tuple = tuple(tests)
        if not faults:
            raise FaultSimulationError("a dictionary needs a fault universe")
        simulator = CompiledFaultSimulator(circuit, table, list(faults))
        masks = [simulator.detect_mask(test) for test in test_tuple]
        signatures: dict[Fault, tuple[bool, ...]] = {}
        for bit, fault in enumerate(simulator.faults):
            signatures[fault] = tuple(
                bool((mask >> bit) & 1) for mask in masks
            )
        return cls(test_tuple, signatures)

    # ------------------------------------------------------------- queries

    def diagnose(
        self, observed: Sequence[bool], max_nearest: int = 3
    ) -> Diagnosis:
        """Match an observed pass/fail signature against the dictionary."""
        signature = tuple(bool(value) for value in observed)
        if len(signature) != len(self.tests):
            raise FaultSimulationError(
                f"signature has {len(signature)} entries for "
                f"{len(self.tests)} tests"
            )
        exact = tuple(self._by_signature.get(signature, ()))
        distances: dict[int, list[Fault]] = {}
        for candidate_signature, candidate_faults in self._by_signature.items():
            if candidate_signature == signature:
                continue
            distance = sum(
                1 for a, b in zip(signature, candidate_signature) if a != b
            )
            distances.setdefault(distance, []).extend(candidate_faults)
        nearest = tuple(
            (distance, tuple(distances[distance]))
            for distance in sorted(distances)[:max_nearest]
        )
        return Diagnosis(exact, nearest)

    def resolution(self) -> tuple[int, int, float]:
        """``(uniquely_diagnosed, total, percent)`` over detected faults.

        Faults that no test detects (all-pass signature) are excluded —
        they are escapes, not diagnosis candidates.
        """
        detected = {
            fault: signature
            for fault, signature in self.signatures.items()
            if any(signature)
        }
        unique = sum(
            1
            for signature in set(detected.values())
            if sum(1 for s in detected.values() if s == signature) == 1
        )
        total = len(detected)
        return unique, total, (100.0 * unique / total if total else 100.0)

    def indistinguishable_classes(self) -> list[tuple[Fault, ...]]:
        """Signature classes with two or more detected faults."""
        return [
            tuple(faults)
            for signature, faults in self._by_signature.items()
            if any(signature) and len(faults) > 1
        ]

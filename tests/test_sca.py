"""Tests for the static netlist analysis subsystem (``repro.sca``).

The load-bearing guarantees checked here:

* collapsing is *equivalence*: every member of a class has exactly the
  same detecting-pattern set as its representative, so expanding
  representative verdicts reproduces full-universe verdicts bit for bit;
* proven constants really are constant on every input pattern (checked
  against exhaustive evaluation);
* every certificate is machine-verifiable AND agrees with the exhaustive
  detectability oracle (certified untestable ⊆ truly undetectable);
* tampering with any proof object raises ``CertificateError``.
"""

from __future__ import annotations

import dataclasses
import importlib.util
import pickle
from pathlib import Path

import pytest

from repro.errors import CertificateError
from repro.gatelevel.detectability import detectable_faults, fault_free_values
from repro.gatelevel.netlist import GateType, Netlist, unpack_bits
from repro.gatelevel.stuck_at import StuckAtFault, enumerate_stuck_at
from repro.harness.experiments import CircuitStudy
from repro.sca import (
    INFINITY,
    SCA_SCHEMA,
    CollapsedUniverse,
    ScaAnalysis,
    analyze,
    collapse_universe,
    compute_scoap,
    controlling_value,
    fanout_free_regions,
    immediate_dominators,
    levelize,
    propagate_constants,
    site_observability,
    verify_certificate,
    verify_constant_steps,
    verify_observability_blocks,
)
from repro.sca.implications import DerivationStep


# ---------------------------------------------------------------- fixtures


def diamond_netlist() -> Netlist:
    """a fans out to two NOTs that reconverge in an AND."""
    net = Netlist("diamond")
    a = net.add_input("a")                      # 0
    b = net.add_gate(GateType.NOT, (a,))        # 1
    c = net.add_gate(GateType.NOT, (a,))        # 2
    d = net.add_gate(GateType.AND, (b, c))      # 3
    net.set_outputs([d])
    return net


def blocked_netlist() -> Netlist:
    """NOT(c) is cut off by a CONST0 side input; c's whole cone is dead."""
    net = Netlist("blocked")
    net.add_input("a")                          # 0
    c = net.add_input("c")                      # 1
    d = net.add_gate(GateType.NOT, (c,))        # 2
    z = net.add_gate(GateType.CONST0, ())       # 3
    g = net.add_gate(GateType.AND, (d, z))      # 4: constant 0
    out = net.add_gate(GateType.OR, (g, 0))     # 5
    net.set_outputs([out])
    return net


def masked_netlist() -> Netlist:
    """OR with a CONST1 fanin: the gate is pinned, the other pin masked."""
    net = Netlist("masked")
    a = net.add_input("a")                      # 0
    one = net.add_gate(GateType.CONST1, ())     # 1
    g = net.add_gate(GateType.OR, (a, one))     # 2: constant 1
    out = net.add_gate(GateType.AND, (g, a))    # 3
    net.set_outputs([out])
    return net


def xor_cancel_netlist() -> Netlist:
    """XOR(a, a, b-known): unknown fanins cancel pairwise."""
    net = Netlist("xorid")
    a = net.add_input("a")                      # 0
    one = net.add_gate(GateType.CONST1, ())     # 1
    x = net.add_gate(GateType.XOR, (a, a, one))  # 2: a^a^1 = 1
    out = net.add_gate(GateType.AND, (x, a))    # 3
    net.set_outputs([out])
    return net


REDUNDANT_NETLISTS = [blocked_netlist, masked_netlist, xor_cancel_netlist]


# ---------------------------------------------------- reference evaluation


def _eval_with_fault(
    netlist: Netlist, bits: list[int], fault: StuckAtFault | None
) -> tuple[int, ...]:
    """Independent single-pattern evaluator with optional fault injection."""
    values: dict[int, int] = {}
    position = 0
    for gate in netlist.gates:
        if gate.kind is GateType.INPUT:
            value = bits[position]
            position += 1
        elif gate.kind is GateType.CONST0:
            value = 0
        elif gate.kind is GateType.CONST1:
            value = 1
        else:
            fanin_bits = []
            for pin, line in enumerate(gate.fanins):
                bit = values[line]
                if (
                    fault is not None
                    and fault.pin == pin
                    and fault.gate == gate.index
                ):
                    bit = fault.value
                fanin_bits.append(bit)
            if gate.kind is GateType.BUF:
                value = fanin_bits[0]
            elif gate.kind is GateType.NOT:
                value = fanin_bits[0] ^ 1
            elif gate.kind in (GateType.AND, GateType.NAND):
                value = int(all(fanin_bits))
                value ^= gate.kind is GateType.NAND
            elif gate.kind in (GateType.OR, GateType.NOR):
                value = int(any(fanin_bits))
                value ^= gate.kind is GateType.NOR
            else:
                value = 0
                for bit in fanin_bits:
                    value ^= bit
                value ^= gate.kind is GateType.XNOR
        if fault is not None and fault.pin is None and fault.gate == gate.index:
            value = fault.value
        values[gate.index] = value
    return tuple(values[line] for line in netlist.outputs)


def _detection_signature(
    netlist: Netlist, fault: StuckAtFault
) -> frozenset[int]:
    """All input patterns whose outputs differ under ``fault``."""
    n = netlist.n_inputs
    detected = set()
    for pattern in range(1 << n):
        bits = [(pattern >> (n - 1 - k)) & 1 for k in range(n)]
        if _eval_with_fault(netlist, bits, None) != _eval_with_fault(
            netlist, bits, fault
        ):
            detected.add(pattern)
    return frozenset(detected)


# ------------------------------------------------------------ graph passes


def test_levelize_chain_and_diamond():
    net = diamond_netlist()
    assert levelize(net) == [0, 1, 1, 2]
    chain = Netlist("chain")
    a = chain.add_input()
    b = chain.add_gate(GateType.NOT, (a,))
    c = chain.add_gate(GateType.BUF, (b,))
    chain.set_outputs([c])
    assert levelize(chain) == [0, 1, 2]


def test_fanout_free_regions_partition_and_checkpoints():
    net = diamond_netlist()
    regions = fanout_free_regions(net)
    # a fans out twice -> its own stem; b and c fold into d's region.
    assert regions.stems == (0, 3)
    assert regions.region_of == (0, 3, 3, 3)
    assert regions.members(3) == (1, 2, 3)
    # Checkpoints = primary inputs + pins reading a multi-fanout line.
    assert set(regions.branches) == {(1, 0), (2, 0)}
    assert regions.n_regions == 2


def test_fanout_free_regions_cover_every_line():
    net = CircuitStudy("lion").scan_circuit.netlist
    regions = fanout_free_regions(net)
    stems = set(regions.stems)
    assert all(head in stems for head in regions.region_of)
    # A stem is its own region head; members() partitions the lines.
    seen: set[int] = set()
    for stem in regions.stems:
        members = regions.members(stem)
        assert stem in members
        assert not (seen & set(members))
        seen.update(members)
    assert seen == set(range(net.n_gates))


def test_immediate_dominators_diamond_and_dead_line():
    net = diamond_netlist()
    sink = net.n_gates
    # Both reconverging paths from a meet at d; d is dominated by the sink.
    assert immediate_dominators(net) == [3, 3, 3, sink]
    dead = Netlist("dead")
    a = dead.add_input()
    g = dead.add_gate(GateType.NOT, (a,))
    dead.add_gate(GateType.NOT, (a,))  # never read, not an output
    dead.set_outputs([g])
    assert immediate_dominators(dead)[2] is None


# ------------------------------------------------------------------- SCOAP


def test_scoap_hand_computed_and_gate():
    net = Netlist("and2")
    a = net.add_input()
    b = net.add_input()
    g = net.add_gate(GateType.AND, (a, b))
    net.set_outputs([g])
    scoap = compute_scoap(net)
    assert scoap.cc0[a] == scoap.cc1[a] == 1
    assert scoap.cc1[g] == 3          # both inputs at 1, plus the gate
    assert scoap.cc0[g] == 2          # cheapest single 0, plus the gate
    assert scoap.co[g] == 0           # primary output
    assert scoap.co[a] == 2           # out_co 0 + side cc1 1 + gate 1
    assert scoap.testability(a) == 3  # co 2 + max(cc0, cc1) 1


def test_scoap_xor_parity_and_not():
    net = Netlist("xnot")
    a = net.add_input()
    b = net.add_input()
    x = net.add_gate(GateType.XOR, (a, b))
    n = net.add_gate(GateType.NOT, (x,))
    net.set_outputs([n])
    scoap = compute_scoap(net)
    assert scoap.cc0[x] == 3 and scoap.cc1[x] == 3
    assert scoap.cc0[n] == scoap.cc1[x] + 1
    assert scoap.controllability(n, 0) == scoap.cc0[n]


def test_scoap_dead_line_observability_saturates():
    net = Netlist("deadline")
    a = net.add_input()
    g = net.add_gate(GateType.NOT, (a,))
    net.add_gate(GateType.NOT, (a,))  # dead
    net.set_outputs([g])
    scoap = compute_scoap(net)
    assert scoap.co[2] == INFINITY
    assert scoap.testability(2) == INFINITY


def test_scoap_const_gates_cannot_take_other_value():
    net = Netlist("consts")
    zero = net.add_gate(GateType.CONST0, ())
    one = net.add_gate(GateType.CONST1, ())
    g = net.add_gate(GateType.OR, (zero, one))
    net.set_outputs([g])
    scoap = compute_scoap(net)
    assert scoap.cc0[zero] == 1 and scoap.cc1[zero] == INFINITY
    assert scoap.cc1[one] == 1 and scoap.cc0[one] == INFINITY


# -------------------------------------------------------------- collapsing


def test_collapse_mapping_is_idempotent_and_total():
    for build in (diamond_netlist, *REDUNDANT_NETLISTS):
        net = build()
        universe = collapse_universe(net)
        faults = enumerate_stuck_at(net)
        assert set(universe.mapping) == set(faults)
        for rep in universe.mapping.values():
            assert universe.mapping[rep] == rep
        assert universe.representatives == tuple(
            sorted(set(universe.mapping.values()))
        )
        assert universe.n_faults >= universe.n_representatives


def test_collapse_classes_are_true_equivalence_classes():
    """Every class member has the identical detecting-pattern set."""
    for build in (diamond_netlist, *REDUNDANT_NETLISTS):
        net = build()
        universe = collapse_universe(net)
        for rep, members in universe.classes.items():
            signature = _detection_signature(net, rep)
            for member in members:
                assert _detection_signature(net, member) == signature, (
                    f"{net.name}: {member.site()} not equivalent to "
                    f"{rep.site()}"
                )


def test_collapse_equivalence_on_real_scan_netlist():
    net = CircuitStudy("lion").scan_circuit.netlist
    universe = collapse_universe(net)
    assert universe.ratio > 1.0
    for rep, members in universe.classes.items():
        signature = _detection_signature(net, rep)
        for member in members:
            assert _detection_signature(net, member) == signature


def test_collapse_expand_roundtrip():
    net = masked_netlist()
    universe = collapse_universe(net)
    everything = universe.expand(set(universe.representatives))
    assert everything == set(universe.mapping)
    assert universe.expand(set()) == set()


def test_collapse_ratio_pinned_on_bbara():
    """The acceptance floor: >= 1.3x on an MCNC benchmark (bbara: 2.27x)."""
    net = CircuitStudy("bbara").scan_circuit.netlist
    universe = collapse_universe(net)
    assert universe.n_faults == 1760
    assert universe.n_representatives == 775
    assert universe.ratio >= 1.3


def test_collapse_empty_universe_ratio():
    assert CollapsedUniverse({}).ratio == 1.0


# --------------------------------------------------------------- constants


def test_constants_cross_checked_against_exhaustive_evaluation():
    for build in REDUNDANT_NETLISTS:
        net = build()
        constants = propagate_constants(net)
        assert constants.as_dict(), f"{net.name} should have constants"
        ff = fault_free_values(net)
        n_patterns = 1 << net.n_inputs
        for line, value in constants.as_dict().items():
            bits = unpack_bits(ff[line], n_patterns)
            assert bool(bits.all()) == bool(value)
            assert bool(bits.any()) == bool(value)


def test_constant_steps_verify_and_reject_tampering():
    net = blocked_netlist()
    constants = propagate_constants(net)
    verified = verify_constant_steps(net, constants.steps)
    assert verified == constants.as_dict()
    # Flip a conclusion: the replay must reject it.
    step = constants.steps[0]
    forged = dataclasses.replace(step, value=step.value ^ 1)
    with pytest.raises(CertificateError, match="claims"):
        verify_constant_steps(net, (forged, *constants.steps[1:]))
    # Name a rule the gate does not satisfy.
    bogus = DerivationStep(net.n_gates - 1, 0, "const-gate")
    with pytest.raises(CertificateError, match="not a constant generator"):
        verify_constant_steps(net, (bogus,))
    with pytest.raises(CertificateError, match="unknown derivation rule"):
        verify_constant_steps(
            net, (DerivationStep(0, 0, "wishful-thinking"),)
        )


def test_xor_identity_rule_proves_cancellation():
    net = xor_cancel_netlist()
    constants = propagate_constants(net)
    assert constants.as_dict()[2] == 1  # a ^ a ^ 1
    assert any(step.rule == "xor-identity" for step in constants.steps)
    verify_constant_steps(net, constants.steps)


def test_controlling_value_table():
    assert controlling_value(GateType.AND) == 0
    assert controlling_value(GateType.NOR) == 1
    assert controlling_value(GateType.XOR) is None


# ----------------------------------------------------------- observability


def test_site_observability_blocked_and_open():
    net = blocked_netlist()
    constants = propagate_constants(net)
    observable, blocks = site_observability(net, constants, 2)
    assert not observable
    assert blocks == ((4, 1),)  # AND gate 4, CONST0 on pin 1
    observable, blocks = site_observability(net, constants, 0)
    assert observable and blocks == ()


def test_verify_observability_blocks_rejects_bad_evidence():
    net = blocked_netlist()
    constants = propagate_constants(net)
    verified = verify_constant_steps(net, constants.steps)
    verify_observability_blocks(net, 2, ((4, 1),), verified)
    # Dropping the block lets the deviation reach the output.
    with pytest.raises(CertificateError, match="reaches output"):
        verify_observability_blocks(net, 2, (), verified)
    # The blocking pin must carry the verified controlling constant.
    with pytest.raises(CertificateError, match="not a verified constant"):
        verify_observability_blocks(net, 2, ((5, 1),), verified)
    # A block whose line sits inside the frontier proves nothing.
    with pytest.raises(CertificateError, match="inside the deviation"):
        verify_observability_blocks(net, 2, ((4, 0),), verified)
    # A primary output is trivially observable.
    with pytest.raises(CertificateError, match="primary output"):
        verify_observability_blocks(net, 5, (), verified)


# ------------------------------------------------------------ certificates


def test_certificates_cover_all_three_reasons():
    reasons = set()
    for build in REDUNDANT_NETLISTS:
        sca = analyze(build())
        reasons.update(cert.reason for cert in sca.certificates)
    assert reasons == {"unactivatable", "masked-pin", "unobservable"}


def test_certificates_cross_checked_against_exhaustive_oracle():
    """Every certified-untestable fault is truly undetectable."""
    for build in REDUNDANT_NETLISTS:
        net = build()
        sca = analyze(net)
        sca.verify()
        assert sca.certificates, f"{net.name} should prove redundancy"
        _, undetectable = detectable_faults(net, enumerate_stuck_at(net))
        assert sca.untestable_faults <= undetectable
        # And via the independent reference evaluator as well.
        for fault in sca.untestable_faults:
            assert _detection_signature(net, fault) == frozenset()


def test_certificate_verification_rejects_tampering():
    net = masked_netlist()
    sca = analyze(net)
    verified = verify_constant_steps(net, sca.constants.steps)
    masked = next(
        cert for cert in sca.certificates if cert.reason == "masked-pin"
    )
    verify_certificate(net, masked, verified)
    # Claim the masking pin is the faulty pin itself.
    fault = masked.fault
    assert fault.pin is not None
    forged = dataclasses.replace(masked, blocks=((fault.gate, fault.pin),))
    with pytest.raises(CertificateError, match="faulty pin itself"):
        verify_certificate(net, forged, verified)
    # Move an unactivatable proof to a non-constant line.
    unact = next(
        cert for cert in sca.certificates if cert.reason == "unactivatable"
    )
    verify_certificate(net, unact, verified)
    with pytest.raises(CertificateError, match="sits on line"):
        verify_certificate(
            net, dataclasses.replace(unact, line=0), verified
        )
    # Unknown reason.
    with pytest.raises(CertificateError, match="unknown certificate reason"):
        verify_certificate(
            net, dataclasses.replace(masked, reason="vibes"), verified
        )
    # Certificates must not survive without their constant premises.
    with pytest.raises(CertificateError):
        verify_certificate(net, masked, {})


def test_certificates_lift_to_whole_classes():
    net = blocked_netlist()
    sca = analyze(net)
    reps = sca.untestable_representatives
    assert reps
    for fault, rep in sca.universe.mapping.items():
        assert (fault in sca.untestable_faults) == (rep in reps)


# ----------------------------------------------------- analysis object/API


def test_analysis_to_dict_schema_and_consistency():
    sca = analyze(blocked_netlist())
    payload = sca.to_dict()
    assert payload["schema"] == SCA_SCHEMA
    collapse = payload["collapse"]
    assert collapse["faults"] >= collapse["representatives"]
    untestable = payload["untestable"]
    assert untestable["representatives"] == len(payload["certificates"])
    lean = sca.to_dict(include_scoap=False)
    assert "scoap" not in lean and "scoap" in payload


def test_analysis_pickle_roundtrip_preserves_everything():
    sca = analyze(masked_netlist()).materialize()
    clone = pickle.loads(pickle.dumps(sca))
    assert isinstance(clone, ScaAnalysis)
    assert clone.to_dict() == sca.to_dict()
    clone.verify()


def test_analysis_verify_passes_on_benchmark():
    sca = analyze(CircuitStudy("lion").scan_circuit.netlist)
    sca.verify()  # no certificates on a clean synthesized netlist is fine
    assert sca.universe.ratio > 1.0


# ------------------------------------------- pipeline result bit-identity


def test_collapsed_simulation_bit_identical_to_full_universe():
    """Per-test detection over representatives, expanded, equals the
    per-test detection over the raw uncollapsed universe."""
    from repro.gatelevel.compiled import CompiledFaultSimulator

    study = CircuitStudy("lion")
    netlist = study.scan_circuit.netlist
    universe = collapse_universe(netlist)
    full = enumerate_stuck_at(netlist)
    sim_full = CompiledFaultSimulator(study.scan_circuit, study.table, full)
    sim_reps = CompiledFaultSimulator(
        study.scan_circuit, study.table, list(universe.representatives)
    )
    for test in study.generation.test_set:
        expanded = universe.expand(set(sim_reps.detects(test)))
        assert expanded == set(sim_full.detects(test))


def test_study_split_is_consistent():
    study = CircuitStudy("lion")
    split = study.stuck_at_split
    assert split.n_faults == len(study.stuck_at_faults)
    assert split.detected + split.redundant + split.missed == split.n_faults
    assert 0.0 <= split.coverage <= 100.0
    assert split.testable_coverage >= split.coverage


def test_split_undetected_rejects_contradictory_certificates():
    from repro.core.coverage import split_undetected
    from repro.errors import GenerationError

    fault = StuckAtFault(0, None, 1)
    with pytest.raises(GenerationError, match="detected"):
        split_undetected([fault], {fault}, frozenset({fault}))


def test_cached_sca_reports_metrics():
    from repro.obs.metrics import MetricsRegistry, set_registry
    from repro.perf.artifacts import cached_sca

    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        cached_sca(blocked_netlist())
        snapshot = registry.snapshot()
        assert snapshot["sca.faults"]["value"] > 0
        assert snapshot["sca.certificates"]["value"] > 0
        assert "sca.collapse_ratio" in snapshot
    finally:
        set_registry(previous)


# ----------------------------------------------------- payload validation


def _load_validator():
    path = Path(__file__).resolve().parents[1] / "scripts" / "validate_sca.py"
    spec = importlib.util.spec_from_file_location("validate_sca", path)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_validate_sca_accepts_real_payloads():
    validator = _load_validator()
    for build in (diamond_netlist, *REDUNDANT_NETLISTS):
        payload = analyze(build()).to_dict()
        assert validator.check_payload(payload) == []


def test_validate_sca_fails_on_unproved_constant():
    validator = _load_validator()
    payload = analyze(blocked_netlist()).to_dict()
    payload["constant_steps"] = []  # constants now lack their proofs
    problems = validator.check_payload(payload)
    assert any("unproved constant" in problem for problem in problems)


def test_validate_sca_flags_shape_problems():
    validator = _load_validator()
    payload = analyze(masked_netlist()).to_dict()
    payload["collapse"]["representatives"] = payload["collapse"]["faults"] + 1
    payload["certificates"][0]["reason"] = "because"
    problems = validator.check_payload(payload)
    assert any("more representatives" in problem for problem in problems)
    assert any("unknown reason" in problem for problem in problems)
    assert validator.check_payload({}) != []

"""Tests for the error hierarchy, timing helpers, and package surface."""

from __future__ import annotations

import pytest

import repro
from repro import errors
from repro.harness.runtime import Stopwatch, stopwatch


class TestErrorHierarchy:
    ALL = [
        errors.StateTableError,
        errors.KissFormatError,
        errors.IncompleteMachineError,
        errors.EncodingError,
        errors.SearchBudgetExceeded,
        errors.GenerationError,
        errors.NetlistError,
        errors.SynthesisError,
        errors.FaultSimulationError,
        errors.BenchmarkError,
    ]

    def test_all_derive_from_repro_error(self):
        for klass in self.ALL:
            assert issubclass(klass, errors.ReproError)

    def test_catchable_as_repro_error(self):
        with pytest.raises(errors.ReproError):
            raise errors.NetlistError("boom")

    def test_budget_error_carries_count(self):
        error = errors.SearchBudgetExceeded("stopped", nodes_expanded=42)
        assert error.nodes_expanded == 42
        assert "stopped" in str(error)


class TestStopwatch:
    def test_measures_elapsed(self):
        with stopwatch() as clock:
            total = sum(range(10000))
        assert total == 49995000
        assert clock.elapsed_s >= 0.0

    def test_elapsed_set_even_on_exception(self):
        clock_holder = []
        with pytest.raises(RuntimeError):
            with stopwatch() as clock:
                clock_holder.append(clock)
                raise RuntimeError("x")
        assert clock_holder[0].elapsed_s >= 0.0

    def test_repr(self):
        assert "Stopwatch" in repr(Stopwatch())


class TestPackageSurface:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_public_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_docstring_quickstart_is_true(self):
        """The numbers in the package docstring must stay correct."""
        result = repro.generate_tests(repro.load_circuit("lion"))
        assert (result.n_tests, result.total_length) == (9, 28)

    def test_main_module_importable(self):
        import importlib.util

        spec = importlib.util.find_spec("repro.__main__")
        assert spec is not None

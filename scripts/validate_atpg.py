#!/usr/bin/env python
"""Validate ``repro-fsatpg atpg --format json`` payloads.

Usage:  python scripts/validate_atpg.py FILE [FILE ...]

Each file must be a ``repro-fsatpg-atpg/1`` document.  Beyond schema
shape, the script re-earns every verdict the engine claims (the CI
atpg-smoke job fails otherwise):

* every ``test`` verdict is replayed: the circuit is re-synthesized, the
  (state, combo) expansion is simulated through the production fault
  simulator, and the target fault must actually be detected;
* every ``untestable`` verdict is re-verified against exhaustive
  detectability restricted to assigned state codes — the same constraint
  the structural search enforces;
* every ``aborted`` verdict must name a known abort reason and is never
  counted as untestable;
* per-run counts (targets, coverage, backtracks) must be arithmetically
  coherent with the verdict list.

Problems are reported one per line; any problem makes the exit code 1.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.benchmarks import (  # noqa: E402
    circuit_names,
    load_circuit,
    load_kiss_machine,
)
from repro.core.testset import ScanTest  # noqa: E402
from repro.gatelevel.compiled import CompiledFaultSimulator  # noqa: E402
from repro.gatelevel.detectability import (  # noqa: E402
    assigned_pattern_mask,
    detectable_faults,
)
from repro.gatelevel.scan import ScanCircuit  # noqa: E402
from repro.gatelevel.stuck_at import StuckAtFault  # noqa: E402
from repro.gatelevel.synthesis import SynthesisOptions  # noqa: E402

SCHEMA = "repro-fsatpg-atpg/1"
STATUSES = {"test", "untestable", "aborted"}
ABORT_REASONS = {"backtrack-limit", "time-budget"}


def _fault(entry: dict) -> StuckAtFault:
    return StuckAtFault(entry["gate"], entry["pin"], entry["value"])


def _check_run(run: dict, max_fanin: int | None) -> list[str]:
    problems: list[str] = []
    name = run.get("circuit", "")
    if name not in set(circuit_names()):
        return [f"unknown circuit {name!r}"]
    # Mirror the CLI study pipeline exactly: the netlist is synthesized
    # from the KISS machine, while tests replay against the state table.
    table = load_circuit(name)
    circuit = ScanCircuit.from_machine(
        load_kiss_machine(name), SynthesisOptions(max_fanin=max_fanin)
    )

    verdicts = run.get("verdicts", [])
    by_status: dict[str, list[dict]] = {status: [] for status in STATUSES}
    for index, verdict in enumerate(verdicts):
        status = verdict.get("status")
        if status not in STATUSES:
            problems.append(f"{name}: verdict {index}: bad status {status!r}")
            continue
        by_status[status].append(verdict)

    for key, expected in (
        ("targets", len(verdicts)),
        ("tests", len(by_status["test"])),
        ("untestable", len(by_status["untestable"])),
        ("aborted", len(by_status["aborted"])),
        ("backtracks", sum(v.get("backtracks", 0) for v in verdicts)),
    ):
        if run.get(key) != expected:
            problems.append(
                f"{name}: {key} = {run.get(key)!r} but verdicts say {expected}"
            )
    if verdicts:
        coverage = 100.0 * len(by_status["test"]) / len(verdicts)
        if abs(run.get("coverage_pct", 0.0) - coverage) > 0.01:
            problems.append(
                f"{name}: coverage_pct = {run.get('coverage_pct')} does not "
                f"match tests/targets = {coverage:.2f}"
            )

    # Claimed tests must replay to a detection through the production
    # fault simulator — the payload's `witness: true` is not taken on
    # faith.
    tests = by_status["test"]
    if tests:
        faults = [_fault(v["fault"]) for v in tests]
        simulator = CompiledFaultSimulator(circuit, table, faults)
        pi = circuit.n_primary_inputs
        for verdict, fault in zip(tests, faults):
            state, combo = verdict.get("state"), verdict.get("combo")
            if state is None or combo is None:
                problems.append(
                    f"{name}: test verdict for {fault.site()} carries no "
                    "(state, combo) expansion"
                )
                continue
            code = circuit.encoding.encode(state)
            if verdict.get("pattern") != (code << pi) | combo:
                problems.append(
                    f"{name}: {fault.site()}: pattern "
                    f"{verdict.get('pattern')!r} does not match the "
                    "(state, combo) expansion"
                )
            if verdict.get("witness") is not True:
                problems.append(
                    f"{name}: {fault.site()}: test verdict without a "
                    "machine-checked witness"
                )
            test = ScanTest(state, (combo,), table.final_state(state, (combo,)))
            if fault not in simulator.detects(test):
                problems.append(
                    f"{name}: {fault.site()}: claimed test "
                    f"(state={state}, combo={combo}) does not detect the "
                    "fault on replay"
                )

    # Untestable claims re-verify against exhaustive detectability under
    # the assigned-state-code restriction.
    untestable = by_status["untestable"]
    if untestable:
        faults = [_fault(v["fault"]) for v in untestable]
        mask = assigned_pattern_mask(circuit.encoding, circuit.n_primary_inputs)
        detectable, _ = detectable_faults(
            circuit.netlist, faults, pattern_mask=mask
        )
        for fault in faults:
            if fault in detectable:
                problems.append(
                    f"{name}: {fault.site()}: claimed untestable but "
                    "exhaustive simulation detects it"
                )

    for verdict in by_status["aborted"]:
        reason = verdict.get("aborted_reason")
        if reason not in ABORT_REASONS:
            problems.append(
                f"{name}: aborted verdict with unknown reason {reason!r}"
            )
    return problems


def check_payload(payload: dict) -> list[str]:
    problems: list[str] = []
    if payload.get("schema") != SCHEMA:
        problems.append(
            f"schema is {payload.get('schema')!r}, expected {SCHEMA!r}"
        )
    if payload.get("algorithm") not in ("podem", "d"):
        problems.append(f"unknown algorithm {payload.get('algorithm')!r}")
    runs = payload.get("runs")
    if not isinstance(runs, list) or not runs:
        problems.append("payload carries no runs")
        return problems
    max_fanin = payload.get("max_fanin", 4)
    for run in runs:
        problems.extend(_check_run(run, max_fanin))
    return problems


def main(argv: list[str] | None = None) -> int:
    arguments = argv if argv is not None else sys.argv[1:]
    if not arguments:
        print(__doc__, file=sys.stderr)
        return 2
    status = 0
    for argument in arguments:
        path = Path(argument)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path}: unreadable: {exc}", file=sys.stderr)
            status = 1
            continue
        problems = check_payload(payload)
        if problems:
            status = 1
            for problem in problems:
                print(f"{path}: {problem}", file=sys.stderr)
        else:
            runs = payload["runs"]
            summary = ", ".join(
                f"{run['circuit']}: {run['tests']}/{run['targets']} tests, "
                f"{run['untestable']} untestable, {run['aborted']} aborted"
                for run in runs
            )
            print(f"{path}: OK ({payload['algorithm']}; {summary})")
    return status


if __name__ == "__main__":
    sys.exit(main())

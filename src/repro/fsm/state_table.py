"""Dense state-table representation of a completely specified Mealy machine.

The paper describes circuits functionally "by state tables": for every state
``s`` and every primary input combination ``a`` the table gives a next state
``delta(s, a)`` and a primary output combination ``lambda(s, a)``.  This module
stores both functions as dense ``numpy`` arrays of shape
``(n_states, 2**n_inputs)`` which makes the search procedures (UIO, transfer,
test generation) simple array lookups.

Bit-order conventions
---------------------
Input and output combinations are encoded as integers, **most significant bit
first** in the order the paper writes vectors: the combination ``x1 x2 = 01``
is the integer ``0b01 = 1``.  :meth:`StateTable.input_bits` and
:meth:`StateTable.output_bits` convert between integers and bit tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import StateTableError

__all__ = ["StateTable", "Transition"]


@dataclass(frozen=True)
class Transition:
    """One edge of the state table: ``state --input/output--> next_state``."""

    state: int
    input: int
    next_state: int
    output: int

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.state} --{self.input}/{self.output}--> {self.next_state}"


class StateTable:
    """A completely specified Mealy machine as a dense state table.

    Parameters
    ----------
    next_state:
        Array of shape ``(n_states, 2**n_inputs)``; entry ``[s, a]`` is the
        state reached from ``s`` under input combination ``a``.
    output:
        Array of the same shape; entry ``[s, a]`` is the integer-encoded
        primary output combination produced during that transition.
    n_inputs:
        Number of primary input *bits* (the paper's ``pi`` column).
    n_outputs:
        Number of primary output bits.
    state_names:
        Optional symbolic names, one per state.  Defaults to ``"s0"..``.
    name:
        Optional machine name (benchmark circuit name).
    """

    __slots__ = (
        "next_state",
        "output",
        "n_inputs",
        "n_outputs",
        "state_names",
        "name",
        "_hash",
    )

    def __init__(
        self,
        next_state: np.ndarray,
        output: np.ndarray,
        n_inputs: int,
        n_outputs: int,
        state_names: Sequence[str] | None = None,
        name: str = "",
    ) -> None:
        next_state = np.asarray(next_state, dtype=np.int32)
        output = np.asarray(output, dtype=np.int64)
        if next_state.ndim != 2:
            raise StateTableError("next_state must be a 2-D array")
        if next_state.shape != output.shape:
            raise StateTableError(
                f"next_state shape {next_state.shape} != output shape {output.shape}"
            )
        n_states, n_columns = next_state.shape
        if n_states < 1:
            raise StateTableError("a machine needs at least one state")
        if n_inputs < 0:
            raise StateTableError("n_inputs must be non-negative")
        if n_columns != 1 << n_inputs:
            raise StateTableError(
                f"table has {n_columns} input columns but 2**{n_inputs} expected"
            )
        if n_outputs < 0:
            raise StateTableError("n_outputs must be non-negative")
        if next_state.size and (next_state.min() < 0 or next_state.max() >= n_states):
            raise StateTableError("next_state entries must be valid state indices")
        if output.size and (output.min() < 0 or output.max() >= (1 << n_outputs)):
            raise StateTableError(
                f"output entries must fit in {n_outputs} output bits"
            )
        if state_names is None:
            state_names = tuple(f"s{i}" for i in range(n_states))
        else:
            state_names = tuple(state_names)
            if len(state_names) != n_states:
                raise StateTableError(
                    f"{len(state_names)} state names for {n_states} states"
                )
            if len(set(state_names)) != n_states:
                raise StateTableError("state names must be unique")
        next_state.setflags(write=False)
        output.setflags(write=False)
        object.__setattr__(self, "next_state", next_state)
        object.__setattr__(self, "output", output)
        object.__setattr__(self, "n_inputs", int(n_inputs))
        object.__setattr__(self, "n_outputs", int(n_outputs))
        object.__setattr__(self, "state_names", state_names)
        object.__setattr__(self, "name", str(name))
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, key: str, value: object) -> None:  # immutability guard
        raise AttributeError("StateTable is immutable")

    def __reduce__(self) -> tuple:
        # __slots__ plus the immutability guard break the default pickle
        # protocol (slot-state restore uses setattr); rebuild through the
        # constructor instead.  Needed so tables travel to worker processes.
        return (
            StateTable,
            (
                self.next_state,
                self.output,
                self.n_inputs,
                self.n_outputs,
                self.state_names,
                self.name,
            ),
        )

    # ------------------------------------------------------------------ sizes

    @property
    def n_states(self) -> int:
        """Number of states (the paper's ``N_ST``)."""
        return int(self.next_state.shape[0])

    @property
    def n_input_combinations(self) -> int:
        """Number of primary input combinations (the paper's ``N_PIC``)."""
        return int(self.next_state.shape[1])

    @property
    def n_transitions(self) -> int:
        """Total number of state transitions, ``N_ST * N_PIC``."""
        return self.n_states * self.n_input_combinations

    @property
    def n_state_variables(self) -> int:
        """Number of state variables ``N_SV = ceil(log2(N_ST))`` (min 1)."""
        return max(1, (self.n_states - 1).bit_length())

    # ----------------------------------------------------------- bit helpers

    def input_bits(self, combination: int) -> tuple[int, ...]:
        """Decode an input combination integer into ``(x1, ..., x_pi)`` bits."""
        self._check_input(combination)
        return _int_to_bits(combination, self.n_inputs)

    def input_index(self, bits: Iterable[int]) -> int:
        """Encode input bits ``(x1, ..., x_pi)`` into a combination integer."""
        value = _bits_to_int(bits, self.n_inputs)
        return value

    def output_bits(self, combination: int) -> tuple[int, ...]:
        """Decode an output combination integer into per-line bits."""
        if not 0 <= combination < (1 << self.n_outputs):
            raise StateTableError(f"output combination {combination} out of range")
        return _int_to_bits(combination, self.n_outputs)

    def output_index(self, bits: Iterable[int]) -> int:
        """Encode output bits into a combination integer."""
        return _bits_to_int(bits, self.n_outputs)

    # ------------------------------------------------------------- semantics

    def step(self, state: int, combination: int) -> tuple[int, int]:
        """Apply one input combination; return ``(next_state, output)``."""
        self._check_state(state)
        self._check_input(combination)
        return (
            int(self.next_state[state, combination]),
            int(self.output[state, combination]),
        )

    def run(self, state: int, sequence: Sequence[int]) -> tuple[int, tuple[int, ...]]:
        """Apply an input sequence; return ``(final_state, output_sequence)``.

        This is the paper's ``B(A, s)`` response function together with the
        final state reached.
        """
        self._check_state(state)
        outputs: list[int] = []
        current = state
        for combination in sequence:
            self._check_input(combination)
            outputs.append(int(self.output[current, combination]))
            current = int(self.next_state[current, combination])
        return current, tuple(outputs)

    def response(self, state: int, sequence: Sequence[int]) -> tuple[int, ...]:
        """Output sequence ``B(A, s)`` produced from ``state`` under ``sequence``."""
        return self.run(state, sequence)[1]

    def final_state(self, state: int, sequence: Sequence[int]) -> int:
        """State reached from ``state`` after applying ``sequence``."""
        return self.run(state, sequence)[0]

    def transitions(self) -> Iterator[Transition]:
        """Iterate over all transitions in (state-major, input-minor) order.

        This is the order in which the paper's procedure considers candidate
        transitions, so the generator's determinism relies on it.
        """
        for state in range(self.n_states):
            row_next = self.next_state[state]
            row_out = self.output[state]
            for combination in range(self.n_input_combinations):
                yield Transition(
                    state, combination, int(row_next[combination]), int(row_out[combination])
                )

    def transition(self, state: int, combination: int) -> Transition:
        """The single transition out of ``state`` under ``combination``."""
        nxt, out = self.step(state, combination)
        return Transition(state, combination, nxt, out)

    def successors(self, state: int) -> frozenset[int]:
        """Set of states reachable from ``state`` in exactly one step."""
        self._check_state(state)
        return frozenset(int(s) for s in np.unique(self.next_state[state]))

    # ------------------------------------------------------------- utilities

    def renamed(self, name: str) -> "StateTable":
        """A copy of this table under a different machine name."""
        return StateTable(
            self.next_state,
            self.output,
            self.n_inputs,
            self.n_outputs,
            self.state_names,
            name,
        )

    def state_index(self, state_name: str) -> int:
        """Index of the state called ``state_name``."""
        try:
            return self.state_names.index(state_name)
        except ValueError:
            raise StateTableError(f"unknown state name {state_name!r}") from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StateTable):
            return NotImplemented
        return (
            self.n_inputs == other.n_inputs
            and self.n_outputs == other.n_outputs
            and self.state_names == other.state_names
            and np.array_equal(self.next_state, other.next_state)
            and np.array_equal(self.output, other.output)
        )

    def __hash__(self) -> int:
        # Memoized: tables are hashed repeatedly as memoization keys (e.g.
        # input-class representatives), and hashing serializes both arrays.
        if self._hash is None:
            object.__setattr__(
                self,
                "_hash",
                hash(
                    (
                        self.n_inputs,
                        self.n_outputs,
                        self.state_names,
                        self.next_state.tobytes(),
                        self.output.tobytes(),
                    )
                ),
            )
        return self._hash

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<StateTable{label}: {self.n_states} states, {self.n_inputs} inputs, "
            f"{self.n_outputs} outputs>"
        )

    # ----------------------------------------------------------------- guards

    def _check_state(self, state: int) -> None:
        if not 0 <= state < self.n_states:
            raise StateTableError(
                f"state {state} out of range [0, {self.n_states})"
            )

    def _check_input(self, combination: int) -> None:
        if not 0 <= combination < self.n_input_combinations:
            raise StateTableError(
                f"input combination {combination} out of range "
                f"[0, {self.n_input_combinations})"
            )


def _int_to_bits(value: int, width: int) -> tuple[int, ...]:
    return tuple((value >> (width - 1 - i)) & 1 for i in range(width))


def _bits_to_int(bits: Iterable[int], width: int) -> int:
    bit_list = list(bits)
    if len(bit_list) != width:
        raise StateTableError(f"expected {width} bits, got {len(bit_list)}")
    value = 0
    for bit in bit_list:
        if bit not in (0, 1):
            raise StateTableError(f"bits must be 0 or 1, got {bit!r}")
        value = (value << 1) | bit
    return value

"""Experiment harness: regenerates every table of the paper's evaluation.

:class:`~repro.harness.experiments.CircuitStudy` lazily computes and caches
everything one circuit needs (UIO table, generated tests, synthesized scan
circuit, fault universes, effective-test selections); the ``tableN``
functions assemble the paper's tables from studies and
:mod:`repro.harness.tables` renders them as text.
"""

from repro.harness.experiments import (
    CircuitStudy,
    StudyOptions,
    get_study,
    render,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
)
from repro.harness.tables import format_table

__all__ = [
    "CircuitStudy",
    "StudyOptions",
    "format_table",
    "get_study",
    "render",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "table9",
]

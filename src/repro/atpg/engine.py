"""Structural ATPG engine: targets, verdicts, witnesses, and top-off.

:func:`generate_structural_tests` drives the D-algorithm or PODEM over a
collapsed fault list of a synthesized scan circuit.  Every verdict is
defended, not just asserted:

* a ``test`` verdict carries a cube that is expanded to a concrete scan
  pattern (state bits restricted to *assigned* codes) and immediately
  replayed through the production fault simulator — a machine-checked
  witness; a replay miss raises :class:`~repro.errors.AtpgError`;
* an ``untestable`` verdict carries the bounded-search certificate
  (decisions / backtracks under the limit, search exhausted) and is
  cross-validated against any static :mod:`repro.sca.certificates` proof
  for the same fault — a contradiction raises;
* an ``aborted`` verdict (budget exhausted) claims nothing and is never
  folded into the untestable count.

:func:`top_off` targets exactly the representatives a functional test set
missed and reports the combined functional + structural coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.progress import ProgressMeter

from repro.atpg.dalg import d_algorithm_search
from repro.atpg.model import FaultedCircuit, StateCodeConstraint
from repro.atpg.podem import podem_search
from repro.atpg.search import (
    DEFAULT_BACKTRACK_LIMIT,
    DEFAULT_TRACE_CAPACITY,
    STATUS_ABORTED,
    STATUS_TEST,
    STATUS_UNTESTABLE,
    SearchBudget,
    SearchEvent,
    SearchOutcome,
    SearchTrace,
)
from repro.core.config import FaultSimConfig
from repro.core.testset import ScanTest, Segment, SegmentKind, TestSet
from repro.errors import AtpgError
from repro.fsm.state_table import StateTable
from repro.gatelevel.dispatch import make_fault_simulator
from repro.gatelevel.scan import ScanCircuit
from repro.gatelevel.stuck_at import StuckAtFault, collapse_stuck_at
from repro.obs.metrics import counter_add, histogram_observe
from repro.sca.certificates import UntestableCertificate
from repro.sca.scoap import ScoapMeasures, compute_scoap

__all__ = [
    "ALGORITHMS",
    "ATPG_SCHEMA",
    "AtpgRun",
    "FaultVerdict",
    "TopOffReport",
    "generate_structural_tests",
    "top_off",
]

#: JSON schema identifier of :meth:`AtpgRun.to_dict` payloads.
ATPG_SCHEMA = "repro-fsatpg-atpg/1"

ALGORITHMS = ("podem", "d")

_SEARCHERS = {"podem": podem_search, "d": d_algorithm_search}


def cube_string(cube: tuple[int, ...]) -> str:
    """Render a cube as MSB-first input literals, ``X`` for don't-care."""
    return "".join("X" if bit < 0 else str(bit) for bit in cube)


@dataclass(frozen=True)
class FaultVerdict:
    """One fault's defended verdict."""

    fault: StuckAtFault
    status: str
    cube: tuple[int, ...] | None
    #: Concrete expansion of the cube (``test`` verdicts only).
    state: int | None
    combo: int | None
    pattern: int | None
    decisions: int
    backtracks: int
    aborted_reason: str | None
    #: ``True`` once the fault simulator replayed the test and saw the
    #: detection; ``None`` when replay was disabled or not applicable.
    witness: bool | None
    #: ``True`` when a static sca certificate exists and agrees.
    certified: bool
    #: Search forensics: the retained ring-buffer events (aborted targets
    #: always keep theirs; the hardest-N by backtracks keep theirs too).
    search_trace: tuple[SearchEvent, ...] | None = None
    #: Total events the search recorded (``> len(search_trace)`` when the
    #: ring wrapped); 0 when tracing was off.
    trace_total: int = 0

    def to_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "fault": {
                "gate": self.fault.gate,
                "pin": self.fault.pin,
                "value": self.fault.value,
                "site": self.fault.site(),
            },
            "status": self.status,
            "decisions": self.decisions,
            "backtracks": self.backtracks,
        }
        if self.status == STATUS_TEST:
            assert self.cube is not None
            payload["cube"] = cube_string(self.cube)
            payload["state"] = self.state
            payload["combo"] = self.combo
            payload["pattern"] = self.pattern
            payload["witness"] = self.witness
        if self.status == STATUS_ABORTED:
            payload["aborted_reason"] = self.aborted_reason
        if self.status == STATUS_UNTESTABLE:
            payload["certified"] = self.certified
        if self.search_trace is not None:
            payload["search_trace"] = {
                "total": self.trace_total,
                "dropped": self.trace_total - len(self.search_trace),
                "events": [event.to_dict() for event in self.search_trace],
            }
        return payload


@dataclass(frozen=True)
class AtpgRun:
    """Per-circuit result of one structural ATPG sweep."""

    circuit: str
    algorithm: str
    backtrack_limit: int
    verdicts: tuple[FaultVerdict, ...]

    @property
    def n_targets(self) -> int:
        return len(self.verdicts)

    @property
    def tests(self) -> tuple[FaultVerdict, ...]:
        return tuple(v for v in self.verdicts if v.status == STATUS_TEST)

    @property
    def untestable(self) -> tuple[FaultVerdict, ...]:
        return tuple(v for v in self.verdicts if v.status == STATUS_UNTESTABLE)

    @property
    def aborted(self) -> tuple[FaultVerdict, ...]:
        return tuple(v for v in self.verdicts if v.status == STATUS_ABORTED)

    @property
    def coverage_pct(self) -> float:
        """Tests found over targets, counting aborted faults as misses."""
        if not self.verdicts:
            return 100.0
        return 100.0 * len(self.tests) / self.n_targets

    @property
    def total_backtracks(self) -> int:
        return sum(v.backtracks for v in self.verdicts)

    def test_set(self, table: StateTable) -> TestSet:
        """The found tests as length-1 scan tests, smallest pattern first."""
        tests = []
        for verdict in sorted(
            self.tests, key=lambda v: (v.pattern, v.fault.sort_key)
        ):
            assert verdict.state is not None and verdict.combo is not None
            tests.append(_scan_test(table, verdict.state, verdict.combo))
        return TestSet(
            table.name, table.n_state_variables, table.n_transitions, tests
        )

    def to_dict(self, *, include_verdicts: bool = True) -> dict[str, object]:
        payload: dict[str, object] = {
            "circuit": self.circuit,
            "algorithm": self.algorithm,
            "backtrack_limit": self.backtrack_limit,
            "targets": self.n_targets,
            "tests": len(self.tests),
            "untestable": len(self.untestable),
            "aborted": len(self.aborted),
            "coverage_pct": round(self.coverage_pct, 2),
            "backtracks": self.total_backtracks,
        }
        if include_verdicts:
            payload["verdicts"] = [v.to_dict() for v in self.verdicts]
        return payload


@dataclass(frozen=True)
class TopOffReport:
    """Structural top-off of a functional test set's fault coverage."""

    n_representatives: int
    n_functional_detected: int
    run: AtpgRun

    @property
    def functional_coverage_pct(self) -> float:
        if self.n_representatives == 0:
            return 100.0
        return 100.0 * self.n_functional_detected / self.n_representatives

    @property
    def combined_coverage_pct(self) -> float:
        if self.n_representatives == 0:
            return 100.0
        covered = self.n_functional_detected + len(self.run.tests)
        return 100.0 * covered / self.n_representatives

    def to_dict(self) -> dict[str, object]:
        return {
            "representatives": self.n_representatives,
            "functional_detected": self.n_functional_detected,
            "functional_coverage_pct": round(self.functional_coverage_pct, 2),
            "topped_off": len(self.run.tests),
            "proven_untestable": len(self.run.untestable),
            "aborted": len(self.run.aborted),
            "combined_coverage_pct": round(self.combined_coverage_pct, 2),
        }


def _scan_test(table: StateTable, state: int, combo: int) -> ScanTest:
    next_state = int(table.next_state[state, combo])
    return ScanTest(
        state,
        (combo,),
        next_state,
        (Segment(SegmentKind.TRANSITION, state, (combo,)),),
        ((state, combo),),
    )


def _expand_cube(
    cube: tuple[int, ...],
    circuit: ScanCircuit,
    constraint: StateCodeConstraint,
) -> tuple[int, int, int]:
    """Pick the smallest assigned state code / input combo matching ``cube``."""
    sv = circuit.n_state_variables
    pi = circuit.n_primary_inputs
    bits = [None if b < 0 else b for b in cube[:sv]]
    codes = constraint.compatible_codes(bits)
    if not codes:  # pragma: no cover - the search enforces feasibility
        raise AtpgError("test cube is incompatible with every assigned code")
    code = codes[0]
    combo = 0
    for bit in cube[sv:]:
        combo = (combo << 1) | (bit if bit > 0 else 0)
    state = circuit.encoding.decode(code)
    return state, combo, (code << pi) | combo


def _fault_progress(label: str, total: int) -> "ProgressMeter | None":
    """A live per-fault heartbeat when ``--progress`` is on, else ``None``.

    The ETA before the first verdict comes from ledger history of past
    ``atpg`` runs on this circuit (see :mod:`repro.obs.progress`).
    """
    from repro.obs.progress import meter

    return meter(
        f"atpg {label}", total, command="atpg", circuits=(label,)
    )


def generate_structural_tests(
    circuit: ScanCircuit,
    table: StateTable,
    faults: Sequence[StuckAtFault] | None = None,
    *,
    algorithm: str = "podem",
    backtrack_limit: int = DEFAULT_BACKTRACK_LIMIT,
    time_budget_s: float | None = None,
    scoap: ScoapMeasures | None = None,
    certificates: Iterable[UntestableCertificate] | Mapping[StuckAtFault, UntestableCertificate] | None = None,
    replay: bool = True,
    config: FaultSimConfig | None = None,
    trace_capacity: int = DEFAULT_TRACE_CAPACITY,
    trace_hardest: int = 5,
) -> AtpgRun:
    """Run structural ATPG over ``faults`` (collapsed representatives).

    ``faults`` defaults to the collapsed stuck-at representatives of the
    circuit's netlist.  ``certificates`` (when given) are the static
    untestability proofs to cross-validate against.  ``replay`` controls
    the machine-checked witness pass through the fault simulator.

    Every fault's search runs with a bounded ring-buffer
    :class:`~repro.atpg.search.SearchTrace` of ``trace_capacity`` events.
    The trace is *kept* on the verdict for every aborted target and for
    the ``trace_hardest`` targets with the most backtracks (ties broken by
    decisions, then fault order) — the forensic record
    ``repro-fsatpg explain --fault`` replays.  ``trace_capacity=0``
    disables tracing entirely.
    """
    if algorithm not in _SEARCHERS:
        raise AtpgError(
            f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
        )
    if backtrack_limit < 0:
        raise AtpgError("backtrack limit must be >= 0")
    netlist = circuit.netlist
    if faults is None:
        faults = sorted(set(collapse_stuck_at(netlist).values()))
    if scoap is None:
        scoap = compute_scoap(netlist)
    certified: dict[StuckAtFault, UntestableCertificate] = {}
    if certificates is not None:
        if isinstance(certificates, Mapping):
            certified = dict(certificates)
        else:
            certified = {c.fault: c for c in certificates}
    constraint = StateCodeConstraint(
        circuit.encoding.codes, circuit.encoding.width
    )
    searcher = _SEARCHERS[algorithm]
    simulator = None
    if replay and faults:
        simulator = make_fault_simulator(
            circuit, table, list(faults), config or FaultSimConfig()
        )
    verdicts: list[FaultVerdict] = []
    traces: list[SearchTrace | None] = []
    progress = _fault_progress(netlist.name or table.name, len(faults))
    for fault in faults:
        trace = SearchTrace(trace_capacity) if trace_capacity > 0 else None
        budget = SearchBudget(backtrack_limit, time_budget_s, trace)
        outcome: SearchOutcome = searcher(
            FaultedCircuit(netlist, fault), scoap, constraint, budget
        )
        traces.append(trace)
        state = combo = pattern = None
        witness: bool | None = None
        if outcome.status == STATUS_TEST:
            assert outcome.cube is not None
            state, combo, pattern = _expand_cube(
                outcome.cube, circuit, constraint
            )
            if fault in certified:
                raise AtpgError(
                    f"{algorithm} found a test for {fault.site()} but a "
                    "static certificate proves it untestable"
                )
            if simulator is not None:
                test = _scan_test(table, state, combo)
                witness = fault in simulator.detects(test)
                if not witness:
                    raise AtpgError(
                        f"witness replay failed: test {pattern:#x} does not "
                        f"detect {fault.site()}"
                    )
        verdicts.append(
            FaultVerdict(
                fault=fault,
                status=outcome.status,
                cube=outcome.cube,
                state=state,
                combo=combo,
                pattern=pattern,
                decisions=outcome.decisions,
                backtracks=outcome.backtracks,
                aborted_reason=outcome.aborted_reason,
                witness=witness,
                certified=(
                    outcome.status == STATUS_UNTESTABLE and fault in certified
                ),
            )
        )
        histogram_observe("atpg.decisions", outcome.decisions)
        if progress is not None:
            progress.update()
    if progress is not None:
        progress.finish()
    # Persist forensics for the aborted targets (always) plus the
    # hardest-N by search effort; everything else drops its trace so the
    # run stays light to pickle, cache, and serialize.
    keep = {
        index
        for index, verdict in enumerate(verdicts)
        if verdict.status == STATUS_ABORTED
    }
    if trace_hardest > 0:
        hardest = sorted(
            range(len(verdicts)),
            key=lambda i: (
                -verdicts[i].backtracks,
                -verdicts[i].decisions,
                i,
            ),
        )[:trace_hardest]
        keep.update(hardest)
    for index in keep:
        trace = traces[index]
        if trace is not None and trace.total:
            verdicts[index] = replace(
                verdicts[index],
                search_trace=trace.events(),
                trace_total=trace.total,
            )
    run = AtpgRun(
        circuit=netlist.name or table.name,
        algorithm=algorithm,
        backtrack_limit=backtrack_limit,
        verdicts=tuple(verdicts),
    )
    counter_add("atpg.targets", run.n_targets)
    counter_add("atpg.tests", len(run.tests))
    counter_add("atpg.untestable", len(run.untestable))
    counter_add("atpg.aborted", len(run.aborted))
    counter_add("atpg.backtracks", run.total_backtracks)
    return run


def top_off(
    circuit: ScanCircuit,
    table: StateTable,
    representatives: Sequence[StuckAtFault],
    functional_detected: Iterable[StuckAtFault],
    *,
    proven_untestable: Iterable[StuckAtFault] = (),
    **kwargs: object,
) -> TopOffReport:
    """Target exactly the representatives the functional set missed.

    ``representatives`` is the full collapsed universe, ``functional
    detected`` the representatives the functional tests caught, and
    ``proven_untestable`` any statically-proven-redundant faults to skip.
    Remaining keyword arguments go to :func:`generate_structural_tests`.
    """
    detected = set(functional_detected)
    skip = set(proven_untestable)
    targets = [
        fault
        for fault in representatives
        if fault not in detected and fault not in skip
    ]
    run = generate_structural_tests(circuit, table, targets, **kwargs)  # type: ignore[arg-type]
    return TopOffReport(
        n_representatives=len(representatives),
        n_functional_detected=len(detected),
        run=run,
    )

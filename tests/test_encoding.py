"""Unit tests for state encoding and power-of-two completion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EncodingError
from repro.fsm.builders import StateTableBuilder
from repro.fsm.encoding import (
    StateEncoding,
    complete_to_power_of_two,
    natural_encoding,
)


def three_state_machine():
    builder = StateTableBuilder(n_inputs=1, n_outputs=1, name="three")
    builder.add("a", 0, "a", 0)
    builder.add("a", 1, "b", 1)
    builder.add("b", 0, "c", 0)
    builder.add("b", 1, "a", 1)
    builder.add("c", 0, "c", 1)
    builder.add("c", 1, "b", 0)
    return builder.build()


class TestStateEncoding:
    def test_encode_decode_roundtrip(self):
        encoding = StateEncoding(2, (0, 1, 2))
        for state in range(3):
            assert encoding.decode(encoding.encode(state)) == state

    def test_encode_bits_msb_first(self):
        encoding = StateEncoding(3, (0b101,))
        assert encoding.encode_bits(0) == (1, 0, 1)

    def test_duplicate_codes_rejected(self):
        with pytest.raises(EncodingError):
            StateEncoding(2, (1, 1))

    def test_code_overflow_rejected(self):
        with pytest.raises(EncodingError):
            StateEncoding(1, (2,))

    def test_unknown_code_decode_raises(self):
        with pytest.raises(EncodingError):
            StateEncoding(2, (0, 1)).decode(3)

    def test_out_of_range_state_raises(self):
        with pytest.raises(EncodingError):
            StateEncoding(2, (0, 1)).encode(5)

    def test_is_complete(self):
        assert StateEncoding(1, (0, 1)).is_complete()
        assert not StateEncoding(2, (0, 1)).is_complete()


class TestNaturalEncoding:
    def test_identity_codes(self):
        table = three_state_machine()
        encoding = natural_encoding(table)
        assert encoding.codes == (0, 1, 2)
        assert encoding.width == 2


class TestCompletion:
    def test_adds_states_to_power_of_two(self):
        table = three_state_machine()
        completed = complete_to_power_of_two(table)
        assert completed.n_states == 4
        assert completed.state_names[3] == "unused0"

    def test_fill_states_go_to_reset_with_zero_output(self):
        completed = complete_to_power_of_two(three_state_machine())
        for combo in range(2):
            assert completed.step(3, combo) == (0, 0)

    def test_original_behaviour_preserved(self):
        table = three_state_machine()
        completed = complete_to_power_of_two(table)
        for state in range(3):
            for combo in range(2):
                assert completed.step(state, combo) == table.step(state, combo)

    def test_power_of_two_machines_returned_unchanged(self, lion):
        assert complete_to_power_of_two(lion) is lion

    def test_custom_sink(self):
        completed = complete_to_power_of_two(
            three_state_machine(), unused_next_state=2, unused_output=1
        )
        assert completed.step(3, 0) == (2, 1)

    def test_bad_sink_rejected(self):
        with pytest.raises(EncodingError):
            complete_to_power_of_two(three_state_machine(), unused_next_state=9)

    def test_completed_machine_fill_states_are_equivalent(self):
        """Multiple fill states must be pairwise equivalent (no UIOs)."""
        builder = StateTableBuilder(n_inputs=1, n_outputs=1)
        builder.add("a", 0, "a", 0)
        builder.add("a", 1, "b", 1)
        builder.add("b", 0, "a", 1)
        builder.add("b", 1, "b", 0)
        five = complete_to_power_of_two(
            StateTableBuilder.build(builder)
        )
        assert five.n_states == 2  # already a power of two: unchanged

#!/usr/bin/env python
"""Validate ``repro-fsatpg analyze --format json`` payloads.

Usage:  python scripts/validate_sca.py FILE [FILE ...]

Each file must be a ``repro-fsatpg-sca/1`` document.  Beyond schema shape,
the script enforces the *proof discipline* the subsystem promises:

* every reported constant net is backed by a derivation step concluding
  exactly that (no unproved constants — the CI analyze-smoke job fails
  otherwise);
* every certificate names a known reason and is internally consistent;
* the collapse block is arithmetically coherent (representatives <= faults,
  ratio = faults / representatives);
* untestable fault counts never exceed the universe.

Problems are reported one per line; any problem makes the exit code 1.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

SCHEMA = "repro-fsatpg-sca/1"
REASONS = {"unactivatable", "masked-pin", "unobservable"}
REQUIRED = (
    "schema",
    "netlist",
    "regions",
    "collapse",
    "constants",
    "constant_steps",
    "unobservable",
    "certificates",
    "untestable",
)


def check_payload(payload: dict) -> list[str]:
    problems: list[str] = []
    for key in REQUIRED:
        if key not in payload:
            problems.append(f"missing top-level key {key!r}")
    if problems:
        return problems
    if payload["schema"] != SCHEMA:
        problems.append(
            f"schema is {payload['schema']!r}, expected {SCHEMA!r}"
        )

    netlist = payload["netlist"]
    n_gates = netlist.get("gates", 0)
    if not isinstance(n_gates, int) or n_gates <= 0:
        problems.append(f"netlist.gates = {n_gates!r} is not a positive int")

    collapse = payload["collapse"]
    faults = collapse.get("faults", 0)
    representatives = collapse.get("representatives", 0)
    ratio = collapse.get("ratio", 0.0)
    if representatives > faults:
        problems.append(
            f"collapse has more representatives ({representatives}) than "
            f"faults ({faults})"
        )
    if representatives:
        expected = faults / representatives
        if abs(ratio - expected) > 0.001:
            problems.append(
                f"collapse ratio {ratio} does not match "
                f"faults/representatives = {expected:.4f}"
            )

    # The core guarantee: no constant net without a machine-checkable proof.
    proved = {
        step.get("line"): step.get("value")
        for step in payload["constant_steps"]
    }
    for entry in payload["constants"]:
        line, value = entry.get("line"), entry.get("value")
        if value not in (0, 1):
            problems.append(f"constant net {line} has non-bit value {value!r}")
        if proved.get(line) != value:
            problems.append(
                f"constant net {line}={value} has no derivation step proving "
                "it (unproved constant)"
            )
        if not isinstance(line, int) or not 0 <= line < n_gates:
            problems.append(f"constant net {line!r} is out of range")

    for entry in payload["unobservable"]:
        line = entry.get("line")
        if not isinstance(line, int) or not 0 <= line < n_gates:
            problems.append(f"unobservable net {line!r} is out of range")
        for block in entry.get("blocks", ()):
            if (
                not isinstance(block, list)
                or len(block) != 2
                or not all(isinstance(part, int) for part in block)
            ):
                problems.append(
                    f"unobservable net {line}: malformed block {block!r}"
                )

    for index, certificate in enumerate(payload["certificates"]):
        reason = certificate.get("reason")
        if reason not in REASONS:
            problems.append(
                f"certificate {index}: unknown reason {reason!r}"
            )
        fault = certificate.get("fault", {})
        gate = fault.get("gate")
        if not isinstance(gate, int) or not 0 <= gate < n_gates:
            problems.append(
                f"certificate {index}: fault gate {gate!r} is out of range"
            )
        if fault.get("value") not in (0, 1):
            problems.append(
                f"certificate {index}: stuck value {fault.get('value')!r} "
                "is not a bit"
            )
        if reason == "unactivatable" and certificate.get("line") is None:
            problems.append(
                f"certificate {index}: unactivatable proof names no line"
            )
        if reason == "masked-pin" and len(certificate.get("blocks", [])) != 1:
            problems.append(
                f"certificate {index}: masked-pin proof must name exactly "
                "one masking pin"
            )

    untestable = payload["untestable"]
    if untestable.get("representatives", 0) > representatives:
        problems.append("more untestable representatives than representatives")
    if untestable.get("faults", 0) > faults:
        problems.append("more untestable faults than faults")
    if untestable.get("representatives", 0) != len(payload["certificates"]):
        problems.append(
            f"untestable.representatives = {untestable.get('representatives')}"
            f" but {len(payload['certificates'])} certificate(s) present"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    arguments = argv if argv is not None else sys.argv[1:]
    if not arguments:
        print(__doc__, file=sys.stderr)
        return 2
    status = 0
    for argument in arguments:
        path = Path(argument)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path}: unreadable: {exc}", file=sys.stderr)
            status = 1
            continue
        problems = check_payload(payload)
        if problems:
            status = 1
            for problem in problems:
                print(f"{path}: {problem}", file=sys.stderr)
        else:
            circuit = payload.get("circuit", "?")
            print(
                f"{path}: OK ({circuit}: {payload['collapse']['faults']} "
                f"faults, ratio {payload['collapse']['ratio']}, "
                f"{len(payload['certificates'])} certificate(s))"
            )
    return status


if __name__ == "__main__":
    sys.exit(main())

"""Benchmark machines that are embedded exactly.

``lion``
    The paper's Table 1 prints the complete state table, so the machine is
    reproduced bit-for-bit.  The worked example of Section 2 (Tables 2 and 3
    and the tests τ0…τ8) is pinned against it in the test suite.

``shiftreg``
    The MCNC circuit is a 3-bit serial shift register: the state is the
    register contents, the single input is shifted into the least
    significant position, and the bit shifted out of the most significant
    position is the output.  This structural definition reconstructs the
    exact machine (8 states, 1 input, 1 output; every state has a UIO of
    length 3, matching the paper's Table 4 row).
"""

from __future__ import annotations

from repro.fsm.kiss import KissMachine, parse_kiss

__all__ = ["LION_KISS", "lion_machine", "shiftreg_machine", "EXACT_BUILDERS"]

#: KISS2 source of the paper's Table 1 (states named after the paper: 0..3).
LION_KISS = """\
.i 2
.o 1
.s 4
.p 16
.r st0
00 st0 st0 0
01 st0 st1 1
10 st0 st0 0
11 st0 st0 0
00 st1 st1 1
01 st1 st1 1
10 st1 st3 1
11 st1 st0 0
00 st2 st2 1
01 st2 st2 1
10 st2 st3 1
11 st2 st3 1
00 st3 st1 1
01 st3 st2 1
10 st3 st3 1
11 st3 st3 1
.e
"""


def lion_machine() -> KissMachine:
    """The exact ``lion`` benchmark from the paper's Table 1."""
    return parse_kiss(LION_KISS, name="lion")


def shiftreg_machine() -> KissMachine:
    """The 3-bit serial shift register (MCNC ``shiftreg``)."""
    from repro.fsm.kiss import KissRow

    rows = []
    for value in range(8):
        for bit in range(2):
            nxt = ((value << 1) | bit) & 0b111
            out = (value >> 2) & 1
            rows.append(KissRow(str(bit), f"s{value}", f"s{nxt}", str(out)))
    return KissMachine(1, 1, rows, "s0", "shiftreg")


EXACT_BUILDERS = {
    "lion": lion_machine,
    "shiftreg": shiftreg_machine,
}

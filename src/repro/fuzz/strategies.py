"""Hypothesis strategies over the fuzzer's machine generators.

The property-test suites and the differential fuzzer draw from the same
pool of machines: a Hypothesis strategy here is just ``st.builds`` over
:class:`repro.fuzz.generators.MachineSpec`, mapped through
:func:`repro.fuzz.generators.generate_machine`.  Because the spec is a
handful of integers, Hypothesis shrinks failures toward small variants,
states, widths, and seeds — and any failing example can be reproduced
outside Hypothesis by constructing the same spec by hand.

This module imports :mod:`hypothesis` and is therefore only importable in
test environments; it is deliberately *not* re-exported from
``repro.fuzz`` (the runtime subsystem must not depend on a test library).
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.fuzz.generators import MACHINE_VARIANTS, MachineSpec, generate_machine

__all__ = ["machine_specs", "state_tables"]


def machine_specs(
    min_states: int = 1,
    max_states: int = 6,
    min_inputs: int = 0,
    max_inputs: int = 2,
    min_outputs: int = 0,
    max_outputs: int = 2,
    variants: tuple[str, ...] = MACHINE_VARIANTS,
) -> st.SearchStrategy[MachineSpec]:
    """Strategy over :class:`MachineSpec` values within the given bounds.

    Unlike the fuzz CLI's spec stream, widths may go down to zero — the
    paper's procedures are defined for output-less and input-less machines
    too, and the property tests cover those corners (only the KISS corpus
    format cannot express them).
    """
    return st.builds(
        MachineSpec,
        variant=st.sampled_from(list(variants)),
        n_states=st.integers(min_states, max_states),
        n_inputs=st.integers(min_inputs, max_inputs),
        n_outputs=st.integers(min_outputs, max_outputs),
        seed=st.integers(0, 2**32 - 1),
    )


def state_tables(
    min_states: int = 1,
    max_states: int = 6,
    min_inputs: int = 0,
    max_inputs: int = 2,
    min_outputs: int = 0,
    max_outputs: int = 2,
    variants: tuple[str, ...] = MACHINE_VARIANTS,
) -> st.SearchStrategy:
    """Strategy over generated :class:`repro.fsm.state_table.StateTable`."""
    return machine_specs(
        min_states, max_states, min_inputs, max_inputs, min_outputs, max_outputs,
        variants,
    ).map(generate_machine)

"""Registry of the 31 benchmark circuits of the paper's Table 4.

Each :class:`CircuitSpec` carries the dimensions printed in the paper —
number of primary inputs (``pi``), completed state count (``states``, always
``2**sv``), and number of state variables (``sv``) — plus the output width we
assign to the synthetic stand-ins (the paper does not print output counts;
see DESIGN.md §3).

``lion`` and ``shiftreg`` load the exact machines from
:mod:`repro.benchmarks.exact`; every other circuit loads a deterministic
synthetic machine of identical dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import BenchmarkError
from repro.benchmarks.exact import EXACT_BUILDERS
from repro.benchmarks.synthetic import synthetic_machine
from repro.fsm.kiss import KissMachine
from repro.fsm.state_table import StateTable

__all__ = [
    "CircuitSpec",
    "circuit_names",
    "get_spec",
    "list_specs",
    "load_circuit",
    "load_kiss_machine",
    "TIERS",
]

#: Size tiers used to gate benchmark runtime (see DESIGN.md §6).
TIERS = ("small", "medium", "large")


@dataclass(frozen=True)
class CircuitSpec:
    """Static description of one benchmark circuit."""

    name: str
    n_inputs: int  #: the paper's ``pi`` column
    n_states: int  #: the paper's ``states`` column (completed, = 2**sv)
    n_state_variables: int  #: the paper's ``sv`` column
    n_outputs: int  #: output width assigned to the machine
    n_core_states: int  #: behaviourally rich states before completion
    exact: bool  #: True when the machine is embedded exactly
    tier: str  #: "small" | "medium" | "large"

    @property
    def n_transitions(self) -> int:
        """``N_ST * N_PIC`` — the paper's Table 5 ``trans`` column."""
        return self.n_states * (1 << self.n_inputs)

    @property
    def n_fill_states(self) -> int:
        """Unused scan codes completed into identical reset-bound states."""
        return self.n_states - self.n_core_states


def _spec(
    name: str,
    pi: int,
    states: int,
    sv: int,
    po: int,
    core: int,
    exact: bool = False,
) -> CircuitSpec:
    transitions = states * (1 << pi)
    if transitions <= 128:
        tier = "small"
    elif transitions <= 4096:
        tier = "medium"
    else:
        tier = "large"
    return CircuitSpec(name, pi, states, sv, po, core, exact, tier)


# Dimensions (pi, states, sv) are the paper's Table 4.  Output widths and
# core state counts are our assignment for the synthetic stand-ins — core
# counts follow the published MCNC machine sizes where known and otherwise
# sit a little above the paper's "unique" column (a state with a UIO is
# necessarily a core state).  See DESIGN.md §3.
_SPECS: dict[str, CircuitSpec] = {
    spec.name: spec
    for spec in (
        _spec("bbara", 4, 16, 4, 2, core=10),
        _spec("bbsse", 7, 16, 4, 7, core=16),
        _spec("bbtas", 2, 8, 3, 2, core=6),
        _spec("beecount", 3, 8, 3, 4, core=7),
        _spec("cse", 7, 16, 4, 7, core=16),
        _spec("dk14", 3, 8, 3, 5, core=7),
        _spec("dk15", 3, 4, 2, 5, core=4),
        _spec("dk16", 2, 32, 5, 3, core=27),
        _spec("dk17", 2, 8, 3, 3, core=8),
        _spec("dk27", 1, 8, 3, 2, core=7),
        _spec("dk512", 1, 16, 4, 3, core=15),
        _spec("dvram", 8, 64, 6, 8, core=50),
        _spec("ex2", 2, 32, 5, 2, core=19),
        _spec("ex3", 2, 16, 4, 2, core=10),
        _spec("ex4", 5, 16, 4, 9, core=14),
        _spec("ex5", 2, 8, 3, 2, core=8),
        _spec("ex6", 5, 8, 3, 8, core=8),
        _spec("ex7", 2, 16, 4, 2, core=10),
        _spec("fetch", 9, 32, 5, 8, core=26),
        _spec("keyb", 7, 32, 5, 2, core=22),
        _spec("lion", 2, 4, 2, 1, core=4, exact=True),
        _spec("lion9", 2, 8, 3, 1, core=7),
        _spec("log", 9, 32, 5, 4, core=17),
        _spec("mark1", 4, 16, 4, 16, core=15),
        _spec("mc", 3, 4, 2, 5, core=4),
        _spec("nucpwr", 13, 32, 5, 8, core=29),
        _spec("opus", 5, 16, 4, 6, core=10),
        _spec("rie", 9, 32, 5, 6, core=29),
        _spec("shiftreg", 1, 8, 3, 1, core=8, exact=True),
        _spec("tav", 4, 4, 2, 4, core=4),
        _spec("train11", 2, 16, 4, 1, core=11),
    )
}


def circuit_names(tier: str | None = None) -> tuple[str, ...]:
    """All benchmark names, optionally restricted to one size tier."""
    if tier is not None and tier not in TIERS:
        raise BenchmarkError(f"unknown tier {tier!r}; expected one of {TIERS}")
    return tuple(
        name for name, spec in _SPECS.items() if tier is None or spec.tier == tier
    )


def get_spec(name: str) -> CircuitSpec:
    """Spec of one benchmark circuit."""
    try:
        return _SPECS[name]
    except KeyError:
        raise BenchmarkError(
            f"unknown circuit {name!r}; known: {', '.join(sorted(_SPECS))}"
        ) from None


def list_specs(tier: str | None = None) -> tuple[CircuitSpec, ...]:
    """Specs of all circuits, optionally restricted to one tier."""
    return tuple(get_spec(name) for name in circuit_names(tier))


def _cubes_per_state(spec: CircuitSpec) -> int:
    """Cube budget per state for the synthetic generator.

    Grows slowly with the input width so machines with many inputs keep a
    realistic (small) two-level implementation instead of one product term
    per minterm.
    """
    return min(1 << spec.n_inputs, max(2, spec.n_inputs + 2))


@lru_cache(maxsize=None)
def load_kiss_machine(name: str) -> KissMachine:
    """Cube-level machine for ``name`` (exact or synthetic stand-in)."""
    spec = get_spec(name)
    if spec.exact:
        return EXACT_BUILDERS[name]()
    return synthetic_machine(
        name,
        spec.n_inputs,
        spec.n_states,
        spec.n_core_states,
        spec.n_outputs,
        cubes_per_state=_cubes_per_state(spec),
    )


@lru_cache(maxsize=None)
def load_circuit(name: str) -> StateTable:
    """Dense state table for ``name``; dimensions match the paper's Table 4."""
    table = load_kiss_machine(name).to_state_table()
    spec = get_spec(name)
    if table.n_states != spec.n_states:
        raise BenchmarkError(
            f"{name}: built {table.n_states} states, spec says {spec.n_states}"
        )
    if table.n_state_variables != spec.n_state_variables:
        raise BenchmarkError(
            f"{name}: {table.n_state_variables} state variables, "
            f"spec says {spec.n_state_variables}"
        )
    return table

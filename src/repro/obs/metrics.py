"""Process-local metrics registry: counters, gauges, fixed-bucket histograms.

Instrumentation sites call the module-level helpers — :func:`counter_add`,
:func:`gauge_set`, :func:`histogram_observe` — which are no-ops (one global
load and a ``None`` check) until a :class:`MetricsRegistry` is installed
with :func:`set_registry`, usually via :func:`repro.obs.observing`.  Hot
loops never call the helpers per iteration: algorithms accumulate plain
local integers (they mostly already do, e.g. the UIO search's ``expanded``
counter) and report once per call, so the disabled-mode overhead stays
unmeasurable.

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain JSON-ready dicts and
merge additively (:meth:`MetricsRegistry.merge_snapshot`), which is how the
parallel sweep engine folds worker-process metrics into the parent's
registry.  Snapshot key order is sorted, so serialized metrics are
byte-stable for a deterministic workload.
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = [
    "DEFAULT_BUCKETS",
    "SECONDS_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "current_registry",
    "set_registry",
    "metrics_active",
    "counter_add",
    "gauge_set",
    "histogram_observe",
]

#: Default histogram bucket upper bounds: roughly logarithmic, wide enough
#: for node counts, frontier sizes, and per-batch detection counts alike.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 10000, 100000,
)

#: Bucket bounds for durations in seconds (task latencies, span times):
#: 1ms .. 1min, roughly logarithmic.  The count-scale DEFAULT_BUCKETS puts
#: every sub-second latency in its bottom bucket, which hides exactly the
#: distribution the pool telemetry exists to show.
SECONDS_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    30.0, 60.0,
)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def add(self, n: float = 1) -> None:
        self.value += n

    def snapshot(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value (e.g. a universe size, a cache entry count)."""

    __slots__ = ("name", "value", "updates")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = value
        self.updates += 1

    def snapshot(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value, "updates": self.updates}


class Histogram:
    """Fixed-bucket histogram: counts of observations ``<= bound`` per bucket.

    ``counts`` has one slot per bound plus a final overflow slot.  Bounds
    are fixed at creation; merging requires identical bounds.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "peak")

    def __init__(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be a sorted, non-empty tuple")
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total: float = 0
        self.peak: float = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.peak:
            self.peak = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "peak": self.peak,
        }


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """Name-keyed metric store with typed accessors and additive merging."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def _get(self, name: str, kind: type, factory: Any) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(name, bounds))

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._metrics))

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str) -> Metric:
        return self._metrics[name]

    def __len__(self) -> int:
        return len(self._metrics)

    # ------------------------------------------------------------- snapshot

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready, sorted-key view of every metric."""
        return {
            name: self._metrics[name].snapshot() for name in self.names()
        }

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker) into this registry.

        Counters and histograms add; gauges keep the incoming value when
        the incoming side ever wrote one (workers win ties, matching the
        "last writer" gauge semantics).
        """
        for name in sorted(snapshot):
            data = snapshot[name]
            kind = data.get("type")
            if kind == "counter":
                self.counter(name).add(data["value"])
            elif kind == "gauge":
                if data.get("updates", 0):
                    gauge = self.gauge(name)
                    gauge.value = data["value"]
                    gauge.updates += int(data["updates"])
            elif kind == "histogram":
                histogram = self.histogram(name, tuple(data["bounds"]))
                if list(histogram.bounds) != list(data["bounds"]):
                    raise ValueError(
                        f"histogram {name!r} bucket bounds differ across merges"
                    )
                for index, count in enumerate(data["counts"]):
                    histogram.counts[index] += count
                histogram.count += data["count"]
                histogram.total += data["total"]
                histogram.peak = max(histogram.peak, data.get("peak", 0))
            else:
                raise ValueError(f"unknown metric type {kind!r} for {name!r}")

    # ------------------------------------------------------------ rendering

    def render(self) -> str:
        """Fixed-width human-readable table of every metric."""
        lines: list[str] = []
        counters = [m for m in self.names()
                    if isinstance(self._metrics[m], Counter)]
        gauges = [m for m in self.names() if isinstance(self._metrics[m], Gauge)]
        histograms = [m for m in self.names()
                      if isinstance(self._metrics[m], Histogram)]
        if counters:
            lines.append("counters")
            for name in counters:
                value = self._metrics[name].snapshot()["value"]
                lines.append(f"  {name:<40} {value:>14,g}")
        if gauges:
            lines.append("gauges")
            for name in gauges:
                value = self._metrics[name].snapshot()["value"]
                lines.append(f"  {name:<40} {value:>14,g}")
        if histograms:
            lines.append("histograms")
            for name in histograms:
                metric = self._metrics[name]
                assert isinstance(metric, Histogram)
                lines.append(
                    f"  {name:<40} n={metric.count:<8d} "
                    f"mean={metric.mean:<10.2f} peak={metric.peak:g}"
                )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<MetricsRegistry {len(self._metrics)} metrics>"


# ----------------------------------------------------------- active registry

_REGISTRY: MetricsRegistry | None = None


def current_registry() -> MetricsRegistry | None:
    """The process-wide registry, or ``None`` when metrics are disabled."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry | None:
    """Install (or remove, with ``None``) the process-wide registry."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


def metrics_active() -> bool:
    return _REGISTRY is not None


def counter_add(name: str, n: float = 1) -> None:
    """Add to a counter; no-op when metrics are disabled."""
    registry = _REGISTRY
    if registry is not None:
        registry.counter(name).add(n)


def gauge_set(name: str, value: float) -> None:
    """Set a gauge; no-op when metrics are disabled."""
    registry = _REGISTRY
    if registry is not None:
        registry.gauge(name).set(value)


def histogram_observe(
    name: str, value: float, bounds: tuple[float, ...] = DEFAULT_BUCKETS
) -> None:
    """Observe into a histogram; no-op when metrics are disabled."""
    registry = _REGISTRY
    if registry is not None:
        registry.histogram(name, bounds).observe(value)

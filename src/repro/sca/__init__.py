"""Static circuit analysis (``repro.sca``).

Structural passes over :class:`repro.gatelevel.netlist.Netlist` that never
simulate a pattern: levelization, fanout-free regions, immediate
dominators, SCOAP testability measures, constant propagation with
machine-checkable derivations, stuck-at fault collapsing, and
untestable-fault certificates.  :func:`analyze` bundles everything into a
lazily computed :class:`ScaAnalysis`.
"""

from repro.sca.analysis import SCA_SCHEMA, ScaAnalysis, analyze
from repro.sca.certificates import (
    UntestableCertificate,
    prove_untestable,
    verify_certificate,
)
from repro.sca.collapse import CollapsedUniverse, collapse_universe
from repro.sca.graph import (
    FanoutFreeRegions,
    fanout_free_regions,
    immediate_dominators,
    levelize,
)
from repro.sca.implications import (
    ConstantAnalysis,
    DerivationStep,
    controlling_value,
    propagate_constants,
    site_observability,
    verify_constant_steps,
    verify_observability_blocks,
)
from repro.sca.scoap import INFINITY, ScoapMeasures, compute_scoap

__all__ = [
    "INFINITY",
    "SCA_SCHEMA",
    "CollapsedUniverse",
    "ConstantAnalysis",
    "DerivationStep",
    "FanoutFreeRegions",
    "ScaAnalysis",
    "ScoapMeasures",
    "UntestableCertificate",
    "analyze",
    "collapse_universe",
    "compute_scoap",
    "controlling_value",
    "fanout_free_regions",
    "immediate_dominators",
    "levelize",
    "propagate_constants",
    "prove_untestable",
    "site_observability",
    "verify_certificate",
    "verify_constant_steps",
    "verify_observability_blocks",
]

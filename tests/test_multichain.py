"""Tests of the multi-chain extension of the clock-cycle model."""

from __future__ import annotations

import pytest

from repro.core.baseline import per_transition_tests
from repro.errors import GenerationError


class TestMultiChainCycles:
    def test_single_chain_is_the_paper_model(self, lion_result):
        assert lion_result.test_set.clock_cycles(n_chains=1) == 48

    def test_chains_shrink_scan_contribution(self, lion_result):
        # lion: sv=2, two chains -> one shift per scan operation.
        two_chain = lion_result.test_set.clock_cycles(n_chains=2)
        assert two_chain == 1 * (9 + 1) + 28

    def test_more_chains_than_bits_saturate(self, lion_result):
        assert lion_result.test_set.clock_cycles(
            n_chains=2
        ) == lion_result.test_set.clock_cycles(n_chains=99)

    def test_ceil_division(self):
        from repro.benchmarks import load_circuit
        from repro.core.generator import generate_tests

        table = load_circuit("bbtas")  # sv = 3
        tests = generate_tests(table).test_set
        # 2 chains -> ceil(3/2) = 2 shifts per scan.
        expected = 2 * (tests.n_tests + 1) + tests.total_length
        assert tests.clock_cycles(n_chains=2) == expected

    def test_monotone_in_chain_count(self, lion_result):
        cycles = [
            lion_result.test_set.clock_cycles(n_chains=n) for n in (1, 2, 3, 4)
        ]
        assert cycles == sorted(cycles, reverse=True)

    def test_combined_with_scan_ratio(self, lion_result):
        # ratio applies to the per-chain shift depth.
        assert lion_result.test_set.clock_cycles(scan_ratio=3, n_chains=2) == (
            3 * 1 * 10 + 28
        )

    def test_percentage_uses_same_chain_count(self, lion):
        baseline = per_transition_tests(lion)
        assert baseline.cycles_pct_of_baseline(n_chains=2) == pytest.approx(100.0)

    def test_chaining_pays_off_more_with_fewer_chains(self, lion_result):
        """More chains cheapen scans, shrinking the functional tests'
        relative advantage over the per-transition baseline."""
        one = lion_result.test_set.cycles_pct_of_baseline(n_chains=1)
        many = lion_result.test_set.cycles_pct_of_baseline(n_chains=2)
        assert many >= one

    def test_bad_chain_count_rejected(self, lion_result):
        with pytest.raises(GenerationError):
            lion_result.test_set.clock_cycles(n_chains=0)

"""Unit tests for stuck-at fault enumeration and collapsing."""

from __future__ import annotations

import pytest

from repro.errors import FaultSimulationError
from repro.gatelevel.netlist import GateType, Netlist
from repro.gatelevel.stuck_at import (
    StuckAtFault,
    collapse_stuck_at,
    enumerate_stuck_at,
)


def small_netlist():
    """y = (a AND b) OR NOT c, with a fanning out twice."""
    netlist = Netlist()
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    c = netlist.add_input("c")
    t = netlist.add_gate(GateType.AND, (a, b))
    nc = netlist.add_gate(GateType.NOT, (c,))
    y = netlist.add_gate(GateType.OR, (t, nc))
    extra = netlist.add_gate(GateType.AND, (a, nc))
    netlist.set_outputs([y, extra])
    return netlist


class TestEnumerate:
    def test_counts(self):
        netlist = small_netlist()
        faults = enumerate_stuck_at(netlist)
        # outputs: 7 gates * 2; pins: three 2-input gates * 2 pins * 2
        assert len(faults) == 7 * 2 + 3 * 2 * 2

    def test_without_pins(self):
        faults = enumerate_stuck_at(small_netlist(), include_pins=False)
        assert all(fault.pin is None for fault in faults)

    def test_constants_excluded(self):
        netlist = Netlist()
        a = netlist.add_input()
        c1 = netlist.add_gate(GateType.CONST1, ())
        y = netlist.add_gate(GateType.AND, (a, c1))
        netlist.set_outputs([y])
        faults = enumerate_stuck_at(netlist)
        assert all(fault.gate != c1 for fault in faults if fault.pin is None)

    def test_bad_value_rejected(self):
        with pytest.raises(FaultSimulationError):
            StuckAtFault(0, None, 2)

    def test_site_labels(self):
        assert StuckAtFault(3, None, 1).site() == "g3.out/sa1"
        assert StuckAtFault(3, 0, 0).site() == "g3.pin0/sa0"

    def test_ordering(self):
        assert StuckAtFault(1, None, 0) < StuckAtFault(1, 0, 0)
        assert StuckAtFault(1, None, 1) < StuckAtFault(2, None, 0)


class TestCollapse:
    def test_controlling_pin_folds_into_output(self):
        netlist = small_netlist()
        mapping = collapse_stuck_at(netlist)
        # AND gate 3: pin s-a-0 is equivalent to output s-a-0
        assert mapping[StuckAtFault(3, 0, 0)] == mapping[StuckAtFault(3, None, 0)]
        assert mapping[StuckAtFault(3, 1, 0)] == mapping[StuckAtFault(3, None, 0)]

    def test_or_controlling_value(self):
        netlist = small_netlist()
        mapping = collapse_stuck_at(netlist)
        assert mapping[StuckAtFault(5, 0, 1)] == mapping[StuckAtFault(5, None, 1)]

    def test_non_controlling_pin_not_folded(self):
        netlist = small_netlist()
        mapping = collapse_stuck_at(netlist)
        assert mapping[StuckAtFault(3, 0, 1)] != mapping[StuckAtFault(3, None, 1)]

    def test_fanout_branch_faults_kept_separate(self):
        """Input ``a`` fans out to two gates; its branch faults must stay
        distinct from the stem fault."""
        netlist = small_netlist()
        mapping = collapse_stuck_at(netlist)
        stem = mapping[StuckAtFault(0, None, 1)]
        branch1 = mapping[StuckAtFault(3, 0, 1)]
        branch2 = mapping[StuckAtFault(6, 0, 1)]
        assert stem != branch1 and stem != branch2

    def test_single_fanout_pin_folds_into_stem(self):
        """Input ``b`` feeds only the AND gate: pin fault == stem fault."""
        netlist = small_netlist()
        mapping = collapse_stuck_at(netlist)
        assert mapping[StuckAtFault(3, 1, 1)] == mapping[StuckAtFault(1, None, 1)]

    def test_collapse_reduces_count(self):
        netlist = small_netlist()
        mapping = collapse_stuck_at(netlist)
        assert len(set(mapping.values())) < len(mapping)

    def test_mapping_covers_all_inputs(self):
        netlist = small_netlist()
        faults = enumerate_stuck_at(netlist)
        mapping = collapse_stuck_at(netlist, faults)
        assert set(mapping) == set(faults)

    def test_representatives_are_fixed_points(self):
        mapping = collapse_stuck_at(small_netlist())
        for representative in set(mapping.values()):
            assert mapping[representative] == representative

    def test_collapse_is_detection_equivalent(self, lion):
        """Collapsed classes really are detection-equivalent: any test set
        detects either all or none of each class (checked exhaustively)."""
        from repro.core.baseline import per_transition_tests
        from repro.gatelevel.fault_sim import detects
        from repro.gatelevel.scan import ScanCircuit

        circuit = ScanCircuit.from_machine(lion)
        mapping = collapse_stuck_at(circuit.netlist)
        tests = per_transition_tests(lion)
        for test in tests:
            found = detects(circuit, lion, test, list(mapping))
            for fault, representative in mapping.items():
                assert (fault in found) == (representative in found), (
                    test,
                    fault,
                    representative,
                )

"""Gate-level stuck-at ATPG for full-scan circuits (the paper's comparison).

Section 3 of the paper remarks:

    "A gate-level stuck-at test generation procedure applied to the
    full-scan circuits may yield numbers of tests and numbers of clock
    cycles that are better than the ones of Tables 6 and 7.  However, it
    is not guaranteed to detect all the bridging faults."

This module provides that gate-level procedure so the remark can be
measured.  Under full scan, a stuck-at test is one combinational pattern
(state code + primary inputs) applied as a length-1 scan test.  The
generator computes, for every target fault, the exact set of patterns
detecting it (the same machinery as the exhaustive detectability oracle,
kept per-pattern instead of collapsed to a yes/no), then greedily covers
all detectable faults with as few patterns as possible — an idealized ATPG
with perfect fault-detection knowledge, i.e. an upper bound on what any
deterministic stuck-at ATPG could achieve in test-count terms.

The resulting tests are ordinary :class:`~repro.core.testset.ScanTest`
objects, so every grader in the library (bridging, delay, functional) can
evaluate them directly against the paper's functional tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.testset import ScanTest, Segment, SegmentKind, TestSet
from repro.errors import FaultSimulationError
from repro.fsm.state_table import StateTable
from repro.gatelevel.bridging import BridgingFault
from repro.gatelevel.detectability import (
    _activation,
    _seeds,
    assigned_pattern_mask,
    fault_free_values,
)
from repro.gatelevel.netlist import GateType, Netlist, _evaluate_gate, unpack_bits
from repro.gatelevel.scan import ScanCircuit
from repro.gatelevel.stuck_at import StuckAtFault

__all__ = ["AtpgResult", "detection_words", "generate_stuck_at_atpg"]

Fault = StuckAtFault | BridgingFault


def _faulty_output_diff_words(
    netlist: Netlist,
    ff: np.ndarray,
    fault: Fault,
    dirty: list[int],
) -> np.ndarray:
    """Per-pattern word mask of output differences under ``fault``.

    Full-width variant of the detectability chunk evaluation: instead of
    an early-exit boolean it returns, for every pattern, whether any
    observed output differs.
    """
    lo, hi = 0, ff.shape[1]
    local: dict[int, np.ndarray] = {}
    bridge_lines: dict[int, np.ndarray] = {}
    if isinstance(fault, BridgingFault):
        first = ff[fault.line1]
        second = ff[fault.line2]
        from repro.gatelevel.bridging import BridgeKind

        bridged = first & second if fault.kind is BridgeKind.AND else first | second
        bridge_lines[fault.line1] = bridged
        bridge_lines[fault.line2] = bridged

    def read(line: int, reader: int, pin: int) -> np.ndarray:
        if line in bridge_lines:
            return bridge_lines[line]
        value = local.get(line)
        if value is None:
            value = ff[line]
        if (
            isinstance(fault, StuckAtFault)
            and fault.pin is not None
            and reader == fault.gate
            and pin == fault.pin
        ):
            from repro.gatelevel.netlist import ALL_ONES

            return np.full_like(value, ALL_ONES if fault.value else 0)
        return value

    forced_gate = (
        fault.gate
        if isinstance(fault, StuckAtFault) and fault.pin is None
        else None
    )
    for index in dirty:
        gate = netlist.gate(index)
        if forced_gate == index:
            from repro.gatelevel.netlist import ALL_ONES

            local[index] = np.full(
                hi - lo, ALL_ONES if fault.value else 0, dtype=np.uint64
            )
            continue
        if gate.kind is GateType.INPUT:
            local[index] = ff[index]
            continue
        local[index] = _evaluate_gate(
            gate.kind,
            [read(line, index, pin) for pin, line in enumerate(gate.fanins)],
        )
    difference = np.zeros(hi - lo, dtype=np.uint64)
    for line in netlist.outputs:
        if line in bridge_lines:
            effective = bridge_lines[line]
        else:
            effective = local.get(line)
            if effective is None:
                continue
        difference |= effective ^ ff[line]
    return difference


def detection_words(
    netlist: Netlist,
    faults: list[Fault],
    ff: np.ndarray | None = None,
    pattern_mask: np.ndarray | None = None,
) -> dict[Fault, np.ndarray]:
    """For each fault, the word mask of patterns detecting it."""
    if ff is None:
        ff = fault_free_values(netlist)
    result: dict[Fault, np.ndarray] = {}
    closure_cache: dict[tuple[int, ...], list[int]] = {}
    for fault in faults:
        seeds = _seeds(netlist, fault)
        dirty = closure_cache.get(seeds)
        if dirty is None:
            dirty = netlist.fanout_closure(seeds)
            closure_cache[seeds] = dirty
        activation = _activation(ff, fault, netlist, 0, ff.shape[1])
        if pattern_mask is not None:
            activation = activation & pattern_mask
        if not np.any(activation):
            result[fault] = np.zeros(ff.shape[1], dtype=np.uint64)
            continue
        words = _faulty_output_diff_words(netlist, ff, fault, dirty)
        if pattern_mask is not None:
            words = words & pattern_mask
        result[fault] = words
    return result


@dataclass
class AtpgResult:
    """Outcome of the idealized gate-level stuck-at ATPG."""

    test_set: TestSet
    target_faults: tuple[Fault, ...]
    undetectable: tuple[Fault, ...]

    @property
    def n_tests(self) -> int:
        return self.test_set.n_tests

    @property
    def coverage_pct(self) -> float:
        total = len(self.target_faults) + len(self.undetectable)
        if total == 0:
            return 100.0
        return 100.0 * len(self.target_faults) / total


def generate_stuck_at_atpg(
    circuit: ScanCircuit,
    table: StateTable,
    faults: list[StuckAtFault],
) -> AtpgResult:
    """Greedy minimum-pattern cover of all detectable stuck-at faults.

    Patterns are restricted to state codes that exist in ``table``; ties
    break towards numerically smaller patterns, keeping the result
    deterministic.
    """
    netlist = circuit.netlist
    sv = circuit.n_state_variables
    pi = circuit.n_primary_inputs
    if netlist.n_inputs != sv + pi:
        raise FaultSimulationError("circuit interface mismatch")
    n_patterns = 1 << (sv + pi)
    mask = assigned_pattern_mask(circuit.encoding, pi)
    words = detection_words(netlist, list(faults), pattern_mask=mask)
    detectable = [fault for fault in faults if np.any(words[fault])]
    undetectable = tuple(fault for fault in faults if not np.any(words[fault]))
    remaining = {fault: words[fault] for fault in detectable}
    chosen: list[int] = []
    while remaining:
        # Count, for every pattern, how many remaining faults it detects.
        counts = np.zeros(n_patterns, dtype=np.int32)
        for fault_words in remaining.values():
            counts += unpack_bits(fault_words, n_patterns)
        pattern = int(np.argmax(counts))
        if counts[pattern] == 0:  # pragma: no cover - detectable by def.
            raise FaultSimulationError("greedy cover stalled")
        chosen.append(pattern)
        word_index = pattern // 64
        bit = np.uint64(1) << np.uint64(pattern % 64)
        remaining = {
            fault: fault_words
            for fault, fault_words in remaining.items()
            if not (fault_words[word_index] & bit)
        }
    pi_mask = (1 << pi) - 1
    tests = []
    for pattern in sorted(chosen):
        state = circuit.encoding.decode(pattern >> pi)
        combo = pattern & pi_mask
        next_state = int(table.next_state[state, combo])
        tests.append(
            ScanTest(
                state,
                (combo,),
                next_state,
                (Segment(SegmentKind.TRANSITION, state, (combo,)),),
                ((state, combo),),
            )
        )
    test_set = TestSet(
        table.name, table.n_state_variables, table.n_transitions, tests
    )
    return AtpgResult(test_set, tuple(detectable), undetectable)

"""Unit tests for the gate-level stuck-at ATPG and the paper's remark."""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchmarks import load_circuit, load_kiss_machine
from repro.core.generator import generate_tests
from repro.gatelevel.atpg import detection_words, generate_stuck_at_atpg
from repro.gatelevel.bridging import enumerate_bridging_faults
from repro.gatelevel.detectability import detectable_faults
from repro.gatelevel.fault_sim import simulate_tests
from repro.gatelevel.scan import ScanCircuit
from repro.gatelevel.stuck_at import collapse_stuck_at
from repro.gatelevel.synthesis import SynthesisOptions


@pytest.fixture(scope="module", params=["lion", "bbtas", "dk512"])
def setup(request):
    name = request.param
    table = load_circuit(name)
    circuit = ScanCircuit.from_machine(
        load_kiss_machine(name), SynthesisOptions(max_fanin=4)
    )
    faults = sorted(set(collapse_stuck_at(circuit.netlist).values()))
    return name, table, circuit, faults


class TestDetectionWords:
    def test_agrees_with_detectability_oracle(self, setup):
        _, table, circuit, faults = setup
        words = detection_words(circuit.netlist, faults)
        detectable, undetectable = detectable_faults(circuit.netlist, faults)
        for fault in faults:
            has_pattern = bool(np.any(words[fault]))
            assert has_pattern == (fault in detectable)

    def test_marked_patterns_really_detect(self, setup):
        """Spot-check: a pattern flagged for a fault detects it as a
        length-1 scan test in the sequential simulator."""
        from repro.core.testset import ScanTest
        from repro.gatelevel.fault_sim import detects
        from repro.gatelevel.netlist import unpack_bits

        _, table, circuit, faults = setup
        pi = circuit.n_primary_inputs
        words = detection_words(circuit.netlist, faults)
        checked = 0
        for fault in faults:
            bits = unpack_bits(words[fault], 1 << (circuit.n_state_variables + pi))
            hits = np.flatnonzero(bits)
            if not hits.size:
                continue
            pattern = int(hits[0])
            state, combo = pattern >> pi, pattern & ((1 << pi) - 1)
            if state >= table.n_states:
                continue
            test = ScanTest(state, (combo,), int(table.next_state[state, combo]))
            assert fault in detects(circuit, table, test, [fault])
            checked += 1
            if checked >= 10:
                break
        assert checked > 0


class TestAtpg:
    def test_full_stuck_at_coverage(self, setup):
        _, table, circuit, faults = setup
        result = generate_stuck_at_atpg(circuit, table, faults)
        sim = simulate_tests(
            circuit, table, result.test_set, list(result.target_faults)
        )
        assert sim.detected == frozenset(result.target_faults)

    def test_test_count_bounds(self, setup):
        _, table, circuit, faults = setup
        result = generate_stuck_at_atpg(circuit, table, faults)
        # Greedy cover: every chosen pattern detects >= 1 new fault, and
        # there are only N_ST * N_PIC usable patterns.
        assert 0 < result.n_tests <= len(result.target_faults)
        assert result.n_tests <= table.n_transitions
        assert all(test.length == 1 for test in result.test_set)

    def test_deterministic(self, setup):
        _, table, circuit, faults = setup
        first = generate_stuck_at_atpg(circuit, table, faults)
        second = generate_stuck_at_atpg(circuit, table, faults)
        assert [t.inputs for t in first.test_set] == [
            t.inputs for t in second.test_set
        ]

    def test_atpg_vs_functional_test_counts(self, setup):
        """The paper says a gate-level ATPG "may" use fewer tests/cycles
        than the functional set — a possibility, not a guarantee.  Measured
        here: the ATPG always uses fewer *tests* (it targets faults, not
        transitions), but on input-poor machines like dk512 (2 input
        columns) its all-length-1 tests pay a scan per pattern and can cost
        *more* cycles than the chained functional tests — the functional
        approach's scan-sharing advantage, visible in our data."""
        name, table, circuit, faults = setup
        atpg = generate_stuck_at_atpg(circuit, table, faults)
        functional = generate_tests(table)
        assert atpg.n_tests <= functional.test_set.n_tests + table.n_transitions
        if name == "dk512":
            assert atpg.test_set.clock_cycles() > functional.clock_cycles()


class TestPaperRemarkOnBridging:
    def test_functional_tests_never_trail_atpg_on_bridging(self):
        """The second half of the remark: stuck-at ATPG tests are *not
        guaranteed* to detect all detectable bridging faults, while the
        functional tests provably do (integration suite).  Measured:
        functional bridging coverage >= ATPG bridging coverage on every
        small circuit, with a strict gap allowed either way per circuit."""
        for name in ("lion", "bbtas", "dk512", "beecount", "dk16"):
            table = load_circuit(name)
            circuit = ScanCircuit.from_machine(
                load_kiss_machine(name), SynthesisOptions(max_fanin=4)
            )
            stuck = sorted(set(collapse_stuck_at(circuit.netlist).values()))
            atpg = generate_stuck_at_atpg(circuit, table, stuck)
            bridging = enumerate_bridging_faults(circuit.netlist, limit=200, seed=name)
            if not bridging:
                continue
            bridge_detectable, _ = detectable_faults(circuit.netlist, bridging)
            atpg_hits = simulate_tests(
                circuit, table, atpg.test_set, sorted(bridge_detectable, key=repr)
            )
            functional = generate_tests(table).test_set
            functional_hits = simulate_tests(
                circuit, table, functional, sorted(bridge_detectable, key=repr)
            )
            assert functional_hits.detected == frozenset(bridge_detectable)
            assert len(atpg_hits.detected) <= len(functional_hits.detected)

"""Finite-state-machine substrate.

This subpackage provides the functional circuit description used throughout
the library: completely specified Mealy machines given as dense state tables
(:class:`~repro.fsm.state_table.StateTable`), the KISS2 benchmark exchange
format (:mod:`repro.fsm.kiss`), binary state encoding and table completion
(:mod:`repro.fsm.encoding`), programmatic and random construction helpers
(:mod:`repro.fsm.builders`), and structural analysis such as reachability and
state equivalence (:mod:`repro.fsm.analysis`).
"""

from repro.fsm.state_table import StateTable, Transition
from repro.fsm.kiss import KissMachine, KissRow, parse_kiss, write_kiss
from repro.fsm.encoding import (
    StateEncoding,
    complete_to_power_of_two,
    natural_encoding,
)
from repro.fsm.builders import StateTableBuilder, random_cube_machine
from repro.fsm.analysis import (
    reachable_states,
    is_strongly_connected,
    equivalent_state_pairs,
    machines_equivalent,
)

__all__ = [
    "StateTable",
    "Transition",
    "KissMachine",
    "KissRow",
    "parse_kiss",
    "write_kiss",
    "StateEncoding",
    "complete_to_power_of_two",
    "natural_encoding",
    "StateTableBuilder",
    "random_cube_machine",
    "reachable_states",
    "is_strongly_connected",
    "equivalent_state_pairs",
    "machines_equivalent",
]

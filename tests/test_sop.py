"""Unit tests for cube utilities and the Quine-McCluskey minimizer."""

from __future__ import annotations


import pytest

from repro.errors import SynthesisError
from repro.gatelevel.sop import (
    cube_covers,
    cubes_overlap,
    merge_cubes,
    quine_mccluskey,
)


class TestCubeCovers:
    def test_exact_match(self):
        assert cube_covers("101", 0b101)
        assert not cube_covers("101", 0b100)

    def test_dont_care_positions(self):
        assert cube_covers("1-1", 0b101)
        assert cube_covers("1-1", 0b111)
        assert not cube_covers("1-1", 0b110)

    def test_bad_cube_rejected(self):
        with pytest.raises(SynthesisError):
            cube_covers("1x", 0)


class TestCubesOverlap:
    def test_disjoint(self):
        assert not cubes_overlap("0-", "1-")

    def test_overlap(self):
        assert cubes_overlap("0-", "-1")

    def test_width_mismatch(self):
        with pytest.raises(SynthesisError):
            cubes_overlap("0", "00")


class TestMergeCubes:
    def test_adjacent_pair_merges(self):
        assert merge_cubes(["00", "01"]) == ["0-"]

    def test_full_space_collapses(self):
        assert merge_cubes(["00", "01", "10", "11"]) == ["--"]

    def test_non_adjacent_kept(self):
        assert sorted(merge_cubes(["00", "11"])) == ["00", "11"]

    def test_coverage_preserved(self):
        cubes = ["000", "001", "011", "100", "110", "111"]
        merged = merge_cubes(cubes)
        for term in range(8):
            original = any(cube_covers(c, term) for c in cubes)
            after = any(cube_covers(c, term) for c in merged)
            assert original == after

    def test_duplicates_removed(self):
        assert merge_cubes(["0-", "0-"]) == ["0-"]


class TestQuineMccluskey:
    def test_empty_on_set(self):
        assert quine_mccluskey(3, []) == []

    def test_full_on_set(self):
        assert quine_mccluskey(2, [0, 1, 2, 3]) == ["--"]

    def test_xor_not_reducible(self):
        cover = quine_mccluskey(2, [0b01, 0b10])
        assert sorted(cover) == ["01", "10"]

    def test_classic_example(self):
        # f(a,b,c,d) = Σm(4,8,10,11,12,15) + d(9,14): a textbook instance.
        cover = quine_mccluskey(4, [4, 8, 10, 11, 12, 15], dont_cares=[9, 14])
        for term in (4, 8, 10, 11, 12, 15):
            assert any(cube_covers(c, term) for c in cover)
        for term in range(16):
            if term in (4, 8, 10, 11, 12, 15, 9, 14):
                continue
            assert not any(cube_covers(c, term) for c in cover)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_functions_covered_exactly(self, seed):
        import random

        rng = random.Random(seed)
        n_vars = 4
        on_set = [t for t in range(16) if rng.random() < 0.4]
        cover = quine_mccluskey(n_vars, on_set)
        covered = {
            term
            for term in range(16)
            if any(cube_covers(c, term) for c in cover)
        }
        assert covered == set(on_set)

    def test_zero_vars(self):
        assert quine_mccluskey(0, [0]) == [""]

    def test_out_of_range_minterm_rejected(self):
        with pytest.raises(SynthesisError):
            quine_mccluskey(2, [4])

    def test_too_many_vars_rejected(self):
        with pytest.raises(SynthesisError):
            quine_mccluskey(17, [0])

    def test_prime_cover_not_larger_than_minterms(self):
        on_set = [0, 1, 2, 3, 7]
        cover = quine_mccluskey(3, on_set)
        assert len(cover) <= len(on_set)

"""Fuzzing campaign driver: corpus replay, oracle dispatch, shrink, report.

A *campaign* replays every stored corpus failure first (regression guard),
then streams freshly generated machines through the selected oracles.  Any
failure is greedily shrunk (:mod:`repro.fuzz.shrink`) and persisted to the
corpus (:mod:`repro.fuzz.corpus`) so it reproduces forever after.

Oracles run under a wall-clock watchdog: several of them call the test
generator, and the class of bug the fuzzer hunts includes generators that
*never terminate* (for example, a chaining loop that forgets to mark
transitions as tested re-exercises the same transition forever).  A hung
oracle is reported as a failure, not a hung fuzzer.  The watchdog uses
``SIGALRM`` and therefore only engages on the main thread of a Unix
process; elsewhere oracles simply run unguarded.

Reports are deliberately timestamp-free: the same ``(seed, cases, oracles,
corpus)`` always renders byte-identical output, which makes fuzz runs
diffable in CI.
"""

from __future__ import annotations

import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.errors import FuzzError
from repro.fsm.state_table import StateTable
from repro.fuzz.corpus import load_corpus, save_failure
from repro.fuzz.generators import generate_machine, spec_stream
from repro.fuzz.oracles import (
    FuzzCase,
    Oracle,
    OracleFailure,
    OracleSkip,
    resolve_oracles,
)
from repro.fuzz.shrink import shrink_machine

__all__ = [
    "FuzzConfig",
    "FuzzFailure",
    "FuzzReport",
    "OracleTimeout",
    "run_fuzz",
]


class OracleTimeout(Exception):
    """An oracle exceeded its wall-clock budget (treated as a failure)."""


@contextmanager
def _time_limit(seconds: float | None) -> Iterator[None]:
    """Raise :class:`OracleTimeout` in the block after ``seconds``.

    Engages only on the main thread of a platform with ``setitimer``;
    otherwise the block runs unguarded (worker threads cannot receive the
    signal, and nesting alarms would corrupt an outer timer).
    """
    usable = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _alarm(signum: int, frame: Any) -> None:
        raise OracleTimeout(f"no verdict within {seconds:g}s")

    previous = signal.signal(signal.SIGALRM, _alarm)
    assert seconds is not None
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@dataclass(frozen=True)
class FuzzConfig:
    """Everything that parameterizes one campaign (a pure value)."""

    cases: int = 100
    seed: int = 0
    oracles: tuple[str, ...] = ()
    corpus_dir: str | None = None
    shrink: bool = True
    max_states: int = 10
    max_inputs: int = 3
    max_outputs: int = 3
    #: stop generating new cases after this many seconds (None = no budget);
    #: corpus replay always completes — it is the regression guard.
    time_budget_s: float | None = None
    #: stop generating new cases once this many failures accumulated
    #: (0 = unlimited); a systematic bug fails on nearly every case, and a
    #: hanging generator costs a full timeout per detection
    max_failures: int = 8
    oracle_timeout_s: float = 10.0
    #: tighter per-candidate budget while shrinking (many candidates hang
    #: the same way the original did; waiting the full timeout for each
    #: would make shrinking quadratically slow)
    shrink_timeout_s: float = 1.0

    def __post_init__(self) -> None:
        if self.cases < 0:
            raise FuzzError("cases must be non-negative")
        if self.max_states < 1 or self.max_inputs < 1 or self.max_outputs < 1:
            raise FuzzError("size bounds must be at least 1")


@dataclass(frozen=True)
class FuzzFailure:
    """One confirmed oracle failure, post-shrink."""

    oracle: str
    case: str
    origin: str
    detail: str
    n_states: int
    n_inputs: int
    n_outputs: int
    shrunk_from: str | None = None
    corpus_path: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "case": self.case,
            "corpus_path": self.corpus_path,
            "detail": self.detail,
            "n_inputs": self.n_inputs,
            "n_outputs": self.n_outputs,
            "n_states": self.n_states,
            "oracle": self.oracle,
            "origin": self.origin,
            "shrunk_from": self.shrunk_from,
        }


@dataclass
class FuzzReport:
    """Deterministic outcome of one campaign (no timestamps, no paths)."""

    seed: int
    requested_cases: int
    executed_cases: int
    replayed_entries: int
    oracle_names: tuple[str, ...]
    stats: dict[str, dict[str, int]] = field(default_factory=dict)
    failures: tuple[FuzzFailure, ...] = ()
    #: "" when the campaign ran to completion, else why it stopped early
    stop_reason: str = ""

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict[str, Any]:
        return {
            "executed_cases": self.executed_cases,
            "failures": [failure.to_dict() for failure in self.failures],
            "ok": self.ok,
            "oracles": list(self.oracle_names),
            "replayed_entries": self.replayed_entries,
            "requested_cases": self.requested_cases,
            "seed": self.seed,
            "stats": self.stats,
            "stop_reason": self.stop_reason,
        }

    def render(self) -> str:
        """Human-readable report; byte-identical for identical campaigns."""
        lines = [
            f"repro-fsatpg fuzz: seed={self.seed} "
            f"cases={self.requested_cases} executed={self.executed_cases} "
            f"corpus-replays={self.replayed_entries}"
        ]
        width = max([len("oracle")] + [len(name) for name in self.oracle_names])
        lines.append(f"  {'oracle'.ljust(width)}    ok  skip  fail")
        for name in self.oracle_names:
            row = self.stats.get(name, {})
            lines.append(
                f"  {name.ljust(width)}  {row.get('ok', 0):4d}  "
                f"{row.get('skip', 0):4d}  {row.get('fail', 0):4d}"
            )
        for failure in self.failures:
            lines.append(
                f"FAIL {failure.oracle}: {failure.case} "
                f"({failure.n_states}s/{failure.n_inputs}i/{failure.n_outputs}o, "
                f"{failure.origin}): {failure.detail}"
            )
            if failure.corpus_path:
                lines.append(f"     corpus: {failure.corpus_path}")
        if self.stop_reason:
            lines.append(f"stopped early: {self.stop_reason}")
        verdict = "PASS" if self.ok else f"FAIL ({len(self.failures)} failures)"
        lines.append(
            f"result: {verdict} [{len(self.oracle_names)} oracles]"
        )
        return "\n".join(lines) + "\n"


def _run_oracle(
    oracle: Oracle, case: FuzzCase, timeout_s: float | None
) -> tuple[str, str]:
    """``("ok" | "skip" | "fail", detail)`` for one oracle on one case."""
    try:
        with _time_limit(timeout_s):
            oracle.run(case)
    except OracleSkip as exc:
        return "skip", str(exc)
    except OracleFailure as exc:
        return "fail", str(exc)
    except OracleTimeout as exc:
        return "fail", f"timeout: {exc}"
    except Exception as exc:  # a crash in any layer is a finding, not an abort
        return "fail", f"crash: {type(exc).__name__}: {exc}"
    return "ok", ""


def _still_fails(
    oracle: Oracle, table: StateTable, timeout_s: float | None
) -> bool:
    """Shrink predicate: does ``oracle`` still fail on ``table``?"""
    candidate = FuzzCase("shrink-candidate", table, origin="shrink")
    verdict, _ = _run_oracle(oracle, candidate, timeout_s)
    return verdict == "fail"


def run_fuzz(
    config: FuzzConfig,
    on_progress: Callable[[str], None] | None = None,
) -> FuzzReport:
    """Execute one fuzzing campaign and return its report.

    Corpus entries (when a corpus is configured) replay first, each through
    the oracle it originally failed; then ``config.cases`` fresh machines
    stream through every selected oracle.  New failures are shrunk and
    saved back to the corpus.
    """
    oracles = resolve_oracles(config.oracles)
    by_name = {oracle.name: oracle for oracle in oracles}
    stats: dict[str, dict[str, int]] = {
        oracle.name: {"ok": 0, "skip": 0, "fail": 0} for oracle in oracles
    }
    failures: list[FuzzFailure] = []
    shrunk_oracles: set[str] = set()

    def note(message: str) -> None:
        if on_progress is not None:
            on_progress(message)

    def record(
        oracle: Oracle, case: FuzzCase, verdict: str, detail: str
    ) -> None:
        stats[oracle.name][verdict] += 1
        if verdict != "fail":
            return
        table = case.table
        shrunk_from = None
        # A systematic bug fails on most cases; one minimized witness per
        # oracle is what a human needs, so only the first failure is shrunk.
        if (
            config.shrink
            and case.origin == "generated"
            and oracle.name not in shrunk_oracles
        ):
            shrunk_oracles.add(oracle.name)
            result = shrink_machine(
                table, lambda t: _still_fails(oracle, t, config.shrink_timeout_s)
            )
            if result.reduced:
                shrunk_from = (
                    f"{table.n_states}s/{table.n_inputs}i/{table.n_outputs}o"
                )
                table = result.table
                _, detail = _run_oracle(
                    oracle,
                    FuzzCase(case.name, table, origin="shrink"),
                    config.shrink_timeout_s,
                )
        corpus_path = None
        if config.corpus_dir is not None and case.origin == "generated":
            entry = save_failure(
                config.corpus_dir,
                oracle.name,
                table.renamed(case.name),
                detail,
                origin=case.origin,
                shrunk_from=shrunk_from,
            )
            corpus_path = entry.relative_path
        failures.append(
            FuzzFailure(
                oracle.name,
                case.name,
                case.origin,
                detail,
                table.n_states,
                table.n_inputs,
                table.n_outputs,
                shrunk_from,
                corpus_path,
            )
        )
        note(f"FAIL {oracle.name} on {case.name}: {detail}")

    # ------------------------------------------------ corpus replay first
    replayed = 0
    if config.corpus_dir is not None:
        for entry in load_corpus(config.corpus_dir):
            oracle = by_name.get(entry.oracle)
            if oracle is None:
                continue  # stored for an oracle not selected this run
            replayed += 1
            case = FuzzCase(
                f"corpus/{entry.relative_path}", entry.table, origin="corpus"
            )
            verdict, detail = _run_oracle(oracle, case, config.oracle_timeout_s)
            record(oracle, case, verdict, detail)

    # ------------------------------------------------- fresh generation
    executed = 0
    stop_reason = ""
    deadline = (
        time.monotonic() + config.time_budget_s
        if config.time_budget_s is not None
        else None
    )
    for spec in spec_stream(
        config.cases,
        config.seed,
        config.max_states,
        config.max_inputs,
        config.max_outputs,
    ):
        if config.max_failures and len(failures) >= config.max_failures:
            stop_reason = f"reached {config.max_failures} failures"
            break
        if deadline is not None and time.monotonic() >= deadline:
            stop_reason = f"time budget ({config.time_budget_s:g}s) exhausted"
            break
        case = FuzzCase(spec.label(), generate_machine(spec), spec=spec)
        executed += 1
        note(f"case {executed}/{config.cases}: {case.name}")
        for oracle in oracles:
            verdict, detail = _run_oracle(oracle, case, config.oracle_timeout_s)
            record(oracle, case, verdict, detail)

    if stop_reason:
        note(f"stopped early: {stop_reason}")
    return FuzzReport(
        seed=config.seed,
        requested_cases=config.cases,
        executed_cases=executed,
        replayed_entries=replayed,
        oracle_names=tuple(oracle.name for oracle in oracles),
        stats=stats,
        failures=tuple(failures),
        stop_reason=stop_reason,
    )

"""Tests for repro.obs: span tracing, metrics, logging, reports, and CLI."""

from __future__ import annotations

import io
import json

import pytest

from repro import obs
from repro.cli import main
from repro.harness.experiments import StudyOptions
from repro.harness.runtime import StageTimings
from repro.obs.log import (
    DEBUG,
    ERROR,
    INFO,
    WARNING,
    ObsLogger,
    get_logger,
    set_verbosity,
    verbosity_from_flags,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    counter_add,
    gauge_set,
    histogram_observe,
    set_registry,
)
from repro.obs.provenance import set_provenance
from repro.obs.report import aggregate_spans, render_stats
from repro.obs.trace import (
    SpanRecord,
    Tracer,
    complete_event,
    events_from_jsonl,
    render_span_tree,
    set_tracer,
    span,
    span_tree,
    to_chrome,
    to_jsonl,
    traced,
    validate_chrome_trace,
)
from repro.perf.engine import compute_studies


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """No test leaks a tracer, registry, provenance log, or verbosity change."""
    previous_tracer = set_tracer(None)
    previous_registry = set_registry(None)
    previous_provenance = set_provenance(None)
    previous_verbosity = set_verbosity(WARNING)
    yield
    set_tracer(previous_tracer)
    set_registry(previous_registry)
    set_provenance(previous_provenance)
    set_verbosity(previous_verbosity)


# ------------------------------------------------------------------- spans


class TestSpan:
    def test_measures_without_tracer(self):
        with span("work") as sp:
            total = sum(range(100))
        assert total == 4950
        assert sp.elapsed_s >= 0.0

    def test_complete_event_noop_without_tracer(self):
        complete_event("phase", 0.5)  # must not raise

    def test_nesting_and_parentage(self):
        tracer = Tracer()
        set_tracer(tracer)
        with span("outer", circuit="lion"):
            with span("inner") as sp:
                sp.set(found=3)
        inner, outer = tracer.events  # completion order
        assert (inner.name, outer.name) == ("inner", "outer")
        assert outer.span_id == 1 and outer.parent_id is None
        assert inner.span_id == 2 and inner.parent_id == 1
        assert outer.attrs == {"circuit": "lion"}
        assert inner.attrs == {"found": 3}
        assert inner.duration_ns <= outer.duration_ns

    def test_traced_decorator(self):
        tracer = Tracer()
        set_tracer(tracer)

        @traced(circuit="lion")
        def compute():
            return 7

        assert compute() == 7
        (event,) = tracer.events
        assert event.name == "compute"
        assert event.attrs == {"circuit": "lion"}

    def test_complete_event_is_child_of_current_span(self):
        tracer = Tracer()
        set_tracer(tracer)
        with span("parent"):
            complete_event("aggregate", 0.25, steps=4)
        aggregate = next(e for e in tracer.events if e.name == "aggregate")
        assert aggregate.parent_id == 1
        assert aggregate.duration_ns == int(0.25e9)
        assert aggregate.attrs == {"steps": 4}

    def test_add_complete_explicit_start(self):
        tracer = Tracer()
        record = tracer.add_complete("fixed", 0.001, start_ns=12345)
        assert record.start_ns == 12345
        assert record.duration_ns == 1_000_000

    def test_snapshot_reset_drains(self):
        tracer = Tracer()
        set_tracer(tracer)
        with span("a"):
            pass
        drained = tracer.snapshot(reset=True)
        assert [e.name for e in drained] == ["a"]
        assert tracer.events == []


class TestAbsorb:
    def test_reids_and_reparents_under_current_span(self):
        parent = Tracer()
        set_tracer(parent)
        worker_events = [
            SpanRecord(2, 1, "w.child", 1100, 50, 999),
            SpanRecord(1, None, "w.root", 1000, 200, 999),
        ]
        with span("sched"):
            parent.absorb(worker_events)
        assert span_tree(parent.events) == [
            {
                "name": "sched",
                "children": [
                    {
                        "name": "w.root",
                        "children": [{"name": "w.child", "children": []}],
                    }
                ],
            }
        ]
        ids = {e.name: e.span_id for e in parent.events}
        assert len(set(ids.values())) == 3  # no collisions after re-iding

    def test_absorb_snapshot_none_is_noop(self):
        session = obs.enable()
        obs.absorb_snapshot(None)
        assert session.tracer.events == []
        obs.disable()

    def test_worker_snapshot_none_outside_worker(self):
        assert not obs.in_worker()
        assert obs.worker_snapshot() is None

    def test_worker_snapshot_roundtrip(self, monkeypatch):
        monkeypatch.setattr(obs, "_IN_WORKER", True)
        worker_session = obs.enable()
        with span("task"):
            counter_add("work.items", 3)
        snapshot = obs.worker_snapshot()
        assert snapshot is not None and bool(snapshot)
        # drained: the worker's collectors are empty again
        assert worker_session.tracer.events == []
        monkeypatch.setattr(obs, "_IN_WORKER", False)
        with obs.observing() as session:
            with span("dispatch"):
                obs.absorb_snapshot(snapshot)
        assert span_tree(session.tracer.events) == [
            {"name": "dispatch", "children": [{"name": "task", "children": []}]}
        ]
        assert session.registry.counter("work.items").value == 3

    def test_obs_snapshot_bool(self):
        assert not obs.ObsSnapshot()
        assert obs.ObsSnapshot(spans=[SpanRecord(1, None, "a", 0, 1, 0)])
        assert obs.ObsSnapshot(metrics={"c": {"type": "counter", "value": 1}})


# ------------------------------------------------------------------ exports


def _sample_events() -> list[SpanRecord]:
    return [
        SpanRecord(2, 1, "child", 1500, 400, 100, {"k": 1}),
        SpanRecord(1, None, "root", 1000, 2000, 100),
        SpanRecord(3, 1, "remote", 9000, 100, 200),
    ]


class TestExport:
    def test_chrome_shape_and_validation(self):
        trace = to_chrome(_sample_events())
        assert trace["displayTimeUnit"] == "ms"
        assert validate_chrome_trace(trace) == []
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        names = sorted(e["args"]["name"] for e in meta)
        assert names == ["main", "worker-1"]  # pids normalized to ordinals
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert min(e["ts"] for e in complete) == 0.0  # rebased to earliest

    def test_validate_rejects_bad_traces(self):
        assert validate_chrome_trace(42) == ["trace must be a JSON object or array"]
        assert validate_chrome_trace({}) == [
            "top-level object lacks a 'traceEvents' array"
        ]
        problems = validate_chrome_trace(
            [
                "not an object",
                {"ph": "X", "pid": 0, "tid": 0, "ts": "soon", "dur": -1},
                {"name": "x", "ph": "ZZ", "pid": 0, "tid": 0},
            ]
        )
        text = "\n".join(problems)
        assert "event[0]: not an object" in text
        assert "missing required field 'name'" in text
        assert "'ts' must be a number" in text
        assert "negative duration" in text
        assert "invalid phase 'ZZ'" in text

    def test_jsonl_roundtrip(self):
        events = _sample_events()
        back = events_from_jsonl(to_jsonl(events))
        assert [(e.span_id, e.parent_id, e.name) for e in back] == [
            (e.span_id, e.parent_id, e.name) for e in events
        ]
        assert back[0].attrs == {"k": 1}
        assert back[1].duration_ns == 2000  # µs-truncated, multiple of 1000
        assert events_from_jsonl("") == []

    def test_jsonl_is_valid_json_per_line(self):
        lines = to_jsonl(_sample_events()).strip().splitlines()
        assert len(lines) == 3
        for line in lines:
            assert json.loads(line)["name"]


class TestSpanTree:
    def test_orders_by_span_id_and_strips_everything_else(self):
        tree = span_tree(_sample_events())
        assert tree == [
            {
                "name": "root",
                "children": [
                    {"name": "child", "children": []},
                    {"name": "remote", "children": []},
                ],
            }
        ]

    def test_render(self):
        assert render_span_tree(_sample_events()) == "root\n  child\n  remote"

    def test_unknown_parent_becomes_root(self):
        orphan = [SpanRecord(5, 99, "orphan", 0, 1, 0)]
        assert span_tree(orphan) == [{"name": "orphan", "children": []}]


# ------------------------------------------------------------------ metrics


class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("c").add()
        registry.counter("c").add(4)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(3)
        registry.histogram("h").observe(600)
        assert registry.counter("c").value == 5
        assert registry.gauge("g").value == 7
        histogram = registry.histogram("h")
        assert histogram.count == 2
        assert histogram.peak == 600
        assert histogram.mean == pytest.approx(301.5)
        assert registry.names() == ("c", "g", "h")
        assert len(registry) == 3 and "c" in registry

    def test_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="is a Counter"):
            registry.gauge("x")

    def test_histogram_bounds_validation(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=())
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(5, 1))
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_helpers_noop_when_disabled(self):
        counter_add("c")
        gauge_set("g", 1)
        histogram_observe("h", 1)

    def test_helpers_record_when_enabled(self):
        registry = MetricsRegistry()
        set_registry(registry)
        counter_add("c", 2)
        gauge_set("g", 9)
        histogram_observe("h", 4)
        assert registry.counter("c").value == 2
        assert registry.gauge("g").value == 9
        assert registry.histogram("h").count == 1

    def test_merge_snapshot_additive(self):
        worker = MetricsRegistry()
        worker.counter("c").add(3)
        worker.gauge("g").set(5)
        worker.histogram("h").observe(10)
        parent = MetricsRegistry()
        parent.counter("c").add(1)
        parent.gauge("untouched")  # zero updates: must survive merges
        parent.merge_snapshot(worker.snapshot())
        parent.merge_snapshot(worker.snapshot())
        assert parent.counter("c").value == 7
        assert parent.gauge("g").value == 5
        assert parent.gauge("untouched").updates == 0
        histogram = parent.histogram("h")
        assert histogram.count == 2 and histogram.peak == 10

    def test_merge_rejects_mismatched_bounds(self):
        left = MetricsRegistry()
        left.histogram("h", bounds=(1, 2))
        right = MetricsRegistry()
        right.histogram("h", bounds=(1, 2, 3)).observe(1)
        with pytest.raises(ValueError, match="bucket bounds differ"):
            left.merge_snapshot(right.snapshot())

    def test_merge_rejects_unknown_type(self):
        with pytest.raises(ValueError, match="unknown metric type"):
            MetricsRegistry().merge_snapshot({"x": {"type": "mystery"}})

    def test_snapshot_sorted_and_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("b").add()
        registry.counter("a").add()
        snapshot = registry.snapshot()
        assert list(snapshot) == ["a", "b"]
        json.dumps(snapshot)  # must not raise

    def test_render_sections(self):
        registry = MetricsRegistry()
        registry.counter("hits").add(12)
        registry.gauge("depth").set(4)
        registry.histogram("sizes").observe(3)
        text = registry.render()
        assert "counters" in text and "gauges" in text and "histograms" in text
        assert "hits" in text and "n=1" in text


# ----------------------------------------------------------------- sessions


class TestObserving:
    def test_enable_disable(self):
        assert not obs.is_active()
        session = obs.enable()
        assert obs.is_active()
        with span("x"):
            counter_add("c")
        assert [e.name for e in session.tracer.events] == ["x"]
        assert session.registry.counter("c").value == 1
        obs.disable()
        assert not obs.is_active()

    def test_observing_restores_previous(self):
        outer = obs.enable()
        with obs.observing() as inner:
            assert obs.current_tracer() is inner.tracer
            with span("inner-only"):
                pass
        assert obs.current_tracer() is outer.tracer
        assert outer.tracer.events == []
        assert [e.name for e in inner.tracer.events] == ["inner-only"]
        obs.disable()


# ------------------------------------------------------------------ logging


class TestLog:
    def test_verbosity_from_flags(self):
        assert verbosity_from_flags() == WARNING
        assert verbosity_from_flags(verbose=1) == INFO
        assert verbosity_from_flags(verbose=2) == DEBUG
        assert verbosity_from_flags(verbose=3, quiet=True) == ERROR

    def test_structured_line_format(self):
        stream = io.StringIO()
        logger = ObsLogger("fuzz", stream)
        set_verbosity(INFO)
        logger.info("case 17/200", oracle="uio-verify", b=1)
        assert stream.getvalue() == "[info ] fuzz: case 17/200 b=1 oracle=uio-verify\n"

    def test_threshold_gates(self):
        stream = io.StringIO()
        logger = ObsLogger("x", stream)
        logger.info("hidden")  # default threshold is WARNING
        logger.warning("shown")
        set_verbosity(ERROR)
        logger.warning("also hidden")
        logger.error("loud")
        assert stream.getvalue() == "[warn ] x: shown\n[error] x: loud\n"

    def test_get_logger_cached(self):
        assert get_logger("same") is get_logger("same")


# ------------------------------------------------------------------- report


class TestReport:
    def test_aggregate_self_time(self):
        events = [
            SpanRecord(1, None, "root", 0, 1000, 0),
            SpanRecord(2, 1, "child", 100, 400, 0),
            SpanRecord(3, 1, "child", 500, 300, 0),
        ]
        child, root = aggregate_spans(events)  # sorted by self time
        assert (root.name, root.calls) == ("root", 1)
        assert root.self_s == pytest.approx((1000 - 700) / 1e9)
        assert (child.name, child.calls) == ("child", 2)
        assert child.self_s > root.self_s
        assert child.total_s == pytest.approx(700 / 1e9)
        assert child.mean_ms == pytest.approx(350 / 1e6)

    def test_render_stats(self):
        events = [SpanRecord(1, None, "root", 0, 1_000_000, 0)]
        registry = MetricsRegistry()
        registry.counter("c").add(2)
        text = render_stats(events, registry)
        assert "spans: 1 events, 1 distinct names" in text
        assert "root" in text and "counters" in text

    def test_render_stats_truncates(self):
        events = [
            SpanRecord(i, None, f"name{i}", 0, 1000 * i, 0) for i in range(1, 6)
        ]
        assert "... 3 more span name(s)" in render_stats(events, top=2)


# -------------------------------------------------------- StageTimings glue


class TestStageTimingsSpans:
    def test_stage_seconds_come_from_the_span(self):
        with obs.observing() as session:
            timings = StageTimings()
            with timings.stage("lion", "uio") as sp:
                sum(range(1000))
                sp.set(cache="miss")
        (record,) = timings.records
        (event,) = session.tracer.events
        assert event.name == "uio"
        assert record.seconds == event.duration_ns / 1e9
        assert record.cache == "miss" and event.attrs["cache"] == "miss"
        assert timings.cache_misses == 1

    def test_add_emits_equivalent_span(self):
        with obs.observing() as session:
            StageTimings().add("lion", "uio", 0.0, cache="hit")
        (event,) = session.tracer.events
        assert event.name == "uio" and event.duration_ns == 0
        assert event.attrs == {"circuit": "lion", "cache": "hit"}

    def test_stage_works_without_tracer(self):
        timings = StageTimings()
        with timings.stage("lion", "uio"):
            pass
        assert timings.records[0].seconds >= 0.0


# ----------------------------------------------------- pipeline integration


def _observed_run(jobs: int):
    with obs.observing() as session:
        compute_studies(("lion",), StudyOptions(), jobs=jobs)
    return session


class TestPipelineObservability:
    def test_expected_span_names_present(self):
        session = _observed_run(jobs=1)
        names = {event.name for event in session.tracer.events}
        for expected in (
            "sweep.prepare", "circuit.prepare", "uio.search",
            "testgen.chaining", "testgen.transfer", "sweep.simulate",
            "sweep.chunk", "faultsim.ppsfp.build", "sweep.select",
        ):
            assert expected in names, expected
        assert validate_chrome_trace(session.tracer.to_chrome()) == []

    def test_expected_metrics_present(self):
        session = _observed_run(jobs=1)
        registry = session.registry
        assert registry.counter("uio.search.nodes_expanded").value > 0
        assert registry.counter("testgen.tests").value == 9  # the paper's lion
        assert registry.counter("testgen.chained").value > 0
        assert registry.counter("faultsim.batches").value >= 2  # 2 fault models
        assert registry.counter("faultsim.ppsfp.calls").value > 0
        assert registry.counter("faultsim.detected").value > 0
        assert registry.histogram("faultsim.batch_detected").count >= 2

    def test_transfer_search_metrics(self, lion):
        # the default transfer bound of 1 uses a precomputed successor list,
        # so the BFS metrics need a direct call to exercise them
        from repro.uio.transfer import find_transfer, transfer_map

        with obs.observing() as session:
            assert find_transfer(lion, 0, (1,), 2) is not None
            assert find_transfer(lion, 0, (), 2) is None
            transfer_map(lion, (0,), 2)
        registry = session.registry
        assert registry.counter("transfer.bfs.searches").value == 2
        assert registry.counter("transfer.bfs.unreachable").value == 1
        assert registry.histogram("transfer.bfs.frontier_peak").count == 2
        assert registry.histogram("transfer.bfs.length").count == 1
        assert registry.counter("transfer.map.searches").value == 1
        assert registry.counter("transfer.map.states_reached").value > 0
        assert [e.name for e in session.tracer.events] == ["transfer.map"]

    def test_two_runs_identical_modulo_timestamps(self):
        first = _observed_run(jobs=1)
        second = _observed_run(jobs=1)
        first_tree = span_tree(first.tracer.events)
        second_tree = span_tree(second.tracer.events)
        assert first_tree == second_tree
        assert first.registry.snapshot() == second.registry.snapshot()

    def test_worker_spans_merge_under_parent(self):
        session = _observed_run(jobs=2)
        tree = span_tree(session.tracer.events)
        simulate = next(
            node for node in tree if node["name"] == "sweep.simulate"
        )
        chunk_names = [child["name"] for child in simulate["children"]]
        assert chunk_names and set(chunk_names) == {"sweep.chunk"}
        # chunks ran in pool workers: their recorded pids differ from ours
        chunk_pids = {
            event.pid
            for event in session.tracer.events
            if event.name == "sweep.chunk"
        }
        assert any(pid != session.tracer.pid for pid in chunk_pids)
        # worker metrics merged back additively
        assert session.registry.counter("faultsim.detected").value > 0
        assert validate_chrome_trace(session.tracer.to_chrome()) == []


# ---------------------------------------------------------------------- CLI


class TestCli:
    def test_trace_table_target(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        assert main([
            "trace", "table5", "--circuit", "lion",
            "--trace-out", str(trace_path),
            "--metrics-out", str(metrics_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "lion" in out  # the table itself
        assert "uio.search" in out  # the span tree
        assert f"wrote metrics snapshot to {metrics_path}" in out
        trace = json.loads(trace_path.read_text())
        assert validate_chrome_trace(trace) == []
        metrics = json.loads(metrics_path.read_text())
        assert metrics["testgen.tests"]["value"] == 9

    def test_trace_circuit_target(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(["trace", "lion", "--trace-out", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "testgen.chaining" in out
        assert validate_chrome_trace(json.loads(trace_path.read_text())) == []

    def test_trace_unknown_target(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", "bogus"])
        assert excinfo.value.code == 2
        assert "unknown target" in capsys.readouterr().err

    def test_stats_command(self, capsys):
        assert main(["stats", "lion", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "spans:" in out and "self s" in out
        assert "counters" in out and "uio.search.nodes_expanded" in out

    def test_table_command_trace_out_wrapper(self, tmp_path, capsys):
        trace_path = tmp_path / "table5.json"
        assert main([
            "table5", "--circuits", "lion", "--trace-out", str(trace_path),
        ]) == 0
        captured = capsys.readouterr()
        assert "lion" in captured.out
        assert f"span(s) to {trace_path}" in captured.err
        assert validate_chrome_trace(json.loads(trace_path.read_text())) == []

    def test_cache_info_session_line(self, tmp_path, capsys):
        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        # No lookups happened, so no hit rate is claimed (0/0 is not 0%).
        assert "session   no lookups yet (hit rate n/a)" in out

    def test_global_verbose_routes_fuzz_progress(self, capsys):
        assert main(["-v", "fuzz", "--cases", "1"]) == 0
        err = capsys.readouterr().err
        assert "[info ] fuzz:" in err

    def test_fuzz_quiet_by_default(self, capsys):
        assert main(["fuzz", "--cases", "1"]) == 0
        assert "[info ]" not in capsys.readouterr().err

"""Observability for the ATPG pipeline: spans, metrics, structured logging.

Three zero-dependency pieces, all disabled by default with unmeasurable
overhead at the instrumented call sites:

* :mod:`repro.obs.trace` — nested span tracing with JSONL and Chrome
  ``trace_event`` export (``chrome://tracing`` / Perfetto);
* :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket histograms
  for search effort, chaining decisions, fault-sim batches, cache traffic;
* :mod:`repro.obs.log` — a leveled structured logger gated by the CLI's
  global ``--verbose``/``--quiet`` flags.

Enable both collection systems for a block with :func:`observing`::

    from repro import obs

    with obs.observing() as session:
        run_pipeline()
    open("trace.json", "w").write(json.dumps(session.tracer.to_chrome()))
    print(session.registry.render())

Cross-process aggregation: worker processes (see :mod:`repro.perf.engine`)
install fresh collectors via :func:`enable_in_worker`, tasks drain them with
:func:`worker_snapshot`, and the parent folds each returned
:class:`ObsSnapshot` back in with :func:`absorb_snapshot` — worker spans
re-parent under the scheduler span that dispatched them, worker metrics
merge additively.  Span/metric naming conventions are documented in
``docs/observability.md``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs.analytics import (
    Anomaly,
    Frame,
    ScalingFit,
    circuit_frame,
    detect_anomalies,
    diff_payload,
    diff_records,
    load_records,
    record_id,
    render_diff,
    render_fits_latex,
    render_fits_markdown,
    resolve_record,
    run_frame,
    scaling_fits,
    tables_payload,
)
from repro.obs.log import (
    ObsLogger,
    get_logger,
    set_verbosity,
    verbosity_from_flags,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_add,
    current_registry,
    gauge_set,
    histogram_observe,
    metrics_active,
    set_registry,
)
from repro.obs.provenance import (
    ProvenanceEvent,
    ProvenanceLog,
    current_provenance,
    decision_summary,
    provenance_active,
    set_provenance,
)
from repro.obs.report import (
    aggregate_spans,
    pool_utilization,
    render_pool,
    render_stats,
)
from repro.obs.resources import (
    ResourceUsage,
    UsageProbe,
    absorb_child_usage,
    deep_memory_active,
    disable_deep_memory,
    drain_worker_usage,
    enable_deep_memory,
    process_usage,
    reset_worker_usage,
)
from repro.obs.trace import (
    SpanRecord,
    Tracer,
    complete_event,
    current_tracer,
    events_from_jsonl,
    render_span_tree,
    set_tracer,
    span,
    span_tree,
    to_chrome,
    to_jsonl,
    traced,
    tracing_active,
    validate_chrome_trace,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "SECONDS_BUCKETS",
    "Anomaly",
    "Frame",
    "ScalingFit",
    "circuit_frame",
    "detect_anomalies",
    "diff_payload",
    "diff_records",
    "load_records",
    "record_id",
    "render_diff",
    "render_fits_latex",
    "render_fits_markdown",
    "resolve_record",
    "run_frame",
    "scaling_fits",
    "tables_payload",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsLogger",
    "ObsSnapshot",
    "Observation",
    "ProvenanceEvent",
    "ProvenanceLog",
    "ResourceUsage",
    "SpanRecord",
    "Tracer",
    "UsageProbe",
    "absorb_child_usage",
    "absorb_snapshot",
    "aggregate_spans",
    "deep_memory_active",
    "disable_deep_memory",
    "drain_worker_usage",
    "enable_deep_memory",
    "process_usage",
    "reset_worker_usage",
    "complete_event",
    "counter_add",
    "current_provenance",
    "current_registry",
    "current_tracer",
    "decision_summary",
    "disable",
    "enable",
    "enable_in_worker",
    "events_from_jsonl",
    "gauge_set",
    "get_logger",
    "histogram_observe",
    "in_worker",
    "is_active",
    "metrics_active",
    "observing",
    "pool_utilization",
    "provenance_active",
    "render_pool",
    "render_span_tree",
    "render_stats",
    "set_provenance",
    "set_registry",
    "set_tracer",
    "set_verbosity",
    "span",
    "span_tree",
    "to_chrome",
    "to_jsonl",
    "traced",
    "tracing_active",
    "validate_chrome_trace",
    "verbosity_from_flags",
    "worker_snapshot",
]


@dataclass
class Observation:
    """A live collection session: tracer + registry + provenance log."""

    tracer: Tracer
    registry: MetricsRegistry
    provenance: ProvenanceLog


@dataclass
class ObsSnapshot:
    """Picklable spans + metrics + provenance drained from one process.

    ``resources`` carries the worker's CPU delta since its previous drain
    plus its RSS high-water mark (:class:`repro.obs.resources.ResourceUsage`
    as a dict), merged into the parent's child-usage accumulator on absorb.
    """

    spans: list[SpanRecord] = field(default_factory=list)
    metrics: dict[str, Any] = field(default_factory=dict)
    provenance: list[ProvenanceEvent] = field(default_factory=list)
    resources: dict[str, Any] | None = None

    def __bool__(self) -> bool:
        return (
            bool(self.spans)
            or bool(self.metrics)
            or bool(self.provenance)
            or self.resources is not None
        )


def enable() -> Observation:
    """Install fresh collectors (tracer, registry, provenance) process-wide."""
    tracer = Tracer()
    registry = MetricsRegistry()
    provenance = ProvenanceLog()
    set_tracer(tracer)
    set_registry(registry)
    set_provenance(provenance)
    return Observation(tracer, registry, provenance)


def disable() -> None:
    """Remove the process-wide collectors (collection stops)."""
    set_tracer(None)
    set_registry(None)
    set_provenance(None)


def is_active() -> bool:
    return tracing_active() or metrics_active() or provenance_active()


@contextmanager
def observing(*, deep_memory: bool = False) -> Iterator[Observation]:
    """Enable span + metric collection for a block; restores prior state.

    ``deep_memory=True`` additionally turns on tracemalloc-based per-span
    peak attribution for the block (real overhead — diagnostic runs only).
    """
    previous_tracer = current_tracer()
    previous_registry = current_registry()
    previous_provenance = current_provenance()
    session = enable()
    mem_enabled = False
    if deep_memory and not deep_memory_active():
        enable_deep_memory()
        mem_enabled = True
    try:
        yield session
    finally:
        if mem_enabled:
            disable_deep_memory()
        set_tracer(previous_tracer)
        set_registry(previous_registry)
        set_provenance(previous_provenance)


# -------------------------------------------------------- worker aggregation

_IN_WORKER = False


def enable_in_worker() -> None:
    """Install fresh collectors in a pool worker process.

    Called from the pool initializer when the parent had observability on.
    A forked worker inherits the parent's tracer object — including every
    event the parent already recorded — so a *fresh* pair is mandatory to
    keep worker snapshots disjoint from the parent log.
    """
    global _IN_WORKER
    _IN_WORKER = True
    enable()
    reset_worker_usage()


def in_worker() -> bool:
    return _IN_WORKER


def worker_snapshot() -> ObsSnapshot | None:
    """Drain this worker's spans + metrics, or ``None`` outside a worker.

    Task functions call this at the end of each task; returning ``None``
    when running inline (serial fallback, ``jobs=1``) is what makes the
    merge idempotent — inline spans are already in the parent's log.
    """
    if not _IN_WORKER:
        return None
    tracer = current_tracer()
    registry = current_registry()
    provenance = current_provenance()
    snapshot = ObsSnapshot()
    if tracer is not None:
        snapshot.spans = tracer.snapshot(reset=True)
    if registry is not None:
        snapshot.metrics = registry.snapshot()
        set_registry(MetricsRegistry())
    if provenance is not None:
        snapshot.provenance = provenance.snapshot(reset=True)
    snapshot.resources = drain_worker_usage().to_dict()
    return snapshot


def absorb_snapshot(
    snapshot: ObsSnapshot | None, parent_id: int | None = None
) -> None:
    """Fold a worker's :class:`ObsSnapshot` into the parent's collectors.

    Worker root spans re-parent under ``parent_id`` (default: the span open
    in the parent right now); metrics merge additively.  ``None`` snapshots
    (inline execution) are ignored.
    """
    if snapshot is None:
        return
    tracer = current_tracer()
    if tracer is not None and snapshot.spans:
        tracer.absorb(snapshot.spans, parent_id)
    registry = current_registry()
    if registry is not None and snapshot.metrics:
        registry.merge_snapshot(snapshot.metrics)
    provenance = current_provenance()
    if provenance is not None and snapshot.provenance:
        provenance.absorb(snapshot.provenance)
    if snapshot.resources is not None:
        absorb_child_usage(ResourceUsage.from_dict(snapshot.resources))

"""Cycle-accurate test application schedule.

The paper's Table 7 counts ``M * N_SV * (N_T + 1) + ΣN_PIC`` clock cycles
for ``N_T`` tests.  The ``N_T + 1`` (rather than ``2 * N_T``) encodes an
implementation detail of scan testing: while the final state of test ``i``
shifts out, the initial state of test ``i+1`` shifts in through the same
chain, so interior scan operations are shared.  This module builds the
actual event timeline — shift-in, apply, overlapped shift, shift-out — and
its total duration *is* the formula, which the test suite asserts for every
generated test set.  It also emits the serialized scan-chain bit streams a
tester would drive, making the library's output directly consumable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.core.testset import TestSet
from repro.errors import GenerationError

__all__ = ["ScheduleEventKind", "ScheduleEvent", "TestSchedule"]


class ScheduleEventKind(enum.Enum):
    SCAN_IN = "scan-in"  #: initial shift filling the chain before test 0
    APPLY = "apply"  #: one functional clock applying an input combination
    SCAN_TURNAROUND = "scan"  #: overlapped shift-out/shift-in between tests
    SCAN_OUT = "scan-out"  #: final shift draining the chain after the last test


@dataclass(frozen=True)
class ScheduleEvent:
    """One timeline entry.

    ``duration`` is in *scan-clock* cycles for scan events and functional
    cycles for APPLY events; ``start``/``end`` are in functional-clock
    cycles with the scan ratio already applied.
    """

    kind: ScheduleEventKind
    start: int
    duration: int
    test_index: int | None = None
    #: bits shifted in (scan events), MSB first, or the applied combination
    payload: tuple[int, ...] = ()

    @property
    def end(self) -> int:
        return self.start + self.duration


class TestSchedule:
    """The full tester timeline for a test set."""

    def __init__(self, events: list[ScheduleEvent], scan_ratio: int) -> None:
        self.events = events
        self.scan_ratio = scan_ratio

    @classmethod
    def from_test_set(cls, test_set: TestSet, scan_ratio: int = 1) -> "TestSchedule":
        """Build the overlapped-scan timeline for ``test_set``."""
        if scan_ratio < 1:
            raise GenerationError("scan_ratio must be >= 1")
        sv = test_set.n_state_variables
        events: list[ScheduleEvent] = []
        clock = 0

        def state_bits(state: int) -> tuple[int, ...]:
            return tuple((state >> (sv - 1 - j)) & 1 for j in range(sv))

        tests = test_set.tests
        for index, test in enumerate(tests):
            if index == 0:
                events.append(
                    ScheduleEvent(
                        ScheduleEventKind.SCAN_IN,
                        clock,
                        sv * scan_ratio,
                        index,
                        state_bits(test.initial_state),
                    )
                )
            else:
                # Shift the previous final state out while this test's
                # initial state shifts in: one shared scan operation.
                previous = tests[index - 1]
                events.append(
                    ScheduleEvent(
                        ScheduleEventKind.SCAN_TURNAROUND,
                        clock,
                        sv * scan_ratio,
                        index,
                        state_bits(previous.final_state)
                        + state_bits(test.initial_state),
                    )
                )
            clock = events[-1].end
            for combo in test.inputs:
                events.append(
                    ScheduleEvent(
                        ScheduleEventKind.APPLY, clock, 1, index, (combo,)
                    )
                )
                clock += 1
        if tests:
            events.append(
                ScheduleEvent(
                    ScheduleEventKind.SCAN_OUT,
                    clock,
                    sv * scan_ratio,
                    len(tests) - 1,
                    state_bits(tests[-1].final_state),
                )
            )
        return cls(events, scan_ratio)

    # -------------------------------------------------------------- queries

    @property
    def total_cycles(self) -> int:
        """End of the last event — equals the paper's Table 7 formula."""
        return self.events[-1].end if self.events else 0

    @property
    def n_scan_operations(self) -> int:
        """Scan operations on the timeline (``N_T + 1`` for ``N_T`` tests)."""
        return sum(
            1
            for event in self.events
            if event.kind is not ScheduleEventKind.APPLY
        )

    @property
    def functional_cycles(self) -> int:
        return sum(
            event.duration
            for event in self.events
            if event.kind is ScheduleEventKind.APPLY
        )

    def __iter__(self) -> Iterator[ScheduleEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def render(self) -> str:
        """Human-readable timeline (one line per event)."""
        lines = []
        for event in self.events:
            what = event.kind.value
            if event.kind is ScheduleEventKind.APPLY:
                detail = f"input {event.payload[0]}"
            else:
                detail = "bits " + "".join(str(b) for b in event.payload)
            lines.append(
                f"[{event.start:6d}..{event.end:6d}) test {event.test_index} "
                f"{what:15s} {detail}"
            )
        return "\n".join(lines)


# Not a pytest class, despite the name.
TestSchedule.__test__ = False  # type: ignore[attr-defined]

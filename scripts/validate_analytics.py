#!/usr/bin/env python
"""Validate ``tables``/``diff`` JSON payloads from the analytics engine.

Usage:  python scripts/validate_analytics.py FILE [FILE ...]

Each file is parsed and dispatched on its ``schema`` field:

* ``repro-fsatpg-analytics/1`` — a ``tables --format json`` payload,
  checked with :func:`repro.obs.analytics.validate_tables_payload`
  (finite fit parameters, R² ≤ 1, point counts matching ``fit.n``);
* ``repro-fsatpg-diff/1`` — a ``diff --format json`` payload, checked
  with :func:`repro.obs.analytics.validate_diff_payload` (record ids
  present, every delta consistent with its base/current pair).

Problems are reported one per line and make the script exit non-zero —
used by the CI analytics-smoke job.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.obs.analytics import (
    ANALYTICS_SCHEMA,
    DIFF_SCHEMA,
    validate_diff_payload,
    validate_tables_payload,
)


def check_file(path: Path) -> int:
    """Validate one payload file; returns the number of problems."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{path}: unreadable: {exc}", file=sys.stderr)
        return 1
    schema = payload.get("schema") if isinstance(payload, dict) else None
    if schema == ANALYTICS_SCHEMA:
        problems = validate_tables_payload(payload)
        kind = "tables"
    elif schema == DIFF_SCHEMA:
        problems = validate_diff_payload(payload)
        kind = "diff"
    else:
        print(f"{path}: unrecognized schema {schema!r}", file=sys.stderr)
        return 1
    for problem in problems:
        print(f"{path}: {problem}", file=sys.stderr)
    if not problems:
        print(f"{path}: OK ({kind} payload)")
    return len(problems)


def main(argv: list[str] | None = None) -> int:
    arguments = argv if argv is not None else sys.argv[1:]
    if not arguments:
        print("usage: validate_analytics.py FILE [FILE ...]",
              file=sys.stderr)
        return 2
    problems = sum(check_file(Path(argument)) for argument in arguments)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())

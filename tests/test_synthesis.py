"""Unit tests for FSM-to-gates synthesis and the scan circuit wrapper."""

from __future__ import annotations

import pytest

from repro.benchmarks import circuit_names, load_circuit, load_kiss_machine
from repro.errors import SynthesisError
from repro.gatelevel.scan import ScanCircuit
from repro.gatelevel.synthesis import SynthesisOptions, synthesize

SMALL = sorted(circuit_names("small"))


class TestSynthesize:
    @pytest.mark.parametrize("name", SMALL)
    def test_equivalence_small_tier(self, name):
        table = load_circuit(name)
        circuit = ScanCircuit.from_machine(load_kiss_machine(name))
        circuit.verify_against(table)  # raises on any disagreement

    @pytest.mark.parametrize("max_fanin", [None, 2, 4])
    def test_fanin_bound_respected(self, max_fanin):
        result = synthesize(
            load_kiss_machine("bbtas"), SynthesisOptions(max_fanin=max_fanin)
        )
        if max_fanin is not None:
            for gate in result.netlist.gates:
                assert gate.n_fanins <= max_fanin

    @pytest.mark.parametrize("max_fanin", [2, 3, 4])
    def test_decomposition_preserves_function(self, max_fanin):
        table = load_circuit("beecount")
        circuit = ScanCircuit.from_machine(
            load_kiss_machine("beecount"), SynthesisOptions(max_fanin=max_fanin)
        )
        circuit.verify_against(table)

    def test_dense_table_input_accepted(self, lion):
        circuit = ScanCircuit.from_machine(lion)
        circuit.verify_against(lion)

    def test_merge_adjacent_reduces_gates(self, lion):
        merged = synthesize(lion, SynthesisOptions(merge_adjacent=True))
        unmerged = synthesize(lion, SynthesisOptions(merge_adjacent=False))
        assert merged.netlist.n_gates <= unmerged.netlist.n_gates

    def test_interface_lines(self, lion_kiss):
        result = synthesize(lion_kiss)
        assert len(result.state_input_lines) == 2
        assert len(result.primary_input_lines) == 2
        assert len(result.next_state_lines) == 2
        assert len(result.primary_output_lines) == 1

    def test_bad_fanin_option_rejected(self):
        with pytest.raises(SynthesisError):
            SynthesisOptions(max_fanin=1)


class TestScanCircuit:
    def test_step_matches_table(self, lion):
        circuit = ScanCircuit.from_machine(lion)
        assert circuit.step(2, 0b11) == lion.step(2, 0b11)

    def test_run_test_matches_functional_replay(self, lion, lion_result):
        circuit = ScanCircuit.from_machine(lion)
        for test in lion_result.test_set:
            final, outputs = circuit.run_test(test)
            expected_final, expected_outputs = test.replay(lion)
            assert final == expected_final
            assert outputs == expected_outputs

    def test_out_of_range_state_rejected(self, lion):
        circuit = ScanCircuit.from_machine(lion)
        with pytest.raises(SynthesisError):
            circuit.step(4, 0)
        with pytest.raises(SynthesisError):
            circuit.step(0, 4)

    def test_verify_against_catches_wrong_machine(self, lion, toggle):
        circuit = ScanCircuit.from_machine(toggle)
        with pytest.raises(SynthesisError):
            circuit.verify_against(lion)

    def test_repr(self, lion):
        assert "gates" in repr(ScanCircuit.from_machine(lion))

"""Unit tests for FSM structural analysis."""

from __future__ import annotations

import pytest

from repro.errors import StateTableError
from repro.fsm.analysis import (
    equivalence_classes,
    equivalent_state_pairs,
    has_equivalent_sibling,
    is_strongly_connected,
    machines_equivalent,
    reachable_states,
)
from repro.fsm.builders import StateTableBuilder
from repro.fsm.encoding import complete_to_power_of_two


def machine_with_equivalent_pair():
    """States b and c behave identically."""
    builder = StateTableBuilder(1, 1)
    builder.add("a", 0, "b", 0)
    builder.add("a", 1, "c", 0)
    builder.add("b", 0, "a", 1)
    builder.add("b", 1, "b", 0)
    builder.add("c", 0, "a", 1)
    builder.add("c", 1, "c", 0)
    return builder.build()


def machine_with_sink():
    """State 'trap' cannot reach the others."""
    builder = StateTableBuilder(1, 1)
    builder.add("a", 0, "trap", 0)
    builder.add("a", 1, "a", 1)
    builder.add("trap", 0, "trap", 0)
    builder.add("trap", 1, "trap", 0)
    return builder.build()


class TestReachability:
    def test_all_reachable(self, lion):
        assert reachable_states(lion, 0) == frozenset(range(4))

    def test_sink_limits_reachability(self):
        table = machine_with_sink()
        assert reachable_states(table, 1) == frozenset({1})

    def test_start_included(self):
        table = machine_with_sink()
        assert 0 in reachable_states(table, 0)

    def test_bad_start_raises(self, lion):
        with pytest.raises(StateTableError):
            reachable_states(lion, 9)


class TestStrongConnectivity:
    def test_lion_strongly_connected(self, lion):
        assert is_strongly_connected(lion)

    def test_sink_machine_not_strongly_connected(self):
        assert not is_strongly_connected(machine_with_sink())

    def test_completed_machine_not_strongly_connected(self):
        """Fill states are unreachable, breaking strong connectivity."""
        builder = StateTableBuilder(1, 1)
        builder.add("a", 0, "b", 0)
        builder.add("a", 1, "c", 1)
        builder.add("b", 0, "c", 0)
        builder.add("b", 1, "a", 1)
        builder.add("c", 0, "a", 0)
        builder.add("c", 1, "b", 1)
        completed = complete_to_power_of_two(builder.build())
        assert not is_strongly_connected(completed)


class TestEquivalence:
    def test_equivalent_pair_found(self):
        table = machine_with_equivalent_pair()
        assert (1, 2) in equivalent_state_pairs(table)

    def test_lion_has_no_equivalent_states(self, lion):
        assert equivalent_state_pairs(lion) == frozenset()

    def test_classes_partition_states(self):
        table = machine_with_equivalent_pair()
        classes = equivalence_classes(table)
        union = set()
        for members in classes:
            assert not union & members
            union |= members
        assert union == set(range(table.n_states))

    def test_has_equivalent_sibling(self):
        table = machine_with_equivalent_pair()
        assert has_equivalent_sibling(table, 1)
        assert not has_equivalent_sibling(table, 0)

    def test_sibling_out_of_range(self, lion):
        with pytest.raises(StateTableError):
            has_equivalent_sibling(lion, 17)

    def test_equivalent_states_have_no_uio(self):
        """Cross-module invariant: an equivalent state can have no UIO."""
        from repro.uio.search import find_uio

        table = machine_with_equivalent_pair()
        assert find_uio(table, 1, max_length=6) is None
        assert find_uio(table, 2, max_length=6) is None


class TestMachineEquivalence:
    def test_machine_equivalent_to_itself(self, lion):
        assert machines_equivalent(lion, lion)

    def test_equivalent_states_as_starts(self):
        table = machine_with_equivalent_pair()
        assert machines_equivalent(table, table, 1, 2)

    def test_inequivalent_starts(self, lion):
        assert not machines_equivalent(lion, lion, 0, 1)

    def test_width_mismatch(self, lion, toggle):
        assert not machines_equivalent(lion, toggle)

"""Zero-dependency span tracer for the ATPG pipeline.

A *span* is a named, timed interval with optional attributes, nested under
whatever span was open when it started.  Instrumentation sites use the
:func:`span` context manager (or the :func:`traced` decorator)::

    with span("uio.search", circuit="lion") as sp:
        table = compute()
        sp.set(found=table.n_found)

With no tracer installed (the default) a span still measures its own
duration — callers like ``StageTimings`` read ``sp.elapsed_s`` either way —
but nothing is recorded; the only cost is two monotonic-clock reads per
span, which is unmeasurable at the call granularity used here (one span per
pipeline stage, never per search node).  Installing a :class:`Tracer`
(:func:`set_tracer`, usually via :func:`repro.obs.observing`) turns the same
call sites into an event log exportable as

* JSONL — one event object per line (:meth:`Tracer.to_jsonl`), and
* Chrome ``trace_event`` JSON (:meth:`Tracer.to_chrome`), loadable in
  ``chrome://tracing`` or https://ui.perfetto.dev.

Span identity, parentage, and ordering are deterministic for a
deterministic program: ids are sequential, events are appended in
completion order, and :func:`span_tree` strips every timestamp so tests can
pin the exact tree two runs must share.  Worker-process events are merged
with :meth:`Tracer.absorb`, which re-ids them and re-parents their roots
under the parent process's current span; process ids are normalized to
stable ordinals ("main", "worker-1", ...) at export time.
"""

from __future__ import annotations

import functools
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.obs.resources import span_mem_enter, span_mem_exit

__all__ = [
    "SpanRecord",
    "Tracer",
    "current_tracer",
    "set_tracer",
    "tracing_active",
    "span",
    "traced",
    "complete_event",
    "span_tree",
    "render_span_tree",
    "to_chrome",
    "to_jsonl",
    "events_from_jsonl",
    "validate_chrome_trace",
]

_F = TypeVar("_F", bound=Callable[..., Any])


@dataclass
class SpanRecord:
    """One finished span.  Plain data: picklable, JSON-serializable.

    ``cpu_ns`` is the process CPU time consumed inside the span
    (``time.process_time_ns`` delta — includes child spans, exactly like
    ``duration_ns`` does); ``mem_peak_bytes`` is the tracemalloc
    high-water mark across the span's subtree, populated only when deep
    memory tracking is on (:func:`repro.obs.resources.enable_deep_memory`).
    Both are trailing keyword-style fields so existing positional
    construction keeps working.
    """

    span_id: int
    parent_id: int | None
    name: str
    start_ns: int
    duration_ns: int
    pid: int
    attrs: dict[str, Any] = field(default_factory=dict)
    cpu_ns: int = 0
    mem_peak_bytes: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_us": self.start_ns // 1000,
            "dur_us": self.duration_ns // 1000,
            "cpu_us": self.cpu_ns // 1000,
            "mem_peak_bytes": self.mem_peak_bytes,
            "pid": self.pid,
            "attrs": self.attrs,
        }


class Tracer:
    """Collects :class:`SpanRecord` events for one process.

    Not thread-safe: the pipeline is single-threaded per process, and each
    worker process gets its own tracer (see :mod:`repro.perf.engine`).
    """

    def __init__(self) -> None:
        self.events: list[SpanRecord] = []
        self._stack: list[int] = []
        self._next_id = 1
        self.pid = os.getpid()

    # ------------------------------------------------------------ recording

    def allocate_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    @property
    def current_span_id(self) -> int | None:
        return self._stack[-1] if self._stack else None

    def push(self, span_id: int) -> None:
        self._stack.append(span_id)

    def pop(self) -> None:
        self._stack.pop()

    def record(self, record: SpanRecord) -> None:
        self.events.append(record)

    def add_complete(
        self,
        name: str,
        duration_s: float,
        *,
        start_ns: int | None = None,
        cpu_ns: int = 0,
        mem_peak_bytes: int = 0,
        **attrs: Any,
    ) -> SpanRecord:
        """Append an already-timed span as a child of the current span.

        Used for aggregate phases (e.g. the summed transfer-search time of
        one generation run) and for cache-hit stage records, where the
        interval was measured elsewhere.
        """
        duration_ns = max(0, int(duration_s * 1e9))
        if start_ns is None:
            start_ns = time.perf_counter_ns() - duration_ns
        record = SpanRecord(
            self.allocate_id(),
            self.current_span_id,
            name,
            start_ns,
            duration_ns,
            self.pid,
            dict(attrs),
            cpu_ns=cpu_ns,
            mem_peak_bytes=mem_peak_bytes,
        )
        self.record(record)
        return record

    # -------------------------------------------------------------- merging

    def absorb(
        self, events: Sequence[SpanRecord], parent_id: int | None = None
    ) -> None:
        """Merge foreign events (typically a worker snapshot) into this log.

        Incoming spans are re-identified to avoid id collisions and their
        roots are re-parented under ``parent_id`` (default: the span open
        right now), so a worker's whole tree hangs off the scheduler span
        that dispatched it.
        """
        if parent_id is None:
            parent_id = self.current_span_id
        mapping: dict[int, int] = {}
        for event in events:
            mapping[event.span_id] = self.allocate_id()
        for event in events:
            parent = (
                mapping[event.parent_id]
                if event.parent_id in mapping
                else parent_id
            )
            self.record(
                SpanRecord(
                    mapping[event.span_id],
                    parent,
                    event.name,
                    event.start_ns,
                    event.duration_ns,
                    event.pid,
                    dict(event.attrs),
                    cpu_ns=event.cpu_ns,
                    mem_peak_bytes=event.mem_peak_bytes,
                )
            )

    def snapshot(self, reset: bool = False) -> list[SpanRecord]:
        """The events recorded so far; ``reset`` drains them."""
        events = list(self.events)
        if reset:
            self.events.clear()
        return events

    # ------------------------------------------------------------ exporting

    def to_chrome(self) -> dict[str, Any]:
        return to_chrome(self.events)

    def to_jsonl(self) -> str:
        return to_jsonl(self.events)

    def __repr__(self) -> str:
        return f"<Tracer {len(self.events)} events, depth {len(self._stack)}>"


# ------------------------------------------------------------- active tracer

_TRACER: Tracer | None = None


def current_tracer() -> Tracer | None:
    """The process-wide tracer, or ``None`` when tracing is disabled."""
    return _TRACER


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install (or remove, with ``None``) the process-wide tracer.

    Returns the previously active tracer so callers can restore it.
    """
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def tracing_active() -> bool:
    return _TRACER is not None


class _SpanContext:
    """Context manager + handle returned by :func:`span`.

    Always measures elapsed time (``elapsed_s``); records an event only
    when a tracer is active at entry.
    """

    __slots__ = (
        "name",
        "attrs",
        "elapsed_s",
        "_tracer",
        "_span_id",
        "_start_ns",
        "_cpu_start_ns",
    )

    def __init__(self, name: str, attrs: dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.elapsed_s: float = 0.0
        self._tracer: Tracer | None = None
        self._span_id = 0
        self._start_ns = 0
        self._cpu_start_ns = 0

    def set(self, **attrs: Any) -> None:
        """Attach attributes after the span started."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_SpanContext":
        tracer = _TRACER
        self._tracer = tracer
        if tracer is not None:
            self._span_id = tracer.allocate_id()
            tracer.push(self._span_id)
            span_mem_enter()
            self._cpu_start_ns = time.process_time_ns()
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info: object) -> None:
        end_ns = time.perf_counter_ns()
        self.elapsed_s = (end_ns - self._start_ns) / 1e9
        tracer = self._tracer
        if tracer is not None:
            cpu_ns = time.process_time_ns() - self._cpu_start_ns
            mem_peak = span_mem_exit()
            tracer.pop()
            tracer.record(
                SpanRecord(
                    self._span_id,
                    tracer.current_span_id,
                    self.name,
                    self._start_ns,
                    end_ns - self._start_ns,
                    tracer.pid,
                    self.attrs,
                    cpu_ns=cpu_ns,
                    mem_peak_bytes=mem_peak,
                )
            )


def span(name: str, **attrs: Any) -> _SpanContext:
    """Open a named span around a block::

        with span("testgen.chaining", circuit="lion") as sp:
            run()
            sp.set(tests=len(tests))
    """
    return _SpanContext(name, attrs)


def traced(name: str | None = None, **attrs: Any) -> Callable[[_F], _F]:
    """Decorator form of :func:`span`; defaults to the function's name."""

    def decorate(function: _F) -> _F:
        span_name = name or function.__name__

        @functools.wraps(function)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with span(span_name, **attrs):
                return function(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate


def complete_event(name: str, duration_s: float, **attrs: Any) -> None:
    """Record an already-measured interval (no-op when tracing is off)."""
    tracer = _TRACER
    if tracer is not None:
        tracer.add_complete(name, duration_s, **attrs)


# ----------------------------------------------------------------- exporting


def _pid_ordinals(events: Iterable[SpanRecord]) -> dict[int, int]:
    """Stable pid → ordinal mapping: 0 for the first-seen pid, then 1, 2, ...

    Raw pids vary run to run; ordinals (in first-appearance order, which is
    deterministic) keep exports comparable modulo timestamps.
    """
    ordinals: dict[int, int] = {}
    for event in events:
        if event.pid not in ordinals:
            ordinals[event.pid] = len(ordinals)
    return ordinals


def to_chrome(events: Sequence[SpanRecord]) -> dict[str, Any]:
    """Chrome ``trace_event`` JSON object (the dict form with metadata).

    Spans become complete ("ph": "X") events with microsecond timestamps
    rebased to the earliest span; each process gets a ``process_name``
    metadata record ("main", "worker-1", ...).  Spans that measured a
    tracemalloc peak additionally emit a ``mem_peak`` counter ("ph": "C")
    sample at their start timestamp, so trace viewers draw a per-process
    memory track alongside the flame chart.
    """
    ordinals = _pid_ordinals(events)
    base_ns = min((event.start_ns for event in events), default=0)
    trace_events: list[dict[str, Any]] = []
    for pid, ordinal in ordinals.items():
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": ordinal,
                "tid": 0,
                "args": {"name": "main" if ordinal == 0 else f"worker-{ordinal}"},
            }
        )
    for event in events:
        trace_events.append(
            {
                "name": event.name,
                "cat": "repro",
                "ph": "X",
                "ts": (event.start_ns - base_ns) / 1000.0,
                "dur": event.duration_ns / 1000.0,
                "pid": ordinals[event.pid],
                "tid": 0,
                "args": {"id": event.span_id, "parent": event.parent_id,
                         "cpu_us": event.cpu_ns / 1000.0,
                         "mem_peak_bytes": event.mem_peak_bytes,
                         **event.attrs},
            }
        )
        if event.mem_peak_bytes > 0:
            trace_events.append(
                {
                    "name": "mem_peak",
                    "cat": "repro",
                    "ph": "C",
                    "ts": (event.start_ns - base_ns) / 1000.0,
                    "pid": ordinals[event.pid],
                    "tid": 0,
                    "args": {"bytes": event.mem_peak_bytes},
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def to_jsonl(events: Sequence[SpanRecord]) -> str:
    """One compact JSON object per line, in completion order."""
    return "\n".join(
        json.dumps(event.to_dict(), sort_keys=True, default=str)
        for event in events
    ) + ("\n" if events else "")


def events_from_jsonl(text: str) -> list[SpanRecord]:
    """Parse :func:`to_jsonl` output back into records (for ``stats``)."""
    events: list[SpanRecord] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        data = json.loads(line)
        events.append(
            SpanRecord(
                int(data["id"]),
                None if data["parent"] is None else int(data["parent"]),
                str(data["name"]),
                int(data["start_us"]) * 1000,
                int(data["dur_us"]) * 1000,
                int(data.get("pid", 0)),
                dict(data.get("attrs", {})),
                cpu_ns=int(data.get("cpu_us", 0)) * 1000,
                mem_peak_bytes=int(data.get("mem_peak_bytes", 0)),
            )
        )
    return events


def validate_chrome_trace(obj: Any) -> list[str]:
    """Schema check for Chrome ``trace_event`` output; returns problems.

    Accepts both the object form (``{"traceEvents": [...]}``) and the bare
    array form.  An empty list means the trace is loadable by
    ``chrome://tracing`` / Perfetto as far as the documented required
    fields go: every event needs ``name``/``ph``/``pid``/``tid``, complete
    events additionally need numeric ``ts`` and ``dur``.  Traces produced
    by this package (``cat`` = ``"repro"``) must additionally carry the
    resource-telemetry fields: numeric ``args.cpu_us`` and
    ``args.mem_peak_bytes`` on every complete event.
    """
    problems: list[str] = []
    if isinstance(obj, dict):
        events = obj.get("traceEvents")
        if not isinstance(events, list):
            return ["top-level object lacks a 'traceEvents' array"]
    elif isinstance(obj, list):
        events = obj
    else:
        return ["trace must be a JSON object or array"]
    known_phases = set("BEXiICsftPNODMp(")  # documented trace_event phases
    for index, event in enumerate(events):
        where = f"event[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                problems.append(f"{where}: missing required field {key!r}")
        phase = event.get("ph")
        if not (isinstance(phase, str) and len(phase) == 1
                and phase in known_phases):
            problems.append(f"{where}: invalid phase {phase!r}")
        if phase == "X":
            for key in ("ts", "dur"):
                if not isinstance(event.get(key), (int, float)):
                    problems.append(f"{where}: {key!r} must be a number")
            if isinstance(event.get("dur"), (int, float)) and event["dur"] < 0:
                problems.append(f"{where}: negative duration")
            if event.get("cat") == "repro":
                args = event.get("args")
                if not isinstance(args, dict):
                    problems.append(f"{where}: repro event lacks 'args'")
                else:
                    for key in ("cpu_us", "mem_peak_bytes"):
                        if not isinstance(args.get(key), (int, float)):
                            problems.append(
                                f"{where}: repro event args.{key} "
                                "must be a number"
                            )
        elif phase == "C":
            if not isinstance(event.get("ts"), (int, float)):
                problems.append(f"{where}: 'ts' must be a number")
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                problems.append(f"{where}: counter event lacks 'args'")
            elif not all(
                isinstance(value, (int, float)) for value in args.values()
            ):
                problems.append(
                    f"{where}: counter args must all be numeric"
                )
    return problems


# ----------------------------------------------------------------- span tree


def span_tree(events: Sequence[SpanRecord]) -> list[dict[str, Any]]:
    """Timestamp-free nested view: ``{"name", "children"}`` per span.

    Children are ordered by span id — allocation order, which is start
    order within a process and absorption order across processes, and
    never depends on clock readings (worker monotonic clocks are not
    comparable to the parent's).  Ids, timestamps, pids, and attributes
    are stripped, so two runs of the same workload yield *identical*
    trees — the property the determinism tests pin.
    """
    by_parent: dict[int | None, list[SpanRecord]] = {}
    known = {event.span_id for event in events}
    for event in events:
        parent = event.parent_id if event.parent_id in known else None
        by_parent.setdefault(parent, []).append(event)

    def build(parent: int | None) -> list[dict[str, Any]]:
        children = sorted(by_parent.get(parent, ()), key=lambda e: e.span_id)
        return [
            {"name": event.name, "children": build(event.span_id)}
            for event in children
        ]

    return build(None)


def render_span_tree(events: Sequence[SpanRecord]) -> str:
    """ASCII rendering of :func:`span_tree` (one span per line)."""
    lines: list[str] = []

    def walk(nodes: list[dict[str, Any]], depth: int) -> None:
        for node in nodes:
            lines.append("  " * depth + node["name"])
            walk(node["children"], depth + 1)

    walk(span_tree(events), 0)
    return "\n".join(lines)

"""Unit tests for the sequential fault simulator (interpreted + compiled)."""

from __future__ import annotations

import pytest

from repro.benchmarks import load_circuit, load_kiss_machine
from repro.core.baseline import per_transition_tests
from repro.core.generator import generate_tests
from repro.gatelevel.bridging import enumerate_bridging_faults
from repro.gatelevel.compiled import CompiledFaultSimulator
from repro.gatelevel.detectability import detectable_faults
from repro.gatelevel.fault_sim import detects, simulate_tests
from repro.gatelevel.scan import ScanCircuit
from repro.gatelevel.stuck_at import StuckAtFault, collapse_stuck_at
from repro.gatelevel.synthesis import SynthesisOptions


@pytest.fixture(scope="module")
def lion_setup():
    table = load_circuit("lion")
    circuit = ScanCircuit.from_machine(load_kiss_machine("lion"),
                                       SynthesisOptions(max_fanin=4))
    tests = generate_tests(table).test_set
    return table, circuit, tests


class TestStuckAtDetection:
    def test_input_stuck_detected(self, lion_setup):
        table, circuit, tests = lion_setup
        # State bit y0 stuck at 1: scanning in state 0 then observing must fail.
        fault = StuckAtFault(circuit.circuit.state_input_lines[0], None, 1)
        result = simulate_tests(circuit, table, tests, [fault])
        assert fault in result.detected

    def test_undetectable_faults_stay_undetected(self, lion_setup):
        table, circuit, tests = lion_setup
        reps = sorted(set(collapse_stuck_at(circuit.netlist).values()))
        _, undetectable = detectable_faults(circuit.netlist, reps)
        result = simulate_tests(circuit, table, tests, sorted(undetectable))
        assert not result.detected

    def test_functional_tests_detect_all_detectable(self, lion_setup):
        """The paper's headline claim on the worked example."""
        table, circuit, tests = lion_setup
        reps = sorted(set(collapse_stuck_at(circuit.netlist).values()))
        detectable, _ = detectable_faults(circuit.netlist, reps)
        result = simulate_tests(circuit, table, tests, sorted(detectable))
        assert result.detected == frozenset(detectable)

    def test_baseline_tests_also_detect_all_detectable(self, lion_setup):
        """Length-1 per-transition tests are combinationally exhaustive."""
        table, circuit, _ = lion_setup
        reps = sorted(set(collapse_stuck_at(circuit.netlist).values()))
        detectable, _ = detectable_faults(circuit.netlist, reps)
        baseline = per_transition_tests(table)
        result = simulate_tests(circuit, table, baseline, sorted(detectable))
        assert result.detected == frozenset(detectable)


class TestBridgingDetection:
    def test_bridging_coverage_complete(self, lion_setup):
        table, circuit, tests = lion_setup
        faults = enumerate_bridging_faults(circuit.netlist)
        assert faults, "multi-level lion must expose bridging sites"
        detectable, _ = detectable_faults(circuit.netlist, faults)
        result = simulate_tests(circuit, table, tests, sorted(detectable, key=repr))
        assert result.detected == frozenset(detectable)

    def test_and_bridge_changes_behaviour(self, lion_setup):
        table, circuit, tests = lion_setup
        faults = enumerate_bridging_faults(circuit.netlist)
        detectable, _ = detectable_faults(circuit.netlist, faults)
        # sanity: at least one bridge is detectable on this netlist
        assert detectable


class TestFaultDropping:
    def test_per_test_counts_sum_to_detected(self, lion_setup):
        table, circuit, tests = lion_setup
        reps = sorted(set(collapse_stuck_at(circuit.netlist).values()))
        result = simulate_tests(circuit, table, tests, reps)
        assert sum(result.per_test_new) == len(result.detected)

    def test_no_drop_mode_consistent(self, lion_setup):
        table, circuit, tests = lion_setup
        reps = sorted(set(collapse_stuck_at(circuit.netlist).values()))
        dropped = simulate_tests(circuit, table, tests, reps, drop_detected=True)
        kept = simulate_tests(circuit, table, tests, reps, drop_detected=False)
        assert dropped.detected == kept.detected

    def test_small_batch_bits_equivalent(self, lion_setup):
        table, circuit, tests = lion_setup
        reps = sorted(set(collapse_stuck_at(circuit.netlist).values()))
        test = tests.by_decreasing_length()[0]
        assert detects(circuit, table, test, reps, batch_bits=7) == detects(
            circuit, table, test, reps
        )


class TestCompiledEquivalence:
    @pytest.mark.parametrize("name", ["lion", "bbtas", "dk512", "beecount"])
    def test_compiled_matches_interpreted(self, name):
        table = load_circuit(name)
        circuit = ScanCircuit.from_machine(
            load_kiss_machine(name), SynthesisOptions(max_fanin=4)
        )
        faults = sorted(set(collapse_stuck_at(circuit.netlist).values()))
        faults += enumerate_bridging_faults(circuit.netlist, limit=40)
        simulator = CompiledFaultSimulator(circuit, table, faults)
        tests = generate_tests(table).test_set
        for test in list(tests)[:10]:
            compiled = simulator.detects(test)
            interpreted = detects(circuit, table, test, faults)
            assert compiled == frozenset(interpreted), str(test)

    def test_detect_mask_bit_mapping(self, lion_setup):
        table, circuit, tests = lion_setup
        faults = sorted(set(collapse_stuck_at(circuit.netlist).values()))
        simulator = CompiledFaultSimulator(circuit, table, faults)
        test = tests.by_decreasing_length()[0]
        mask = simulator.detect_mask(test)
        expected = simulator.detects(test)
        reconstructed = {
            faults[bit] for bit in range(len(faults)) if (mask >> bit) & 1
        }
        assert reconstructed == set(expected)

    def test_empty_universe_rejected(self, lion_setup):
        table, circuit, _ = lion_setup
        from repro.errors import FaultSimulationError

        with pytest.raises(FaultSimulationError):
            CompiledFaultSimulator(circuit, table, [])


class TestPinFaultSemantics:
    def test_pin_fault_affects_only_reader(self):
        """A branch fault on one consumer must not disturb the other branch."""
        # Machine whose synthesized netlist shares a literal across terms is
        # implicitly exercised above; here check the scan-test mechanics on
        # lion against hand-computed behaviour of a single pin fault.
        table = load_circuit("lion")
        circuit = ScanCircuit.from_machine(load_kiss_machine("lion"))
        netlist = circuit.netlist
        # pick a 2+-fanin gate with a multi-fanout fanin
        fanouts = netlist.fanouts()
        choice = None
        for gate in netlist.gates:
            for pin, line in enumerate(gate.fanins):
                if gate.n_fanins >= 2 and len(fanouts[line]) >= 2:
                    choice = (gate.index, pin, line)
                    break
            if choice:
                break
        assert choice is not None
        gate_index, pin, line = choice
        pin_fault = StuckAtFault(gate_index, pin, 0)
        stem_fault = StuckAtFault(line, None, 0)
        tests = generate_tests(table).test_set
        pin_hits = simulate_tests(circuit, table, tests, [pin_fault]).detected
        stem_hits = simulate_tests(circuit, table, tests, [stem_fault]).detected
        # The stem fault must be at least as detectable as its branch fault.
        assert len(stem_hits) >= len(pin_hits)

"""Unique input-output, transfer, and distinguishing sequence search.

A *unique input-output (UIO) sequence* for state ``s`` is an input sequence
``D_s`` whose output response from ``s`` differs from the response of every
other state: ``B(D_s, s) != B(D_s, s')`` for all ``s' != s``.  The paper uses
UIO sequences to verify next states through the primary outputs instead of
scanning them out, and *transfer sequences* to move the machine to a state
that still has untested transitions.

:mod:`repro.uio.partial` implements the paper's mentioned-but-unexplored
option of covering a state with several short sequences that each distinguish
it from a subset of the other states.
"""

from repro.uio.search import (
    UioSequence,
    UioTable,
    compute_uio_table,
    find_uio,
    input_class_representatives,
)
from repro.uio.transfer import find_transfer, transfer_map
from repro.uio.partial import PartialUioSet, compute_partial_uio_set, pairwise_distinguishing_sequence

__all__ = [
    "UioSequence",
    "UioTable",
    "compute_uio_table",
    "find_uio",
    "input_class_representatives",
    "find_transfer",
    "transfer_map",
    "PartialUioSet",
    "compute_partial_uio_set",
    "pairwise_distinguishing_sequence",
]

"""Full-scan circuit model: the synthesized block plus scanned flip-flops.

The scan chain makes the state register fully controllable (scan-in) and
observable (scan-out); the combinational block is the synthesized netlist.
:class:`ScanCircuit` applies functional scan tests exactly as the paper
describes — scan-in the initial state, apply the input combinations one
clock at a time observing the primary outputs, scan-out the final state —
and is the reference the fault simulator compares faulty machines against.

``verify_against`` cross-checks the gate-level model against the state table
for every (state, input) pair: the synthesized implementation and the
functional description must agree everywhere, which is the library's main
integration invariant.
"""

from __future__ import annotations

import numpy as np

from repro.core.testset import ScanTest
from repro.errors import SynthesisError
from repro.fsm.kiss import KissMachine
from repro.fsm.state_table import StateTable
from repro.gatelevel.netlist import ALL_ONES, exhaustive_pattern_words, unpack_bits
from repro.gatelevel.synthesis import SynthesisOptions, SynthesizedCircuit, synthesize

__all__ = ["ScanCircuit"]


class ScanCircuit:
    """A synthesized, fully scanned implementation of a state table."""

    def __init__(self, circuit: SynthesizedCircuit, name: str = "") -> None:
        self.circuit = circuit
        self.netlist = circuit.netlist
        self.name = name or self.netlist.name
        self.n_state_variables = circuit.n_state_variables
        self.n_primary_inputs = circuit.n_primary_inputs
        self.n_primary_outputs = circuit.n_primary_outputs
        self.encoding = circuit.encoding

    # State indices are the public currency; codes stay internal.

    def state_code_bits(self, state: int) -> tuple[int, ...]:
        """Scan vector (MSB first) establishing table state ``state``."""
        return self.encoding.encode_bits(state)

    def decode_state(self, code: int) -> int:
        """Table state index holding scan code ``code``."""
        return self.encoding.decode(code)

    @classmethod
    def from_machine(
        cls,
        machine: KissMachine | StateTable,
        options: SynthesisOptions | None = None,
    ) -> "ScanCircuit":
        """Synthesize ``machine`` and wrap it."""
        circuit = synthesize(machine, options)
        name = machine.name if hasattr(machine, "name") else ""
        return cls(circuit, name)

    # ------------------------------------------------------------ semantics

    def _input_words(self, state: int, combo: int) -> list[np.ndarray]:
        pi = self.n_primary_inputs
        words: list[np.ndarray] = [
            np.full(1, ALL_ONES if bit else 0, dtype=np.uint64)
            for bit in self.encoding.encode_bits(state)
        ]
        for j in range(pi):
            bit = (combo >> (pi - 1 - j)) & 1
            words.append(np.full(1, ALL_ONES if bit else 0, dtype=np.uint64))
        return words

    def step(self, state: int, combo: int) -> tuple[int, int]:
        """One functional clock: ``(next_state_index, output_combination)``.

        ``state`` is a table state index; the scan code translation is
        internal to the circuit model.
        """
        self._check(state, combo)
        values = self.netlist.evaluate(self._input_words(state, combo))
        one = np.uint64(1)
        next_code = 0
        for line in self.circuit.next_state_lines:
            next_code = (next_code << 1) | int(values[line, 0] & one)
        output = 0
        for line in self.circuit.primary_output_lines:
            output = (output << 1) | int(values[line, 0] & one)
        return self.encoding.decode(next_code), output

    def run_test(self, test: ScanTest) -> tuple[int, tuple[int, ...]]:
        """Apply one scan test; return ``(scanned_out_state, outputs)``."""
        state = test.initial_state
        outputs: list[int] = []
        for combo in test.inputs:
            state, out = self.step(state, combo)
            outputs.append(out)
        return state, tuple(outputs)

    def verify_against(self, table: StateTable) -> None:
        """Prove gate-level/functional agreement on every transition.

        Evaluates the netlist pattern-parallel over all
        ``2**(N_SV + N_PI)`` input patterns at once (64 per machine word)
        and compares each next-state and output bit column against the
        state table.  Raises :class:`SynthesisError` on the first mismatch.
        """
        if table.n_states > (1 << self.n_state_variables):
            raise SynthesisError("table has more states than the encoding")
        sv, pi = self.n_state_variables, self.n_primary_inputs
        n_patterns = 1 << (sv + pi)
        values = self.netlist.evaluate(exhaustive_pattern_words(sv + pi))
        # Pattern p = (code << pi) | combo; unassigned codes are skipped.
        code_to_index = np.full(1 << sv, -1, dtype=np.int64)
        for index, code in enumerate(self.encoding.codes):
            code_to_index[code] = index
        index_to_code = np.asarray(self.encoding.codes, dtype=np.int64)
        pattern_code = np.arange(n_patterns) >> pi
        pattern_combo = np.arange(n_patterns) & ((1 << pi) - 1)
        pattern_index = code_to_index[pattern_code]
        keep = pattern_index >= 0
        kept_index = pattern_index[keep]
        kept_combo = pattern_combo[keep]
        expected_next_code = index_to_code[
            np.asarray(table.next_state)[kept_index, kept_combo]
        ]
        expected_out = np.asarray(table.output)[kept_index, kept_combo]
        for j, line in enumerate(self.circuit.next_state_lines):
            got = unpack_bits(values[line], n_patterns)[keep]
            want = ((expected_next_code >> (sv - 1 - j)) & 1).astype(bool)
            if not np.array_equal(got, want):
                bad = int(np.flatnonzero(got != want)[0])
                raise SynthesisError(
                    f"next-state bit {j} disagrees at state "
                    f"{int(kept_index[bad])}, input {int(kept_combo[bad])}"
                )
        po = self.n_primary_outputs
        for j, line in enumerate(self.circuit.primary_output_lines):
            got = unpack_bits(values[line], n_patterns)[keep]
            want = ((expected_out >> (po - 1 - j)) & 1).astype(bool)
            if not np.array_equal(got, want):
                bad = int(np.flatnonzero(got != want)[0])
                raise SynthesisError(
                    f"output bit {j} disagrees at state "
                    f"{int(kept_index[bad])}, input {int(kept_combo[bad])}"
                )

    def _check(self, state: int, combo: int) -> None:
        if not 0 <= state < self.encoding.n_states:
            raise SynthesisError(f"state index {state} out of range")
        if not 0 <= combo < (1 << self.n_primary_inputs):
            raise SynthesisError(f"input combination {combo} out of range")

    def __repr__(self) -> str:
        return (
            f"<ScanCircuit {self.name!r}: {self.netlist.n_gates} gates, "
            f"{self.n_state_variables} FFs>"
        )

"""Unit tests for transfer sequence search."""

from __future__ import annotations

import pytest

from repro.errors import StateTableError
from repro.fsm.builders import StateTableBuilder
from repro.uio.transfer import find_transfer, transfer_map


def chain_machine(n: int = 5):
    """A one-way chain: input 1 advances, input 0 stays."""
    builder = StateTableBuilder(1, 1, name="chain")
    for i in range(n):
        nxt = min(i + 1, n - 1)
        builder.add(f"s{i}", 1, f"s{nxt}", 0)
        builder.add(f"s{i}", 0, f"s{i}", 1)
    return builder.build()


class TestFindTransfer:
    def test_source_in_targets_gives_empty(self, lion):
        assert find_transfer(lion, 2, {2}, 3) == ()

    def test_single_step(self, lion):
        # The paper's example: input 01 takes state 0 to state 1.
        assert find_transfer(lion, 0, {1}, 1) == (0b01,)

    def test_prefers_smaller_input(self, lion):
        # From state 2, inputs 10 and 11 both reach state 3: pick 10.
        assert find_transfer(lion, 2, {3}, 1) == (0b10,)

    def test_multi_step_shortest(self):
        table = chain_machine()
        assert find_transfer(table, 0, {3}, 5) == (1, 1, 1)

    def test_bound_respected(self):
        table = chain_machine()
        assert find_transfer(table, 0, {3}, 2) is None

    def test_unreachable_target(self):
        table = chain_machine()
        assert find_transfer(table, 4, {0}, 10) is None  # chain is one-way

    def test_predicate_targets(self, lion):
        result = find_transfer(lion, 0, lambda s: s == 3, 2)
        assert result is not None
        assert lion.final_state(0, result) == 3

    def test_zero_bound_only_matches_source(self, lion):
        assert find_transfer(lion, 0, {0}, 0) == ()
        assert find_transfer(lion, 0, {1}, 0) is None

    def test_bad_source_raises(self, lion):
        with pytest.raises(StateTableError):
            find_transfer(lion, 9, {0}, 1)

    def test_negative_bound_raises(self, lion):
        with pytest.raises(StateTableError):
            find_transfer(lion, 0, {1}, -1)


class TestTransferMap:
    def test_lengths_match_per_source_search(self, lion):
        targets = {1}
        mapping = transfer_map(lion, targets, 3)
        for source in range(4):
            individual = find_transfer(lion, source, targets, 3)
            if individual is None:
                assert source not in mapping
            else:
                assert len(mapping[source]) == len(individual)

    def test_paths_actually_arrive(self, lion):
        mapping = transfer_map(lion, {3}, 3)
        for source, path in mapping.items():
            assert lion.final_state(source, path) == 3

    def test_targets_have_empty_paths(self, lion):
        mapping = transfer_map(lion, {2}, 2)
        assert mapping[2] == ()

    def test_unreachable_states_absent(self):
        table = chain_machine()
        mapping = transfer_map(table, {0}, 10)
        assert set(mapping) == {0}

    def test_bad_target_raises(self, lion):
        with pytest.raises(StateTableError):
            transfer_map(lion, {11}, 2)

    def test_bound_zero(self, lion):
        assert transfer_map(lion, {1}, 0) == {1: ()}

"""Plain-text table rendering for the experiment harness.

The harness prints the same rows the paper's tables report; this module
keeps the formatting in one place (fixed-width columns, right-aligned
numbers, two-decimal percentages) so every ``tableN`` renders consistently.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_csv", "format_value"]


def format_value(value: object) -> str:
    """Render one cell: floats with two decimals, everything else ``str``."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width text table with a header rule.

    The first column is left-aligned (circuit names), the rest right-aligned
    (numbers), matching the paper's layout.
    """
    rendered = [[format_value(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        header.ljust(widths[i]) if i == 0 else header.rjust(widths[i])
        for i, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered:
        lines.append(
            "  ".join(
                cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
                for i, cell in enumerate(row)
            )
        )
    return "\n".join(lines)


def format_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """RFC-4180-style CSV of the same rows (for spreadsheets / pandas)."""
    import csv
    import io

    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(list(headers))
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers"
            )
        writer.writerow([format_value(cell) for cell in row])
    return buffer.getvalue()

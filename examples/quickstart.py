#!/usr/bin/env python
"""Quickstart: reproduce the paper's worked example on ``lion``.

Walks the whole Section 2 narrative programmatically:

1. load the exact ``lion`` state table (the paper's Table 1),
2. compute its unique input-output sequences (Table 2),
3. generate functional scan tests (the tests τ0…τ8),
4. verify — independently of the generator — that every state-transition
   is tested with verified endpoints,
5. report the clock-cycle cost against the one-test-per-transition baseline.

Run:  python examples/quickstart.py
"""

from repro import (
    GeneratorConfig,
    generate_tests,
    load_circuit,
    per_transition_tests,
    verify_test_set,
)
from repro.uio.search import compute_uio_table


def main() -> None:
    lion = load_circuit("lion")
    print(f"machine: {lion}")
    print(f"transitions to test: {lion.n_transitions}")
    print()

    # --- Table 2: unique input-output sequences --------------------------
    uio = compute_uio_table(lion)  # default bound: L = N_SV
    print("unique input-output sequences (paper Table 2):")
    for state in range(lion.n_states):
        sequence = uio.get(state)
        if sequence is None:
            print(f"  state {lion.state_names[state]}: none")
        else:
            text = " ".join(format(c, "02b") for c in sequence.inputs)
            print(
                f"  state {lion.state_names[state]}: ({text}) "
                f"-> final state {lion.state_names[sequence.final_state]}"
            )
    print()

    # --- the tests τ0 .. τ8 ----------------------------------------------
    result = generate_tests(lion, GeneratorConfig(), uio)
    print("generated tests (scan-in state, input sequence, scan-out state):")
    for index, test in enumerate(result.test_set):
        inputs = ",".join(format(c, "02b") for c in test.inputs)
        print(f"  τ{index} = ({test.initial_state}, ({inputs}), {test.final_state})")
    print()

    # --- independent verification -----------------------------------------
    report = verify_test_set(lion, result.test_set)
    status = "complete" if report.is_complete else "INCOMPLETE"
    print(
        f"strict coverage check: {status} "
        f"({len(report.verified)}/{report.n_transitions} transitions verified)"
    )
    print()

    # --- cost vs the baseline ---------------------------------------------
    baseline = per_transition_tests(lion)
    print(f"tests:        {result.n_tests} (baseline {baseline.n_tests})")
    print(f"total length: {result.total_length} (baseline {baseline.total_length})")
    print(
        f"clock cycles: {result.clock_cycles()} "
        f"= {result.cycles_pct_of_baseline():.2f}% of the "
        f"{baseline.clock_cycles()}-cycle baseline"
    )


if __name__ == "__main__":
    main()

"""Unit tests for the UIO sequence search."""

from __future__ import annotations

import pytest

from repro.errors import SearchBudgetExceeded, StateTableError
from repro.fsm.builders import StateTableBuilder
from repro.fsm.state_table import StateTable
from repro.uio.search import (
    UioSequence,
    compute_uio_table,
    find_uio,
    input_class_representatives,
)

import numpy as np


class TestLionPinnedToPaper:
    """Table 2 of the paper, exactly."""

    def test_state_0_uio(self, lion):
        seq = find_uio(lion, 0, 2)
        assert seq == UioSequence(0, (0b00,), 0)

    def test_state_1_has_none(self, lion):
        assert find_uio(lion, 1, 2) is None

    def test_state_2_uio(self, lion):
        seq = find_uio(lion, 2, 2)
        assert seq == UioSequence(2, (0b00, 0b11), 3)

    def test_state_3_has_none(self, lion):
        assert find_uio(lion, 3, 2) is None

    def test_table(self, lion):
        table = compute_uio_table(lion)
        assert table.n_found == 2
        assert table.max_found_length == 2
        table.verify(lion)


class TestShiftreg:
    def test_every_state_has_uio_of_length_three(self, shiftreg):
        """The paper's Table 4 row: unique = 8, m.len = 3."""
        table = compute_uio_table(shiftreg, max_length=3)
        assert table.n_found == 8
        assert table.max_found_length == 3

    def test_no_uio_within_two(self, shiftreg):
        """Three shifts are needed to expose all register bits."""
        table = compute_uio_table(shiftreg, max_length=2)
        assert table.n_found == 0


class TestSearchProperties:
    def test_uio_distinguishes_all_states(self, lion):
        seq = find_uio(lion, 2, 4)
        reference = lion.response(2, seq.inputs)
        for other in (0, 1, 3):
            assert lion.response(other, seq.inputs) != reference

    def test_shortest_sequence_returned(self, two_counter):
        for state in range(4):
            seq = find_uio(two_counter, state, 5)
            assert seq is not None
            assert seq.length == 1  # outputs reveal the state immediately

    def test_final_state_correct(self, lion):
        seq = find_uio(lion, 2, 2)
        assert lion.final_state(2, seq.inputs) == seq.final_state

    def test_single_state_machine(self):
        table = StateTable(np.array([[0, 0]]), np.array([[0, 1]]), 1, 1)
        seq = find_uio(table, 0, 3)
        assert seq == UioSequence(0, (), 0)

    def test_zero_length_bound(self, lion):
        assert find_uio(lion, 0, 0) is None

    def test_bad_state_rejected(self, lion):
        with pytest.raises(StateTableError):
            find_uio(lion, 7, 2)

    def test_negative_length_rejected(self, lion):
        with pytest.raises(StateTableError):
            find_uio(lion, 0, -1)

    def test_budget_exhaustion_raises(self, shiftreg):
        # shiftreg needs depth-3 searches; a one-node budget cannot finish.
        with pytest.raises(SearchBudgetExceeded) as info:
            find_uio(shiftreg, 0, max_length=3, node_budget=1)
        assert info.value.nodes_expanded > 1

    def test_budget_recorded_in_table(self, shiftreg):
        table = compute_uio_table(shiftreg, node_budget=1)
        assert table.budget_exhausted  # searches cut off, not proven absent

    def test_equivalent_sibling_never_has_uio(self):
        builder = StateTableBuilder(1, 1)
        builder.add("a", 0, "b", 0)
        builder.add("a", 1, "a", 1)
        builder.add("b", 0, "a", 1)
        builder.add("b", 1, "b", 0)
        builder.add("c", 0, "a", 1)  # c mimics b exactly
        builder.add("c", 1, "c", 0)
        # make b and c truly equivalent: same outputs, merging successors
        table = builder.build()
        assert find_uio(table, 1, 8) is None or find_uio(table, 2, 8) is not None


class TestInputClassRepresentatives:
    def test_lion_has_no_duplicate_columns(self, lion):
        assert input_class_representatives(lion) == (0, 1, 2, 3)

    def test_duplicate_columns_merge(self):
        builder = StateTableBuilder(2, 1)
        for state in ("a", "b"):
            other = "b" if state == "a" else "a"
            out = 0 if state == "a" else 1
            builder.add(state, 0b00, other, out)
            builder.add(state, 0b01, other, out)  # same column as 00
            builder.add(state, 0b10, state, out)
            builder.add(state, 0b11, state, out)  # same column as 10
        table = builder.build()
        assert input_class_representatives(table) == (0, 2)

    def test_representatives_preserve_uio_existence(self):
        """A UIO found via representatives is valid for the full machine."""
        builder = StateTableBuilder(2, 1)
        builder.add("a", 0b00, "a", 0)
        builder.add("a", 0b01, "a", 0)
        builder.add("a", 0b10, "b", 1)
        builder.add("a", 0b11, "b", 1)
        builder.add("b", 0b00, "b", 1)
        builder.add("b", 0b01, "b", 1)
        builder.add("b", 0b10, "a", 0)
        builder.add("b", 0b11, "a", 0)
        table = builder.build()
        seq = find_uio(table, 0, 2)
        assert seq is not None
        reference = table.response(0, seq.inputs)
        assert table.response(1, seq.inputs) != reference


class TestUioTable:
    def test_get_and_has(self, lion):
        table = compute_uio_table(lion)
        assert table.has(0) and not table.has(1)
        assert table.get(1) is None

    def test_iteration(self, lion):
        table = compute_uio_table(lion)
        assert {seq.state for seq in table} == {0, 2}

    def test_verify_rejects_tampering(self, lion):
        table = compute_uio_table(lion)
        table.sequences[1] = UioSequence(1, (0b00,), 1)  # not a real UIO
        with pytest.raises(StateTableError):
            table.verify(lion)

    def test_default_length_is_n_sv(self, lion):
        assert compute_uio_table(lion).max_length == lion.n_state_variables

"""Test-program lint rules: generated scan tests against their machine.

The analyzer cross-checks a :class:`~repro.core.testset.TestSet` (plus the
:class:`~repro.core.config.GeneratorConfig` and optional
:class:`~repro.uio.search.UioTable` that produced it) against the state
table it claims to test.  This is the proof-carrying-test view: the test
program carries structured claims (segments, landings, per-transition
credits) and every claim is re-derived from the machine definition.

Rule ids
--------
======  ====================  ========  =========
id      name                  severity  cost
======  ====================  ========  =========
TST001  test-uio-length       WARNING   cheap
TST002  test-landing          ERROR     cheap
TST003  test-input-range      ERROR     cheap
TST004  test-coverage-claim   ERROR     cheap
TST005  test-coverage-gap     WARNING   cheap
TST006  test-transfer-length  WARNING   cheap
======  ====================  ========  =========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.config import GeneratorConfig
from repro.core.testset import ScanTest, SegmentKind, TestSet
from repro.fsm.state_table import StateTable
from repro.lint.diagnostics import (
    Diagnostic,
    LintReport,
    Severity,
    cap_diagnostics,
)
from repro.lint.registry import Rule, register, rule_index, rules_for
from repro.uio.search import UioTable

__all__ = ["TestProgramArtifact", "analyze_test_program"]


@dataclass
class TestProgramArtifact:
    """What the test-program rules see."""

    name: str
    table: StateTable
    tests: Sequence[ScanTest]
    config: GeneratorConfig | None = None
    uio_table: UioTable | None = None

    @property
    def uio_length_cap(self) -> int:
        """The effective bound ``L`` the program was generated under."""
        if self.config is not None:
            return self.config.resolved_uio_length(self.table.n_state_variables)
        if self.uio_table is not None:
            return self.uio_table.max_length
        return self.table.n_state_variables

    def in_range(self, combination: int) -> bool:
        return 0 <= combination < self.table.n_input_combinations

    def test_label(self, index: int) -> str:
        return f"test {index}"


@register
class UioLengthRule(Rule):
    rule_id = "TST001"
    name = "test-uio-length"
    severity = Severity.WARNING
    domain = "test"
    cost = "cheap"
    description = "UIO segments must respect the configured length cap L"

    def check(self, context: TestProgramArtifact) -> Iterator[Diagnostic]:
        cap = context.uio_length_cap

        def findings() -> Iterator[Diagnostic]:
            if context.uio_table is not None:
                for sequence in context.uio_table:
                    if sequence.length > cap:
                        yield self.diagnostic(
                            f"stored UIO for state {sequence.state} has length "
                            f"{sequence.length}, cap is L = {cap}",
                            location=f"uio-table state {sequence.state}",
                            hint="recompute the UIO table with the same bound "
                            "the generator uses",
                            artifact=context.name,
                        )
            for test_index, test in enumerate(context.tests):
                for seg_index, segment in enumerate(test.segments):
                    if segment.kind is not SegmentKind.UIO:
                        continue
                    if len(segment.inputs) > cap:
                        yield self.diagnostic(
                            f"UIO segment of length {len(segment.inputs)} "
                            f"exceeds the cap L = {cap}",
                            location=(
                                f"{context.test_label(test_index)}, "
                                f"segment {seg_index}"
                            ),
                            hint="a UIO longer than L costs more cycles than "
                            "the scan-out it replaces",
                            artifact=context.name,
                        )

        yield from cap_diagnostics(findings())


@register
class LandingRule(Rule):
    rule_id = "TST002"
    name = "test-landing"
    severity = Severity.ERROR
    domain = "test"
    cost = "cheap"
    description = "segment chaining and final states must match the machine"

    def check(self, context: TestProgramArtifact) -> Iterator[Diagnostic]:
        table = context.table

        def findings() -> Iterator[Diagnostic]:
            for test_index, test in enumerate(context.tests):
                if not 0 <= test.initial_state < table.n_states:
                    continue  # TST003 reports out-of-range starts
                state = test.initial_state
                broken = False
                for seg_index, segment in enumerate(test.segments):
                    if segment.start_state != state:
                        yield self.diagnostic(
                            f"segment {seg_index} ({segment.kind.value}) claims "
                            f"start state {segment.start_state}, the machine "
                            f"is in state {state}",
                            location=(
                                f"{context.test_label(test_index)}, "
                                f"segment {seg_index}"
                            ),
                            hint="a transfer sequence did not land on its "
                            "claimed state",
                            artifact=context.name,
                        )
                        broken = True
                        break
                    if not all(context.in_range(c) for c in segment.inputs):
                        broken = True  # TST003 reports the bad input
                        break
                    state = table.final_state(state, segment.inputs)
                if broken:
                    continue
                if not test.segments:
                    if not all(context.in_range(c) for c in test.inputs):
                        continue
                    state = table.final_state(test.initial_state, test.inputs)
                if state != test.final_state:
                    yield self.diagnostic(
                        f"test records final state {test.final_state}, the "
                        f"machine reaches state {state}",
                        location=context.test_label(test_index),
                        hint="the scan-out comparison would flag a fault-free "
                        "circuit as faulty",
                        artifact=context.name,
                    )

        yield from cap_diagnostics(findings())


@register
class InputRangeRule(Rule):
    rule_id = "TST003"
    name = "test-input-range"
    severity = Severity.ERROR
    domain = "test"
    cost = "cheap"
    description = "tests may only reference existing states and input combinations"

    def check(self, context: TestProgramArtifact) -> Iterator[Diagnostic]:
        table = context.table

        def findings() -> Iterator[Diagnostic]:
            for test_index, test in enumerate(context.tests):
                if not 0 <= test.initial_state < table.n_states:
                    yield self.diagnostic(
                        f"initial state {test.initial_state} is outside "
                        f"[0, {table.n_states})",
                        location=context.test_label(test_index),
                        artifact=context.name,
                    )
                for position, combination in enumerate(test.inputs):
                    if not context.in_range(combination):
                        yield self.diagnostic(
                            f"input combination {combination} at position "
                            f"{position} is outside "
                            f"[0, {table.n_input_combinations})",
                            location=context.test_label(test_index),
                            hint=f"the machine has {table.n_inputs} primary "
                            "input bit(s)",
                            artifact=context.name,
                        )

        yield from cap_diagnostics(findings())


@register
class CoverageClaimRule(Rule):
    rule_id = "TST004"
    name = "test-coverage-claim"
    severity = Severity.ERROR
    domain = "test"
    cost = "cheap"
    description = "claimed transitions must be exercised by a TRANSITION segment"

    def check(self, context: TestProgramArtifact) -> Iterator[Diagnostic]:
        def findings() -> Iterator[Diagnostic]:
            for test_index, test in enumerate(context.tests):
                exercised = {
                    (segment.start_state, segment.inputs[0])
                    for segment in test.segments
                    if segment.kind is SegmentKind.TRANSITION
                }
                for state, combination in test.tested:
                    if (state, combination) not in exercised:
                        yield self.diagnostic(
                            f"claims transition (state {state}, input "
                            f"{combination}) but no TRANSITION segment "
                            "exercises it",
                            location=context.test_label(test_index),
                            hint="the schedule never applies this input in "
                            "this state, so the credit is unearned",
                            artifact=context.name,
                        )

        yield from cap_diagnostics(findings())


@register
class CoverageGapRule(Rule):
    rule_id = "TST005"
    name = "test-coverage-gap"
    severity = Severity.WARNING
    domain = "test"
    cost = "cheap"
    description = "every machine transition should be claimed by some test"

    def check(self, context: TestProgramArtifact) -> Iterator[Diagnostic]:
        table = context.table
        claimed: set[tuple[int, int]] = set()
        for test in context.tests:
            claimed.update(test.tested)
        missing = [
            (state, combination)
            for state in range(table.n_states)
            for combination in range(table.n_input_combinations)
            if (state, combination) not in claimed
        ]
        if not missing:
            return
        examples = ", ".join(f"({s}, {c})" for s, c in missing[:5])
        yield self.diagnostic(
            f"{len(missing)} of {table.n_transitions} transitions are never "
            f"claimed by any test, e.g. {examples}",
            hint="transitions credited only incidentally (inside UIO or "
            "transfer segments) are verified probabilistically at best",
            artifact=context.name,
        )


@register
class TransferLengthRule(Rule):
    rule_id = "TST006"
    name = "test-transfer-length"
    severity = Severity.WARNING
    domain = "test"
    cost = "cheap"
    description = "transfer segments must respect the configured length cap T"

    def check(self, context: TestProgramArtifact) -> Iterator[Diagnostic]:
        config = context.config
        if config is None:
            return
        cap = config.max_transfer_length

        def findings() -> Iterator[Diagnostic]:
            for test_index, test in enumerate(context.tests):
                for seg_index, segment in enumerate(test.segments):
                    if segment.kind is not SegmentKind.TRANSFER:
                        continue
                    if cap == 0 or len(segment.inputs) > cap:
                        yield self.diagnostic(
                            f"transfer segment of length {len(segment.inputs)} "
                            f"exceeds the cap T = {cap}",
                            location=(
                                f"{context.test_label(test_index)}, "
                                f"segment {seg_index}"
                            ),
                            artifact=context.name,
                        )

        yield from cap_diagnostics(findings())


def analyze_test_program(
    table: StateTable,
    tests: TestSet | Sequence[ScanTest],
    config: GeneratorConfig | None = None,
    uio_table: UioTable | None = None,
    *,
    errors_only: bool = False,
    name: str = "",
) -> LintReport:
    """Run the test-program rules over ``tests`` against ``table``."""
    if isinstance(tests, TestSet):
        artifact_name = name or tests.machine_name or table.name
        test_list: Sequence[ScanTest] = tests.tests
    else:
        artifact_name = name or table.name
        test_list = list(tests)
    artifact = TestProgramArtifact(artifact_name, table, test_list, config, uio_table)
    rules = rules_for("test", errors_only=errors_only)
    diagnostics: list[Diagnostic] = []
    for rule in rules:
        diagnostics.extend(rule.check(artifact))
    return LintReport(tuple(diagnostics), rule_index(rules))

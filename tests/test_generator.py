"""Behavioural tests of the test generation procedure on many machines."""

from __future__ import annotations

import pytest

from repro.benchmarks import circuit_names, load_circuit
from repro.core.config import GeneratorConfig
from repro.core.coverage import verify_test_set
from repro.core.generator import generate_tests
from repro.core.testset import SegmentKind
from repro.errors import GenerationError

SMALL = sorted(circuit_names("small"))


class TestInvariantsAcrossCircuits:
    @pytest.mark.parametrize("name", SMALL)
    def test_every_transition_covered_and_verified(self, name):
        table = load_circuit(name)
        result = generate_tests(table)
        report = verify_test_set(table, result.test_set)
        assert report.is_complete, report.missing

    @pytest.mark.parametrize("name", SMALL)
    def test_fewer_tests_than_transitions(self, name):
        table = load_circuit(name)
        result = generate_tests(table)
        assert result.n_tests <= table.n_transitions

    @pytest.mark.parametrize("name", SMALL)
    def test_each_transition_credited_exactly_once(self, name):
        table = load_circuit(name)
        result = generate_tests(table)
        credited = [key for test in result.test_set for key in test.tested]
        assert len(credited) == table.n_transitions
        assert len(set(credited)) == table.n_transitions

    @pytest.mark.parametrize("name", SMALL)
    def test_tests_structurally_consistent(self, name):
        table = load_circuit(name)
        result = generate_tests(table)
        for test in result.test_set:
            test.check_consistency(table)

    @pytest.mark.parametrize("name", ["bbtas", "dk512", "lion", "train11"])
    def test_deterministic(self, name):
        table = load_circuit(name)
        first = generate_tests(table)
        second = generate_tests(table)
        assert [t.inputs for t in first.test_set] == [t.inputs for t in second.test_set]


class TestTransferBound:
    def test_no_transfer_mode_has_no_transfer_segments(self):
        table = load_circuit("dk27")
        config = GeneratorConfig(max_transfer_length=0)
        result = generate_tests(table, config)
        kinds = {
            segment.kind for test in result.test_set for segment in test.segments
        }
        assert SegmentKind.TRANSFER not in kinds
        assert verify_test_set(table, result.test_set).is_complete

    def test_no_transfer_needs_at_least_as_many_tests(self):
        """Table 8's message: dropping transfers shortens chains."""
        table = load_circuit("dk27")
        with_transfer = generate_tests(table, GeneratorConfig(max_transfer_length=1))
        without = generate_tests(table, GeneratorConfig(max_transfer_length=0))
        assert without.n_tests >= with_transfer.n_tests
        assert without.total_length <= with_transfer.total_length

    def test_longer_transfer_bound_accepted(self):
        table = load_circuit("bbtas")
        result = generate_tests(table, GeneratorConfig(max_transfer_length=2))
        assert verify_test_set(table, result.test_set).is_complete


class TestUioBound:
    def test_zero_length_gives_per_transition_tests(self, lion):
        result = generate_tests(lion, GeneratorConfig(max_uio_length=0))
        assert result.n_tests == lion.n_transitions
        assert all(test.length == 1 for test in result.test_set)

    def test_longer_bound_never_loses_coverage(self, lion):
        for bound in range(0, 5):
            result = generate_tests(lion, GeneratorConfig(max_uio_length=bound))
            assert verify_test_set(lion, result.test_set).is_complete

    def test_uio_count_monotone_in_bound(self, lion):
        from repro.uio.search import compute_uio_table

        found = [compute_uio_table(lion, bound).n_found for bound in range(4)]
        assert found == sorted(found)


class TestPostponeRule:
    def test_postpone_off_still_covers(self, lion):
        config = GeneratorConfig(postpone_no_uio_starts=False)
        result = generate_tests(lion, config)
        assert verify_test_set(lion, result.test_set).is_complete

    def test_postpone_on_defers_uio_less_starts(self, lion):
        """With the rule on, no first-pass test starts with a transition to a
        UIO-less state unless nothing else remains (the paper's τ5..τ8)."""
        result = generate_tests(lion)
        # τ2 starts with 1 --11--> 0 whose next state 0 HAS a UIO; the four
        # length-1 leftovers all end in state 3 (no UIO).
        leftovers = [t for t in result.test_set if t.length == 1]
        assert len(leftovers) == 4
        assert all(t.final_state == 3 for t in leftovers)


class TestScanRatio:
    def test_ratio_scales_scan_contribution(self, lion_result):
        cycles_1 = lion_result.test_set.clock_cycles(scan_ratio=1)
        cycles_3 = lion_result.test_set.clock_cycles(scan_ratio=3)
        scan_part = lion_result.test_set.n_state_variables * (
            lion_result.n_tests + 1
        )
        assert cycles_3 - cycles_1 == 2 * scan_part

    def test_bad_ratio_rejected(self, lion_result):
        with pytest.raises(GenerationError):
            lion_result.test_set.clock_cycles(scan_ratio=0)


class TestIncidentalCredit:
    def test_incidental_mode_still_covers_everything(self):
        table = load_circuit("dk512")
        config = GeneratorConfig(credit_incidental=True)
        result = generate_tests(table, config)
        exercised = result.test_set.covered_transitions() | set(
            result.incidental_credits
        )
        assert len(exercised) == table.n_transitions

    def test_incidental_reduces_or_equals_test_count(self):
        table = load_circuit("dk512")
        plain = generate_tests(table)
        credited = generate_tests(table, GeneratorConfig(credit_incidental=True))
        assert credited.n_tests <= plain.n_tests

    def test_incidental_credits_reported(self):
        table = load_circuit("dk512")
        result = generate_tests(table, GeneratorConfig(credit_incidental=True))
        # The strict checker treats incidental credits as exercised-only.
        report = verify_test_set(table, result.test_set)
        assert set(result.incidental_credits) <= report.exercised


class TestSingleStateMachine:
    def test_one_state_machine(self):
        from repro.fsm.builders import StateTableBuilder

        builder = StateTableBuilder(1, 1)
        builder.add("only", 0, "only", 0)
        builder.add("only", 1, "only", 1)
        table = builder.build()
        result = generate_tests(table)
        report = verify_test_set(table, result.test_set)
        assert report.is_complete

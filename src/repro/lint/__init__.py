"""Rule-based static analysis for state tables, netlists, and test programs.

The paper's procedure silently assumes well-formed inputs: a completely
specified, deterministic Mealy machine, netlists free of combinational
cycles, tests whose structured claims (segments, landings, coverage
credits) actually hold.  This package makes those assumptions checkable —
every artifact the pipeline consumes or produces can be swept by a registry
of :class:`~repro.lint.registry.Rule` classes producing
:class:`~repro.lint.diagnostics.Diagnostic` findings, before the expensive
UIO search or fault simulation ever runs.

Three analyzers cover the three artifact kinds:

* :func:`analyze_machine` — KISS machines and dense state tables
  (completeness, determinism, reachability, trap states, equivalent state
  pairs, cube/output widths, KISS round-trip, table domains);
* :func:`analyze_netlist` — netlists and scan circuits (combinational
  cycles via SCC detection, undriven nets, dangling logic, fanin arity,
  missing outputs, scan-chain integrity, plus the :mod:`repro.sca`-powered
  semantic rules: proven-constant nets, unobservable logic, dead input
  cones, certificate-proved redundant faults, pathological SCOAP scores);
* :func:`analyze_test_program` — generated scan tests against their machine
  (UIO length caps, landing states, input ranges, coverage claims and
  gaps, transfer length caps).

The ``repro-fsatpg lint`` CLI subcommand runs all three over benchmark
circuits or KISS2 files with human-readable or SARIF-like JSON output; the
library itself wires the cheap ERROR-level subset in as preflight checks
(:mod:`repro.lint.preflight`) inside ``generate_tests``, the fault
simulator, ``Netlist.check()``, and the KISS expansion.
"""

from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.registry import Rule, all_rules, get_rule, register, rules_for
from repro.lint.fsm_rules import MachineArtifact, analyze_machine, lint_kiss_source
from repro.lint.netlist_rules import NetlistArtifact, analyze_netlist
from repro.lint import sca_rules as _sca_rules  # noqa: F401  (registers NET007-011)
from repro.lint.test_rules import TestProgramArtifact, analyze_test_program
from repro.lint.preflight import forget_netlist, preflight_machine, preflight_netlist

__all__ = [
    "Diagnostic",
    "LintReport",
    "Severity",
    "Rule",
    "register",
    "rules_for",
    "get_rule",
    "all_rules",
    "MachineArtifact",
    "analyze_machine",
    "lint_kiss_source",
    "NetlistArtifact",
    "analyze_netlist",
    "TestProgramArtifact",
    "analyze_test_program",
    "preflight_machine",
    "preflight_netlist",
    "forget_netlist",
]

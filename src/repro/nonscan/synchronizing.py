"""Synchronizing and homing sequences for non-scan machines.

A *synchronizing sequence* drives the machine into one known state from any
initial state (no outputs consulted); a *homing sequence* lets the tester
deduce the final state from the observed outputs.  Without scan these are
the only ways to establish a known state, and neither is guaranteed to
exist — the first structural advantage of full scan.

Both searches are breadth-first over state-set "uncertainty" nodes with
memoization and a node budget (the synchronizing-sequence decision problem
is polynomial, but shortest sequences are NP-hard; budgets keep worst cases
bounded the same way the UIO search is bounded).
"""

from __future__ import annotations

from repro.errors import SearchBudgetExceeded, StateTableError
from repro.fsm.state_table import StateTable
from repro.uio.search import DEFAULT_NODE_BUDGET, input_class_representatives

__all__ = ["find_synchronizing_sequence", "find_homing_sequence"]


def find_synchronizing_sequence(
    table: StateTable,
    max_length: int | None = None,
    node_budget: int = DEFAULT_NODE_BUDGET,
) -> tuple[int, ...] | None:
    """Shortest input sequence driving every state to one state.

    Returns ``None`` when no synchronizing sequence exists within
    ``max_length`` (default ``n_states**2``, enough for any synchronizable
    machine by the classic pairwise-merging bound).
    """
    if max_length is None:
        max_length = table.n_states ** 2
    representatives = input_class_representatives(table)
    start = frozenset(range(table.n_states))
    if len(start) == 1:
        return ()
    visited = {start}
    frontier: list[tuple[frozenset[int], tuple[int, ...]]] = [(start, ())]
    expanded = 0
    for _depth in range(max_length):
        next_frontier: list[tuple[frozenset[int], tuple[int, ...]]] = []
        for states, prefix in frontier:
            expanded += 1
            if expanded > node_budget:
                raise SearchBudgetExceeded(
                    f"synchronizing search exceeded {node_budget} nodes",
                    expanded,
                )
            for combo in representatives:
                successors = frozenset(
                    int(table.next_state[state, combo]) for state in states
                )
                sequence = prefix + (combo,)
                if len(successors) == 1:
                    return sequence
                if successors not in visited:
                    visited.add(successors)
                    next_frontier.append((successors, sequence))
        if not next_frontier:
            return None
        frontier = next_frontier
    return None


def find_homing_sequence(
    table: StateTable,
    max_length: int | None = None,
    node_budget: int = DEFAULT_NODE_BUDGET,
) -> tuple[int, ...] | None:
    """Shortest preset homing sequence.

    After applying it, the output response uniquely determines the final
    state.  The node is the partition of still-possible current states by
    observed output history, represented as a frozenset of state-sets; the
    goal is every block being a singleton.  Every minimal (reduced) machine
    has one; unreduced machines may not.
    """
    if max_length is None:
        max_length = table.n_states ** 2
    representatives = input_class_representatives(table)
    start: frozenset[frozenset[int]] = frozenset([frozenset(range(table.n_states))])

    def is_homed(partition: frozenset[frozenset[int]]) -> bool:
        return all(len(block) == 1 for block in partition)

    if is_homed(start):
        return ()
    visited = {start}
    frontier: list[tuple[frozenset[frozenset[int]], tuple[int, ...]]] = [(start, ())]
    expanded = 0
    for _depth in range(max_length):
        next_frontier: list[tuple[frozenset[frozenset[int]], tuple[int, ...]]] = []
        for partition, prefix in frontier:
            expanded += 1
            if expanded > node_budget:
                raise SearchBudgetExceeded(
                    f"homing search exceeded {node_budget} nodes", expanded
                )
            for combo in representatives:
                blocks: set[frozenset[int]] = set()
                for block in partition:
                    by_output: dict[int, set[int]] = {}
                    for state in block:
                        output = int(table.output[state, combo])
                        by_output.setdefault(output, set()).add(
                            int(table.next_state[state, combo])
                        )
                    for successors in by_output.values():
                        blocks.add(frozenset(successors))
                successor_partition = frozenset(blocks)
                sequence = prefix + (combo,)
                if is_homed(successor_partition):
                    return sequence
                if successor_partition not in visited:
                    visited.add(successor_partition)
                    next_frontier.append((successor_partition, sequence))
        if not next_frontier:
            return None
        frontier = next_frontier
    return None


def synchronized_state(table: StateTable, sequence: tuple[int, ...]) -> int:
    """The single state reached by ``sequence`` from every start state.

    Raises :class:`StateTableError` when ``sequence`` does not synchronize.
    """
    finals = {table.final_state(state, sequence) for state in range(table.n_states)}
    if len(finals) != 1:
        raise StateTableError("sequence does not synchronize the machine")
    return finals.pop()

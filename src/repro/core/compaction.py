"""Static compaction of scan test sets.

Two mechanisms from the paper:

* :func:`select_effective_tests` — the Table 3 / Table 6 procedure: simulate
  tests in decreasing length order against a fault universe with fault
  dropping; keep only the tests that detect at least one new fault.  The
  simulation itself is pluggable (gate-level stuck-at, gate-level bridging,
  or functional state-transition faults all reuse this driver).

* :func:`combine_tests` — the functional counterpart of the static
  compaction of reference [7]: combining tests ``τ_i`` and ``τ_j`` removes
  the scan-out of ``τ_i`` and the scan-in of ``τ_j``.  This is possible
  whenever ``τ_i`` ends in the state ``τ_j`` starts from, and is accepted
  only when a caller-supplied coverage evaluation does not degrade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable

from repro.core.testset import ScanTest, TestSet
from repro.errors import GenerationError

__all__ = ["EffectiveSelection", "select_effective_tests", "combine_tests"]


@dataclass
class EffectiveSelection:
    """Result of the reverse-length effective-test selection.

    ``rows`` mirrors the paper's Table 3: one entry per simulated test, in
    simulation order, with the cumulative number of detected faults and an
    effectiveness flag.
    """

    effective: TestSet
    rows: list[tuple[ScanTest, int, bool]]
    detected: frozenset[Hashable]
    n_faults: int

    @property
    def n_effective(self) -> int:
        return self.effective.n_tests

    @property
    def effective_length(self) -> int:
        return self.effective.total_length

    @property
    def coverage_pct(self) -> float:
        if self.n_faults == 0:
            return 100.0
        return 100.0 * len(self.detected) / self.n_faults


def select_effective_tests(
    test_set: TestSet,
    simulate: Callable[[ScanTest, frozenset[Hashable]], Iterable[Hashable]],
    all_faults: Iterable[Hashable],
    stop_when_exhausted: Iterable[Hashable] = (),
) -> EffectiveSelection:
    """Simulate tests longest-first with fault dropping; keep effective ones.

    Parameters
    ----------
    test_set:
        The candidate tests.
    simulate:
        ``simulate(test, remaining)`` returns the faults from ``remaining``
        that ``test`` detects.  It is never called with an empty remainder.
    all_faults:
        The fault universe.
    stop_when_exhausted:
        Faults known to be undetectable (e.g. combinationally redundant, as
        proven by the exhaustive oracle).  Under full scan a sequentially
        detectable fault is combinationally detectable — a diverging next
        state must first appear on an observable next-state line — so these
        faults are excluded from simulation outright: they can never make a
        test effective, and once every detectable fault has been found the
        remaining tests are skipped without simulating them.  This
        reproduces the paper's observation that most length-1 tests are
        unnecessary, without paying to simulate them.
    """
    universe = set(all_faults)
    n_faults = len(universe)
    undetectable = set(stop_when_exhausted)
    remaining = universe - undetectable
    detected: set[Hashable] = set()
    effective: list[ScanTest] = []
    rows: list[tuple[ScanTest, int, bool]] = []
    for test in test_set.by_decreasing_length():
        if not remaining:
            rows.append((test, len(detected), False))
            continue
        newly = set(simulate(test, frozenset(remaining)))
        if not newly <= remaining:
            raise GenerationError("simulate() reported faults outside the remainder")
        remaining -= newly
        detected |= newly
        is_effective = bool(newly)
        if is_effective:
            effective.append(test)
        rows.append((test, len(detected), is_effective))
    return EffectiveSelection(
        test_set.subset(effective),
        rows,
        frozenset(detected),
        n_faults,
    )


def combine_tests(
    test_set: TestSet,
    evaluate: Callable[[TestSet], float] | None = None,
) -> TestSet:
    """Greedily chain tests whose endpoint states match (reference [7]).

    Combining ``τ_i`` then ``τ_j`` is considered whenever
    ``τ_i.final_state == τ_j.initial_state``; the combined test concatenates
    the segments, so one scan-out/scan-in pair disappears.  When ``evaluate``
    is given (any score where higher is better — typically verified-coverage
    from :func:`repro.core.coverage.verify_test_set`), a combination is kept
    only if the score does not drop; without it all structurally possible
    combinations are kept.

    Note the trade-off the paper's model makes visible: combination removes
    the scan-out that *verified* ``τ_i``'s final transition, so with a strict
    evaluator many combinations are rejected unless that transition is also
    verified elsewhere.
    """
    current = list(test_set.tests)
    baseline = evaluate(test_set) if evaluate is not None else None
    changed = True
    while changed:
        changed = False
        for i, left in enumerate(current):
            for j, right in enumerate(current):
                if i == j or left.final_state != right.initial_state:
                    continue
                merged = ScanTest(
                    left.initial_state,
                    left.inputs + right.inputs,
                    right.final_state,
                    left.segments + right.segments,
                    left.tested + right.tested,
                )
                candidate = [
                    merged if k == i else test
                    for k, test in enumerate(current)
                    if k != j
                ]
                candidate_set = TestSet(
                    test_set.machine_name,
                    test_set.n_state_variables,
                    test_set.n_transitions,
                    candidate,
                )
                if baseline is not None and evaluate(candidate_set) < baseline:
                    continue
                current = candidate
                changed = True
                break
            if changed:
                break
    return TestSet(
        test_set.machine_name,
        test_set.n_state_variables,
        test_set.n_transitions,
        current,
    )

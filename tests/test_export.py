"""Unit tests for test-set export/import."""

from __future__ import annotations

import pytest

from repro.core.coverage import verify_test_set
# module-qualified access: pytest would otherwise collect imported
# ``test_set_*`` functions as test items
from repro.core import export
from repro.errors import GenerationError


class TestJsonRoundTrip:
    def test_lossless(self, lion_result):
        text = export.test_set_to_json(lion_result.test_set)
        again = export.test_set_from_json(text)
        assert again.machine_name == lion_result.test_set.machine_name
        assert again.n_state_variables == lion_result.test_set.n_state_variables
        assert again.tests == lion_result.test_set.tests

    def test_reimported_set_passes_strict_checker(self, lion, lion_result):
        again = export.test_set_from_json(export.test_set_to_json(lion_result.test_set))
        assert verify_test_set(lion, again).is_complete

    def test_bad_json_rejected(self):
        with pytest.raises(GenerationError, match="JSON"):
            export.test_set_from_json("{not json")

    def test_wrong_format_rejected(self):
        with pytest.raises(GenerationError, match="repro-scan-tests"):
            export.test_set_from_json('{"format": "something-else"}')

    def test_wrong_version_rejected(self):
        with pytest.raises(GenerationError, match="version"):
            export.test_set_from_json(
                '{"format": "repro-scan-tests", "version": 99, "tests": []}'
            )


class TestVectors:
    def test_contains_expected_responses(self, lion, lion_result):
        text = export.test_set_to_vectors(lion_result.test_set, lion)
        # τ0 applies 00 from state 0: expected output 0; then 00 from 0 again.
        assert "test 0" in text
        assert "scan-in  00" in text
        assert "apply    00 -> observe 0" in text
        assert "scan-out 01" in text  # τ0 ends in state 1

    def test_block_count(self, lion, lion_result):
        text = export.test_set_to_vectors(lion_result.test_set, lion)
        assert text.count("test ") == lion_result.n_tests
        assert text.count("scan-in") == lion_result.n_tests
        assert text.count("scan-out") == lion_result.n_tests

    def test_inconsistent_final_state_rejected(self, lion, lion_result):
        from repro.core.testset import ScanTest, TestSet

        broken = TestSet(
            "lion",
            2,
            16,
            [ScanTest(0, (0b01,), 3)],  # really reaches state 1
        )
        with pytest.raises(GenerationError, match="final state"):
            export.test_set_to_vectors(broken, lion)

"""State-assignment (encoding) tests across the gate-level stack.

The functional tests are implementation-independent; switching the state
assignment from natural to Gray changes the synthesized logic and its fault
universe, but never the behaviour nor the complete-coverage result.  These
tests drive every encoding-aware component end to end.
"""

from __future__ import annotations

import pytest

from repro.benchmarks import load_circuit, load_kiss_machine
from repro.core.generator import generate_tests
from repro.errors import SynthesisError
from repro.fsm.encoding import gray_encoding, natural_encoding
from repro.gatelevel.atpg import generate_stuck_at_atpg
from repro.gatelevel.compiled import CompiledFaultSimulator
from repro.gatelevel.detectability import assigned_pattern_mask, detectable_faults
from repro.gatelevel.fault_sim import detects, simulate_tests
from repro.gatelevel.scan import ScanCircuit
from repro.gatelevel.stuck_at import collapse_stuck_at
from repro.gatelevel.synthesis import SynthesisOptions

CIRCUITS = ["lion", "bbtas", "dk512"]


class TestGrayEncoding:
    def test_codes_are_gray(self, lion):
        encoding = gray_encoding(lion)
        assert encoding.codes == (0b00, 0b01, 0b11, 0b10)
        for first, second in zip(encoding.codes, encoding.codes[1:]):
            assert bin(first ^ second).count("1") == 1

    def test_bad_encoding_name_rejected(self):
        with pytest.raises(SynthesisError):
            SynthesisOptions(encoding="one-hot")


class TestGrayGateLevel:
    @pytest.mark.parametrize("name", CIRCUITS)
    def test_gray_circuit_equivalent_to_table(self, name):
        table = load_circuit(name)
        circuit = ScanCircuit.from_machine(
            load_kiss_machine(name), SynthesisOptions(encoding="gray", max_fanin=4)
        )
        circuit.verify_against(table)

    @pytest.mark.parametrize("name", CIRCUITS)
    def test_step_returns_state_indices(self, name):
        table = load_circuit(name)
        circuit = ScanCircuit.from_machine(
            load_kiss_machine(name), SynthesisOptions(encoding="gray")
        )
        for state in range(table.n_states):
            for combo in range(table.n_input_combinations):
                assert circuit.step(state, combo) == table.step(state, combo)

    def test_encodings_change_the_logic(self):
        natural = ScanCircuit.from_machine(
            load_kiss_machine("bbtas"), SynthesisOptions(max_fanin=4)
        )
        gray = ScanCircuit.from_machine(
            load_kiss_machine("bbtas"),
            SynthesisOptions(encoding="gray", max_fanin=4),
        )
        assert natural.encoding.codes != gray.encoding.codes

    @pytest.mark.parametrize("name", CIRCUITS)
    def test_functional_tests_cover_gray_implementation_too(self, name):
        """The same functional test set achieves complete detectable
        coverage on the Gray-encoded implementation — implementation
        independence, across state assignments."""
        table = load_circuit(name)
        tests = generate_tests(table).test_set
        circuit = ScanCircuit.from_machine(
            load_kiss_machine(name),
            SynthesisOptions(encoding="gray", max_fanin=4),
        )
        faults = sorted(set(collapse_stuck_at(circuit.netlist).values()))
        mask = assigned_pattern_mask(circuit.encoding, circuit.n_primary_inputs)
        detectable, _ = detectable_faults(
            circuit.netlist, faults, pattern_mask=mask
        )
        result = simulate_tests(circuit, table, tests, sorted(detectable))
        assert result.detected == frozenset(detectable)

    def test_compiled_matches_interpreted_under_gray(self):
        table = load_circuit("lion")
        circuit = ScanCircuit.from_machine(
            load_kiss_machine("lion"),
            SynthesisOptions(encoding="gray", max_fanin=4),
        )
        faults = sorted(set(collapse_stuck_at(circuit.netlist).values()))
        simulator = CompiledFaultSimulator(circuit, table, faults)
        for test in generate_tests(table).test_set:
            assert simulator.detects(test) == frozenset(
                detects(circuit, table, test, faults)
            )

    def test_atpg_under_gray_encoding(self):
        table = load_circuit("lion")
        circuit = ScanCircuit.from_machine(
            load_kiss_machine("lion"), SynthesisOptions(encoding="gray")
        )
        faults = sorted(set(collapse_stuck_at(circuit.netlist).values()))
        atpg = generate_stuck_at_atpg(circuit, table, faults)
        sim = simulate_tests(
            circuit, table, atpg.test_set, list(atpg.target_faults)
        )
        assert sim.detected == frozenset(atpg.target_faults)


class TestAssignedPatternMask:
    def test_mask_selects_assigned_codes_only(self, lion):
        from repro.gatelevel.netlist import unpack_bits

        encoding = gray_encoding(lion)
        mask = assigned_pattern_mask(encoding, lion.n_inputs)
        bits = unpack_bits(mask, 1 << (encoding.width + lion.n_inputs))
        for pattern, selected in enumerate(bits):
            code = pattern >> lion.n_inputs
            assert bool(selected) == (code in encoding.codes)

    def test_natural_mask_matches_legacy_helper(self, lion):
        from repro.gatelevel.detectability import reachable_state_pattern_mask
        import numpy as np

        legacy = reachable_state_pattern_mask(2, lion.n_inputs, lion.n_states)
        modern = assigned_pattern_mask(natural_encoding(lion), lion.n_inputs)
        assert np.array_equal(legacy, modern)

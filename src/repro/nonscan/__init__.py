"""Non-scan functional testing — the paper's comparison point.

The paper's introduction contrasts scan-based functional tests with the
earlier non-scan procedures of Cheng & Jou and Pomeranz & Reddy (its
references [2] and [3]) and observes that without scan, complete gate-level
fault coverage was not reported.  This subpackage implements the non-scan
substrate so that the comparison can be *measured* rather than cited:

* :mod:`repro.nonscan.synchronizing` — synchronizing and homing sequences,
  the only way a non-scan tester can establish a known state;
* :mod:`repro.nonscan.generator` — a checking-experiment style generator
  that produces one long test sequence visiting transitions via transfer
  sequences and verifying next states via UIOs where they exist;
* :mod:`repro.nonscan.simulate` — detection of explicit state-transition
  faults by a single input sequence observed only at the primary outputs.

Two structural handicaps of non-scan testing fall out immediately: states
that are unreachable from the reset state (e.g. the unused codes of a
completed machine) can never be tested, and transitions whose next state
has no UIO can never have their next state verified.  Scan removes both,
which is exactly the paper's argument.
"""

from repro.nonscan.synchronizing import (
    find_homing_sequence,
    find_synchronizing_sequence,
)
from repro.nonscan.generator import NonScanResult, generate_nonscan_sequence
from repro.nonscan.simulate import simulate_nonscan_faults

__all__ = [
    "find_synchronizing_sequence",
    "find_homing_sequence",
    "NonScanResult",
    "generate_nonscan_sequence",
    "simulate_nonscan_faults",
]

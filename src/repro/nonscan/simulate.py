"""Fault simulation of a single non-scan test sequence.

Without scan there is no scan-out comparison: a fault is detected only when
the primary output sequence differs somewhere.  The tester also cannot
force the starting state, so a fault is counted detected only if it is
detected from *every* possible fault-free/faulty starting state pairing
consistent with the establishment strategy:

* with a synchronizing prefix, the faulty machine runs the same prefix from
  every state; the fault must be detected for every resulting start, since
  the tester cannot know which one the silicon picked (conservative
  single-fault interpretation: the faulty machine's synchronizing prefix is
  part of the applied sequence, so simulation simply starts both machines
  from every state pair and requires detection in the worst case);
* with an assumed hardware reset, both machines start in state 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.faultmodel import StateTransitionFault, apply_fault
from repro.errors import FaultSimulationError
from repro.fsm.state_table import StateTable

__all__ = ["NonScanFaultResult", "sequence_detects", "simulate_nonscan_faults"]


@dataclass
class NonScanFaultResult:
    detected: frozenset[StateTransitionFault]
    undetected: frozenset[StateTransitionFault]

    @property
    def n_faults(self) -> int:
        return len(self.detected) + len(self.undetected)

    @property
    def coverage_pct(self) -> float:
        if self.n_faults == 0:
            return 100.0
        return 100.0 * len(self.detected) / self.n_faults


def sequence_detects(
    good: StateTable,
    faulty: StateTable,
    sequence: Sequence[int],
    start_states: Iterable[int],
) -> bool:
    """Does ``sequence`` expose ``faulty`` at the primary outputs?

    Both machines are stepped in lockstep from each start state; detection
    requires an output mismatch for *every* start (worst-case tester
    knowledge).  Final states are deliberately not compared — without scan
    there is no scan-out.  This is also the reference the fuzzing oracles
    cross-check the scan-semantics fault simulation against.
    """
    for start in start_states:
        good_state = start
        bad_state = start
        observed = False
        for combo in sequence:
            good_next, good_out = good.step(good_state, combo)
            bad_next, bad_out = faulty.step(bad_state, combo)
            if good_out != bad_out:
                observed = True
                break
            good_state, bad_state = good_next, bad_next
        if not observed:
            return False  # some start state escapes detection
    return True


def simulate_nonscan_faults(
    table: StateTable,
    sequence: Sequence[int],
    faults: Iterable[StateTransitionFault],
    assume_reset: bool = True,
) -> NonScanFaultResult:
    """Which of ``faults`` does the single ``sequence`` detect?

    With ``assume_reset`` both machines start in state 0; otherwise every
    start state must yield detection (worst-case tester knowledge).
    """
    starts = (0,) if assume_reset else tuple(range(table.n_states))
    detected: set[StateTransitionFault] = set()
    undetected: set[StateTransitionFault] = set()
    for fault in dict.fromkeys(faults):
        if fault.is_noop_for(table):
            raise FaultSimulationError(f"fault {fault} does not change the machine")
        faulty = apply_fault(table, fault)
        if sequence_detects(table, faulty, sequence, starts):
            detected.add(fault)
        else:
            undetected.add(fault)
    return NonScanFaultResult(frozenset(detected), frozenset(undetected))

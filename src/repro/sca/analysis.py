"""The ``repro.sca`` orchestrator: one object holding every static pass.

:func:`analyze` runs the whole static pipeline on a netlist — graph passes,
SCOAP, constant propagation, per-line observability, fault collapsing, and
untestability certificates — and returns a :class:`ScaAnalysis` whose
properties are computed lazily, so cheap consumers (e.g. a lint rule that
only wants constants) do not pay for the full certificate sweep.

:meth:`ScaAnalysis.verify` replays every emitted proof through the
independent checkers in :mod:`repro.sca.implications` /
:mod:`repro.sca.certificates`; :meth:`ScaAnalysis.to_dict` is the JSON
payload behind ``repro-fsatpg analyze --format json`` and
``scripts/validate_sca.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.gatelevel.netlist import Netlist
from repro.gatelevel.stuck_at import StuckAtFault
from repro.sca.certificates import (
    UntestableCertificate,
    prove_untestable,
    verify_certificate,
)
from repro.sca.collapse import CollapsedUniverse, collapse_universe
from repro.sca.graph import (
    FanoutFreeRegions,
    fanout_free_regions,
    immediate_dominators,
    levelize,
)
from repro.sca.implications import (
    ConstantAnalysis,
    propagate_constants,
    site_observability,
    verify_constant_steps,
)
from repro.sca.scoap import ScoapMeasures, compute_scoap

__all__ = ["ScaAnalysis", "analyze"]

#: Schema tag for the JSON payload of :meth:`ScaAnalysis.to_dict`.
SCA_SCHEMA = "repro-fsatpg-sca/1"


@dataclass
class ScaAnalysis:
    """Every static-analysis result for one netlist, computed lazily."""

    netlist: Netlist

    @cached_property
    def levels(self) -> tuple[int, ...]:
        return tuple(levelize(self.netlist))

    @cached_property
    def regions(self) -> FanoutFreeRegions:
        return fanout_free_regions(self.netlist)

    @cached_property
    def dominators(self) -> tuple[int | None, ...]:
        return tuple(immediate_dominators(self.netlist))

    @cached_property
    def scoap(self) -> ScoapMeasures:
        return compute_scoap(self.netlist)

    @cached_property
    def constants(self) -> ConstantAnalysis:
        return propagate_constants(self.netlist)

    @cached_property
    def unobservable(self) -> dict[int, tuple[tuple[int, int], ...]]:
        """Lines proven unobservable → their blocking evidence.

        Includes structurally dead lines (empty evidence: the deviation
        frontier simply never reaches an output) and lines cut off by
        constant controlling side inputs.
        """
        netlist = self.netlist
        constants = self.constants
        blocked: dict[int, tuple[tuple[int, int], ...]] = {}
        for line in range(netlist.n_gates):
            observable, blocks = site_observability(netlist, constants, line)
            if not observable:
                blocked[line] = blocks
        return blocked

    @cached_property
    def universe(self) -> CollapsedUniverse:
        return collapse_universe(self.netlist)

    @cached_property
    def certificates(self) -> tuple[UntestableCertificate, ...]:
        """Untestability proofs for the *representative* faults.

        Equivalence lifts each proof to the whole class: equivalent faults
        are detected by exactly the same tests, so an undetectable
        representative means an undetectable class.
        """
        return prove_untestable(
            self.netlist,
            self.universe.representatives,
            self.constants,
            self.unobservable,
        )

    @cached_property
    def untestable_representatives(self) -> frozenset[StuckAtFault]:
        return frozenset(cert.fault for cert in self.certificates)

    @cached_property
    def untestable_faults(self) -> frozenset[StuckAtFault]:
        """The certified-untestable slice of the *full* fault universe."""
        reps = self.untestable_representatives
        return frozenset(
            fault
            for fault, rep in self.universe.mapping.items()
            if rep in reps
        )

    def materialize(self) -> "ScaAnalysis":
        """Force every lazy pass so the object can be pickled/cached whole.

        ``cached_property`` results live in the instance ``__dict__``, which
        is exactly what pickle serializes — an artifact-cache entry written
        after :meth:`materialize` deserializes with all passes precomputed.
        """
        _ = (
            self.levels,
            self.regions,
            self.dominators,
            self.scoap,
            self.constants,
            self.unobservable,
            self.universe.representatives,
            self.universe.classes,
            self.certificates,
            self.untestable_representatives,
            self.untestable_faults,
        )
        return self

    def verify(self) -> None:
        """Machine-check every emitted proof; raises ``CertificateError``."""
        verified = verify_constant_steps(self.netlist, self.constants.steps)
        for certificate in self.certificates:
            verify_certificate(self.netlist, certificate, verified)

    def to_dict(self, *, include_scoap: bool = True) -> dict[str, object]:
        """JSON payload; see ``scripts/validate_sca.py`` for the contract."""
        netlist = self.netlist
        universe = self.universe
        payload: dict[str, object] = {
            "schema": SCA_SCHEMA,
            "netlist": {
                "gates": netlist.n_gates,
                "inputs": len(netlist.inputs),
                "outputs": len(netlist.outputs),
                "depth": max(self.levels, default=0),
            },
            "regions": {
                "count": self.regions.n_regions,
                "checkpoints": len(netlist.inputs)
                + len(self.regions.branches),
            },
            "collapse": {
                "faults": universe.n_faults,
                "representatives": universe.n_representatives,
                "ratio": round(universe.ratio, 4),
            },
            "constants": [
                {"line": line, "value": value}
                for line, value in sorted(self.constants.as_dict().items())
            ],
            "constant_steps": [
                step.to_dict() for step in self.constants.steps
            ],
            "unobservable": [
                {"line": line, "blocks": [list(block) for block in blocks]}
                for line, blocks in sorted(self.unobservable.items())
            ],
            "certificates": [
                cert.to_dict() for cert in self.certificates
            ],
            "untestable": {
                "representatives": len(self.untestable_representatives),
                "faults": len(self.untestable_faults),
            },
        }
        if include_scoap:
            scoap = self.scoap
            payload["scoap"] = [
                {
                    "line": line,
                    "cc0": scoap.cc0[line],
                    "cc1": scoap.cc1[line],
                    "co": scoap.co[line],
                }
                for line in range(netlist.n_gates)
            ]
        return payload


def analyze(netlist: Netlist) -> ScaAnalysis:
    """Static analysis of ``netlist``; all passes are lazy properties."""
    return ScaAnalysis(netlist)

"""Greedy delta-debugging shrinker for failing machines.

Given a machine on which some oracle fails and a *predicate* that replays
the failure, :func:`shrink_machine` repeatedly applies structure-preserving
reductions — drop a state, drop an input bit, drop an output bit, zero an
output entry — keeping each change only when the predicate still holds.
The loop runs to a fixed point, so the result is 1-minimal with respect to
these operations: removing any single remaining state or bit makes the
failure disappear.

Every reduction re-closes the table (a dropped state's incoming edges are
redirected onto a surviving state), so intermediate candidates are always
valid completely specified machines and can be fed to any oracle.

Predicates that *raise* are treated as "failure gone": a candidate that
crashes a different layer is a different bug, and chasing it would make the
shrink non-deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.errors import FuzzError
from repro.fsm.state_table import StateTable

__all__ = [
    "ShrinkResult",
    "drop_input_bit",
    "drop_output_bit",
    "drop_state",
    "shrink_machine",
]

Predicate = Callable[[StateTable], bool]


@dataclass(frozen=True)
class ShrinkResult:
    """Outcome of one shrink run."""

    table: StateTable
    attempts: int
    accepted: int

    @property
    def reduced(self) -> bool:
        return self.accepted > 0


def drop_state(table: StateTable, state: int) -> StateTable:
    """``table`` without ``state``; its incoming edges are redirected.

    Edges into the dropped state are re-aimed at its own successor under
    input combination 0 (or, when that successor is the dropped state
    itself, at the first surviving state), which preserves local structure
    far better than collapsing everything onto state 0.
    """
    if table.n_states <= 1:
        raise FuzzError("cannot drop the last state")
    if not 0 <= state < table.n_states:
        raise FuzzError(f"no state {state} to drop")
    fallback = int(table.next_state[state, 0])
    if fallback == state:
        fallback = 0 if state != 0 else 1
    kept = [s for s in range(table.n_states) if s != state]
    renumber = {old: new for new, old in enumerate(kept)}
    next_state = table.next_state[kept, :].copy()
    next_state[next_state == state] = fallback
    next_state = np.vectorize(renumber.__getitem__, otypes=[np.int32])(next_state)
    return StateTable(
        next_state,
        table.output[kept, :],
        table.n_inputs,
        table.n_outputs,
        [table.state_names[s] for s in kept],
        table.name,
    )


def drop_input_bit(table: StateTable, bit: int) -> StateTable:
    """``table`` restricted to the subspace where input ``bit`` is 0.

    ``bit`` counts from the least significant end of the combination
    integer.  The surviving columns keep their relative order, so the
    machine's behaviour under the remaining inputs is unchanged.
    """
    if table.n_inputs <= 0:
        raise FuzzError("no input bits to drop")
    if not 0 <= bit < table.n_inputs:
        raise FuzzError(f"no input bit {bit} to drop")
    low_mask = (1 << bit) - 1
    columns = [
        ((combo >> bit) << (bit + 1)) | (combo & low_mask)
        for combo in range(1 << (table.n_inputs - 1))
    ]
    return StateTable(
        table.next_state[:, columns],
        table.output[:, columns],
        table.n_inputs - 1,
        table.n_outputs,
        table.state_names,
        table.name,
    )


def drop_output_bit(table: StateTable, bit: int) -> StateTable:
    """``table`` with output ``bit`` (LSB-counted) spliced out."""
    if table.n_outputs <= 0:
        raise FuzzError("no output bits to drop")
    if not 0 <= bit < table.n_outputs:
        raise FuzzError(f"no output bit {bit} to drop")
    low_mask = (1 << bit) - 1
    output = ((table.output >> (bit + 1)) << bit) | (table.output & low_mask)
    return StateTable(
        table.next_state,
        output,
        table.n_inputs,
        table.n_outputs - 1,
        table.state_names,
        table.name,
    )


def _zero_output_entry(table: StateTable, state: int, combo: int) -> StateTable:
    output = table.output.copy()
    output[state, combo] = 0
    return StateTable(
        table.next_state,
        output,
        table.n_inputs,
        table.n_outputs,
        table.state_names,
        table.name,
    )


def _candidates(
    table: StateTable,
    min_states: int,
    min_inputs: int,
    min_outputs: int,
) -> Iterator[StateTable]:
    """All one-step reductions of ``table``, most aggressive first."""
    if table.n_states > min_states:
        for state in range(table.n_states - 1, -1, -1):
            yield drop_state(table, state)
    if table.n_inputs > min_inputs:
        for bit in range(table.n_inputs - 1, -1, -1):
            yield drop_input_bit(table, bit)
    if table.n_outputs > min_outputs:
        for bit in range(table.n_outputs - 1, -1, -1):
            yield drop_output_bit(table, bit)
    for state in range(table.n_states):
        for combo in range(table.n_input_combinations):
            if table.output[state, combo]:
                yield _zero_output_entry(table, state, combo)


def shrink_machine(
    table: StateTable,
    predicate: Predicate,
    min_states: int = 1,
    min_inputs: int = 1,
    min_outputs: int = 1,
    max_attempts: int = 2000,
) -> ShrinkResult:
    """Greedily minimize ``table`` while ``predicate`` keeps holding.

    ``predicate(candidate)`` must return ``True`` when the candidate still
    reproduces the failure of interest.  The floors default to 1 so shrunk
    machines stay expressible in the KISS corpus format.  ``max_attempts``
    bounds total predicate evaluations (the shrink is best-effort; hitting
    the bound simply returns the smallest machine found so far).
    """
    if min_states < 1:
        raise FuzzError("min_states must be at least 1")
    if min_inputs < 0 or min_outputs < 0:
        raise FuzzError("shrink floors must be non-negative")
    attempts = 0
    accepted = 0
    current = table
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for candidate in _candidates(current, min_states, min_inputs, min_outputs):
            if attempts >= max_attempts:
                break
            attempts += 1
            try:
                still_failing = bool(predicate(candidate))
            except Exception:
                still_failing = False
            if still_failing:
                current = candidate
                accepted += 1
                progress = True
                break  # restart candidate enumeration from the smaller table
    return ShrinkResult(current, attempts, accepted)

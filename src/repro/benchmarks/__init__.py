"""Benchmark circuits of the paper's evaluation (Table 4).

The paper evaluates 31 MCNC finite-state-machine benchmarks.  ``lion`` and
``shiftreg`` are embedded exactly (the paper prints lion's full state table;
shiftreg is a serial shift register and is reconstructed from its
definition).  The remaining circuits are deterministic synthetic stand-ins
with the exact Table 4 dimensions — see DESIGN.md §3 for why this preserves
the paper's claims.
"""

from repro.benchmarks.registry import (
    CircuitSpec,
    circuit_names,
    get_spec,
    list_specs,
    load_circuit,
    load_kiss_machine,
)

__all__ = [
    "CircuitSpec",
    "circuit_names",
    "get_spec",
    "list_specs",
    "load_circuit",
    "load_kiss_machine",
]

"""Independent verification that a test set tests every state-transition.

The generator *claims* coverage; this module re-derives it from first
principles.  A transition ``s --a--> s'`` counts as **verified** by a test
when the test exercises it from a trusted state (states are trusted because
a test starts with a scan-in and every preceding next state was verified)
and its next state is checked, either by

* a scan-out (the transition is the last thing the test applies), or
* a genuine unique input-output sequence for ``s'`` applied right after it
  (the checker re-proves the distinguishing property against the machine,
  it does not trust the generator), or
* — extension — a *complete* set of partial UIO sequences applied right
  after it, accumulated across all tests of the set.

Transitions merely traversed inside UIO / transfer / partial segments are
reported as *exercised* but not verified (their output errors would be
observed, but a faulty next state is only probabilistically caught).  This
matches the paper's accounting and quantifies the ``credit_incidental``
extension honestly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Collection, Hashable, TypeVar

from repro.core.testset import SegmentKind, TestSet
from repro.errors import GenerationError
from repro.fsm.state_table import StateTable

__all__ = ["CoverageReport", "FaultSplit", "split_undetected", "verify_test_set"]

FaultT = TypeVar("FaultT", bound=Hashable)


@dataclass(frozen=True)
class FaultSplit:
    """Gate-level coverage with "undetected" split into its two meanings.

    Raw coverage lumps provably redundant faults (a machine-checked
    untestability certificate exists; no test can ever detect them) together
    with genuinely *missed* faults.  This split separates them: only the
    ``missed`` bin is actionable, and ``testable_coverage`` — detected over
    faults that are not proved redundant — is the honest quality figure.
    """

    n_faults: int
    detected: int
    redundant: int
    missed: int

    @property
    def coverage(self) -> float:
        """Raw coverage over the full universe (redundant counted against)."""
        return self.detected / self.n_faults if self.n_faults else 1.0

    @property
    def testable_coverage(self) -> float:
        """Coverage over the faults some test could conceivably detect."""
        testable = self.n_faults - self.redundant
        return self.detected / testable if testable else 1.0


def split_undetected(
    all_faults: Collection[FaultT],
    detected: Collection[FaultT],
    proven_untestable: Collection[FaultT],
) -> FaultSplit:
    """Classify every fault as detected, redundant (proved), or missed.

    ``proven_untestable`` must hold only certificate-backed faults; a fault
    that is both detected and claimed untestable indicates an unsound
    certificate and raises :class:`GenerationError` rather than silently
    picking a bin.
    """
    universe = set(all_faults)
    caught = set(detected) & universe
    redundant = set(proven_untestable) & universe
    overlap = caught & redundant
    if overlap:
        sample = sorted(repr(fault) for fault in overlap)[:3]
        raise GenerationError(
            f"{len(overlap)} fault(s) both detected and proved untestable "
            f"(unsound certificate?): {', '.join(sample)}"
        )
    return FaultSplit(
        n_faults=len(universe),
        detected=len(caught),
        redundant=len(redundant),
        missed=len(universe) - len(caught) - len(redundant),
    )


@dataclass
class CoverageReport:
    """Outcome of the strict coverage check."""

    machine_name: str
    n_states: int
    n_input_combinations: int
    verified: frozenset[tuple[int, int]]
    exercised: frozenset[tuple[int, int]]
    #: per-transition sets of other states not yet distinguished (partial mode)
    partial_pending: dict[tuple[int, int], frozenset[int]] = field(default_factory=dict)

    @property
    def n_transitions(self) -> int:
        return self.n_states * self.n_input_combinations

    @property
    def missing(self) -> frozenset[tuple[int, int]]:
        """Transitions with no full verification anywhere in the set."""
        return frozenset(
            (state, combo)
            for state in range(self.n_states)
            for combo in range(self.n_input_combinations)
            if (state, combo) not in self.verified
        )

    @property
    def is_complete(self) -> bool:
        return len(self.verified) == self.n_transitions

    @property
    def verified_fraction(self) -> float:
        return len(self.verified) / self.n_transitions


class _UioOracle:
    """Caches re-proofs of the UIO property for (state, inputs) pairs."""

    def __init__(self, table: StateTable) -> None:
        self.table = table
        self._cache: dict[tuple[int, tuple[int, ...]], bool] = {}

    def is_uio(self, state: int, inputs: tuple[int, ...]) -> bool:
        key = (state, inputs)
        if key not in self._cache:
            reference = self.table.response(state, inputs)
            self._cache[key] = all(
                self.table.response(other, inputs) != reference
                for other in range(self.table.n_states)
                if other != state
            )
        return self._cache[key]

    def distinguished_from(
        self, state: int, inputs: tuple[int, ...]
    ) -> frozenset[int]:
        reference = self.table.response(state, inputs)
        return frozenset(
            other
            for other in range(self.table.n_states)
            if other != state and self.table.response(other, inputs) != reference
        )


def verify_test_set(table: StateTable, test_set: TestSet) -> CoverageReport:
    """Strictly verify ``test_set`` against ``table``.

    Raises :class:`GenerationError` on structural inconsistencies (segments
    that do not chain, recorded final states that disagree with the machine,
    tests without segment structure).  Returns the coverage report
    otherwise; completeness is a property of the report, not an exception.
    """
    oracle = _UioOracle(table)
    verified: set[tuple[int, int]] = set()
    exercised: set[tuple[int, int]] = set()
    # Partial-mode bookkeeping: states still indistinguishable per transition.
    pending: dict[tuple[int, int], set[int]] = {}
    for test in test_set:
        if not test.segments:
            raise GenerationError(
                f"test {test} carries no segment structure; cannot verify"
            )
        test.check_consistency(table)
        segments = test.segments
        for index, segment in enumerate(segments):
            # Record everything the segment traverses as exercised.
            state = segment.start_state
            for combo in segment.inputs:
                exercised.add((state, combo))
                state = int(table.next_state[state, combo])
            if segment.kind is not SegmentKind.TRANSITION:
                continue
            key = (segment.start_state, segment.inputs[0])
            next_state = int(table.next_state[key])
            follower = segments[index + 1] if index + 1 < len(segments) else None
            if follower is None:
                verified.add(key)  # scan-out checks the next state exactly
            elif follower.kind is SegmentKind.UIO:
                if follower.start_state != next_state:
                    raise GenerationError(
                        f"UIO segment after {key} starts in {follower.start_state}, "
                        f"machine is in {next_state}"
                    )
                if not oracle.is_uio(next_state, follower.inputs):
                    raise GenerationError(
                        f"segment after {key} claims to be a UIO for state "
                        f"{next_state} but does not distinguish it"
                    )
                verified.add(key)
            elif follower.kind is SegmentKind.PARTIAL_UIO:
                if follower.start_state != next_state:
                    raise GenerationError(
                        f"partial segment after {key} starts in "
                        f"{follower.start_state}, machine is in {next_state}"
                    )
                if key not in verified:
                    remaining = pending.setdefault(
                        key,
                        set(range(table.n_states)) - {next_state},
                    )
                    remaining -= oracle.distinguished_from(next_state, follower.inputs)
                    if not remaining:
                        verified.add(key)
                        del pending[key]
            # A TRANSFER follower (or another TRANSITION) verifies nothing.
    # A UIO with empty inputs can only occur on single-state machines, where
    # every transition is trivially next-state-correct; treat all exercised
    # transitions as verified there.
    if table.n_states == 1:
        verified |= exercised
    return CoverageReport(
        table.name,
        table.n_states,
        table.n_input_combinations,
        frozenset(verified),
        frozenset(exercised),
        {
            key: frozenset(states)
            for key, states in pending.items()
            if key not in verified
        },
    )

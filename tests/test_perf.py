"""Tests for repro.perf: parallel engine, artifact cache, bench harness."""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest

from repro.benchmarks import load_circuit
from repro.core.config import (
    DEFAULT_BATCH_BITS_CAP,
    FaultSimConfig,
    adaptive_batch_bits,
)
from repro.errors import FaultSimulationError
from repro.fsm.state_table import StateTable
from repro.gatelevel import fault_sim
from repro.harness.experiments import CircuitStudy, StudyOptions, get_study, warm_studies
from repro.harness.runtime import StageTimings
from repro.perf.cache import (
    ARTIFACT_VERSIONS,
    ArtifactCache,
    CacheError,
    active_cache,
    artifact_key,
    cache_enabled,
    stable_hash,
)
from repro.perf.engine import _fault_chunks, compute_studies
from repro.perf.pool import WorkerPool, get_pool, shutdown_pool
from repro.uio.search import input_class_representatives

PARALLEL_CIRCUITS = ("lion", "mc")


def _pool_square(snapshot, index):
    """Module-level so fork workers can unpickle it by reference."""
    return snapshot["base"] + index * index


def _pool_fail_on_two(snapshot, index):
    if index == 2:
        raise ValueError("task 2 exploded")
    return index


# ------------------------------------------------------------- stable_hash


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash(1, "a", (2.5, None)) == stable_hash(1, "a", (2.5, None))

    def test_type_prefixes_disambiguate(self):
        assert stable_hash(1) != stable_hash("1")
        assert stable_hash(True) != stable_hash(1)
        assert stable_hash((1, 2)) != stable_hash((12,))
        assert stable_hash("ab", "c") != stable_hash("a", "bc")

    def test_dict_order_insensitive(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_numpy_and_dataclass(self):
        left = np.array([[1, 2], [3, 4]], dtype=np.int32)
        right = np.array([[1, 2], [3, 4]], dtype=np.int64)
        assert stable_hash(left) == stable_hash(left.copy())
        assert stable_hash(left) != stable_hash(right)  # dtype in the key
        options = StudyOptions()
        assert stable_hash(options) == stable_hash(StudyOptions())
        assert stable_hash(options) != stable_hash(StudyOptions(max_fanin=3))

    def test_unhashable_type_raises(self):
        with pytest.raises(CacheError):
            stable_hash(object())

    def test_artifact_key_includes_version(self, monkeypatch):
        key = artifact_key("uio", "x")
        monkeypatch.setitem(ARTIFACT_VERSIONS, "uio", ARTIFACT_VERSIONS["uio"] + 1)
        assert artifact_key("uio", "x") != key

    def test_artifact_key_unknown_kind(self):
        with pytest.raises(CacheError):
            artifact_key("nonsense", 1)


# ----------------------------------------------------------- ArtifactCache


class TestArtifactCache:
    def test_round_trip_and_counters(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = stable_hash("payload")
        assert cache.get("uio", key) is None
        cache.put("uio", key, {"value": (1, 2, 3)})
        assert cache.get("uio", key) == {"value": (1, 2, 3)}
        assert (cache.hits, cache.misses) == (1, 1)

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = stable_hash("x")
        cache.put("uio", key, [1, 2])
        path = cache._path("uio", key)
        path.write_bytes(b"not a pickle")
        assert cache.get("uio", key) is None
        assert not path.exists()

    def test_info_and_clear(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("uio", stable_hash(1), "a")
        cache.put("synthesis", stable_hash(2), "b")
        info = cache.info()
        assert info["entries"] == 2
        assert info["kinds"]["uio"]["entries"] == 1
        assert cache.clear() == 2
        assert cache.info()["entries"] == 0

    def test_active_cache_context(self, tmp_path):
        assert active_cache() is None
        with cache_enabled(tmp_path) as cache:
            assert active_cache() is cache
        assert active_cache() is None


class TestCachedPipeline:
    def test_cold_miss_then_warm_hit(self, tmp_path):
        options = StudyOptions()
        with cache_enabled(tmp_path) as cache:
            study = CircuitStudy("lion", options)
            uio_cold = study.uio_table
            scan_cold = study.scan_circuit
            detect_cold = study.stuck_at_detectability
            misses = cache.misses
            assert misses > 0 and cache.hits == 0

            warm = CircuitStudy("lion", options)
            assert warm.uio_table.sequences == uio_cold.sequences
            assert warm.uio_table.machine_name == "lion"
            assert warm.scan_circuit.netlist.n_gates == scan_cold.netlist.n_gates
            assert warm.stuck_at_detectability == detect_cold
            assert cache.hits > 0 and cache.misses == misses

    def test_option_change_invalidates(self, tmp_path):
        with cache_enabled(tmp_path) as cache:
            CircuitStudy("lion", StudyOptions()).scan_circuit
            misses = cache.misses
            CircuitStudy("lion", StudyOptions(max_fanin=3)).scan_circuit
            assert cache.misses > misses  # different options, different key

    def test_version_bump_invalidates(self, tmp_path, monkeypatch):
        with cache_enabled(tmp_path) as cache:
            CircuitStudy("lion", StudyOptions()).uio_table
            monkeypatch.setitem(
                ARTIFACT_VERSIONS, "uio", ARTIFACT_VERSIONS["uio"] + 1
            )
            hits = cache.hits
            CircuitStudy("lion", StudyOptions()).uio_table
            assert cache.hits == hits  # old entry ignored under the new version


# -------------------------------------------------------- parallel engine


def _signatures(artifacts):
    return {name: value.signature() for name, value in artifacts.items()}


class TestParallelEngine:
    def test_parallel_identical_to_serial(self):
        """jobs=2 must reproduce the serial results bit-for-bit (stuck-at
        and bridging selections, detection sets, and row tables)."""
        options = StudyOptions()
        serial = compute_studies(PARALLEL_CIRCUITS, options, jobs=1)
        parallel = compute_studies(PARALLEL_CIRCUITS, options, jobs=2)
        assert _signatures(serial) == _signatures(parallel)
        for name in PARALLEL_CIRCUITS:
            assert (
                serial[name].stuck_at_selection.detected
                == parallel[name].stuck_at_selection.detected
            )
            assert (
                serial[name].bridging_selection.detected
                == parallel[name].bridging_selection.detected
            )

    def test_engine_matches_circuit_study(self):
        options = StudyOptions()
        artifacts = compute_studies(("lion",), options, jobs=1)["lion"]
        study = CircuitStudy("lion", options)
        assert artifacts.stuck_at_selection.rows == study.stuck_at_selection.rows
        assert artifacts.bridging_selection.rows == study.bridging_selection.rows
        assert artifacts.stuck_at_detectability == study.stuck_at_detectability

    def test_deterministic_ordering_and_timings(self):
        timings = StageTimings()
        artifacts = compute_studies(("mc", "lion"), jobs=1, timings=timings)
        assert list(artifacts) == ["mc", "lion"]
        assert set(timings.stages()) >= {
            "uio", "generation", "synthesis", "detectability", "fault-sim",
        }
        assert timings.total() > 0.0

    def test_warm_studies_installs(self):
        options = StudyOptions(bridging_pair_limit=40)
        artifacts = warm_studies(("lion",), options, jobs=1)
        study = get_study("lion", options)
        # Seeded cached_property: identical objects, no recomputation.
        assert study.stuck_at_selection is artifacts["lion"].stuck_at_selection
        assert study.generation is artifacts["lion"].generation


# ------------------------------------------------------------------ bench


class TestBench:
    def test_bench_report_schema(self, tmp_path):
        from repro.perf.bench import BENCH_SCHEMA, run_bench

        report = run_bench(
            ("lion",), jobs=2, cache_root=tmp_path / "cache"
        )
        assert report["schema"] == BENCH_SCHEMA
        assert report["circuits"] == ["lion"]
        assert report["identical"] is True
        assert report["divergence"] == []
        assert set(report["runs"]) == {
            "serial_cold", "parallel_cold", "parallel_warm",
        }
        for record in report["runs"].values():
            assert record["wall_s"] > 0.0
            assert set(record) >= {
                "jobs", "wall_s", "stage_seconds", "per_circuit", "cache",
            }
        warm = report["runs"]["parallel_warm"]
        # The warm run must skip UIO/synthesis/detectability entirely.
        assert warm["cache"]["hits"] > 0
        assert warm["cache"]["misses"] == 0
        assert warm["stage_seconds"]["uio"] == 0.0
        assert warm["stage_seconds"]["synthesis"] == 0.0
        assert warm["stage_seconds"]["detectability"] == 0.0
        # /4 additions: engine pinned in options, per-stage speedups.
        assert report["options"]["engine"] == "auto"
        assert set(report["stage_speedups"]) == {
            "parallel_cold", "parallel_warm",
        }
        serial_stages = report["runs"]["serial_cold"]["stage_seconds"]
        for ratios in report["stage_speedups"].values():
            assert set(ratios) == set(serial_stages)
            assert all(value >= 0.0 for value in ratios.values())
        json.dumps(report)  # must be JSON-serializable as-is

    def test_bench_engine_override_recorded(self, tmp_path):
        from repro.perf.bench import run_bench

        report = run_bench(
            ("lion",), jobs=2, cache_root=tmp_path / "cache",
            engine="ppsfp",
        )
        assert report["options"]["engine"] == "ppsfp"
        assert report["identical"] is True


# ------------------------------------------------- adaptive batch sizing


class TestAdaptiveBatchBits:
    def test_small_universe_exact_width(self):
        assert adaptive_batch_bits(1) == 1
        assert adaptive_batch_bits(100) == 100
        assert adaptive_batch_bits(DEFAULT_BATCH_BITS_CAP) == DEFAULT_BATCH_BITS_CAP

    def test_large_universe_balanced(self):
        assert adaptive_batch_bits(DEFAULT_BATCH_BITS_CAP + 1) == 1025
        assert adaptive_batch_bits(5000) == 1667  # three balanced batches
        assert adaptive_batch_bits(7, cap=3) == 3  # 3+2+2, not 3+3+1

    def test_empty_universe(self):
        assert adaptive_batch_bits(0) == 1

    def test_invalid_cap(self):
        with pytest.raises(FaultSimulationError):
            adaptive_batch_bits(10, cap=0)

    def test_config_exposes_cap(self):
        config = FaultSimConfig(max_batch_bits=8)
        assert config.resolved_batch_bits(5) == 5
        assert config.resolved_batch_bits(17) == 6
        with pytest.raises(FaultSimulationError):
            FaultSimConfig(max_batch_bits=0)

    def test_default_batch_bits_alias(self):
        assert fault_sim.DEFAULT_BATCH_BITS == DEFAULT_BATCH_BITS_CAP

    def test_detects_adaptive_default_matches_fixed(self, lion):
        from repro.core.generator import generate_tests
        from repro.gatelevel.scan import ScanCircuit
        from repro.gatelevel.stuck_at import collapse_stuck_at
        from repro.gatelevel.synthesis import SynthesisOptions

        from repro.benchmarks import load_kiss_machine

        circuit = ScanCircuit.from_machine(
            load_kiss_machine("lion"), SynthesisOptions(max_fanin=4)
        )
        faults = sorted(set(collapse_stuck_at(circuit.netlist).values()))
        test = generate_tests(lion).test_set.tests[0]
        adaptive = fault_sim.detects(circuit, lion, test, faults)
        fixed = fault_sim.detects(circuit, lion, test, faults, batch_bits=7)
        assert adaptive == fixed


# ----------------------------------------------------- persistent pool


class TestWorkerPool:
    def test_requires_two_jobs(self):
        with pytest.raises(ValueError, match="at least 2"):
            WorkerPool(1)

    def test_prime_then_ordered_results(self):
        pool = WorkerPool(2)
        try:
            pool.prime({"base": 100})
            assert pool.run(_pool_square, 5) == [100, 101, 104, 109, 116]
            # Re-prime replaces the snapshot for later phases.
            pool.prime({"base": 0})
            assert pool.run(_pool_square, 3) == [0, 1, 4]
        finally:
            pool.shutdown()

    def test_error_drains_and_reraises_then_pool_survives(self):
        pool = WorkerPool(2)
        try:
            pool.prime({"base": 0})
            with pytest.raises(ValueError, match="task 2 exploded"):
                pool.run(_pool_fail_on_two, 6)
            # The pipes were drained, so the pool is still usable.
            assert pool.run(_pool_square, 4) == [0, 1, 4, 9]
        finally:
            pool.shutdown()

    def test_dead_workers_fall_back_inline(self):
        pool = WorkerPool(2)
        try:
            pool.prime({"base": 10})
            for worker in pool._workers:
                worker.kill()
            assert pool.n_alive == 0
            # Every task runs inline on the parent's snapshot reference.
            assert pool.run(_pool_square, 4) == [10, 11, 14, 19]
        finally:
            pool.shutdown()

    def test_shutdown_is_idempotent(self):
        pool = WorkerPool(2)
        pool.shutdown()
        pool.shutdown()
        assert pool.n_alive == 0


class TestPoolSingleton:
    def test_inline_below_two_jobs(self):
        assert get_pool(1) is None
        assert get_pool(0) is None

    def test_reuse_resize_and_shutdown(self):
        try:
            pool = get_pool(2)
            if pool is None:  # fork unavailable in this environment
                pytest.skip("worker processes unavailable")
            assert get_pool(2) is pool  # same size: reused as-is
            resized = get_pool(3)
            assert resized is not pool and resized.jobs == 3
            assert pool._closed  # the replaced pool was shut down
        finally:
            shutdown_pool()
            shutdown_pool()  # idempotent


# ------------------------------------------------- engine-aware chunking


class TestFaultChunks:
    def test_empty_universe(self):
        assert _fault_chunks([], FaultSimConfig(), 4, 100) == []

    def test_ppsfp_gets_one_whole_universe_chunk(self):
        faults = list(range(300))
        chunks = _fault_chunks(faults, FaultSimConfig(engine="ppsfp"), 6, 100)
        assert chunks == [faults]

    def test_bigint_gets_adaptive_slices(self):
        faults = list(range(5000))
        config = FaultSimConfig(engine="bigint")
        size = config.resolved_batch_bits(len(faults))
        chunks = _fault_chunks(faults, config, 6, 100)
        assert [len(chunk) for chunk in chunks[:-1]] == [size] * (
            len(chunks) - 1
        )
        assert [fault for chunk in chunks for fault in chunk] == faults
        assert len(chunks) > 1

    def test_auto_dispatch_controls_chunking(self):
        faults = list(range(5000))
        config = FaultSimConfig()  # auto
        # Small pattern space: PPSFP fits, one chunk.
        assert len(_fault_chunks(faults, config, 6, 10_000)) == 1
        # Huge pattern space: table would blow the cell budget -> big-int.
        assert len(_fault_chunks(faults, config, 30, 10_000)) > 1

    def test_boundaries_are_jobs_invariant(self):
        # _fault_chunks has no jobs parameter at all: the same universe
        # always chunks identically, whatever the pool size.
        import inspect

        parameters = inspect.signature(_fault_chunks).parameters
        assert "jobs" not in parameters


# ------------------------------------------------------------ memoization


class TestMemoization:
    def test_input_class_representatives_cached(self):
        table = load_circuit("lion")
        first = input_class_representatives(table)
        second = input_class_representatives(table)
        assert first is second  # served from the per-table cache
        # An equal table built independently shares the entry (hash/eq key).
        clone = StateTable(
            np.asarray(table.next_state),
            np.asarray(table.output),
            table.n_inputs,
            table.n_outputs,
            table.state_names,
            table.name,
        )
        assert input_class_representatives(clone) is first

    def test_state_table_pickle_round_trip(self):
        table = load_circuit("lion")
        clone = pickle.loads(pickle.dumps(table))
        assert clone == table
        assert hash(clone) == hash(table)
        assert clone.name == table.name
        with pytest.raises(AttributeError):
            clone.name = "mutated"


# ------------------------------------------------------------ cli surface


class TestCli:
    def test_cache_info_and_clear(self, tmp_path, capsys):
        from repro.cli import main

        with cache_enabled(tmp_path):
            CircuitStudy("lion", StudyOptions()).uio_table
        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        assert "uio" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "removed" in capsys.readouterr().out
        assert ArtifactCache(tmp_path).info()["entries"] == 0

    def test_table_with_jobs_and_cache(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "table4", "--circuits", "lion", "--jobs", "2",
            "--cache-dir", str(tmp_path),
        ])
        assert code == 0
        assert "lion" in capsys.readouterr().out
        assert ArtifactCache(tmp_path).info()["entries"] > 0

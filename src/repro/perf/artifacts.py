"""Cache-aware wrappers around the expensive pipeline stages.

Each ``cached_*`` function computes one artifact of the per-circuit pipeline
— UIO table, synthesized scan circuit, detectability partition — going
through the process-wide :class:`~repro.perf.cache.ArtifactCache` when one is
active and computing directly otherwise.  Every wrapper optionally records a
:class:`~repro.harness.runtime.StageRecord` into a
:class:`~repro.harness.runtime.StageTimings`, which is how both
:class:`~repro.harness.experiments.CircuitStudy` and the parallel sweep
engine account their time.

Keying discipline: a key covers the *full* semantic input of the stage — the
dense table / netlist contents, every option that changes the result, and
the per-kind algorithm version (see
:data:`~repro.perf.cache.ARTIFACT_VERSIONS`).  Machine or circuit *names*
are deliberately excluded so renamed-but-identical machines share entries.
"""

from __future__ import annotations

from typing import Sequence

from contextlib import AbstractContextManager

from repro.fsm.kiss import KissMachine
from repro.fsm.state_table import StateTable
from repro.gatelevel.bridging import BridgingFault
from repro.gatelevel.netlist import Netlist
from repro.gatelevel.scan import ScanCircuit
from repro.gatelevel.stuck_at import StuckAtFault
from repro.gatelevel.synthesis import SynthesisOptions
from repro.harness.runtime import StageTimings
from repro.obs.metrics import counter_add, histogram_observe
from repro.obs.trace import _SpanContext, complete_event
from repro.obs.trace import span as trace_span
from repro.perf.cache import active_cache, artifact_key
from repro.sca import ScaAnalysis, analyze
from repro.uio.search import UioTable, compute_uio_table

__all__ = [
    "STAGE_ATPG",
    "STAGE_DETECTABILITY",
    "STAGE_FAULT_SIM",
    "STAGE_GENERATION",
    "STAGE_SCA",
    "STAGE_SYNTHESIS",
    "STAGE_UIO",
    "cached_atpg",
    "cached_detectability",
    "cached_scan_circuit",
    "cached_sca",
    "cached_uio_table",
    "fault_universe_parts",
    "machine_parts",
    "netlist_parts",
    "state_table_parts",
]

Fault = StuckAtFault | BridgingFault

#: Canonical stage names used in timing records and ``BENCH_perf.json``.
STAGE_UIO = "uio"
STAGE_SYNTHESIS = "synthesis"
STAGE_GENERATION = "generation"
STAGE_DETECTABILITY = "detectability"
STAGE_FAULT_SIM = "fault-sim"
STAGE_SCA = "sca"
STAGE_ATPG = "atpg"


# ------------------------------------------------------------- key material


def state_table_parts(table: StateTable) -> tuple:
    """Hashable identity of a dense state table (name excluded)."""
    return (
        table.n_inputs,
        table.n_outputs,
        table.n_states,
        table.next_state,
        table.output,
    )


def machine_parts(machine: KissMachine | StateTable) -> tuple:
    """Hashable identity of a cube-level machine (or dense table)."""
    if isinstance(machine, StateTable):
        return ("dense",) + state_table_parts(machine)
    return (
        "kiss",
        machine.n_inputs,
        machine.n_outputs,
        machine.reset_state,
        tuple(machine.rows),
    )


def netlist_parts(netlist: Netlist) -> tuple:
    """Hashable identity of a combinational netlist (gate names excluded)."""
    return (
        tuple((gate.kind, gate.fanins) for gate in netlist.gates),
        netlist.inputs,
        netlist.outputs,
    )


def fault_universe_parts(faults: Sequence[Fault]) -> tuple:
    """Hashable identity of an *ordered* fault universe."""
    return tuple(faults)


def _record(
    timings: StageTimings | None,
    circuit: str,
    stage: str,
    seconds: float,
    cache_state: str,
) -> None:
    """Record an externally-measured stage (cache hits report 0.0s).

    ``StageTimings.add`` emits the matching completed span itself; without
    a timings object the span is emitted directly so serial
    :class:`~repro.harness.experiments.CircuitStudy` traces still show
    cache-served stages.
    """
    if timings is not None:
        timings.add(circuit, stage, seconds, cache_state)
    else:
        attrs: dict[str, str] = {"circuit": circuit}
        if cache_state:
            attrs["cache"] = cache_state
        complete_event(stage, seconds, **attrs)


def _staged(
    timings: StageTimings | None, circuit: str, stage: str
) -> AbstractContextManager[_SpanContext]:
    """A span-backed stage context: records into ``timings`` when given.

    Both branches yield a handle with ``elapsed_s`` and ``set()``; the
    recorded seconds come from the span's own clock either way, so the
    bench records and the trace agree by construction.
    """
    if timings is not None:
        return timings.stage(circuit, stage)
    return trace_span(stage, circuit=circuit)


# ------------------------------------------------------------------ stages


def cached_uio_table(
    table: StateTable,
    max_length: int,
    node_budget: int,
    *,
    circuit: str = "",
    timings: StageTimings | None = None,
) -> tuple[UioTable, float]:
    """``(uio_table, compute_seconds)`` for one machine and length bound.

    ``compute_seconds`` is the time the *original* computation took — on a
    cache hit the stored figure is returned, so Table 4's time column stays
    meaningful across warm runs.
    """
    cache = active_cache()
    key = ""
    if cache is not None:
        key = artifact_key("uio", state_table_parts(table), max_length, node_budget)
        stored = cache.get("uio", key)
        if stored is not None:
            uio, compute_seconds = stored
            # The stored table carries the name of whichever machine filled
            # the entry; re-label it for this caller.
            if uio.machine_name != table.name:
                uio = UioTable(
                    table.name, uio.max_length, uio.sequences, uio.budget_exhausted
                )
            _record(timings, circuit or table.name, STAGE_UIO, 0.0, "hit")
            return uio, compute_seconds
    with _staged(timings, circuit or table.name, STAGE_UIO) as sp:
        if cache is not None:
            sp.set(cache="miss")
        uio = compute_uio_table(table, max_length, node_budget)
    if cache is not None:
        cache.put("uio", key, (uio, sp.elapsed_s))
    return uio, sp.elapsed_s


def cached_scan_circuit(
    machine: KissMachine | StateTable,
    options: SynthesisOptions,
    verify_table: StateTable | None = None,
    *,
    circuit: str = "",
    timings: StageTimings | None = None,
) -> ScanCircuit:
    """Synthesized and verified :class:`ScanCircuit` for ``machine``.

    A cache hit skips both synthesis and the exhaustive
    :meth:`~repro.gatelevel.scan.ScanCircuit.verify_against` check — entries
    are only ever stored *after* verification succeeded.
    """
    cache = active_cache()
    name = getattr(machine, "name", "") or circuit
    key = ""
    if cache is not None:
        key = artifact_key("synthesis", machine_parts(machine), options)
        stored = cache.get("synthesis", key)
        if stored is not None:
            _record(timings, circuit or name, STAGE_SYNTHESIS, 0.0, "hit")
            return ScanCircuit(stored, name)
    with _staged(timings, circuit or name, STAGE_SYNTHESIS) as sp:
        if cache is not None:
            sp.set(cache="miss")
        scan = ScanCircuit.from_machine(machine, options)
        if verify_table is not None:
            scan.verify_against(verify_table)
    if cache is not None and verify_table is not None:
        cache.put("synthesis", key, scan.circuit)
    return scan


def cached_detectability(
    netlist: Netlist,
    faults: Sequence[Fault],
    *,
    circuit: str = "",
    timings: StageTimings | None = None,
) -> tuple[set[Fault], set[Fault]]:
    """``(detectable, undetectable)`` partition via the exhaustive oracle."""
    from repro.gatelevel.detectability import detectable_faults

    cache = active_cache()
    key = ""
    if cache is not None:
        key = artifact_key(
            "detectability", netlist_parts(netlist), fault_universe_parts(faults)
        )
        stored = cache.get("detectability", key)
        if stored is not None:
            _record(timings, circuit, STAGE_DETECTABILITY, 0.0, "hit")
            return set(stored[0]), set(stored[1])
    with _staged(timings, circuit, STAGE_DETECTABILITY) as sp:
        if cache is not None:
            sp.set(cache="miss")
        sp.set(n_faults=len(faults))
        detectable, undetectable = detectable_faults(netlist, faults)
    if cache is not None:
        cache.put(
            "detectability", key, (frozenset(detectable), frozenset(undetectable))
        )
    return detectable, undetectable


def cached_sca(
    netlist: Netlist,
    *,
    circuit: str = "",
    timings: StageTimings | None = None,
) -> ScaAnalysis:
    """Fully materialized static analysis of ``netlist``.

    Entries are stored only after :meth:`~repro.sca.ScaAnalysis.verify`
    replayed every constant derivation and untestability certificate, so a
    cache hit returns machine-checked proofs (the same trust discipline as
    ``cached_scan_circuit``, which only stores verified syntheses).
    """
    cache = active_cache()
    key = ""
    if cache is not None:
        key = artifact_key("sca", netlist_parts(netlist))
        stored = cache.get("sca", key)
        if stored is not None:
            _record(timings, circuit, STAGE_SCA, 0.0, "hit")
            _report_sca(stored)
            return stored
    with _staged(timings, circuit, STAGE_SCA) as sp:
        if cache is not None:
            sp.set(cache="miss")
        sca = analyze(netlist).materialize()
        sca.verify()
        sp.set(
            representatives=sca.universe.n_representatives,
            certificates=len(sca.certificates),
        )
    if cache is not None:
        cache.put("sca", key, sca)
    _report_sca(sca)
    return sca


def cached_atpg(
    scan: ScanCircuit,
    table: StateTable,
    faults: Sequence[StuckAtFault] | None = None,
    *,
    algorithm: str = "podem",
    backtrack_limit: int | None = None,
    certificates: Sequence = (),
    circuit: str = "",
    timings: StageTimings | None = None,
):
    """Structural ATPG run (:class:`~repro.atpg.AtpgRun`) for ``scan``.

    Entries are stored only after every ``test`` verdict's cube replayed
    through the fault simulator and every ``untestable`` verdict survived
    the static-certificate cross-check — the engine raises otherwise, so a
    cache hit returns machine-checked verdicts.  Time-budgeted runs are
    never cached (their aborts are wall-clock-dependent); callers wanting a
    time budget go to :func:`repro.atpg.generate_structural_tests`
    directly.
    """
    import dataclasses

    from repro.atpg import DEFAULT_BACKTRACK_LIMIT, generate_structural_tests
    from repro.gatelevel.stuck_at import collapse_stuck_at

    if backtrack_limit is None:
        backtrack_limit = DEFAULT_BACKTRACK_LIMIT
    netlist = scan.netlist
    if faults is None:
        faults = sorted(set(collapse_stuck_at(netlist).values()))
    label = circuit or table.name
    cache = active_cache()
    key = ""
    if cache is not None:
        key = artifact_key(
            "atpg",
            netlist_parts(netlist),
            state_table_parts(table),
            scan.encoding.codes,
            scan.encoding.width,
            fault_universe_parts(faults),
            algorithm,
            backtrack_limit,
            fault_universe_parts(sorted(c.fault for c in certificates)),
        )
        stored = cache.get("atpg", key)
        if stored is not None:
            if stored.circuit != label:
                stored = dataclasses.replace(stored, circuit=label)
            _record(timings, label, STAGE_ATPG, 0.0, "hit")
            return stored
    with _staged(timings, label, STAGE_ATPG) as sp:
        if cache is not None:
            sp.set(cache="miss")
        run = generate_structural_tests(
            scan,
            table,
            faults,
            algorithm=algorithm,
            backtrack_limit=backtrack_limit,
            certificates=certificates,
            replay=True,
        )
        if run.circuit != label:
            # The engine labels runs by netlist name; normalize to the
            # caller's label so cold and warm results compare equal.
            run = dataclasses.replace(run, circuit=label)
        sp.set(targets=run.n_targets, tests=len(run.tests))
    if cache is not None:
        cache.put("atpg", key, run)
    return run


def _report_sca(sca: ScaAnalysis) -> None:
    """Fold collapse/proof statistics into the metrics registry."""
    universe = sca.universe
    counter_add("sca.faults", universe.n_faults)
    counter_add("sca.representatives", universe.n_representatives)
    counter_add("sca.certificates", len(sca.certificates))
    counter_add("sca.constant_lines", len(sca.constants.constant_lines))
    histogram_observe("sca.collapse_ratio", universe.ratio)

"""Netlist lint rules: combinational netlists and scan circuits.

The analyzer accepts a bare :class:`~repro.gatelevel.netlist.Netlist` or a
:class:`~repro.gatelevel.scan.ScanCircuit` (which adds the scan-chain
integrity rule).  The rules deliberately re-derive structure instead of
trusting the construction-time invariants: a netlist assembled by custom
synthesis code, deserialized, or mutated in place gets the same scrutiny as
one built through the public API.

Rule ids
--------
======  ================  ========  =========
id      name              severity  cost
======  ================  ========  =========
NET001  net-cycle         ERROR     cheap
NET002  net-undriven      ERROR     cheap
NET003  net-dangling      WARNING   cheap
NET004  net-fanin-arity   ERROR     cheap
NET005  net-no-outputs    ERROR     cheap
NET006  net-scan-chain    ERROR     cheap
======  ================  ========  =========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.gatelevel.netlist import _MAX_FANIN, _MIN_FANIN, GateType, Netlist
from repro.gatelevel.scan import ScanCircuit
from repro.lint.diagnostics import (
    Diagnostic,
    LintReport,
    Severity,
    cap_diagnostics,
)
from repro.lint.registry import Rule, register, rule_index, rules_for

__all__ = ["NetlistArtifact", "analyze_netlist", "strongly_connected_components"]


@dataclass
class NetlistArtifact:
    """What the netlist rules see."""

    name: str
    netlist: Netlist
    scan: ScanCircuit | None = None

    def gate_label(self, index: int) -> str:
        gates = self.netlist.gates
        if 0 <= index < len(gates):
            gate = gates[index]
            label = gate.name or f"g{index}"
            return f"{label} (line {index}, {gate.kind.value})"
        return f"line {index}"


def strongly_connected_components(
    n_nodes: int, adjacency: Sequence[Sequence[int]]
) -> list[list[int]]:
    """Tarjan's SCC algorithm, iterative (safe for deep netlists).

    ``adjacency[v]`` lists successor nodes; out-of-range entries are
    ignored (they are reported by the undriven-net rule instead).
    Components come back in reverse-topological discovery order, members
    sorted ascending.
    """
    index_of = [-1] * n_nodes
    lowlink = [0] * n_nodes
    on_stack = [False] * n_nodes
    stack: list[int] = []
    components: list[list[int]] = []
    counter = 0
    for root in range(n_nodes):
        if index_of[root] != -1:
            continue
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            node, edge_pos = work[-1]
            if edge_pos == 0:
                index_of[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack[node] = True
            advanced = False
            successors = adjacency[node]
            while edge_pos < len(successors):
                successor = successors[edge_pos]
                edge_pos += 1
                if not 0 <= successor < n_nodes:
                    continue
                if index_of[successor] == -1:
                    work[-1] = (node, edge_pos)
                    work.append((successor, 0))
                    advanced = True
                    break
                if on_stack[successor]:
                    lowlink[node] = min(lowlink[node], index_of[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: list[int] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))
    return components


@register
class CombinationalCycleRule(Rule):
    rule_id = "NET001"
    name = "net-cycle"
    severity = Severity.ERROR
    domain = "netlist"
    cost = "cheap"
    description = "combinational logic must be acyclic"

    def check(self, context: NetlistArtifact) -> Iterator[Diagnostic]:
        netlist = context.netlist
        gates = netlist.gates
        adjacency = [gate.fanins for gate in gates]

        def cycles() -> Iterator[Diagnostic]:
            for component in strongly_connected_components(len(gates), adjacency):
                is_cycle = len(component) > 1 or (
                    component[0] in gates[component[0]].fanins
                )
                if not is_cycle:
                    continue
                members = ", ".join(
                    context.gate_label(index) for index in component[:6]
                )
                if len(component) > 6:
                    members += f", ... ({len(component)} gates total)"
                yield self.diagnostic(
                    f"combinational cycle through {members}",
                    location=f"lines {component[:6]}",
                    hint="break the loop with a flip-flop or remove the "
                    "feedback path",
                    artifact=context.name,
                )

        yield from cap_diagnostics(cycles())


@register
class UndrivenNetRule(Rule):
    rule_id = "NET002"
    name = "net-undriven"
    severity = Severity.ERROR
    domain = "netlist"
    cost = "cheap"
    description = "every read line must be driven by an earlier gate"

    def check(self, context: NetlistArtifact) -> Iterator[Diagnostic]:
        netlist = context.netlist
        n = netlist.n_gates

        def findings() -> Iterator[Diagnostic]:
            for gate in netlist.gates:
                for pin, fanin in enumerate(gate.fanins):
                    if not 0 <= fanin < n:
                        yield self.diagnostic(
                            f"gate {context.gate_label(gate.index)} reads "
                            f"nonexistent line {fanin} (undriven net)",
                            location=f"gate {gate.index}, pin {pin}",
                            artifact=context.name,
                        )
                    elif fanin >= gate.index:
                        yield self.diagnostic(
                            f"gate {context.gate_label(gate.index)} reads line "
                            f"{fanin} that is not earlier in topological order",
                            location=f"gate {gate.index}, pin {pin}",
                            hint="the forward sweep evaluates lines in index "
                            "order, so this read sees a stale value",
                            artifact=context.name,
                        )
            for position, line in enumerate(netlist.outputs):
                if not 0 <= line < n:
                    yield self.diagnostic(
                        f"output {position} reads nonexistent line {line}",
                        location=f"output {position}",
                        artifact=context.name,
                    )

        yield from cap_diagnostics(findings())


@register
class DanglingGateRule(Rule):
    rule_id = "NET003"
    name = "net-dangling"
    severity = Severity.WARNING
    domain = "netlist"
    cost = "cheap"
    description = "logic from which no primary output is reachable"

    def check(self, context: NetlistArtifact) -> Iterator[Diagnostic]:
        netlist = context.netlist
        n = netlist.n_gates
        if not netlist.outputs:
            return  # NET005 reports this; everything dangling would be noise
        useful = [False] * n
        stack = [line for line in netlist.outputs if 0 <= line < n]
        for line in stack:
            useful[line] = True
        while stack:
            line = stack.pop()
            for fanin in netlist.gates[line].fanins:
                if 0 <= fanin < n and not useful[fanin]:
                    useful[fanin] = True
                    stack.append(fanin)

        def findings() -> Iterator[Diagnostic]:
            for gate in netlist.gates:
                if useful[gate.index]:
                    continue
                if gate.kind is GateType.INPUT:
                    yield self.diagnostic(
                        f"primary input {context.gate_label(gate.index)} "
                        "reaches no output",
                        location=f"gate {gate.index}",
                        severity=Severity.INFO,
                        artifact=context.name,
                    )
                else:
                    yield self.diagnostic(
                        f"gate {context.gate_label(gate.index)} reaches no "
                        "output (dead logic)",
                        location=f"gate {gate.index}",
                        hint="remove the gate or wire it to an output",
                        artifact=context.name,
                    )

        yield from cap_diagnostics(findings())


@register
class FaninArityRule(Rule):
    rule_id = "NET004"
    name = "net-fanin-arity"
    severity = Severity.ERROR
    domain = "netlist"
    cost = "cheap"
    description = "every gate's fanin count must fit its gate type"

    def check(self, context: NetlistArtifact) -> Iterator[Diagnostic]:
        def findings() -> Iterator[Diagnostic]:
            for gate in context.netlist.gates:
                minimum = _MIN_FANIN.get(gate.kind)
                maximum = _MAX_FANIN.get(gate.kind)
                if minimum is None:
                    yield self.diagnostic(
                        f"gate {context.gate_label(gate.index)} has unknown "
                        f"type {gate.kind!r}",
                        location=f"gate {gate.index}",
                        artifact=context.name,
                    )
                    continue
                if gate.n_fanins < minimum:
                    yield self.diagnostic(
                        f"{gate.kind.value} gate "
                        f"{context.gate_label(gate.index)} has "
                        f"{gate.n_fanins} fanin(s), needs at least {minimum}",
                        location=f"gate {gate.index}",
                        artifact=context.name,
                    )
                elif maximum is not None and gate.n_fanins > maximum:
                    yield self.diagnostic(
                        f"{gate.kind.value} gate "
                        f"{context.gate_label(gate.index)} has "
                        f"{gate.n_fanins} fanin(s), takes at most {maximum}",
                        location=f"gate {gate.index}",
                        artifact=context.name,
                    )

        yield from cap_diagnostics(findings())


@register
class NoOutputsRule(Rule):
    rule_id = "NET005"
    name = "net-no-outputs"
    severity = Severity.ERROR
    domain = "netlist"
    cost = "cheap"
    description = "a netlist must declare at least one output"

    def check(self, context: NetlistArtifact) -> Iterator[Diagnostic]:
        if not context.netlist.outputs:
            yield self.diagnostic(
                "netlist has no outputs",
                hint="call set_outputs() with the observable lines",
                artifact=context.name,
            )


@register
class ScanChainRule(Rule):
    rule_id = "NET006"
    name = "net-scan-chain"
    severity = Severity.ERROR
    domain = "netlist"
    cost = "cheap"
    description = "scan circuit interface and state encoding must be consistent"

    def check(self, context: NetlistArtifact) -> Iterator[Diagnostic]:
        scan = context.scan
        if scan is None:
            return
        netlist = context.netlist
        sv = scan.n_state_variables
        pi = scan.n_primary_inputs
        po = scan.n_primary_outputs
        if sv < 1:
            yield self.diagnostic(
                f"scan chain has {sv} flip-flops; at least one is required",
                artifact=context.name,
            )
            return
        if netlist.n_inputs != sv + pi:
            yield self.diagnostic(
                f"netlist has {netlist.n_inputs} inputs, scan interface "
                f"declares {sv} state + {pi} primary inputs",
                artifact=context.name,
            )
        if netlist.n_outputs != sv + po:
            yield self.diagnostic(
                f"netlist has {netlist.n_outputs} outputs, scan interface "
                f"declares {sv} next-state + {po} primary outputs",
                artifact=context.name,
            )
        encoding = scan.encoding
        if encoding.width != sv:
            yield self.diagnostic(
                f"state encoding is {encoding.width} bits wide, scan chain "
                f"has {sv} flip-flops",
                artifact=context.name,
            )
        if len(set(encoding.codes)) != len(encoding.codes):
            yield self.diagnostic(
                "state encoding assigns the same scan code to two states",
                artifact=context.name,
            )
        out_of_range = [
            code for code in encoding.codes if not 0 <= code < (1 << sv)
        ]
        if out_of_range:
            yield self.diagnostic(
                f"scan codes {out_of_range[:5]} do not fit in {sv} bits",
                artifact=context.name,
            )
        for j, line in enumerate(scan.circuit.next_state_lines):
            if not 0 <= line < netlist.n_gates:
                yield self.diagnostic(
                    f"next-state line {j} references nonexistent line {line}",
                    location=f"next-state bit {j}",
                    artifact=context.name,
                )


def analyze_netlist(
    subject: Netlist | ScanCircuit,
    *,
    errors_only: bool = False,
    include_expensive: bool = True,
    name: str = "",
) -> LintReport:
    """Run the netlist rules over a netlist or a full scan circuit."""
    if isinstance(subject, ScanCircuit):
        artifact = NetlistArtifact(
            name or subject.name or subject.netlist.name, subject.netlist, subject
        )
    else:
        artifact = NetlistArtifact(name or subject.name, subject, None)
    rules = rules_for(
        "netlist", errors_only=errors_only, include_expensive=include_expensive
    )
    diagnostics: list[Diagnostic] = []
    for rule in rules:
        diagnostics.extend(rule.check(artifact))
    return LintReport(tuple(diagnostics), rule_index(rules))

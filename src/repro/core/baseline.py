"""The one-test-per-transition baseline (the paper's ``trans`` columns).

Testing every state-transition by a separate test — scan-in ``s_i``, apply
``α_j``, scan-out — needs ``N_ST * N_PIC`` tests and ``N_ST * N_PIC + 1``
scan operations.  Every comparison in the paper is against this baseline.
"""

from __future__ import annotations

from repro.core.testset import ScanTest, Segment, SegmentKind, TestSet
from repro.fsm.state_table import StateTable

__all__ = ["per_transition_tests"]


def per_transition_tests(table: StateTable) -> TestSet:
    """One length-1 scan test per state-transition, in (state, input) order."""
    tests = [
        ScanTest(
            t.state,
            (t.input,),
            t.next_state,
            (Segment(SegmentKind.TRANSITION, t.state, (t.input,)),),
            ((t.state, t.input),),
        )
        for t in table.transitions()
    ]
    return TestSet(
        table.name, table.n_state_variables, table.n_transitions, tests
    )

"""Sequential fault simulation of scan tests, thousands of faults per word.

Each bit position of a Python integer word is one faulty machine — and
Python integers are arbitrary precision, so a "word" holds an entire batch
(:data:`DEFAULT_BATCH_BITS` faults) and the bitwise operations run at C
speed over all of them at once.  A scan
test is simulated clock by clock: the scan-in broadcasts the same initial
state to every faulty machine, the combinational block is evaluated with the
batch's fault effects injected, primary outputs are compared against the
fault-free response after every vector, and the final state words are
compared at scan-out.  Faults are dropped as soon as they are detected.

Injection model (one fault per bit ``b`` with mask ``m_b``):

* stuck-at on a gate output — the stored line value is forced in bit ``b``;
* stuck-at on a gate input pin — the value is forced only when that gate
  reads that pin;
* AND/OR bridging between ``g1`` and ``g2`` — every read (and observation)
  of either line sees ``g1 op g2`` in bit ``b``.  Within one clock cycle
  the raw values of ``g1`` and ``g2`` are unaffected by their own bridge
  (the paper's condition 3 forbids paths between them), so the stored
  values can be combined directly; across cycles the divergence lives in
  the per-bit state words.

The fault-free reference comes from the functional state table, which the
synthesized netlist is verified against (see
:meth:`repro.gatelevel.scan.ScanCircuit.verify_against`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.core.config import DEFAULT_BATCH_BITS_CAP, adaptive_batch_bits
from repro.core.testset import ScanTest, TestSet
from repro.errors import FaultSimulationError
from repro.fsm.state_table import StateTable
from repro.gatelevel.bridging import BridgeKind, BridgingFault
from repro.gatelevel.netlist import GateType, Netlist
from repro.gatelevel.scan import ScanCircuit
from repro.gatelevel.stuck_at import StuckAtFault
from repro.obs.metrics import current_registry

__all__ = [
    "FaultSimResult",
    "simulate_tests",
    "detects",
    "make_simulator",
    "adaptive_batch_bits",
    "DEFAULT_BATCH_BITS",
]

Fault = StuckAtFault | BridgingFault

#: Back-compat alias: the *cap* on faults packed per batch word.  The
#: effective width now adapts to the universe size — see
#: :func:`repro.core.config.adaptive_batch_bits`.
DEFAULT_BATCH_BITS = DEFAULT_BATCH_BITS_CAP


@dataclass
class FaultSimResult:
    """Outcome of simulating a sequence of tests over a fault universe."""

    detected: frozenset[Fault]
    undetected: frozenset[Fault]
    #: per test (in simulation order): number of new detections
    per_test_new: tuple[int, ...]

    @property
    def n_faults(self) -> int:
        return len(self.detected) + len(self.undetected)

    @property
    def coverage_pct(self) -> float:
        if self.n_faults == 0:
            return 100.0
        return 100.0 * len(self.detected) / self.n_faults


class _Batch:
    """A group of faults packed into one big-int word, with injection tables."""

    def __init__(self, netlist: Netlist, faults: Sequence[Fault]) -> None:
        if not faults:
            raise FaultSimulationError("a batch needs at least one fault")
        self.faults = list(faults)
        #: the all-ones word of this batch's width
        self.ones = (1 << len(self.faults)) - 1
        # line -> (force_mask_1, force_mask_0) for stuck outputs
        self.store_force: dict[int, tuple[int, int]] = {}
        # (gate, pin) -> (force_mask_1, force_mask_0)
        self.pin_force: dict[tuple[int, int], tuple[int, int]] = {}
        # line -> list of (mask, partner_line, is_and)
        self.bridges: dict[int, list[tuple[int, int, bool]]] = {}
        for bit, fault in enumerate(self.faults):
            mask = 1 << bit
            if isinstance(fault, StuckAtFault):
                if fault.pin is None:
                    ones, zeros = self.store_force.get(fault.gate, (0, 0))
                    if fault.value:
                        ones |= mask
                    else:
                        zeros |= mask
                    self.store_force[fault.gate] = (ones, zeros)
                else:
                    key = (fault.gate, fault.pin)
                    ones, zeros = self.pin_force.get(key, (0, 0))
                    if fault.value:
                        ones |= mask
                    else:
                        zeros |= mask
                    self.pin_force[key] = (ones, zeros)
            else:
                is_and = fault.kind is BridgeKind.AND
                self.bridges.setdefault(fault.line1, []).append(
                    (mask, fault.line2, is_and)
                )
                self.bridges.setdefault(fault.line2, []).append(
                    (mask, fault.line1, is_and)
                )


def _forward(
    netlist: Netlist,
    batch: _Batch,
    input_words: Sequence[int],
    raw: list[int] | None,
) -> list[int]:
    """One combinational sweep with the batch's faults injected.

    ``raw`` carries the bridge-free values of the same cycle (the first
    pass); when it is ``None`` bridge adjustments are skipped entirely —
    that *is* the first pass.  Bridged lines are never downstream of their
    own bridge (paper condition 3), so their raw values equal their faulty
    values in their own bit position, which makes the two-pass scheme
    exact regardless of topological ordering of the two lines.
    """
    values = [0] * netlist.n_gates
    bridges = batch.bridges if raw is not None else {}
    pin_force = batch.pin_force
    store_force = batch.store_force
    word = batch.ones
    position = 0

    def read(line: int, reader: int, pin: int) -> int:
        value = values[line]
        rules = bridges.get(line)
        if rules:
            for mask, partner, is_and in rules:
                base = raw[line]
                partner_value = raw[partner]
                bridged = base & partner_value if is_and else base | partner_value
                value = (value & ~mask) | (bridged & mask)
        forced = pin_force.get((reader, pin))
        if forced:
            ones, zeros = forced
            value = (value | ones) & ~zeros & word
        return value

    for gate in netlist.gates:
        kind = gate.kind
        if kind is GateType.INPUT:
            value = input_words[position]
            position += 1
        elif kind is GateType.CONST0:
            value = 0
        elif kind is GateType.CONST1:
            value = word
        else:
            fanins = gate.fanins
            if kind is GateType.BUF:
                value = read(fanins[0], gate.index, 0)
            elif kind is GateType.NOT:
                value = ~read(fanins[0], gate.index, 0) & word
            elif kind in (GateType.AND, GateType.NAND):
                value = word
                for pin, line in enumerate(fanins):
                    value &= read(line, gate.index, pin)
                if kind is GateType.NAND:
                    value = ~value & word
            elif kind in (GateType.OR, GateType.NOR):
                value = 0
                for pin, line in enumerate(fanins):
                    value |= read(line, gate.index, pin)
                if kind is GateType.NOR:
                    value = ~value & word
            else:  # XOR / XNOR
                value = 0
                for pin, line in enumerate(fanins):
                    value ^= read(line, gate.index, pin)
                if kind is GateType.XNOR:
                    value = ~value & word
        forced = store_force.get(gate.index)
        if forced:
            ones, zeros = forced
            value = (value | ones) & ~zeros & word
        values[gate.index] = value
    return values


def _evaluate_batch(
    netlist: Netlist,
    batch: _Batch,
    input_words: Sequence[int],
) -> tuple[list[int], list[int]]:
    """Evaluate one cycle; returns ``(values, raw)`` word lists.

    For batches without bridging faults the single sweep is exact and
    ``raw is values``; with bridges the first (bridge-free) sweep supplies
    the raw line values the second sweep's adjustments read.
    """
    if not batch.bridges:
        values = _forward(netlist, batch, input_words, raw=None)
        return values, values
    raw = _forward(netlist, batch, input_words, raw=None)
    return _forward(netlist, batch, input_words, raw=raw), raw


def _observe(batch: _Batch, values: list[int], raw: list[int], line: int) -> int:
    """The value of ``line`` as seen by the tester / the next scan stage."""
    value = values[line]
    rules = batch.bridges.get(line)
    if rules:
        for mask, partner, is_and in rules:
            base = raw[line]
            partner_value = raw[partner]
            bridged = base & partner_value if is_and else base | partner_value
            value = (value & ~mask) | (bridged & mask)
    return value


def _simulate_test_on_batch(
    circuit: ScanCircuit,
    table: StateTable,
    batch: _Batch,
    test: ScanTest,
) -> int:
    """Detection mask (bit per fault) for one scan test."""
    netlist = circuit.netlist
    sv = circuit.n_state_variables
    pi = circuit.n_primary_inputs
    po = circuit.n_primary_outputs
    ones = batch.ones
    state_words = [
        ones if bit else 0
        for bit in circuit.encoding.encode_bits(test.initial_state)
    ]
    detected = 0
    good_state = test.initial_state
    next_lines = circuit.circuit.next_state_lines
    output_lines = circuit.circuit.primary_output_lines
    for combo in test.inputs:
        input_words = state_words + [
            ones if (combo >> (pi - 1 - j)) & 1 else 0 for j in range(pi)
        ]
        values, raw = _evaluate_batch(netlist, batch, input_words)
        good_state, good_out = table.step(good_state, combo)
        for j in range(po):
            good_bit = ones if (good_out >> (po - 1 - j)) & 1 else 0
            detected |= _observe(batch, values, raw, output_lines[j]) ^ good_bit
        state_words = [_observe(batch, values, raw, line) for line in next_lines]
        if detected == ones:  # everything already caught
            return detected
    for j, bit in enumerate(circuit.encoding.encode_bits(good_state)):
        good_bit = ones if bit else 0
        detected |= state_words[j] ^ good_bit
    return detected & ones


def detects(
    circuit: ScanCircuit,
    table: StateTable,
    test: ScanTest,
    faults: Iterable[Fault],
    batch_bits: int | None = None,
) -> set[Fault]:
    """The subset of ``faults`` that ``test`` detects.

    ``batch_bits=None`` (the default) sizes batches adaptively from the
    fault count, capped at :data:`DEFAULT_BATCH_BITS`.
    """
    if batch_bits is not None and batch_bits < 1:
        raise FaultSimulationError("batch_bits must be >= 1")
    # Structural preflight, memoized per netlist: combinational cycles,
    # undriven nets, and arity violations would silently corrupt the
    # forward sweep below, so they are rejected up front.
    from repro.lint.preflight import preflight_netlist

    preflight_netlist(circuit.netlist, FaultSimulationError)
    fault_list = list(faults)
    if batch_bits is None:
        batch_bits = adaptive_batch_bits(len(fault_list))
    found: set[Fault] = set()
    # Per-batch detection counts stay in a plain local list; the metrics
    # registry is consulted once per detects() call, after the hot loop.
    per_batch: list[int] = []
    for start in range(0, len(fault_list), batch_bits):
        chunk = fault_list[start : start + batch_bits]
        batch = _Batch(circuit.netlist, chunk)
        mask = _simulate_test_on_batch(circuit, table, batch, test)
        per_batch.append(mask.bit_count())
        while mask:
            low = (mask & -mask).bit_length() - 1
            found.add(chunk[low])
            mask &= mask - 1
    _report_batches(len(fault_list), per_batch)
    return found


def _report_batches(n_faults: int, per_batch: list[int]) -> None:
    """Fold one detects() call's batch accounting into the metrics registry."""
    registry = current_registry()
    if registry is None:
        return
    registry.counter("faultsim.calls").add(1)
    registry.counter("faultsim.batches").add(len(per_batch))
    registry.counter("faultsim.faults_simulated").add(n_faults)
    registry.counter("faultsim.detected").add(sum(per_batch))
    histogram = registry.histogram("faultsim.batch_detected")
    for count in per_batch:
        histogram.observe(count)


def make_simulator(
    circuit: ScanCircuit, table: StateTable
) -> Callable[[ScanTest, frozenset[Fault]], set[Fault]]:
    """A ``simulate(test, remaining)`` closure for
    :func:`repro.core.compaction.select_effective_tests`."""

    def simulate(test: ScanTest, remaining: frozenset[Fault]) -> set[Fault]:
        # repr-keyed sort keeps batching deterministic even for mixed
        # stuck-at / bridging universes (the dataclasses do not inter-compare).
        return detects(circuit, table, test, sorted(remaining, key=repr))

    return simulate


def simulate_tests(
    circuit: ScanCircuit,
    table: StateTable,
    tests: TestSet | Sequence[ScanTest],
    faults: Iterable[Fault],
    drop_detected: bool = True,
) -> FaultSimResult:
    """Simulate ``tests`` in their given order over ``faults``.

    With ``drop_detected`` (the default, and what the paper does) detected
    faults leave the universe, so later tests only pay for what is left.
    """
    test_list = list(tests)
    remaining = list(dict.fromkeys(faults))
    detected: set[Fault] = set()
    per_test: list[int] = []
    for test in test_list:
        if not remaining:
            per_test.append(0)
            continue
        newly = detects(circuit, table, test, remaining)
        per_test.append(len(newly))
        detected |= newly
        if drop_detected:
            remaining = [fault for fault in remaining if fault not in newly]
    undetected = frozenset(remaining) if drop_detected else frozenset(
        fault for fault in remaining if fault not in detected
    )
    return FaultSimResult(frozenset(detected), undetected, tuple(per_test))

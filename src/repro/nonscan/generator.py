"""Checking-experiment style test generation without scan.

One long input sequence is produced.  It starts by establishing a known
state — a synchronizing sequence if one exists, otherwise the machine's
reset state is assumed — and then repeatedly:

1. transfers (through ordinary transitions) to a state ``s`` with untested
   outgoing transitions,
2. applies an input ``a`` exercising the transition,
3. applies the UIO sequence of the next state when one exists, which
   *verifies* the transition; otherwise the transition counts as
   exercised-but-unverified (its output was observed, its next state was
   not).

The result quantifies the two structural gaps the paper's scan-based
procedure closes: transitions out of unreachable states can never be
exercised, and transitions into UIO-less states can never be verified.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import GeneratorConfig
from repro.fsm.state_table import StateTable
from repro.nonscan.synchronizing import find_synchronizing_sequence, synchronized_state
from repro.uio.search import UioTable, compute_uio_table
from repro.uio.transfer import find_transfer

__all__ = ["NonScanResult", "generate_nonscan_sequence"]


@dataclass
class NonScanResult:
    """Outcome of non-scan test generation."""

    machine_name: str
    sequence: tuple[int, ...]
    start_state: int
    used_synchronizing: bool
    #: transitions whose next state was verified through a UIO
    verified: frozenset[tuple[int, int]]
    #: transitions exercised with observed outputs but unverified next state
    exercised_only: frozenset[tuple[int, int]]
    #: transitions never exercised (unreachable from the start state)
    unreachable: frozenset[tuple[int, int]]
    uio_table: UioTable

    @property
    def length(self) -> int:
        return len(self.sequence)

    @property
    def n_transitions(self) -> int:
        return len(self.verified) + len(self.exercised_only) + len(self.unreachable)

    @property
    def verified_pct(self) -> float:
        return 100.0 * len(self.verified) / self.n_transitions

    @property
    def exercised_pct(self) -> float:
        covered = len(self.verified) + len(self.exercised_only)
        return 100.0 * covered / self.n_transitions


def generate_nonscan_sequence(
    table: StateTable,
    config: GeneratorConfig | None = None,
    uio_table: UioTable | None = None,
    assume_reset: bool = True,
) -> NonScanResult:
    """Generate one non-scan test sequence for ``table``.

    ``assume_reset`` controls the fallback when no synchronizing sequence
    exists: assume the machine powers up in state 0 (a hardware reset),
    which is what the non-scan literature does.  Without scan the transfer
    bound does not apply — any-length transfers are allowed, since walking
    the machine is the only way to move.
    """
    if config is None:
        config = GeneratorConfig()
    if uio_table is None:
        uio_table = compute_uio_table(
            table,
            config.resolved_uio_length(table.n_state_variables),
            config.uio_node_budget,
        )
    synchronizer = find_synchronizing_sequence(table)
    sequence: list[int] = []
    if synchronizer is not None:
        sequence.extend(synchronizer)
        current = synchronized_state(table, synchronizer)
        used_sync = True
    else:
        if not assume_reset:
            raise ValueError(
                "machine has no synchronizing sequence and reset was not assumed"
            )
        current = 0
        used_sync = False
    start_state = current

    n_cols = table.n_input_combinations
    tested = [[False] * n_cols for _ in range(table.n_states)]
    untested_count = [n_cols] * table.n_states
    verified: set[tuple[int, int]] = set()
    exercised: set[tuple[int, int]] = set()

    def first_untested(state: int) -> int | None:
        for combo in range(n_cols):
            if not tested[state][combo]:
                return combo
        return None

    def has_untested(state: int) -> bool:
        return untested_count[state] > 0

    while True:
        if not has_untested(current):
            transfer = find_transfer(table, current, has_untested, table.n_states)
            if transfer is None:
                break  # nothing with untested transitions is reachable
            sequence.extend(transfer)
            current = table.final_state(current, transfer)
        combo = first_untested(current)
        assert combo is not None
        tested[current][combo] = True
        untested_count[current] -= 1
        sequence.append(combo)
        next_state = int(table.next_state[current, combo])
        uio = uio_table.get(next_state)
        if uio is not None:
            verified.add((current, combo))
            sequence.extend(uio.inputs)
            current = uio.final_state
        else:
            exercised.add((current, combo))
            current = next_state

    unreachable = frozenset(
        (state, combo)
        for state in range(table.n_states)
        for combo in range(n_cols)
        if not tested[state][combo]
    )
    return NonScanResult(
        table.name,
        tuple(sequence),
        start_state,
        used_sync,
        frozenset(verified),
        frozenset(exercised),
        unreachable,
        uio_table,
    )

"""Unit tests for the dense state-table representation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StateTableError
from repro.fsm.state_table import StateTable, Transition


def make_table(**overrides):
    """A small 2-state, 1-input, 1-output machine."""
    kwargs = dict(
        next_state=np.array([[0, 1], [1, 0]]),
        output=np.array([[0, 0], [1, 1]]),
        n_inputs=1,
        n_outputs=1,
    )
    kwargs.update(overrides)
    return StateTable(**kwargs)


class TestConstruction:
    def test_basic_properties(self):
        table = make_table()
        assert table.n_states == 2
        assert table.n_input_combinations == 2
        assert table.n_transitions == 4
        assert table.n_state_variables == 1

    def test_default_state_names(self):
        assert make_table().state_names == ("s0", "s1")

    def test_custom_state_names(self):
        table = make_table(state_names=["off", "on"])
        assert table.state_names == ("off", "on")
        assert table.state_index("on") == 1

    def test_unknown_state_name_raises(self):
        with pytest.raises(StateTableError, match="unknown state name"):
            make_table().state_index("nope")

    def test_duplicate_state_names_rejected(self):
        with pytest.raises(StateTableError, match="unique"):
            make_table(state_names=["a", "a"])

    def test_wrong_name_count_rejected(self):
        with pytest.raises(StateTableError):
            make_table(state_names=["only-one"])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(StateTableError):
            StateTable(
                np.zeros((2, 2), dtype=int),
                np.zeros((2, 4), dtype=int),
                1,
                1,
            )

    def test_column_count_must_be_power_of_inputs(self):
        with pytest.raises(StateTableError, match="input columns"):
            StateTable(np.zeros((2, 3), dtype=int), np.zeros((2, 3), dtype=int), 1, 1)

    def test_out_of_range_next_state_rejected(self):
        with pytest.raises(StateTableError, match="valid state indices"):
            make_table(next_state=np.array([[0, 2], [1, 0]]))

    def test_output_must_fit_width(self):
        with pytest.raises(StateTableError, match="output"):
            make_table(output=np.array([[0, 2], [1, 0]]))

    def test_immutable(self):
        table = make_table()
        with pytest.raises(AttributeError):
            table.n_inputs = 3
        with pytest.raises(ValueError):
            table.next_state[0, 0] = 1

    def test_zero_input_machine(self):
        table = StateTable(
            np.array([[1], [0]]), np.array([[1], [0]]), 0, 1
        )
        assert table.n_input_combinations == 1
        assert table.step(0, 0) == (1, 1)

    def test_n_state_variables_minimum_one(self):
        table = StateTable(np.array([[0, 0]]), np.array([[0, 1]]), 1, 1)
        assert table.n_state_variables == 1


class TestSemantics:
    def test_step(self):
        table = make_table()
        assert table.step(0, 1) == (1, 0)
        assert table.step(1, 0) == (1, 1)

    def test_step_bounds(self):
        table = make_table()
        with pytest.raises(StateTableError):
            table.step(2, 0)
        with pytest.raises(StateTableError):
            table.step(0, 2)

    def test_run_returns_outputs_and_final(self):
        table = make_table()
        final, outputs = table.run(0, [1, 0, 1])
        assert outputs == (0, 1, 1)
        assert final == 0

    def test_run_empty_sequence(self):
        table = make_table()
        assert table.run(1, []) == (1, ())

    def test_response_matches_run(self):
        table = make_table()
        assert table.response(0, (1, 1)) == table.run(0, (1, 1))[1]

    def test_final_state(self):
        table = make_table()
        assert table.final_state(0, (1, 1)) == 0

    def test_transitions_order(self):
        table = make_table()
        transitions = list(table.transitions())
        assert transitions[0] == Transition(0, 0, 0, 0)
        assert transitions[1] == Transition(0, 1, 1, 0)
        assert transitions[2] == Transition(1, 0, 1, 1)
        assert len(transitions) == 4

    def test_transition_lookup(self):
        table = make_table()
        assert table.transition(1, 1) == Transition(1, 1, 0, 1)

    def test_successors(self):
        table = make_table()
        assert table.successors(0) == frozenset({0, 1})


class TestBitHelpers:
    def test_input_bits_msb_first(self, lion):
        assert lion.input_bits(0b01) == (0, 1)
        assert lion.input_bits(0b10) == (1, 0)

    def test_input_index_roundtrip(self, lion):
        for combo in range(lion.n_input_combinations):
            assert lion.input_index(lion.input_bits(combo)) == combo

    def test_output_bits(self, lion):
        assert lion.output_bits(1) == (1,)

    def test_bad_bits_rejected(self, lion):
        with pytest.raises(StateTableError):
            lion.input_index((0, 2))
        with pytest.raises(StateTableError):
            lion.input_index((0,))

    def test_out_of_range_combination(self, lion):
        with pytest.raises(StateTableError):
            lion.input_bits(4)


class TestEqualityAndRepr:
    def test_equality(self):
        assert make_table() == make_table()
        assert make_table() != make_table(output=np.array([[1, 0], [1, 1]]))

    def test_hash_consistency(self):
        assert hash(make_table()) == hash(make_table())

    def test_renamed(self):
        table = make_table().renamed("fresh")
        assert table.name == "fresh"
        assert table == make_table()  # name does not affect equality

    def test_repr_mentions_dimensions(self, lion):
        assert "4 states" in repr(lion)


class TestLionPinnedToPaper:
    """The embedded lion machine must equal the paper's Table 1 exactly."""

    EXPECTED = {
        # (state, input): (next_state, output)
        (0, 0b00): (0, 0), (0, 0b01): (1, 1), (0, 0b10): (0, 0), (0, 0b11): (0, 0),
        (1, 0b00): (1, 1), (1, 0b01): (1, 1), (1, 0b10): (3, 1), (1, 0b11): (0, 0),
        (2, 0b00): (2, 1), (2, 0b01): (2, 1), (2, 0b10): (3, 1), (2, 0b11): (3, 1),
        (3, 0b00): (1, 1), (3, 0b01): (2, 1), (3, 0b10): (3, 1), (3, 0b11): (3, 1),
    }

    def test_every_entry(self, lion):
        for (state, combo), expected in self.EXPECTED.items():
            assert lion.step(state, combo) == expected

    def test_dimensions(self, lion):
        assert lion.n_states == 4
        assert lion.n_inputs == 2
        assert lion.n_outputs == 1
        assert lion.n_state_variables == 2

"""Table 3 benchmark: stuck-at grading of the lion worked example.

Times the full Table 3 pipeline — synthesis, fault collapsing, exhaustive
detectability, longest-first fault simulation with dropping — and asserts
the table's shape: the long tests carry the coverage, the length-1 tests
are (almost) all unnecessary, and every detectable fault falls.
"""

from __future__ import annotations

from repro.benchmarks import load_circuit, load_kiss_machine
from repro.core.compaction import select_effective_tests
from repro.core.generator import generate_tests
from repro.gatelevel.compiled import CompiledFaultSimulator
from repro.gatelevel.detectability import detectable_faults
from repro.gatelevel.scan import ScanCircuit
from repro.gatelevel.stuck_at import collapse_stuck_at
from repro.gatelevel.synthesis import SynthesisOptions


def run_table3():
    table = load_circuit("lion")
    tests = generate_tests(table).test_set
    circuit = ScanCircuit.from_machine(
        load_kiss_machine("lion"), SynthesisOptions(max_fanin=4)
    )
    faults = sorted(set(collapse_stuck_at(circuit.netlist).values()))
    detectable, undetectable = detectable_faults(circuit.netlist, faults)
    simulator = CompiledFaultSimulator(circuit, table, faults)
    selection = select_effective_tests(
        tests,
        simulator.make_effective_simulator(),
        faults,
        stop_when_exhausted=undetectable,
    )
    return selection, detectable


def test_lion_table3(benchmark):
    selection, detectable = benchmark(run_table3)
    # All detectable faults are detected (the paper reaches 40/40).
    assert selection.detected == frozenset(detectable)
    # Longest-first order, as the paper simulates.
    lengths = [test.length for test, _, _ in selection.rows]
    assert lengths == sorted(lengths, reverse=True)
    # The multi-transition tests dominate: the four longest tests of the
    # paper's table already reach full coverage; allow the same shape here.
    effective_lengths = [t.length for t in selection.effective]
    assert max(effective_lengths) >= 4
    # Most length-1 tests are not needed.
    ineffective_len1 = sum(
        1 for test, _, eff in selection.rows if test.length == 1 and not eff
    )
    assert ineffective_len1 >= 3

"""Cheap preflight hooks the library wires in front of expensive phases.

These helpers run only the cheap, ERROR-capable subset of the rule registry
and raise the caller's established :class:`~repro.errors.ReproError`
subclass on findings — so ``generate_tests`` keeps raising
``GenerationError`` and the fault simulator keeps raising
``FaultSimulationError``, but both now reject malformed inputs *before*
spending time on UIO search or fault batches.

The netlist preflight memoizes per netlist object (weakly, so simulation
loops pay the structural sweep once, not per test).
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING

from repro.errors import LintError, ReproError

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.fsm.kiss import KissMachine
    from repro.fsm.state_table import StateTable
    from repro.gatelevel.netlist import Netlist

__all__ = ["preflight_machine", "preflight_netlist", "forget_netlist"]

#: Netlists that already passed the structural preflight.
_CLEAN_NETLISTS: "weakref.WeakSet[object]" = weakref.WeakSet()


def preflight_machine(
    subject: "KissMachine | StateTable",
    exc_type: type[ReproError] = LintError,
) -> None:
    """Raise ``exc_type`` if cheap ERROR-level FSM rules fire on ``subject``."""
    from repro.lint.fsm_rules import analyze_machine

    report = analyze_machine(subject, errors_only=True, include_expensive=False)
    report.raise_on_errors(exc_type)


def preflight_netlist(
    netlist: "Netlist",
    exc_type: type[ReproError] = LintError,
) -> None:
    """Raise ``exc_type`` if cheap ERROR-level netlist rules fire.

    Results are memoized per object: a netlist that passed once is never
    re-swept, which keeps the hook free inside fault-simulation loops.
    """
    if netlist in _CLEAN_NETLISTS:
        return
    from repro.lint.netlist_rules import analyze_netlist

    report = analyze_netlist(netlist, errors_only=True, include_expensive=False)
    report.raise_on_errors(exc_type)
    _CLEAN_NETLISTS.add(netlist)


def forget_netlist(netlist: "Netlist") -> None:
    """Drop a netlist from the preflight cache (after in-place mutation)."""
    _CLEAN_NETLISTS.discard(netlist)

"""Rule base class and registry for the static analyzers.

Every check is a :class:`Rule` subclass registered under a stable id
(``FSM001``, ``NET004``, ``TST002``, ...) and a kebab-case name.  Rules are
grouped into *domains* — ``"fsm"`` for state tables and KISS machines,
``"netlist"`` for gate-level netlists and scan circuits, ``"test"`` for
generated test programs — and carry a *cost* class so that the cheap
preflight hooks inside the library can skip expensive whole-artifact checks
(KISS round-trips, equivalence partitions) that only the CLI runs.

Adding a rule is: subclass :class:`Rule`, decorate with :func:`register`,
implement :meth:`Rule.check` yielding :class:`Diagnostic` objects.  The
analyzers pick it up automatically and the CLI lists it in the SARIF rule
index.
"""

from __future__ import annotations

import abc
from typing import ClassVar, Iterator

from repro.errors import LintError
from repro.lint.diagnostics import Diagnostic, Severity

__all__ = ["Rule", "register", "rules_for", "get_rule", "all_rules", "rule_index"]

#: Recognized rule domains.
DOMAINS = ("fsm", "netlist", "test")

#: Recognized cost classes.  ``"cheap"`` rules run in preflight hooks on
#: every library call; ``"expensive"`` rules only run from the CLI / API.
COSTS = ("cheap", "expensive")


class Rule(abc.ABC):
    """One static-analysis check.

    Subclasses set the class attributes and implement :meth:`check`; the
    context object passed in is domain-specific (see the rule modules).
    """

    rule_id: ClassVar[str]
    name: ClassVar[str]
    severity: ClassVar[Severity]  #: worst severity this rule can emit
    domain: ClassVar[str]
    cost: ClassVar[str] = "cheap"
    description: ClassVar[str] = ""

    @abc.abstractmethod
    def check(self, context: object) -> Iterator[Diagnostic]:
        """Yield findings for one artifact."""

    def diagnostic(
        self,
        message: str,
        location: str = "",
        severity: Severity | None = None,
        hint: str = "",
        artifact: str = "",
    ) -> Diagnostic:
        """A finding attributed to this rule (severity defaults to the rule's)."""
        return Diagnostic(
            self.rule_id,
            self.severity if severity is None else severity,
            message,
            location,
            hint,
            artifact,
        )


_REGISTRY: dict[str, type[Rule]] = {}
_BY_NAME: dict[str, str] = {}


def register(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding ``rule_class`` to the global registry."""
    rule_id = getattr(rule_class, "rule_id", "")
    name = getattr(rule_class, "name", "")
    if not rule_id or not name:
        raise LintError(f"rule {rule_class.__name__} lacks rule_id or name")
    if rule_class.domain not in DOMAINS:
        raise LintError(f"rule {rule_id} has unknown domain {rule_class.domain!r}")
    if rule_class.cost not in COSTS:
        raise LintError(f"rule {rule_id} has unknown cost {rule_class.cost!r}")
    existing = _REGISTRY.get(rule_id)
    if existing is not None and existing is not rule_class:
        raise LintError(f"duplicate rule id {rule_id}")
    if _BY_NAME.get(name, rule_id) != rule_id:
        raise LintError(f"duplicate rule name {name}")
    _REGISTRY[rule_id] = rule_class
    _BY_NAME[name] = rule_id
    return rule_class


def get_rule(id_or_name: str) -> Rule:
    """Instantiate the rule registered under an id or a name."""
    rule_id = _BY_NAME.get(id_or_name, id_or_name)
    try:
        return _REGISTRY[rule_id]()
    except KeyError:
        raise LintError(f"unknown lint rule {id_or_name!r}") from None


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, ordered by rule id."""
    return tuple(_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY))


def rules_for(
    domain: str,
    *,
    errors_only: bool = False,
    include_expensive: bool = True,
) -> tuple[Rule, ...]:
    """Registered rules of ``domain``, ordered by id.

    ``errors_only`` keeps only rules whose worst severity is ERROR (the
    preflight mode — WARNING/INFO rules cannot affect control flow and are
    skipped entirely); ``include_expensive=False`` drops expensive rules.
    """
    if domain not in DOMAINS:
        raise LintError(f"unknown lint domain {domain!r}")
    selected = []
    for rule_id in sorted(_REGISTRY):
        rule_class = _REGISTRY[rule_id]
        if rule_class.domain != domain:
            continue
        if errors_only and rule_class.severity is not Severity.ERROR:
            continue
        if not include_expensive and rule_class.cost == "expensive":
            continue
        selected.append(rule_class())
    return tuple(selected)


def rule_index(rules: tuple[Rule, ...] | None = None) -> dict[str, tuple[str, str]]:
    """``rule_id -> (name, description)`` map for the SARIF tool section."""
    chosen = all_rules() if rules is None else rules
    return {rule.rule_id: (rule.name, rule.description) for rule in chosen}

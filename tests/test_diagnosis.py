"""Unit tests for dictionary-based fault diagnosis."""

from __future__ import annotations

import pytest

from repro.benchmarks import load_circuit, load_kiss_machine
from repro.core.generator import generate_tests
from repro.errors import FaultSimulationError
from repro.gatelevel.bridging import enumerate_bridging_faults
from repro.gatelevel.diagnosis import FaultDictionary, observed_signature
from repro.gatelevel.scan import ScanCircuit
from repro.gatelevel.stuck_at import collapse_stuck_at
from repro.gatelevel.synthesis import SynthesisOptions


@pytest.fixture(scope="module")
def dictionary_setup():
    table = load_circuit("lion")
    circuit = ScanCircuit.from_machine(
        load_kiss_machine("lion"), SynthesisOptions(max_fanin=4)
    )
    tests = generate_tests(table).test_set
    faults = sorted(set(collapse_stuck_at(circuit.netlist).values()))
    dictionary = FaultDictionary.build(circuit, table, tests, faults)
    return table, circuit, tests, faults, dictionary


class TestDictionaryBuild:
    def test_every_fault_has_a_signature(self, dictionary_setup):
        _, _, tests, faults, dictionary = dictionary_setup
        assert set(dictionary.signatures) == set(faults)
        assert all(
            len(signature) == len(tests)
            for signature in dictionary.signatures.values()
        )

    def test_signatures_match_single_fault_simulation(self, dictionary_setup):
        table, circuit, tests, faults, dictionary = dictionary_setup
        for fault in faults[:8]:
            assert dictionary.signatures[fault] == observed_signature(
                circuit, table, tuple(tests), fault
            )

    def test_empty_universe_rejected(self, dictionary_setup):
        table, circuit, tests, _, _ = dictionary_setup
        with pytest.raises(FaultSimulationError):
            FaultDictionary.build(circuit, table, tests, [])


class TestDiagnose:
    def test_every_detected_fault_diagnoses_to_its_class(self, dictionary_setup):
        _, _, _, faults, dictionary = dictionary_setup
        for fault, signature in dictionary.signatures.items():
            if not any(signature):
                continue  # never detected: nothing to diagnose
            result = dictionary.diagnose(signature)
            assert fault in result.exact

    def test_all_pass_signature_matches_undetected_faults(self, dictionary_setup):
        _, _, tests, _, dictionary = dictionary_setup
        result = dictionary.diagnose([False] * len(tests))
        for fault in result.exact:
            assert not any(dictionary.signatures[fault])

    def test_unmodeled_defect_gets_nearest_candidates(self, dictionary_setup):
        table, circuit, tests, _, dictionary = dictionary_setup
        bridges = enumerate_bridging_faults(circuit.netlist)
        assert bridges
        signature = observed_signature(circuit, table, tuple(tests), bridges[0])
        result = dictionary.diagnose(signature)
        if not result.is_exact:
            assert result.nearest
            best_distance = result.nearest[0][0]
            assert best_distance >= 1

    def test_wrong_signature_length_rejected(self, dictionary_setup):
        _, _, _, _, dictionary = dictionary_setup
        with pytest.raises(FaultSimulationError):
            dictionary.diagnose([True])


class TestResolution:
    def test_resolution_counts_consistent(self, dictionary_setup):
        _, _, _, _, dictionary = dictionary_setup
        unique, total, pct = dictionary.resolution()
        assert 0 <= unique <= total
        assert pct == pytest.approx(100.0 * unique / total)

    def test_classes_partition_detected_faults(self, dictionary_setup):
        _, _, _, _, dictionary = dictionary_setup
        unique, total, _ = dictionary.resolution()
        in_classes = sum(len(c) for c in dictionary.indistinguishable_classes())
        assert unique + in_classes == total

    def test_more_tests_never_reduce_resolution(self, dictionary_setup):
        """Diagnostic resolution is monotone in the test set."""
        table, circuit, tests, faults, dictionary = dictionary_setup
        fewer = FaultDictionary.build(
            circuit, table, list(tests)[:4], faults
        )
        unique_few, _, _ = fewer.resolution()
        unique_all, _, _ = dictionary.resolution()
        assert unique_all >= unique_few

"""Regression gate: compare the current tree against a BENCH baseline.

``repro-fsatpg regress --baseline BENCH_perf.json`` re-runs the baseline's
workload (same circuits, same generator options) on the current tree and
fails on either of two regression classes:

* **Stage time** — any pipeline stage (uio, generation, synthesis,
  detectability, fault-sim) slower than the baseline by more than
  ``--threshold`` percent (default 25).  Stages faster than
  ``--min-seconds`` in *both* runs are skipped: sub-100ms stages are
  timer noise, not signal, and a gate that cries wolf gets disabled.
* **Test quality** — *any* change in the per-circuit result summaries
  (test counts, total lengths, UIO statistics, fault coverage).  The
  pipeline is deterministic, so a quality delta is a behavior change by
  definition and no tolerance applies.
* **Peak memory** — the rerun's max-RSS more than ``--threshold`` percent
  above the baseline's ``serial_cold`` figure (schema /5 baselines record
  a ``resources`` block per run).  Runs whose RSS stays under
  ``--min-rss-kb`` pass unconditionally: the interpreter's own baseline
  footprint dominates down there and percentage growth on it is noise.

Timing checks always apply as configured — there is deliberately no
"different machine, skip timing" escape hatch, because a gate with a
silent bypass is decorative.  Runs on slower hardware should pass a
larger ``--threshold`` explicitly (CI does).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.obs.log import get_logger

__all__ = [
    "Regression",
    "RegressionReport",
    "collect_current",
    "compare_reports",
    "options_from_baseline",
    "run_regress",
]

_LOG = get_logger("regress")


@dataclass(frozen=True)
class Regression:
    """One detected regression (timing or quality)."""

    kind: str  # "stage-time" | "quality" | "memory"
    subject: str  # stage name, or "circuit.path.to.field"
    baseline: Any
    current: Any
    detail: str

    def render(self) -> str:
        return (
            f"[{self.kind}] {self.subject}: "
            f"{self.baseline} -> {self.current} ({self.detail})"
        )


@dataclass
class RegressionReport:
    """Outcome of one baseline comparison."""

    regressions: list[Regression] = field(default_factory=list)
    checked_stages: int = 0
    checked_circuits: int = 0
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = [
            f"regress: {self.checked_stages} stages, "
            f"{self.checked_circuits} circuits checked"
        ]
        lines += [f"  note: {note}" for note in self.notes]
        if self.ok:
            lines.append("  no regressions")
        else:
            lines += [f"  {regression.render()}" for regression in self.regressions]
        return "\n".join(lines)


def options_from_baseline(baseline: Mapping[str, Any]) -> Any:
    """Rebuild the :class:`StudyOptions` a /3+ baseline was measured with.

    Schema /4 baselines record the fault-sim ``engine`` too, so the rerun
    dispatches exactly as the baseline did.  Older baselines (schema /2,
    no ``options`` block) fall back to the defaults — the caller should
    surface that in the report notes.
    """
    from repro.core.config import FaultSimConfig, GeneratorConfig
    from repro.harness.experiments import StudyOptions

    block = baseline.get("options")
    if not isinstance(block, dict):
        return StudyOptions()
    config_block = block.get("config")
    config = (
        GeneratorConfig(**config_block)
        if isinstance(config_block, dict)
        else GeneratorConfig()
    )
    return StudyOptions(
        config=config,
        max_fanin=block.get("max_fanin", 4),
        bridging_pair_limit=block.get("bridging_pair_limit", 500),
        faultsim=FaultSimConfig(engine=block.get("engine", "auto")),
    )


def collect_current(
    circuits: Sequence[str],
    options: Any = None,
    *,
    jobs: int = 1,
) -> dict[str, Any]:
    """Run the baseline workload on the current tree; return the comparable view."""
    from repro.harness.runtime import StageTimings
    from repro.obs.resources import UsageProbe
    from repro.perf.engine import compute_studies

    timings = StageTimings()
    probe = UsageProbe()
    artifacts = compute_studies(circuits, options, jobs=jobs, timings=timings)
    return {
        "stage_seconds": timings.to_dict().get("stage_seconds", {}),
        "results": {name: art.summary() for name, art in artifacts.items()},
        "resources": probe.sample().to_dict(),
    }


def _flatten(prefix: str, value: Any, into: dict[str, Any]) -> None:
    if isinstance(value, dict):
        for key in sorted(value):
            _flatten(f"{prefix}.{key}" if prefix else str(key), value[key], into)
    else:
        into[prefix] = value


def compare_reports(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    *,
    threshold_pct: float = 25.0,
    min_seconds: float = 0.1,
    min_rss_kb: float = 51200.0,
) -> RegressionReport:
    """Compare a BENCH baseline against a :func:`collect_current` view."""
    report = RegressionReport()

    base_stages = (
        baseline.get("runs", {}).get("serial_cold", {}).get("stage_seconds", {})
    )
    current_stages = current.get("stage_seconds", {})
    for stage in sorted(base_stages):
        base_s = float(base_stages[stage])
        if stage not in current_stages:
            report.notes.append(f"stage {stage!r} absent from current run")
            continue
        current_s = float(current_stages[stage])
        report.checked_stages += 1
        if base_s < min_seconds and current_s < min_seconds:
            continue  # both under the noise floor
        limit = max(base_s * (1.0 + threshold_pct / 100.0), min_seconds)
        if current_s > limit:
            grew = 100.0 * (current_s - base_s) / base_s if base_s else float("inf")
            report.regressions.append(
                Regression(
                    "stage-time", stage,
                    round(base_s, 4), round(current_s, 4),
                    f"+{grew:.0f}%, threshold {threshold_pct:g}%",
                )
            )

    if any(r.kind == "stage-time" for r in report.regressions):
        # Explain *why* the gate tripped, not just that it did: the same
        # delta attribution `diff` uses, over the full stage vector.
        from repro.obs.analytics import attribute_deltas, render_attribution

        attribution = render_attribution(
            attribute_deltas(
                {k: float(v) for k, v in base_stages.items()},
                {k: float(v) for k, v in current_stages.items()},
            )
        )
        if attribution:
            report.notes.append(f"stage-time shift attribution: {attribution}")

    base_resources = (
        baseline.get("runs", {}).get("serial_cold", {}).get("resources")
    )
    current_resources = current.get("resources")
    if not isinstance(base_resources, dict):
        report.notes.append(
            "baseline has no resources block (pre-/5 schema): "
            "memory gate skipped"
        )
    elif isinstance(current_resources, dict):
        base_kb = float(base_resources.get("max_rss_kb", 0))
        current_kb = float(current_resources.get("max_rss_kb", 0))
        limit_kb = max(base_kb * (1.0 + threshold_pct / 100.0), min_rss_kb)
        if current_kb > limit_kb:
            grew = (
                100.0 * (current_kb - base_kb) / base_kb
                if base_kb
                else float("inf")
            )
            report.regressions.append(
                Regression(
                    "memory", "max_rss_kb",
                    int(base_kb), int(current_kb),
                    f"+{grew:.0f}%, threshold {threshold_pct:g}%",
                )
            )

    base_results = baseline.get("results")
    if not isinstance(base_results, dict) or not base_results:
        report.notes.append(
            "baseline has no results block (pre-/3 schema): "
            "quality gate skipped"
        )
        base_results = {}
    current_results = current.get("results", {})
    for circuit in sorted(base_results):
        report.checked_circuits += 1
        if circuit not in current_results:
            report.regressions.append(
                Regression(
                    "quality", circuit, "present", "missing",
                    "circuit absent from current run",
                )
            )
            continue
        base_flat: dict[str, Any] = {}
        current_flat: dict[str, Any] = {}
        _flatten("", base_results[circuit], base_flat)
        _flatten("", current_results[circuit], current_flat)
        for key in sorted(set(base_flat) | set(current_flat)):
            left = base_flat.get(key, "<absent>")
            right = current_flat.get(key, "<absent>")
            if left != right:
                report.regressions.append(
                    Regression(
                        "quality", f"{circuit}.{key}", left, right,
                        "any quality delta fails (deterministic pipeline)",
                    )
                )
    return report


def run_regress(
    baseline_path: str | Path,
    *,
    circuits: Sequence[str] | None = None,
    jobs: int = 1,
    threshold_pct: float = 25.0,
    min_seconds: float = 0.1,
    min_rss_kb: float = 51200.0,
) -> tuple[RegressionReport | None, int]:
    """CLI driver: load baseline, rerun its workload, compare.

    Returns ``(report, exit_code)``: 0 clean, 1 regressions found, 2 the
    baseline could not be used.
    """
    path = Path(baseline_path)
    try:
        baseline = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        _LOG.error(f"cannot read baseline {path}: {exc}")
        return None, 2
    if not isinstance(baseline, dict):
        _LOG.error(f"baseline {path} is not a JSON object")
        return None, 2
    names = list(circuits) if circuits else list(baseline.get("circuits", []))
    if not names:
        _LOG.error(f"baseline {path} lists no circuits and none were given")
        return None, 2
    options = options_from_baseline(baseline)
    current = collect_current(names, options, jobs=jobs)
    report = compare_reports(
        baseline, current,
        threshold_pct=threshold_pct, min_seconds=min_seconds,
        min_rss_kb=min_rss_kb,
    )
    if "options" not in baseline:
        report.notes.append("baseline has no options block: defaults assumed")
    schema = baseline.get("schema")
    if schema != "repro-fsatpg-bench/5":
        report.notes.append(f"baseline schema {schema!r} (current is /5)")
    return report, 0 if report.ok else 1

"""Parallel sweep engine: fan :class:`CircuitStudy` stages across processes.

The engine decomposes the per-circuit pipeline into three phases:

1. **Prepare** (one task per circuit): UIO table, functional test generation,
   synthesis + verification, fault enumeration, and the exhaustive
   detectability oracle.  The artifact cache serves UIO tables, synthesized
   circuits, and detectability partitions across runs.
2. **Simulate** (one task per fault chunk): every (circuit, fault model)
   universe is split into engine-aware chunks (one whole-universe chunk for
   PPSFP, adaptive big-int batches otherwise); each task builds the
   dispatched fault simulator for its chunk and produces one detection mask
   per test.  Chunking is sound because detection of a fault never depends
   on which other faults share the batch — each bit/row is its own machine
   (see :mod:`repro.gatelevel.compiled`, :mod:`repro.gatelevel.ppsfp`).
3. **Select** (main process): chunk masks are merged into per-test detected
   sets, and :func:`~repro.core.compaction.select_effective_tests` replays
   the paper's longest-first effective-test selection against them.

Parallel phases run on the **persistent worker pool**
(:mod:`repro.perf.pool`): workers are forked once per process and reused
across phases and sweeps; each phase primes them with one shared read-only
snapshot and then sends index-only task messages, so no per-task artifact
pickling happens at all.

Because phase 3 feeds the selection exactly the sets a full-universe
simulator would have produced, the engine's results are **bit-identical** to
the serial :class:`~repro.harness.experiments.CircuitStudy` path for any
``jobs`` value — ``jobs=1`` runs the very same task functions inline, and a
machine where workers cannot be forked degrades to the same inline path.
Result ordering is deterministic: the returned mapping follows the caller's
circuit order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.benchmarks import load_circuit, load_kiss_machine
from repro.core.compaction import EffectiveSelection, select_effective_tests
from repro.core.config import FaultSimConfig
from repro.core.generator import GenerationResult, generate_tests
from repro.core.testset import ScanTest
from repro.fsm.state_table import StateTable
from repro.gatelevel.bridging import enumerate_bridging_faults
from repro.gatelevel.dispatch import make_fault_simulator
from repro.gatelevel.ppsfp import PpsfpSimulator
from repro.gatelevel.scan import ScanCircuit
from repro.harness.runtime import StageTimings, stopwatch
from repro.obs import (
    ObsSnapshot,
    absorb_snapshot,
    is_active,
    worker_snapshot,
)
from repro.obs.progress import meter as progress_meter
from repro.obs.trace import span as trace_span
from repro.perf.artifacts import (
    STAGE_FAULT_SIM,
    STAGE_GENERATION,
    Fault,
    cached_detectability,
    cached_scan_circuit,
    cached_sca,
    cached_uio_table,
)
from repro.perf.cache import active_cache
from repro.perf.pool import get_pool
from repro.uio.search import UioTable

if TYPE_CHECKING:  # imported lazily at runtime to avoid a module cycle
    from repro.harness.experiments import CircuitStudy, StudyOptions
    from repro.obs.progress import ProgressMeter

__all__ = ["StudyArtifacts", "compute_studies"]


@dataclass
class StudyArtifacts:
    """Everything a :class:`CircuitStudy` lazily computes, fully materialized.

    :meth:`install` seeds a study's ``cached_property`` slots so subsequent
    table regeneration reuses the engine's results without recomputing.

    ``scope="functional"`` runs stop after test generation: the gate-level
    fields stay ``None`` and :meth:`install` leaves the corresponding study
    properties lazy.
    """

    name: str
    uio: tuple[UioTable, float]
    generation: GenerationResult
    scan_circuit: ScanCircuit | None = None
    stuck_at_faults: list[Fault] | None = None
    stuck_at_detectability: tuple[set[Fault], set[Fault]] | None = None
    stuck_at_selection: EffectiveSelection | None = None
    bridging_faults: list[Fault] | None = None
    bridging_detectability: tuple[set[Fault], set[Fault]] | None = None
    bridging_selection: EffectiveSelection | None = None
    #: representatives proven untestable by a verified certificate; they are
    #: never simulated, and the detectability partition already counts them
    stuck_at_proven: frozenset[Fault] | None = None

    def install(self, study: "CircuitStudy") -> None:
        """Seed ``study``'s cached properties with these artifacts."""
        values: dict[str, Any] = {
            "_uio": self.uio,
            "generation": self.generation,
            "scan_circuit": self.scan_circuit,
            "stuck_at_faults": self.stuck_at_faults,
            "stuck_at_detectability": self.stuck_at_detectability,
            "stuck_at_selection": self.stuck_at_selection,
            "bridging_faults": self.bridging_faults,
            "bridging_detectability": self.bridging_detectability,
            "bridging_selection": self.bridging_selection,
            "stuck_at_proven": self.stuck_at_proven,
        }
        # cached_property stores its result under the attribute name in the
        # instance __dict__; pre-populating it is the documented way to seed.
        # Functional-scope artifacts leave the gate-level slots unset so the
        # study computes them lazily if something does ask.
        study.__dict__.update(
            {key: value for key, value in values.items() if value is not None}
        )

    def signature(self) -> dict[str, Any]:
        """Timing-free summary used to compare runs for divergence."""
        uio, _ = self.uio
        signature: dict[str, Any] = {
            "uio_found": uio.n_found,
            "uio_max_len": uio.max_found_length,
            "tests": self.generation.n_tests,
            "test_length": self.generation.total_length,
        }
        if self.stuck_at_selection is not None:
            signature["stuck_at"] = _selection_signature(self.stuck_at_selection)
        if self.bridging_selection is not None:
            signature["bridging"] = _selection_signature(self.bridging_selection)
        return signature

    def summary(self) -> dict[str, Any]:
        """Compact scalar summary for ledger records and bench results.

        Unlike :meth:`signature` this never enumerates faults or tests —
        it is the per-circuit block persisted in ``BENCH_perf.json`` and
        the run ledger, so it must stay small and scheduling-invariant.
        """
        uio, _ = self.uio
        summary: dict[str, Any] = {
            "uio_found": uio.n_found,
            "uio_max_len": uio.max_found_length,
            "tests": self.generation.n_tests,
            "test_length": self.generation.total_length,
            "pct_length_one": round(self.generation.pct_length_one, 4),
        }
        for model, faults, selection in (
            ("stuck_at", self.stuck_at_faults, self.stuck_at_selection),
            ("bridging", self.bridging_faults, self.bridging_selection),
        ):
            if faults is None or selection is None:
                continue
            detected = len(selection.detected)
            summary[model] = {
                "faults": len(faults),
                "detected": detected,
                "coverage": round(detected / len(faults), 6) if faults else 1.0,
                "effective_tests": selection.n_effective,
            }
        return summary


def _selection_signature(selection: EffectiveSelection) -> dict[str, Any]:
    return {
        "n_faults": selection.n_faults,
        "n_effective": selection.n_effective,
        "effective_length": selection.effective_length,
        "detected": sorted(repr(fault) for fault in selection.detected),
        "rows": [
            (str(test), count, effective)
            for test, count, effective in selection.rows
        ],
    }


# ------------------------------------------------------------ phase 1: prep


@dataclass
class _CircuitPrep:
    """Per-circuit result of phase 1 (picklable worker payload)."""

    name: str
    uio: tuple[UioTable, float]
    generation: GenerationResult
    scan_circuit: ScanCircuit | None
    stuck_at_faults: list[Fault] | None
    stuck_at_detectability: tuple[set[Fault], set[Fault]] | None
    bridging_faults: list[Fault] | None
    bridging_detectability: tuple[set[Fault], set[Fault]] | None
    #: tests in the exact order the effective-test selection simulates them
    tests: tuple[ScanTest, ...]
    timings: StageTimings
    #: spans + metrics drained from the worker (``None`` when run inline)
    obs: ObsSnapshot | None = None
    #: stuck-at representatives with a verified untestability certificate
    stuck_at_proven: frozenset[Fault] = frozenset()


def _prepare_task(snapshot: dict[str, Any], index: int) -> _CircuitPrep:
    """Phase-1 task: fully prepare circuit ``snapshot["names"][index]``."""
    name = snapshot["names"][index]
    options, scope = snapshot["options"], snapshot["scope"]
    with trace_span("circuit.prepare", circuit=name, scope=scope):
        prep = _prepare_circuit_stages(name, options, scope)
    prep.obs = worker_snapshot()
    return prep


def _prepare_circuit_stages(
    name: str, options: "StudyOptions", scope: str = "full"
) -> _CircuitPrep:
    timings = StageTimings()
    table = load_circuit(name)
    config = options.config
    length = config.resolved_uio_length(table.n_state_variables)
    uio = cached_uio_table(
        table, length, config.uio_node_budget, circuit=name, timings=timings
    )
    with timings.stage(name, STAGE_GENERATION):
        generation = generate_tests(table, config, uio[0])
    tests = tuple(generation.test_set.by_decreasing_length())
    if scope == "functional":
        # Functional tables (4/5) only need UIO + generation; skipping the
        # gate-level stages keeps serial and --jobs runs doing identical
        # work, which is what makes their ledger records jobs-invariant.
        return _CircuitPrep(
            name, uio, generation, None, None, None, None, None,
            tests, timings,
        )
    scan = cached_scan_circuit(
        load_kiss_machine(name), options.synthesis, table,
        circuit=name, timings=timings,
    )
    sca = cached_sca(scan.netlist, circuit=name, timings=timings)
    stuck_at: list[Fault] = list(sca.universe.representatives)
    proven: frozenset[Fault] = frozenset(sca.untestable_representatives)
    # Certificate-proved representatives skip the exhaustive oracle and the
    # simulation chunks entirely: a verified certificate already places them
    # in the undetectable bin, and equivalent faults share verdicts, so the
    # merged partition is identical to grading the full representative list.
    live = [fault for fault in stuck_at if fault not in proven]
    detectable, undetectable = cached_detectability(
        scan.netlist, live, circuit=name, timings=timings
    )
    stuck_at_detectability = (detectable, undetectable | set(proven))
    bridging: list[Fault] = list(
        enumerate_bridging_faults(
            scan.netlist, limit=options.bridging_pair_limit, seed=name
        )
    )
    bridging_detectability = cached_detectability(
        scan.netlist, bridging, circuit=name, timings=timings
    )
    return _CircuitPrep(
        name,
        uio,
        generation,
        scan,
        stuck_at,
        stuck_at_detectability,
        bridging,
        bridging_detectability,
        tests,
        timings,
        stuck_at_proven=proven,
    )


# -------------------------------------------------------- phase 2: simulate


def _simulate_task(
    snapshot: dict[str, Any], index: int
) -> tuple[list[int], StageTimings, ObsSnapshot | None]:
    """Detection mask per test for one fault chunk of one circuit.

    ``snapshot`` is the phase-primed artifact snapshot (see
    :func:`_run_phase`); ``index`` picks the chunk — the whole task message
    is just that integer.
    """
    name, chunk = snapshot["chunks"][index]
    scan, table, tests = snapshot["circuits"][name]
    faultsim: FaultSimConfig = snapshot["faultsim"]
    timings = StageTimings()
    cache = active_cache()
    hits = cache.hits if cache is not None else 0
    misses = cache.misses if cache is not None else 0
    total_cycles = sum(len(test.inputs) for test in tests)
    with trace_span(
        "sweep.chunk", circuit=name, n_faults=len(chunk), n_tests=len(tests)
    ):
        with stopwatch() as clock:
            simulator = make_fault_simulator(
                scan, table, chunk, faultsim, total_test_cycles=total_cycles
            )
            masks = simulator.detect_masks(tests)
        timings.add(name, STAGE_FAULT_SIM, clock.elapsed_s)
        _report_chunk(chunk, masks, isinstance(simulator, PpsfpSimulator))
    if cache is not None:
        # The only cache traffic here is the compiled simulator source.
        timings.cache_hits += cache.hits - hits
        timings.cache_misses += cache.misses - misses
    return masks, timings, worker_snapshot()


def _report_chunk(chunk: list[Fault], masks: list[int], ppsfp: bool) -> None:
    """Fold one chunk's fault-sim effort into the metrics registry.

    A chunk is one batch of the dispatched simulator, so it reports into
    the same ``faultsim.*`` family as the interpreted batch simulator
    (:mod:`repro.gatelevel.fault_sim`): ``detected`` counts distinct faults
    some test caught; per-test mask evaluations are counted per engine
    (``faultsim.ppsfp.calls`` / ``faultsim.compiled_calls``).
    """
    from repro.obs.metrics import current_registry

    registry = current_registry()
    if registry is None:
        return
    union = 0
    for mask in masks:
        union |= mask
    registry.counter("faultsim.batches").add(1)
    calls = "faultsim.ppsfp.calls" if ppsfp else "faultsim.compiled_calls"
    registry.counter(calls).add(len(masks))
    registry.counter("faultsim.faults_simulated").add(len(chunk))
    registry.counter("faultsim.detected").add(union.bit_count())
    registry.histogram("faultsim.batch_detected").observe(union.bit_count())


def _fault_chunks(
    faults: list[Fault],
    faultsim: FaultSimConfig,
    n_pattern_bits: int,
    total_test_cycles: int,
) -> list[list[Fault]]:
    """Engine-aware chunks of one (circuit, fault model) universe.

    The PPSFP engine amortizes one exhaustive table build across the whole
    universe, so it gets a single chunk; the big-int engine gets balanced
    adaptive batch words.  Chunk boundaries are jobs-invariant — the
    persistent pool load-balances chunks dynamically instead of shrinking
    them per worker (which used to recompile the same circuit once per
    worker and made parallel runs *slower* than serial).  Boundaries never
    affect results — per-fault detection is batch-independent.
    """
    n = len(faults)
    if n == 0:
        return []
    engine = faultsim.select_engine(n, n_pattern_bits, total_test_cycles)
    if engine == "ppsfp":
        return [faults]
    size = faultsim.resolved_batch_bits(n)
    return [faults[start : start + size] for start in range(0, n, size)]


# ---------------------------------------------------------- phase 3: select


def _select_from_masks(
    prep: _CircuitPrep,
    faults: list[Fault],
    chunks: list[list[Fault]],
    chunk_masks: list[list[int]],
    undetectable: set[Fault],
    use_stop: bool,
) -> EffectiveSelection:
    """Replay the serial effective-test selection from precomputed masks."""
    per_test: list[set[Fault]] = [set() for _ in prep.tests]
    for chunk, masks in zip(chunks, chunk_masks):
        for index, mask in enumerate(masks):
            detected = per_test[index]
            while mask:
                low = (mask & -mask).bit_length() - 1
                detected.add(chunk[low])
                mask &= mask - 1
    iterator = iter(per_test)

    def simulate(test: ScanTest, remaining: frozenset[Fault]) -> set[Fault]:
        # select_effective_tests calls simulate() for a strict prefix of
        # by_decreasing_length() order — the same order per_test follows.
        return next(iterator) & remaining

    if use_stop:
        return select_effective_tests(
            prep.generation.test_set, simulate, faults,
            stop_when_exhausted=undetectable,
        )
    return select_effective_tests(prep.generation.test_set, simulate, faults)


# ------------------------------------------------------------ the scheduler


def _run_phase(
    jobs: int,
    function: Callable[[Any, int], Any],
    snapshot: dict[str, Any],
    n_tasks: int,
    *,
    progress: "ProgressMeter | None" = None,
) -> list[Any]:
    """One engine phase: ``function(snapshot, i)`` for every task index.

    With ``jobs > 1`` the persistent pool is primed once with ``snapshot``
    and receives index-only task messages; otherwise — and whenever the
    pool cannot be created — the exact same task function runs inline, so
    every path produces identical results.  ``progress`` (a live meter
    from :func:`repro.obs.progress.meter`, or ``None``) ticks once per
    completed task on either path.
    """
    inline = jobs <= 1 or n_tasks <= 1
    pool = None
    if not inline:
        pool = get_pool(jobs)
        inline = pool is None
    if inline:
        results = []
        for index in range(n_tasks):
            results.append(function(snapshot, index))
            if progress is not None:
                progress.update()
    else:
        cache = active_cache()
        root = str(cache.root) if cache is not None else None
        pool.prime(snapshot, cache_root=root, obs_on=is_active())
        on_result = None
        if progress is not None:
            on_result = lambda index, result: progress.update()  # noqa: E731
        results = pool.run(function, n_tasks, on_result=on_result)
    if progress is not None:
        progress.finish()
    return results


def compute_studies(
    circuits: Sequence[str],
    options: "StudyOptions | None" = None,
    *,
    jobs: int = 1,
    timings: StageTimings | None = None,
    scope: str = "full",
) -> dict[str, StudyArtifacts]:
    """Run the pipeline for ``circuits`` with ``jobs`` processes.

    Returns one :class:`StudyArtifacts` per circuit, keyed and ordered by
    the caller's circuit order.  ``timings``, when given, accumulates every
    stage record (including worker-side cache hit/miss counts).

    ``scope="functional"`` stops after test generation (no synthesis, fault
    enumeration, simulation, or selection) — what the functional tables
    (4/5) need, and cheap enough that serial runs afford it too.
    """
    from repro.harness.experiments import StudyOptions

    if scope not in ("full", "functional"):
        raise ValueError(f"unknown scope {scope!r}")
    options = options or StudyOptions()
    names = list(dict.fromkeys(circuits))

    # Worker snapshots are absorbed *inside* the phase span that dispatched
    # them, so worker spans re-parent under "sweep.prepare"/"sweep.simulate";
    # inline execution (jobs=1 / pool fallback) yields None snapshots because
    # those spans already live in the parent's log.
    with trace_span("sweep.prepare", circuits=len(names), jobs=jobs):
        prepare_snapshot = {
            "names": names, "options": options, "scope": scope,
        }
        preps: list[_CircuitPrep] = _run_phase(
            jobs, _prepare_task, prepare_snapshot, len(names),
            progress=progress_meter("prepare", len(names), circuits=names),
        )
        for prep in preps:
            absorb_snapshot(prep.obs)

    if scope == "functional":
        artifacts_fn: dict[str, StudyArtifacts] = {}
        for prep in preps:
            if timings is not None:
                timings.merge(prep.timings)
            artifacts_fn[prep.name] = StudyArtifacts(
                prep.name, prep.uio, prep.generation
            )
        return artifacts_fn

    faultsim = options.faultsim
    sim_chunks: list[tuple[str, list[Fault]]] = []
    sim_circuits: dict[str, tuple[ScanCircuit, StateTable, tuple[ScanTest, ...]]] = {}
    chunk_index: dict[tuple[str, str], list[int]] = {}
    chunk_lists: dict[tuple[str, str], list[list[Fault]]] = {}
    for prep in preps:
        table = load_circuit(prep.name)
        scan = prep.scan_circuit
        sim_circuits[prep.name] = (scan, table, prep.tests)
        pattern_bits = scan.n_state_variables + scan.n_primary_inputs
        total_cycles = sum(len(test.inputs) for test in prep.tests)
        for model, faults in (
            ("stuck_at", prep.stuck_at_faults or []),
            ("bridging", prep.bridging_faults or []),
        ):
            if model == "stuck_at" and prep.stuck_at_proven:
                # Certificate-proved faults are already in the undetectable
                # bin; simulating them would only burn fault-sim cycles.
                faults = [f for f in faults if f not in prep.stuck_at_proven]
            chunks = _fault_chunks(faults, faultsim, pattern_bits, total_cycles)
            chunk_lists[(prep.name, model)] = chunks
            positions: list[int] = []
            for chunk in chunks:
                positions.append(len(sim_chunks))
                sim_chunks.append((prep.name, chunk))
            chunk_index[(prep.name, model)] = positions

    with trace_span("sweep.simulate", chunks=len(sim_chunks), jobs=jobs):
        simulate_snapshot = {
            "circuits": sim_circuits,
            "chunks": sim_chunks,
            "faultsim": faultsim,
        }
        sim_results: list[tuple[list[int], StageTimings, ObsSnapshot | None]] = (
            _run_phase(
                jobs, _simulate_task, simulate_snapshot, len(sim_chunks),
                progress=progress_meter(
                    "simulate", len(sim_chunks), circuits=names
                ),
            )
        )
        for result in sim_results:
            absorb_snapshot(result[2])

    artifacts: dict[str, StudyArtifacts] = {}
    with trace_span("sweep.select", circuits=len(names)):
        for prep in preps:
            if timings is not None:
                timings.merge(prep.timings)
            selections: dict[str, EffectiveSelection] = {}
            for model, faults, detectability in (
                ("stuck_at", prep.stuck_at_faults or [],
                 prep.stuck_at_detectability or (set(), set())),
                ("bridging", prep.bridging_faults or [],
                 prep.bridging_detectability or (set(), set())),
            ):
                positions = chunk_index[(prep.name, model)]
                chunk_masks = [sim_results[position][0] for position in positions]
                if timings is not None:
                    for position in positions:
                        timings.merge(sim_results[position][1])
                if model == "bridging" and not faults:
                    # Mirror CircuitStudy: empty bridging universe selects nothing.
                    selections[model] = select_effective_tests(
                        prep.generation.test_set, lambda test, remaining: set(), ()
                    )
                    continue
                _, undetectable = detectability
                selections[model] = _select_from_masks(
                    prep,
                    faults,
                    chunk_lists[(prep.name, model)],
                    chunk_masks,
                    set(undetectable),
                    use_stop=True,
                )
            artifacts[prep.name] = StudyArtifacts(
                prep.name,
                prep.uio,
                prep.generation,
                prep.scan_circuit,
                prep.stuck_at_faults,
                prep.stuck_at_detectability,
                selections["stuck_at"],
                prep.bridging_faults,
                prep.bridging_detectability,
                selections["bridging"],
                stuck_at_proven=prep.stuck_at_proven,
            )
    return artifacts

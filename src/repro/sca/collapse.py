"""Collapsed stuck-at fault universe with class bookkeeping.

:func:`repro.gatelevel.stuck_at.collapse_stuck_at` produces the raw
fault → representative mapping; this module packages it as a
:class:`CollapsedUniverse` that the pipeline consumes: the deterministic
representative list (exactly ``sorted(set(mapping.values()))``, which is
what the fault-simulation stages already simulate), the inverse
representative → class mapping, and :meth:`CollapsedUniverse.expand` to
reconstruct full-universe verdicts from representative verdicts —
bit-identically, because structural equivalence means every member of a
class is detected by exactly the same tests.

Only *equivalence* shrinks the simulated universe.  Structural dominance
(fault A dominates B when every test for B also detects A — e.g. a region
stem's fault dominating its checkpoint faults) shares detection, not
equivalence, so dropping dominated faults would change per-fault verdict
tables; the fanout-free regions of :mod:`repro.sca.graph` give consumers
the raw material if they want dominance-guided ATPG ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.gatelevel.netlist import Netlist
from repro.gatelevel.stuck_at import (
    StuckAtFault,
    collapse_stuck_at,
    enumerate_stuck_at,
)

__all__ = ["CollapsedUniverse", "collapse_universe"]


@dataclass(frozen=True)
class CollapsedUniverse:
    """Equivalence-collapsed stuck-at universe of one netlist."""

    #: Every fault of the uncollapsed universe → its class representative.
    mapping: dict[StuckAtFault, StuckAtFault]

    @cached_property
    def representatives(self) -> tuple[StuckAtFault, ...]:
        """Deterministic simulation list — one fault per class."""
        return tuple(sorted(set(self.mapping.values())))

    @cached_property
    def classes(self) -> dict[StuckAtFault, tuple[StuckAtFault, ...]]:
        """Representative → all members of its class (sorted)."""
        members: dict[StuckAtFault, list[StuckAtFault]] = {}
        for fault, rep in self.mapping.items():
            members.setdefault(rep, []).append(fault)
        return {rep: tuple(sorted(group)) for rep, group in members.items()}

    @property
    def n_faults(self) -> int:
        return len(self.mapping)

    @property
    def n_representatives(self) -> int:
        return len(self.representatives)

    @property
    def ratio(self) -> float:
        """Collapse ratio: uncollapsed size over collapsed size (>= 1)."""
        if not self.representatives:
            return 1.0
        return self.n_faults / self.n_representatives

    def expand(self, detected: set[StuckAtFault]) -> set[StuckAtFault]:
        """Full-universe verdicts from representative verdicts.

        A fault is detected iff its class representative is — equivalence
        means identical detecting-test sets, so this reconstruction is
        exact, not an approximation.
        """
        return {
            fault
            for fault, rep in self.mapping.items()
            if rep in detected
        }


def collapse_universe(
    netlist: Netlist, faults: list[StuckAtFault] | None = None
) -> CollapsedUniverse:
    """Collapse the stuck-at universe of ``netlist`` (or ``faults``)."""
    if faults is None:
        faults = enumerate_stuck_at(netlist)
    return CollapsedUniverse(collapse_stuck_at(netlist, faults))

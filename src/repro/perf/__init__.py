"""Parallel + cached execution engine for circuit sweeps.

Three pieces (see ``docs/performance.md``):

* :mod:`repro.perf.cache` — content-addressed on-disk artifact cache;
* :mod:`repro.perf.engine` — process-pool scheduler whose results are
  bit-identical to the serial pipeline;
* :mod:`repro.perf.bench` — the ``BENCH_perf.json`` benchmark harness.

The cache and key helpers are imported eagerly; the engine and bench are
loaded on first attribute access so that importing
:mod:`repro.harness.experiments` (which uses the cache wrappers) never
recurses into the engine (which uses :class:`StudyOptions`).
"""

from __future__ import annotations

from typing import Any

from repro.perf.artifacts import (
    cached_detectability,
    cached_scan_circuit,
    cached_uio_table,
)
from repro.perf.cache import (
    ARTIFACT_VERSIONS,
    ArtifactCache,
    CacheError,
    active_cache,
    artifact_key,
    cache_enabled,
    default_cache_dir,
    set_active_cache,
    stable_hash,
)

__all__ = [
    "ARTIFACT_VERSIONS",
    "ArtifactCache",
    "CacheError",
    "StudyArtifacts",
    "active_cache",
    "artifact_key",
    "cache_enabled",
    "cached_detectability",
    "cached_scan_circuit",
    "cached_uio_table",
    "compute_studies",
    "default_cache_dir",
    "run_bench",
    "set_active_cache",
    "stable_hash",
]

_ENGINE_EXPORTS = {"StudyArtifacts", "compute_studies"}
_BENCH_EXPORTS = {"run_bench"}


def __getattr__(name: str) -> Any:
    if name in _ENGINE_EXPORTS:
        from repro.perf import engine

        return getattr(engine, name)
    if name in _BENCH_EXPORTS:
        from repro.perf import bench

        return getattr(bench, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""Tests for the exact machine builders and the synthetic stand-in factory."""

from __future__ import annotations

import pytest

from repro.benchmarks.exact import EXACT_BUILDERS, LION_KISS, lion_machine, shiftreg_machine
from repro.benchmarks.synthetic import OUTPUT_ZERO_BIAS, synthetic_machine
from repro.errors import BenchmarkError
from repro.fsm.analysis import equivalent_state_pairs


class TestExactBuilders:
    def test_registry_contains_both(self):
        assert set(EXACT_BUILDERS) == {"lion", "shiftreg"}

    def test_lion_kiss_has_sixteen_rows(self):
        machine = lion_machine()
        assert len(machine.rows) == 16
        assert machine.n_inputs == 2
        assert machine.n_outputs == 1
        assert machine.reset_state == "st0"

    def test_lion_kiss_text_matches_machine(self):
        assert ".p 16" in LION_KISS
        assert "00 st2 st2 1" in LION_KISS

    def test_shiftreg_rows_follow_shift_semantics(self):
        machine = shiftreg_machine()
        table = machine.to_state_table()
        for value in range(8):
            for bit in range(2):
                assert table.step(value, bit) == (
                    ((value << 1) | bit) & 0b111,
                    (value >> 2) & 1,
                )

    def test_builders_return_fresh_objects(self):
        assert lion_machine() is not lion_machine()


class TestSyntheticFactory:
    def test_fill_states_appended_after_core(self):
        machine = synthetic_machine("t", 2, 8, 5, 2, cubes_per_state=3)
        names = machine.state_names()
        assert len(names) == 8
        assert names[5:] == ["fill5", "fill6", "fill7"]

    def test_fill_states_are_mutually_equivalent(self):
        machine = synthetic_machine("t", 2, 8, 5, 2, cubes_per_state=3)
        table = machine.to_state_table()
        pairs = equivalent_state_pairs(table)
        assert (5, 6) in pairs and (6, 7) in pairs and (5, 7) in pairs

    def test_no_fill_states_when_core_is_full(self):
        machine = synthetic_machine("t", 2, 8, 8, 2, cubes_per_state=3)
        assert machine.n_states == 8
        assert not any(name.startswith("fill") for name in machine.state_names())

    def test_core_bounds_validated(self):
        with pytest.raises(BenchmarkError):
            synthetic_machine("t", 2, 8, 0, 2, cubes_per_state=3)
        with pytest.raises(BenchmarkError):
            synthetic_machine("t", 2, 8, 9, 2, cubes_per_state=3)

    def test_deterministic_in_name(self):
        first = synthetic_machine("alpha", 3, 8, 6, 2, cubes_per_state=4)
        second = synthetic_machine("alpha", 3, 8, 6, 2, cubes_per_state=4)
        assert first.to_state_table() == second.to_state_table()
        third = synthetic_machine("beta", 3, 8, 6, 2, cubes_per_state=4)
        assert first.to_state_table() != third.to_state_table()

    def test_zero_bias_is_substantial(self):
        """The documented bias constant must actually bias: a large share
        of generated cubes carry all-zero outputs."""
        machine = synthetic_machine("bias-probe", 3, 16, 16, 4, cubes_per_state=5)
        zero_rows = sum(
            1 for row in machine.rows if set(row.output_cube) == {"0"}
        )
        share = zero_rows / len(machine.rows)
        assert share >= OUTPUT_ZERO_BIAS / 2  # statistical, generous margin

    def test_completely_specified(self):
        machine = synthetic_machine("t", 3, 8, 6, 2, cubes_per_state=4)
        table = machine.to_state_table()  # raises if any entry is missing
        assert table.n_input_combinations == 8

"""Transition-delay faults: the paper's at-speed testing motivation.

    "The circuit is tested at-speed during the application of test
    sequences whose length is larger than one.  This may contribute to the
    detection of delay defects that are not detected if each state-
    transition is tested separately."  (Section 1)

This module makes that claim measurable.  A *transition-delay fault* is a
line that is slow to rise (or fall): its new value arrives one clock too
late.  Detecting it at speed needs two consecutive functional cycles — a
*launch* cycle that creates the transition on the line and a *capture*
cycle in which the stale value propagates to an observed output.  A scan
test of length ``L`` therefore offers ``L - 1`` launch/capture pairs; the
one-test-per-transition baseline (all tests of length 1) offers none, while
the paper's chained tests offer many.

Model (standard, documented simplifications):

* at the capture cycle the faulty line still holds its previous-cycle
  value; everything upstream is fault-free;
* observation is at the primary outputs and next-state lines of the capture
  cycle (full scan makes next-state bits observable — at the latest at the
  test's scan-out; intermediate corruptions are assumed observable, which
  makes the reported coverage an upper bound for mid-test captures and
  exact for the final cycle);
* scan shift is slow, so the scan-in → first-vector and last-vector →
  scan-out boundaries are not at-speed pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.testset import ScanTest
from repro.errors import FaultSimulationError
from repro.fsm.state_table import StateTable
from repro.gatelevel.netlist import ALL_ONES, GateType, Netlist, _evaluate_gate
from repro.gatelevel.scan import ScanCircuit

__all__ = [
    "TransitionDelayFault",
    "enumerate_transition_delay_faults",
    "DelaySimResult",
    "simulate_delay_faults",
]


@dataclass(frozen=True, order=True)
class TransitionDelayFault:
    """Line ``line`` is slow to rise (``rising``) or slow to fall."""

    line: int
    rising: bool

    def site(self) -> str:
        kind = "str" if self.rising else "stf"  # slow-to-rise / slow-to-fall
        return f"g{self.line}/{kind}"


def enumerate_transition_delay_faults(netlist: Netlist) -> list[TransitionDelayFault]:
    """Both delay faults on every non-constant line."""
    faults: list[TransitionDelayFault] = []
    for gate in netlist.gates:
        if gate.kind in (GateType.CONST0, GateType.CONST1):
            continue
        faults.append(TransitionDelayFault(gate.index, True))
        faults.append(TransitionDelayFault(gate.index, False))
    return faults


@dataclass
class DelaySimResult:
    detected: frozenset[TransitionDelayFault]
    undetected: frozenset[TransitionDelayFault]
    #: launch/capture pairs examined (Σ max(length - 1, 0) over tests)
    n_at_speed_pairs: int

    @property
    def n_faults(self) -> int:
        return len(self.detected) + len(self.undetected)

    @property
    def coverage_pct(self) -> float:
        if self.n_faults == 0:
            return 100.0
        return 100.0 * len(self.detected) / self.n_faults


def _input_words(circuit: ScanCircuit, state: int, combo: int) -> list[np.ndarray]:
    pi = circuit.n_primary_inputs
    words = [
        np.full(1, ALL_ONES if bit else 0, dtype=np.uint64)
        for bit in circuit.encoding.encode_bits(state)
    ]
    for j in range(pi):
        bit = (combo >> (pi - 1 - j)) & 1
        words.append(np.full(1, ALL_ONES if bit else 0, dtype=np.uint64))
    return words


def _cone_diff(
    netlist: Netlist,
    values: np.ndarray,
    line: int,
    forced: np.ndarray,
    observed: Sequence[int],
) -> bool:
    """Does forcing ``line`` to ``forced`` change any observed line?"""
    dirty = netlist.fanout_closure([line])
    local: dict[int, np.ndarray] = {line: forced}
    for index in dirty:
        if index == line:
            continue
        gate = netlist.gate(index)
        fanin_values = [
            local.get(fanin, values[fanin]) for fanin in gate.fanins
        ]
        local[index] = _evaluate_gate(gate.kind, fanin_values)
    for out_line in observed:
        effective = local.get(out_line)
        if effective is not None and bool(np.any(effective ^ values[out_line])):
            return True
    return False


def simulate_delay_faults(
    circuit: ScanCircuit,
    table: StateTable,
    tests: Iterable[ScanTest],
    faults: Iterable[TransitionDelayFault] | None = None,
) -> DelaySimResult:
    """Grade ``tests`` against transition-delay faults.

    For every at-speed launch/capture pair of every test: a fault on line
    ``l`` is detected when the launch cycle moves ``l`` in the slow
    direction and freezing ``l`` at its launch value during the capture
    cycle changes an observed output.
    """
    netlist = circuit.netlist
    if faults is None:
        faults = enumerate_transition_delay_faults(netlist)
    remaining: dict[TransitionDelayFault, None] = dict.fromkeys(faults)
    for fault in remaining:
        if not 0 <= fault.line < netlist.n_gates:
            raise FaultSimulationError(f"fault line {fault.line} does not exist")
    detected: set[TransitionDelayFault] = set()
    observed_lines = list(netlist.outputs)
    n_pairs = 0
    one = np.uint64(1)
    for test in tests:
        if not remaining:
            break
        state = test.initial_state
        previous_values: np.ndarray | None = None
        for combo in test.inputs:
            values = netlist.evaluate(_input_words(circuit, state, combo))
            if previous_values is not None:
                n_pairs += 1
                for fault in list(remaining):
                    old = int(previous_values[fault.line, 0] & one)
                    new = int(values[fault.line, 0] & one)
                    launched = (old, new) == ((0, 1) if fault.rising else (1, 0))
                    if not launched:
                        continue
                    forced = np.full(
                        1, ALL_ONES if old else 0, dtype=np.uint64
                    )
                    if _cone_diff(
                        netlist, values, fault.line, forced, observed_lines
                    ):
                        detected.add(fault)
                        del remaining[fault]
            previous_values = values
            state, _ = table.step(state, combo)
    return DelaySimResult(
        frozenset(detected), frozenset(remaining), n_pairs
    )

"""SCOAP testability measures (Goldstein 1979) for gate-level netlists.

Combinational controllabilities ``CC0``/``CC1`` estimate how many line
assignments are needed to set a line to 0/1; combinational observability
``CO`` estimates the effort to propagate a line's value to a primary
output.  Low numbers mean easy; :data:`INFINITY` means impossible (a net
that can never take the value, or whose value can never be observed).

The measures are heuristic *guidance* — the implication engine in
:mod:`repro.sca.implications` is what actually proves untestability — but
they are the standard cost functions a deterministic ATPG (D-algorithm /
PODEM backtrace) uses to order its decisions, and they make "hard to test"
quantifiable in reports and lint findings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gatelevel.netlist import GateType, Netlist

__all__ = ["INFINITY", "ScoapMeasures", "compute_scoap"]

#: Sentinel for "impossible": larger than any reachable finite measure but
#: safe to add without overflow checks.
INFINITY = 10**9


def _sat(value: int) -> int:
    """Saturating cap so sums of INFINITY never masquerade as finite."""
    return value if value < INFINITY else INFINITY


@dataclass(frozen=True)
class ScoapMeasures:
    """Per-line SCOAP triples; index with the line number."""

    cc0: tuple[int, ...]
    cc1: tuple[int, ...]
    co: tuple[int, ...]

    def controllability(self, line: int, value: int) -> int:
        return self.cc1[line] if value else self.cc0[line]

    def testability(self, line: int) -> int:
        """Combined difficulty: observing either stuck-at on the line.

        ``CO + max(CC0, CC1)`` — detecting sa0 needs the line at 1 and
        observed, sa1 needs it at 0 and observed; the max covers the harder
        of the two activations.
        """
        return _sat(self.co[line] + max(self.cc0[line], self.cc1[line]))


def _xor_chain(
    cc0: list[int], cc1: list[int], fanins: tuple[int, ...]
) -> tuple[int, int]:
    """(cost to even parity, cost to odd parity) over ``fanins``.

    Dynamic program over the inputs: XOR output is 1 exactly when an odd
    number of inputs are 1, so the cheapest assignment is tracked per
    parity class.  Handles any arity.
    """
    even, odd = 0, INFINITY
    for fanin in fanins:
        new_even = min(_sat(even + cc0[fanin]), _sat(odd + cc1[fanin]))
        new_odd = min(_sat(even + cc1[fanin]), _sat(odd + cc0[fanin]))
        even, odd = new_even, new_odd
    return even, odd


def compute_scoap(netlist: Netlist) -> ScoapMeasures:
    """SCOAP CC0/CC1/CO for every line of ``netlist``.

    One forward sweep (controllability flows from inputs) and one reverse
    sweep (observability flows from outputs), both in the netlist's native
    topological order.
    """
    n = netlist.n_gates
    cc0 = [INFINITY] * n
    cc1 = [INFINITY] * n
    for gate in netlist.gates:
        kind = gate.kind
        if kind is GateType.INPUT:
            cc0[gate.index] = cc1[gate.index] = 1
        elif kind is GateType.CONST0:
            cc0[gate.index] = 1
        elif kind is GateType.CONST1:
            cc1[gate.index] = 1
        elif kind is GateType.BUF:
            cc0[gate.index] = _sat(cc0[gate.fanins[0]] + 1)
            cc1[gate.index] = _sat(cc1[gate.fanins[0]] + 1)
        elif kind is GateType.NOT:
            cc0[gate.index] = _sat(cc1[gate.fanins[0]] + 1)
            cc1[gate.index] = _sat(cc0[gate.fanins[0]] + 1)
        elif kind in (GateType.AND, GateType.NAND):
            all_ones = _sat(sum(cc1[f] for f in gate.fanins) + 1)
            any_zero = _sat(min(cc0[f] for f in gate.fanins) + 1)
            if kind is GateType.AND:
                cc1[gate.index], cc0[gate.index] = all_ones, any_zero
            else:
                cc0[gate.index], cc1[gate.index] = all_ones, any_zero
        elif kind in (GateType.OR, GateType.NOR):
            all_zeros = _sat(sum(cc0[f] for f in gate.fanins) + 1)
            any_one = _sat(min(cc1[f] for f in gate.fanins) + 1)
            if kind is GateType.OR:
                cc0[gate.index], cc1[gate.index] = all_zeros, any_one
            else:
                cc1[gate.index], cc0[gate.index] = all_zeros, any_one
        else:  # XOR / XNOR
            even, odd = _xor_chain(cc0, cc1, gate.fanins)
            if kind is GateType.XOR:
                cc0[gate.index] = _sat(even + 1)
                cc1[gate.index] = _sat(odd + 1)
            else:
                cc0[gate.index] = _sat(odd + 1)
                cc1[gate.index] = _sat(even + 1)

    co = [INFINITY] * n
    for line in netlist.outputs:
        co[line] = 0
    # Reverse sweep: a gate's output observability is final before any of
    # its fanins (lower indices) are visited.
    for gate in reversed(netlist.gates):
        kind = gate.kind
        if not gate.fanins:
            continue
        out_co = co[gate.index]
        if kind in (GateType.BUF, GateType.NOT):
            fanin = gate.fanins[0]
            co[fanin] = min(co[fanin], _sat(out_co + 1))
            continue
        for pin, fanin in enumerate(gate.fanins):
            side_cost = 0
            for other_pin, other in enumerate(gate.fanins):
                if other_pin == pin:
                    continue
                if kind in (GateType.AND, GateType.NAND):
                    side_cost = _sat(side_cost + cc1[other])
                elif kind in (GateType.OR, GateType.NOR):
                    side_cost = _sat(side_cost + cc0[other])
                else:  # XOR / XNOR: any known side value sensitizes
                    side_cost = _sat(side_cost + min(cc0[other], cc1[other]))
            co[fanin] = min(co[fanin], _sat(out_co + side_cost + 1))
    return ScoapMeasures(tuple(cc0), tuple(cc1), tuple(co))

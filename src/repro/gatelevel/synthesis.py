"""Two-level synthesis of a state table into a full-scan netlist.

The combinational block of a scanned Mealy machine computes the next-state
bits and the primary outputs from the current state bits and the primary
inputs:

    inputs:  y_0 .. y_{sv-1}  (state bits, MSB first), x_0 .. x_{pi-1}
    outputs: Y_0 .. Y_{sv-1}  (next-state bits),       z_0 .. z_{po-1}

States use the natural binary encoding (state index = code).  Each KISS row
``(input-cube, present, next, output-cube)`` becomes one product term — an
AND of the present-state literals and the specified input literals — shared
across all the next-state and output bits it drives.  Rows of the same
(present, next, output) group are adjacency-merged first, so minterm-listed
machines synthesize compactly.

An optional tree decomposition bounds gate fanin, turning the two-level
structure into a multi-level one (closer to the technology-mapped circuits
the paper fault-simulated).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SynthesisError
from repro.fsm.encoding import StateEncoding, gray_encoding, natural_encoding
from repro.fsm.kiss import KissMachine, table_to_kiss
from repro.fsm.state_table import StateTable
from repro.gatelevel.netlist import GateType, Netlist
from repro.gatelevel.sop import merge_cubes

__all__ = ["SynthesisOptions", "SynthesizedCircuit", "synthesize"]


@dataclass(frozen=True)
class SynthesisOptions:
    """Synthesis knobs.

    ``max_fanin`` of ``None`` keeps the flat two-level structure; a number
    ``>= 2`` decomposes wide AND/OR gates into balanced trees of gates with
    at most that many fanins.  ``merge_adjacent`` toggles the cube-merging
    preprocessing step.  ``encoding`` selects the state assignment:
    ``"natural"`` (state index = code) or ``"gray"`` (reflected Gray codes)
    — the functional behaviour is identical, the logic and its fault
    universe are not.
    """

    max_fanin: int | None = None
    merge_adjacent: bool = True
    encoding: str = "natural"

    def __post_init__(self) -> None:
        if self.max_fanin is not None and self.max_fanin < 2:
            raise SynthesisError("max_fanin must be None or >= 2")
        if self.encoding not in ("natural", "gray"):
            raise SynthesisError(
                f"unknown encoding {self.encoding!r}; use 'natural' or 'gray'"
            )


@dataclass(frozen=True)
class SynthesizedCircuit:
    """A synthesized combinational block plus its interface map."""

    netlist: Netlist
    encoding: StateEncoding
    n_state_variables: int
    n_primary_inputs: int
    n_primary_outputs: int

    @property
    def state_input_lines(self) -> tuple[int, ...]:
        return self.netlist.inputs[: self.n_state_variables]

    @property
    def primary_input_lines(self) -> tuple[int, ...]:
        return self.netlist.inputs[self.n_state_variables :]

    @property
    def next_state_lines(self) -> tuple[int, ...]:
        return self.netlist.outputs[: self.n_state_variables]

    @property
    def primary_output_lines(self) -> tuple[int, ...]:
        return self.netlist.outputs[self.n_state_variables :]


def _grouped_rows(machine: KissMachine, merge: bool) -> list[tuple[str, str, str, str]]:
    """Rows as (input_cube, present, next, output) with optional merging."""
    groups: dict[tuple[str, str, str], list[str]] = {}
    order: list[tuple[str, str, str]] = []
    for row in machine.rows:
        key = (row.present, row.next, row.output_cube)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row.input_cube)
    result: list[tuple[str, str, str, str]] = []
    for key in order:
        cubes = merge_cubes(groups[key]) if merge else groups[key]
        for cube in cubes:
            result.append((cube, key[0], key[1], key[2]))
    return result


def _tree(netlist: Netlist, kind: GateType, lines: list[int], max_fanin: int | None,
          name: str) -> int:
    """AND/OR of ``lines``, decomposed into a tree when ``max_fanin`` binds."""
    if not lines:
        raise SynthesisError("empty gate requested")
    if len(lines) == 1:
        return lines[0]
    if max_fanin is None or len(lines) <= max_fanin:
        return netlist.add_gate(kind, lines, name)
    level = list(lines)
    while len(level) > 1:
        next_level: list[int] = []
        for start in range(0, len(level), max_fanin):
            chunk = level[start : start + max_fanin]
            if len(chunk) == 1:
                next_level.append(chunk[0])
            else:
                next_level.append(netlist.add_gate(kind, chunk))
        level = next_level
    return level[0]


def synthesize(
    machine: KissMachine | StateTable,
    options: SynthesisOptions | None = None,
) -> SynthesizedCircuit:
    """Synthesize the combinational block of the scanned machine.

    Accepts either a cube-level :class:`KissMachine` (preferred — the cube
    structure drives the product terms) or a dense :class:`StateTable`
    (converted to one row per transition, then adjacency-merged).

    The synthesized block is validated structurally; functional equivalence
    against the state table is checked by :class:`repro.gatelevel.scan.ScanCircuit`
    and the test suite.
    """
    if options is None:
        options = SynthesisOptions()
    if isinstance(machine, StateTable):
        table = machine
        kiss = table_to_kiss(machine)
    else:
        kiss = machine
        table = machine.to_state_table()
    if options.encoding == "gray":
        encoding = gray_encoding(table)
    else:
        encoding = natural_encoding(table)
    sv = table.n_state_variables
    pi = table.n_inputs
    po = table.n_outputs
    state_index = {name: i for i, name in enumerate(table.state_names)}

    netlist = Netlist(name=f"{table.name or 'fsm'}_comb")
    state_lines = [netlist.add_input(f"y{j}") for j in range(sv)]
    input_lines = [netlist.add_input(f"x{j}") for j in range(pi)]
    inverted: dict[int, int] = {}

    def literal(line: int, positive: bool) -> int:
        if positive:
            return line
        if line not in inverted:
            inverted[line] = netlist.add_gate(GateType.NOT, (line,))
        return inverted[line]

    term_cache: dict[tuple[tuple[int, bool], ...], int] = {}

    def product_term(literals: list[tuple[int, bool]], name: str) -> int:
        key = tuple(literals)
        if key not in term_cache:
            lines = [literal(line, positive) for line, positive in literals]
            if not lines:
                term_cache[key] = netlist.add_gate(GateType.BUF, (
                    netlist.add_gate(GateType.CONST1, ()),
                ))
            else:
                term_cache[key] = _tree(
                    netlist, GateType.AND, lines, options.max_fanin, name
                )
        return term_cache[key]

    next_terms: list[list[int]] = [[] for _ in range(sv)]
    output_terms: list[list[int]] = [[] for _ in range(po)]
    for cube, present, nxt, out_cube in _grouped_rows(kiss, options.merge_adjacent):
        present_code = encoding.encode(state_index[present])
        next_code = encoding.encode(state_index[nxt])
        literals: list[tuple[int, bool]] = []
        for j in range(sv):
            bit = (present_code >> (sv - 1 - j)) & 1
            literals.append((state_lines[j], bool(bit)))
        for j, ch in enumerate(cube):
            if ch == "-":
                continue
            literals.append((input_lines[j], ch == "1"))
        drives_next = [j for j in range(sv) if (next_code >> (sv - 1 - j)) & 1]
        drives_out = [j for j, ch in enumerate(out_cube) if ch == "1"]
        if not drives_next and not drives_out:
            continue  # the term drives nothing: next code 0, all outputs 0
        term = product_term(literals, f"t_{present}_{cube}")
        for j in drives_next:
            next_terms[j].append(term)
        for j in drives_out:
            output_terms[j].append(term)

    const0: int | None = None

    def sum_term(terms: list[int], name: str) -> int:
        nonlocal const0
        if not terms:
            if const0 is None:
                const0 = netlist.add_gate(GateType.CONST0, ())
            return const0
        unique = list(dict.fromkeys(terms))
        if len(unique) == 1:
            return unique[0]
        return _tree(netlist, GateType.OR, unique, options.max_fanin, name)

    outputs = [sum_term(next_terms[j], f"Y{j}") for j in range(sv)]
    outputs += [sum_term(output_terms[j], f"z{j}") for j in range(po)]
    netlist.set_outputs(outputs)
    netlist.check()
    return SynthesizedCircuit(netlist, encoding, sv, pi, po)

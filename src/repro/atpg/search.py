"""Shared search-outcome vocabulary for the structural ATPG engines.

Both engines are *complete* bounded searches: they return
:data:`STATUS_TEST` with a cube, :data:`STATUS_UNTESTABLE` only after the
whole decision tree was explored without exceeding the budget (which makes
the verdict a proof), or :data:`STATUS_ABORTED` the moment the backtrack
limit or time budget is exhausted — an aborted search proves nothing and
must never be read as "untestable".

Search forensics: attach a :class:`SearchTrace` to the budget and both
engines record every decision and backtrack — line, value, stack depth,
D-frontier and J-frontier sizes — into a bounded ring buffer.  The last
``capacity`` events survive, plus the total recorded, so an aborted
verdict carries a replayable record of *how* the search died (thrashing
one reconvergent region vs. wandering a huge tree) instead of a one-word
reason.  Events are plain frozen dataclasses: picklable, JSON-friendly,
deterministic for a deterministic search.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

__all__ = [
    "STATUS_TEST",
    "STATUS_UNTESTABLE",
    "STATUS_ABORTED",
    "ABORT_BACKTRACKS",
    "ABORT_TIME",
    "DEFAULT_BACKTRACK_LIMIT",
    "DEFAULT_TRACE_CAPACITY",
    "SearchBudget",
    "SearchEvent",
    "SearchOutcome",
    "SearchTrace",
]

STATUS_TEST = "test"
STATUS_UNTESTABLE = "untestable"
STATUS_ABORTED = "aborted"

ABORT_BACKTRACKS = "backtrack-limit"
ABORT_TIME = "time-budget"

#: Generous default: the bundled benchmarks prove every verdict well below
#: this, so hitting it in practice signals a pathological circuit.
DEFAULT_BACKTRACK_LIMIT = 100_000

#: Ring-buffer size for per-fault search traces.  256 events bounds the
#: memory and pickling cost of tracing *every* fault while keeping the
#: whole endgame of an aborted search (the part worth reading).
DEFAULT_TRACE_CAPACITY = 256


@dataclass(frozen=True)
class SearchEvent:
    """One recorded search step.

    ``kind`` is ``"decision"`` (a new assignment was pushed),
    ``"backtrack"`` (the engine flipped or popped a decision), or
    ``"implication"`` (an implication pass completed; only recorded at
    decision granularity, never per-line).  ``depth`` is the decision-stack
    depth *after* the step; ``d_frontier``/``j_frontier`` are the frontier
    sizes at that moment (PODEM has no J-frontier and records 0).
    """

    kind: str
    line: str
    value: int
    depth: int
    d_frontier: int
    j_frontier: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "line": self.line,
            "value": self.value,
            "depth": self.depth,
            "d_frontier": self.d_frontier,
            "j_frontier": self.j_frontier,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SearchEvent":
        return cls(
            kind=str(data["kind"]),
            line=str(data["line"]),
            value=int(data["value"]),
            depth=int(data["depth"]),
            d_frontier=int(data["d_frontier"]),
            j_frontier=int(data["j_frontier"]),
        )


class SearchTrace:
    """Bounded ring buffer of :class:`SearchEvent`; keeps the newest events."""

    __slots__ = ("capacity", "total", "_events", "_cursor")

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("trace capacity must be positive")
        self.capacity = capacity
        self.total = 0
        self._events: list[SearchEvent] = []
        self._cursor = 0

    def record(
        self,
        kind: str,
        line: str,
        value: int,
        depth: int,
        d_frontier: int = 0,
        j_frontier: int = 0,
    ) -> None:
        event = SearchEvent(kind, line, value, depth, d_frontier, j_frontier)
        if len(self._events) < self.capacity:
            self._events.append(event)
        else:
            self._events[self._cursor] = event
            self._cursor = (self._cursor + 1) % self.capacity
        self.total += 1

    @property
    def dropped(self) -> int:
        """Events that aged out of the ring (``total`` minus retained)."""
        return self.total - len(self._events)

    def events(self) -> tuple[SearchEvent, ...]:
        """Retained events, oldest first."""
        return tuple(self._events[self._cursor:] + self._events[:self._cursor])

    def to_dict(self) -> dict[str, Any]:
        return {
            "capacity": self.capacity,
            "total": self.total,
            "dropped": self.dropped,
            "events": [event.to_dict() for event in self.events()],
        }


class SearchBudget:
    """Backtrack / wall-clock budget (and optional trace) shared by engines."""

    def __init__(
        self,
        backtrack_limit: int,
        time_budget_s: float | None = None,
        trace: SearchTrace | None = None,
    ) -> None:
        self.backtrack_limit = backtrack_limit
        self.deadline = (
            None if time_budget_s is None else time.monotonic() + time_budget_s
        )
        self.trace = trace

    def time_exceeded(self) -> bool:
        return self.deadline is not None and time.monotonic() > self.deadline


@dataclass(frozen=True)
class SearchOutcome:
    """Result of one bounded fault search.

    ``cube`` (only for :data:`STATUS_TEST`) holds one entry per circuit
    input: 0, 1, or -1 for don't-care.  ``decisions``/``backtracks`` are
    the bounded-search certificate: an untestable verdict says the engine
    explored every branch within ``backtracks <= limit``.
    """

    status: str
    cube: tuple[int, ...] | None
    decisions: int
    backtracks: int
    aborted_reason: str | None = None

    @property
    def found(self) -> bool:
        return self.status == STATUS_TEST

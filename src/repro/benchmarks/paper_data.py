"""The paper's reported numbers, transcribed for side-by-side comparison.

These values come from Tables 4-9 of Pomeranz & Reddy (DATE 2000).  They are
*not* used by any algorithm — only by the experiment harness and
EXPERIMENTS.md generation to print paper-vs-measured rows.  Times are seconds
on the authors' HP J210 and are reported for context only.

The transcription is validated by arithmetic identities in
``tests/test_paper_data.py`` (the Table 7 cycle formula ties Tables 4, 5,
6 and 8 together).  One inconsistency exists in the paper itself: the
``rie`` row of Table 9 at ``m.len = 7`` prints ``tests = 10052``, which
does not satisfy the cycle formula; the printed cycles (87405) and
percentage (88.91) both correspond to ``tests = 10952``, so the tests
value is almost certainly a one-digit typo in the original.  The value is
kept as printed.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PaperTable4Row",
    "PaperTable5Row",
    "PaperTable6Row",
    "PaperTable7Row",
    "PaperTable8Row",
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "PAPER_TABLE6",
    "PAPER_TABLE7",
    "PAPER_TABLE8",
    "PAPER_TABLE9",
]


@dataclass(frozen=True)
class PaperTable4Row:
    pi: int
    states: int
    unique: int
    sv: int
    max_len: int
    time_s: float


@dataclass(frozen=True)
class PaperTable5Row:
    trans: int
    tests: int
    length: int
    pct_len1: float
    time_s: float


@dataclass(frozen=True)
class PaperTable6Row:
    sa_tests: int
    sa_len: int
    sa_total: int
    sa_detected: int
    sa_coverage: float
    bridge_tests: int
    bridge_len: int
    bridge_total: int
    bridge_detected: int
    bridge_coverage: float


@dataclass(frozen=True)
class PaperTable7Row:
    trans_cycles: int
    funct_cycles: int
    funct_pct: float
    sa_cycles: int
    sa_pct: float
    bridge_cycles: int
    bridge_pct: float


@dataclass(frozen=True)
class PaperTable8Row:
    trans: int
    tests: int
    length: int
    pct_len1: float
    cycles: int
    pct: float


PAPER_TABLE4: dict[str, PaperTable4Row] = {
    "bbara": PaperTable4Row(4, 16, 4, 4, 4, 11.49),
    "bbsse": PaperTable4Row(7, 16, 13, 4, 3, 7.64),
    "bbtas": PaperTable4Row(2, 8, 1, 3, 3, 0.08),
    "beecount": PaperTable4Row(3, 8, 5, 3, 3, 0.05),
    "cse": PaperTable4Row(7, 16, 15, 4, 3, 36.21),
    "dk14": PaperTable4Row(3, 8, 1, 3, 1, 0.08),
    "dk15": PaperTable4Row(3, 4, 3, 2, 2, 0.02),
    "dk16": PaperTable4Row(2, 32, 23, 5, 3, 4.70),
    "dk17": PaperTable4Row(2, 8, 6, 3, 2, 0.03),
    "dk27": PaperTable4Row(1, 8, 5, 3, 3, 0.01),
    "dk512": PaperTable4Row(1, 16, 6, 4, 4, 0.14),
    "dvram": PaperTable4Row(8, 64, 48, 6, 6, 5649.94),
    "ex2": PaperTable4Row(2, 32, 14, 5, 4, 2.36),
    "ex3": PaperTable4Row(2, 16, 10, 4, 3, 0.26),
    "ex4": PaperTable4Row(5, 16, 9, 4, 4, 18.98),
    "ex5": PaperTable4Row(2, 8, 7, 3, 3, 0.08),
    "ex6": PaperTable4Row(5, 8, 8, 3, 1, 0.11),
    "ex7": PaperTable4Row(2, 16, 10, 4, 3, 0.29),
    "fetch": PaperTable4Row(9, 32, 24, 5, 4, 473.35),
    "keyb": PaperTable4Row(7, 32, 21, 5, 4, 266.42),
    "lion": PaperTable4Row(2, 4, 2, 2, 2, 0.00),
    "lion9": PaperTable4Row(2, 8, 2, 3, 2, 0.01),
    "log": PaperTable4Row(9, 32, 13, 5, 5, 639.51),
    "mark1": PaperTable4Row(4, 16, 12, 4, 4, 2.82),
    "mc": PaperTable4Row(3, 4, 4, 2, 1, 0.00),
    "nucpwr": PaperTable4Row(13, 32, 20, 5, 5, 1887.44),
    "opus": PaperTable4Row(5, 16, 7, 4, 1, 2.78),
    "rie": PaperTable4Row(9, 32, 28, 5, 5, 3042.78),
    "shiftreg": PaperTable4Row(1, 8, 8, 3, 3, 0.01),
    "tav": PaperTable4Row(4, 4, 2, 2, 2, 0.07),
    "train11": PaperTable4Row(2, 16, 2, 4, 3, 0.11),
}

PAPER_TABLE5: dict[str, PaperTable5Row] = {
    "bbara": PaperTable5Row(256, 202, 434, 63.28, 0.10),
    "bbsse": PaperTable5Row(2048, 1515, 2914, 62.70, 35.18),
    "bbtas": PaperTable5Row(32, 28, 44, 75.00, 0.00),
    "beecount": PaperTable5Row(64, 32, 153, 40.62, 0.04),
    "cse": PaperTable5Row(2048, 1436, 3141, 59.96, 60.06),
    "dk14": PaperTable5Row(64, 51, 82, 64.06, 0.03),
    "dk15": PaperTable5Row(32, 11, 76, 15.62, 0.01),
    "dk16": PaperTable5Row(128, 63, 317, 26.56, 0.22),
    "dk17": PaperTable5Row(32, 20, 53, 43.75, 0.01),
    "dk27": PaperTable5Row(16, 8, 40, 31.25, 0.01),
    "dk512": PaperTable5Row(32, 25, 58, 59.38, 0.01),
    "dvram": PaperTable5Row(16384, 12088, 33891, 61.71, 907.91),
    "ex2": PaperTable5Row(128, 93, 256, 53.91, 0.12),
    "ex3": PaperTable5Row(64, 41, 130, 54.69, 0.04),
    "ex4": PaperTable5Row(512, 384, 1006, 55.86, 0.83),
    "ex5": PaperTable5Row(32, 17, 73, 21.88, 0.01),
    "ex6": PaperTable5Row(256, 76, 501, 15.23, 0.63),
    "ex7": PaperTable5Row(64, 44, 125, 57.81, 0.04),
    "fetch": PaperTable5Row(16384, 11347, 26100, 55.40, 1272.69),
    "keyb": PaperTable5Row(4096, 3528, 5312, 82.35, 172.71),
    "lion": PaperTable5Row(16, 9, 28, 25.00, 0.00),
    "lion9": PaperTable5Row(32, 22, 56, 46.88, 0.01),
    "log": PaperTable5Row(16384, 11520, 34560, 51.42, 533.81),
    "mark1": PaperTable5Row(256, 109, 653, 35.16, 0.38),
    "mc": PaperTable5Row(32, 9, 57, 25.00, 0.01),
    "nucpwr": PaperTable5Row(262144, 172032, 446464, 44.53, 373906.81),
    "opus": PaperTable5Row(512, 378, 698, 54.10, 0.23),
    "rie": PaperTable5Row(16384, 11037, 31457, 57.50, 2311.50),
    "shiftreg": PaperTable5Row(16, 13, 27, 75.00, 0.00),
    "tav": PaperTable5Row(64, 33, 125, 25.00, 0.01),
    "train11": PaperTable5Row(64, 53, 93, 65.62, 0.02),
}

PAPER_TABLE6: dict[str, PaperTable6Row] = {
    "bbara": PaperTable6Row(29, 133, 138, 138, 100.00, 9, 85, 192, 192, 100.00),
    "bbsse": PaperTable6Row(36, 765, 238, 238, 100.00, 15, 673, 656, 656, 100.00),
    "bbtas": PaperTable6Row(12, 28, 63, 63, 100.00, 6, 22, 64, 64, 100.00),
    "beecount": PaperTable6Row(5, 93, 112, 110, 98.21, 2, 83, 166, 166, 100.00),
    "cse": PaperTable6Row(42, 959, 357, 355, 99.44, 20, 703, 1604, 1597, 99.56),
    "dk14": PaperTable6Row(29, 60, 208, 207, 99.52, 13, 40, 362, 362, 100.00),
    "dk15": PaperTable6Row(8, 69, 151, 151, 100.00, 2, 40, 140, 140, 100.00),
    "dk16": PaperTable6Row(30, 266, 532, 530, 99.62, 8, 169, 1942, 1942, 100.00),
    "dk17": PaperTable6Row(10, 43, 128, 128, 100.00, 2, 24, 120, 120, 100.00),
    "dk27": PaperTable6Row(2, 22, 67, 67, 100.00, 1, 18, 50, 50, 100.00),
    "dk512": PaperTable6Row(14, 41, 124, 124, 100.00, 2, 17, 136, 136, 100.00),
    "dvram": PaperTable6Row(18, 696, 425, 425, 100.00, 19, 826, 2672, 2672, 100.00),
    "ex2": PaperTable6Row(27, 148, 312, 312, 100.00, 6, 74, 802, 799, 99.63),
    "ex3": PaperTable6Row(10, 82, 153, 153, 100.00, 1, 52, 242, 241, 99.59),
    "ex4": PaperTable6Row(20, 248, 176, 176, 100.00, 9, 231, 288, 288, 100.00),
    "ex5": PaperTable6Row(9, 42, 152, 138, 90.79, 6, 39, 210, 210, 100.00),
    "ex6": PaperTable6Row(9, 324, 229, 229, 100.00, 6, 310, 660, 658, 99.70),
    "ex7": PaperTable6Row(15, 85, 160, 159, 99.38, 5, 71, 238, 238, 100.00),
    "fetch": PaperTable6Row(34, 863, 345, 342, 99.13, 44, 1628, 1564, 1564, 100.00),
    "keyb": PaperTable6Row(62, 1161, 470, 470, 100.00, 30, 1084, 3194, 3177, 99.47),
    "lion": PaperTable6Row(4, 21, 40, 40, 100.00, 4, 21, 18, 17, 94.44),
    "lion9": PaperTable6Row(7, 32, 62, 59, 95.16, 3, 25, 52, 51, 98.08),
    "log": PaperTable6Row(24, 1141, 313, 312, 99.68, 37, 1685, 1618, 1617, 99.94),
    "mark1": PaperTable6Row(9, 400, 204, 203, 99.51, 4, 392, 532, 532, 100.00),
    "mc": PaperTable6Row(3, 51, 73, 73, 100.00, 2, 50, 54, 54, 100.00),
    "nucpwr": PaperTable6Row(39, 300, 447, 447, 100.00, 91, 752, 3238, 3237, 99.97),
    "opus": PaperTable6Row(22, 97, 181, 181, 100.00, 14, 82, 452, 451, 99.78),
    "rie": PaperTable6Row(42, 1145, 552, 548, 99.28, 58, 1876, 4214, 4213, 99.98),
    "shiftreg": PaperTable6Row(2, 16, 28, 28, 100.00, 1, 15, 8, 8, 100.00),
    "tav": PaperTable6Row(2, 62, 64, 64, 100.00, 2, 64, 86, 86, 100.00),
    "train11": PaperTable6Row(11, 39, 104, 104, 100.00, 6, 32, 132, 132, 100.00),
}

PAPER_TABLE7: dict[str, PaperTable7Row] = {
    "bbara": PaperTable7Row(1284, 1246, 97.04, 253, 19.70, 125, 10.03),
    "bbsse": PaperTable7Row(10244, 8978, 87.64, 913, 8.91, 737, 8.21),
    "bbtas": PaperTable7Row(131, 131, 100.00, 67, 51.15, 43, 32.82),
    "beecount": PaperTable7Row(259, 252, 97.30, 111, 42.86, 92, 36.51),
    "cse": PaperTable7Row(10244, 8889, 86.77, 1131, 11.04, 787, 8.85),
    "dk14": PaperTable7Row(259, 238, 91.89, 150, 57.92, 82, 34.45),
    "dk15": PaperTable7Row(98, 100, 102.04, 87, 88.78, 46, 46.00),
    "dk16": PaperTable7Row(773, 637, 82.41, 421, 54.46, 214, 33.59),
    "dk17": PaperTable7Row(131, 116, 88.55, 76, 58.02, 33, 28.45),
    "dk27": PaperTable7Row(67, 67, 100.00, 31, 46.27, 24, 35.82),
    "dk512": PaperTable7Row(164, 162, 98.78, 101, 61.59, 29, 17.90),
    "dvram": PaperTable7Row(114694, 106425, 92.79, 810, 0.71, 946, 0.89),
    "ex2": PaperTable7Row(773, 726, 93.92, 288, 37.26, 109, 15.01),
    "ex3": PaperTable7Row(324, 298, 91.98, 126, 38.89, 60, 20.13),
    "ex4": PaperTable7Row(2564, 2546, 99.30, 332, 12.95, 271, 10.64),
    "ex5": PaperTable7Row(131, 127, 96.95, 72, 54.96, 60, 47.24),
    "ex6": PaperTable7Row(1027, 732, 71.28, 354, 34.47, 331, 45.22),
    "ex7": PaperTable7Row(324, 305, 94.14, 149, 45.99, 95, 31.15),
    "fetch": PaperTable7Row(98309, 82840, 84.26, 1038, 1.06, 1853, 2.24),
    "keyb": PaperTable7Row(24581, 22957, 93.39, 1476, 6.00, 1239, 5.40),
    "lion": PaperTable7Row(50, 48, 96.00, 31, 62.00, 31, 64.58),
    "lion9": PaperTable7Row(131, 125, 95.42, 56, 42.75, 37, 29.60),
    "log": PaperTable7Row(98309, 92165, 93.75, 1266, 1.29, 1875, 2.03),
    "mark1": PaperTable7Row(1284, 1093, 85.12, 440, 34.27, 412, 37.69),
    "mc": PaperTable7Row(98, 77, 78.57, 59, 60.20, 56, 72.73),
    "nucpwr": PaperTable7Row(1572869, 1306629, 83.07, 500, 0.03, 1212, 0.09),
    "opus": PaperTable7Row(2564, 2214, 86.35, 189, 7.37, 142, 6.41),
    "rie": PaperTable7Row(98309, 86647, 88.14, 1360, 1.38, 2171, 2.51),
    "shiftreg": PaperTable7Row(67, 69, 102.99, 25, 37.31, 21, 30.43),
    "tav": PaperTable7Row(194, 193, 99.48, 68, 35.05, 70, 36.27),
    "train11": PaperTable7Row(324, 309, 95.37, 87, 26.85, 60, 19.42),
}

PAPER_TABLE8: dict[str, PaperTable8Row] = {
    "bbtas": PaperTable8Row(32, 28, 44, 75.00, 131, 100.00),
    "dk15": PaperTable8Row(32, 23, 46, 59.38, 94, 95.92),
    "dk27": PaperTable8Row(16, 12, 26, 62.50, 65, 97.01),
    "shiftreg": PaperTable8Row(16, 14, 22, 81.25, 67, 100.00),
}

#: Table 9: per-circuit sweep rows as (unique, m.len, tests, len, pct_len1,
#: cycles, pct), keyed by circuit; the row order follows increasing L.
PAPER_TABLE9: dict[str, tuple[tuple[int, int, int, int, float, int, float], ...]] = {
    "dk512": (
        (0, 1, 32, 32, 100.00, 164, 100.00),
        (1, 2, 29, 39, 81.25, 159, 96.95),
        (4, 3, 23, 60, 46.88, 156, 95.12),
        (6, 4, 25, 58, 59.38, 162, 98.78),
        (8, 5, 24, 67, 56.25, 167, 101.83),
    ),
    "ex4": (
        (0, 1, 512, 512, 100.00, 2564, 100.00),
        (5, 2, 400, 800, 56.25, 2404, 93.76),
        (7, 3, 352, 992, 37.50, 2404, 93.76),
        (9, 4, 384, 1006, 55.86, 2546, 99.30),
        (11, 5, 384, 1101, 67.38, 2641, 103.00),
        (13, 6, 384, 1197, 72.85, 2737, 106.75),
        (16, 7, 384, 1197, 72.85, 2737, 106.75),
    ),
    "mark1": (
        (2, 1, 222, 306, 75.00, 1198, 93.30),
        (6, 2, 123, 610, 35.55, 1106, 86.14),
        (11, 3, 111, 649, 35.55, 1097, 85.44),
        (12, 4, 109, 653, 35.16, 1093, 85.12),
    ),
    "rie": (
        (3, 1, 13961, 19888, 73.87, 89698, 91.24),
        (17, 2, 12048, 24544, 59.35, 84789, 86.25),
        (24, 3, 11036, 30434, 57.49, 85619, 87.09),
        (25, 4, 11036, 30946, 57.50, 86131, 87.61),
        (28, 5, 11036, 31458, 57.50, 86643, 88.13),
        (29, 6, 11036, 31586, 57.50, 86771, 88.26),
        (30, 7, 10052, 32640, 50.25, 87405, 88.91),
        (32, 8, 10882, 35079, 61.16, 89494, 91.03),
    ),
}

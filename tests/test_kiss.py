"""Unit tests for the KISS2 parser/writer."""

from __future__ import annotations

import pytest

from repro.errors import IncompleteMachineError, KissFormatError
from repro.fsm.kiss import (
    KissMachine,
    KissRow,
    expand_cube,
    parse_kiss,
    table_to_kiss,
    write_kiss,
)

SIMPLE = """\
.i 1
.o 1
.s 2
.p 4
.r off
0 off off 0
1 off on 1
0 on on 1
1 on off 0
.e
"""


class TestParse:
    def test_roundtrip_counts(self):
        machine = parse_kiss(SIMPLE, name="simple")
        assert machine.n_inputs == 1
        assert machine.n_outputs == 1
        assert machine.n_states == 2
        assert machine.reset_state == "off"
        assert len(machine.rows) == 4

    def test_state_names_reset_first(self):
        text = SIMPLE.replace(".r off", ".r on")
        machine = parse_kiss(text)
        assert machine.state_names()[0] == "on"

    def test_comments_and_blanks_ignored(self):
        text = "# heading\n\n" + SIMPLE.replace(".e", "# trailing\n.e")
        assert parse_kiss(text).n_states == 2

    def test_unknown_directives_tolerated(self):
        text = SIMPLE.replace(".i 1", ".i 1\n.ilb x0")
        assert parse_kiss(text).n_inputs == 1

    def test_missing_header_raises(self):
        with pytest.raises(KissFormatError, match="missing"):
            parse_kiss("0 a b 0\n")

    def test_wrong_field_count_raises(self):
        with pytest.raises(KissFormatError, match="4 fields"):
            parse_kiss(".i 1\n.o 1\n0 a b\n")

    def test_product_count_mismatch_raises(self):
        with pytest.raises(KissFormatError, match="declares"):
            parse_kiss(".i 1\n.o 1\n.p 7\n0 a b 0\n")

    def test_state_count_overflow_raises(self):
        with pytest.raises(KissFormatError, match="states"):
            parse_kiss(".i 1\n.o 1\n.s 1\n0 a b 0\n1 a a 0\n")

    def test_bad_cube_characters_raise(self):
        with pytest.raises(KissFormatError, match="cube"):
            parse_kiss(".i 1\n.o 1\n2 a b 0\n")

    def test_everything_after_dot_e_ignored(self):
        text = SIMPLE + "garbage that is not kiss\n"
        assert parse_kiss(text).n_states == 2


class TestExpandCube:
    def test_fully_specified(self):
        assert list(expand_cube("10")) == [0b10]

    def test_single_dash(self):
        assert sorted(expand_cube("1-")) == [0b10, 0b11]

    def test_all_dashes(self):
        assert sorted(expand_cube("--")) == [0, 1, 2, 3]

    def test_empty_cube(self):
        assert list(expand_cube("")) == [0]


class TestToStateTable:
    def test_simple_machine(self):
        table = parse_kiss(SIMPLE).to_state_table()
        assert table.step(0, 0) == (0, 0)
        assert table.step(0, 1) == (1, 1)
        assert table.step(1, 1) == (0, 0)

    def test_cube_expansion(self):
        text = ".i 2\n.o 1\n- - a a 0\n".replace("- -", "--")
        table = parse_kiss(text).to_state_table()
        assert table.n_states == 1
        assert all(table.step(0, c) == (0, 0) for c in range(4))

    def test_dont_care_output_resolves_to_zero(self):
        text = ".i 1\n.o 2\n- a a -1\n"
        table = parse_kiss(text).to_state_table()
        assert table.step(0, 0) == (0, 0b01)

    def test_conflicting_rows_raise(self):
        text = ".i 1\n.o 1\n0 a a 0\n0 a b 0\n1 a a 0\n1 b b 0\n0 b b 0\n"
        with pytest.raises(KissFormatError, match="conflicting"):
            parse_kiss(text).to_state_table()

    def test_unspecified_entries_raise_by_default(self):
        text = ".i 1\n.o 1\n0 a a 0\n"
        with pytest.raises(IncompleteMachineError):
            parse_kiss(text).to_state_table()

    def test_fill_unspecified_goes_to_reset(self):
        text = ".i 1\n.o 1\n.r a\n0 a b 1\n0 b b 1\n"
        table = parse_kiss(text).to_state_table(fill_unspecified=True)
        assert table.step(0, 1) == (0, 0)
        assert table.step(1, 1) == (0, 0)

    def test_star_present_state(self):
        text = ".i 1\n.o 1\n.r a\n0 a a 0\n0 b a 0\n1 * a 1\n"
        table = parse_kiss(text).to_state_table()
        assert table.step(0, 1) == (0, 1)
        assert table.step(1, 1) == (0, 1)

    def test_width_mismatch_raises(self):
        text = ".i 2\n.o 1\n0 a a 0\n"
        with pytest.raises(KissFormatError, match="width"):
            parse_kiss(text).to_state_table()


class TestWrite:
    def test_roundtrip(self):
        machine = parse_kiss(SIMPLE, name="simple")
        again = parse_kiss(write_kiss(machine), name="simple")
        assert again.to_state_table() == machine.to_state_table()

    def test_table_to_kiss_roundtrip(self, lion):
        machine = table_to_kiss(lion)
        assert machine.to_state_table() == lion
        assert len(machine.rows) == lion.n_transitions

    def test_write_contains_headers(self):
        text = write_kiss(parse_kiss(SIMPLE))
        assert ".i 1" in text and ".p 4" in text and text.endswith(".e\n")


class TestKissRowValidation:
    def test_bad_cube_rejected(self):
        with pytest.raises(KissFormatError):
            KissRow("0x", "a", "b", "1")

    def test_str_format(self):
        assert str(KissRow("0-", "a", "b", "1")) == "0- a b 1"

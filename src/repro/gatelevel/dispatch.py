"""Engine dispatch for fault simulation.

One factory, :func:`make_fault_simulator`, resolves a
:class:`repro.core.config.FaultSimConfig` engine choice into a concrete
simulator: the PPSFP behavioral-table engine
(:class:`repro.gatelevel.ppsfp.PpsfpSimulator`) or the compiled big-int
parallel-fault engine
(:class:`repro.gatelevel.compiled.CompiledFaultSimulator`).  Both expose
``detect_mask`` / ``detect_masks`` / ``detects`` /
``make_effective_simulator`` over the same fault-bit order, and produce
bit-identical masks — the dispatch decision only ever affects speed.

The module exists so call sites (harness selections, the perf engine, the
fuzz oracle) need neither import both engines nor re-implement the
``auto`` heuristic; it imports only the two engines and the config, which
keeps the package free of import cycles.
"""

from __future__ import annotations

from typing import Sequence, Union

from repro.core.config import FaultSimConfig
from repro.fsm.state_table import StateTable
from repro.gatelevel.compiled import CompiledFaultSimulator
from repro.gatelevel.ppsfp import PpsfpSimulator
from repro.gatelevel.scan import ScanCircuit
from repro.gatelevel.stuck_at import StuckAtFault
from repro.gatelevel.bridging import BridgingFault

__all__ = ["make_fault_simulator", "FaultSimulator"]

Fault = Union[StuckAtFault, BridgingFault]
FaultSimulator = Union[PpsfpSimulator, CompiledFaultSimulator]


def make_fault_simulator(
    circuit: ScanCircuit,
    table: StateTable,
    faults: Sequence[Fault],
    config: FaultSimConfig | None = None,
    *,
    total_test_cycles: int | None = None,
) -> FaultSimulator:
    """Build the fault simulator ``config`` selects for this universe.

    ``total_test_cycles`` — when the caller already knows how many clock
    cycles it is about to simulate (sum of test lengths x expected passes)
    — lets the ``auto`` heuristic reject a PPSFP table build that would
    cost more than the big-int simulation it replaces.

    An *empty* universe always gets the PPSFP engine (the compiled engine
    rejects empty universes; PPSFP returns mask 0 for every test), so
    callers can treat "nothing to simulate" uniformly.
    """
    config = config or FaultSimConfig()
    engine = config.select_engine(
        len(faults),
        circuit.n_state_variables + circuit.n_primary_inputs,
        total_test_cycles,
    )
    if not faults:
        return PpsfpSimulator(circuit, table, faults, config)
    if engine == "ppsfp":
        if config.engine == "auto" and circuit.n_primary_outputs > 32:
            # PPSFP tables hold output combos in uint32 cells; auto never
            # picks an engine that would refuse the circuit.
            return CompiledFaultSimulator(circuit, table, faults)
        return PpsfpSimulator(circuit, table, faults, config)
    return CompiledFaultSimulator(circuit, table, faults)

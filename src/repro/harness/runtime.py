"""Small timing helpers for the experiment harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["Stopwatch", "stopwatch"]


class Stopwatch:
    """Mutable elapsed-seconds holder filled in by :func:`stopwatch`."""

    def __init__(self) -> None:
        self.elapsed_s: float = 0.0

    def __repr__(self) -> str:
        return f"<Stopwatch {self.elapsed_s:.3f}s>"


@contextmanager
def stopwatch() -> Iterator[Stopwatch]:
    """Time a block::

        with stopwatch() as clock:
            work()
        print(clock.elapsed_s)
    """
    clock = Stopwatch()
    started = time.perf_counter()
    try:
        yield clock
    finally:
        clock.elapsed_s = time.perf_counter() - started

"""Tests for the static-analysis subsystem (``repro.lint``).

Every rule gets a passing fixture (the rule stays silent) and a failing
fixture (the rule fires with its documented id).  Some failing fixtures
require tampering with internals — that is the point: the analyzers
re-derive structure instead of trusting construction-time invariants.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import GeneratorConfig
from repro.core.generator import generate_tests
from repro.core.testset import ScanTest, Segment, SegmentKind
from repro.errors import (
    FaultSimulationError,
    GenerationError,
    LintError,
    NetlistError,
)
from repro.fsm.builders import StateTableBuilder
from repro.fsm.kiss import KissMachine, KissRow
from repro.gatelevel.netlist import Gate, GateType, Netlist
from repro.gatelevel.scan import ScanCircuit
from repro.gatelevel.stuck_at import StuckAtFault
from repro.lint import (
    Diagnostic,
    LintReport,
    Severity,
    all_rules,
    analyze_machine,
    analyze_netlist,
    analyze_test_program,
    forget_netlist,
    get_rule,
    lint_kiss_source,
    preflight_machine,
    preflight_netlist,
    rules_for,
)
from repro.lint.diagnostics import cap_diagnostics
from repro.lint.netlist_rules import strongly_connected_components
from repro.uio.search import UioSequence, UioTable


def machine(rows, n_inputs=1, n_outputs=1, reset=None, name="m"):
    return KissMachine(
        n_inputs, n_outputs, [KissRow(*row) for row in rows], reset, name
    )


TOGGLE_ROWS = [
    ("0", "off", "off", "0"),
    ("1", "off", "on", "0"),
    ("0", "on", "on", "1"),
    ("1", "on", "off", "1"),
]


@pytest.fixture()
def toggle_machine():
    return machine(TOGGLE_ROWS, name="toggle")


def clean_netlist():
    net = Netlist("clean")
    a = net.add_input("a")
    b = net.add_input("b")
    g = net.add_gate(GateType.AND, (a, b))
    net.set_outputs([g])
    return net


def toggle_table():
    builder = StateTableBuilder(n_inputs=1, n_outputs=1, name="toggle")
    for cube, present, nxt, out in TOGGLE_ROWS:
        builder.add(present, int(cube, 2), nxt, int(out, 2))
    return builder.build()


# --------------------------------------------------------------------- FSM


def test_fsm_clean_machine_has_no_findings(toggle_machine):
    report = analyze_machine(toggle_machine)
    assert report.clean
    assert report.ok


def test_fsm000_fires_on_unparsable_kiss():
    report = lint_kiss_source("this is not KISS2 at all\n.x nonsense", name="junk")
    assert "FSM000" in report.fired_rules()
    assert not report.ok


def test_fsm000_silent_on_valid_kiss():
    text = ".i 1\n.o 1\n.s 2\n.p 4\n" + "\n".join(
        f"{c} {p} {n} {o}" for c, p, n, o in TOGGLE_ROWS
    )
    report = lint_kiss_source(text, name="toggle")
    assert "FSM000" not in report.fired_rules()
    assert report.ok


def test_fsm001_fires_on_incomplete_machine():
    incomplete = machine(TOGGLE_ROWS[:-1])
    report = analyze_machine(incomplete)
    assert "FSM001" in report.fired_rules()
    assert any("unspecified" in d.message for d in report.errors)


def test_fsm002_fires_on_conflicting_rows(toggle_machine):
    toggle_machine.rows.append(KissRow("0", "off", "on", "1"))
    report = analyze_machine(toggle_machine)
    assert "FSM002" in report.fired_rules()
    assert any("conflicting" in d.message for d in report.errors)


def test_fsm003_fires_on_unreachable_state():
    stranded = machine(
        [
            ("0", "a", "a", "0"),
            ("1", "a", "a", "1"),
            ("0", "b", "a", "0"),
            ("1", "b", "a", "0"),
        ],
        reset="a",
    )
    report = analyze_machine(stranded)
    fired = report.fired_rules()
    assert "FSM003" in fired
    diag = [d for d in report.warnings if d.rule_id == "FSM003"]
    assert any("'b'" in d.message for d in diag)


def test_fsm004_fires_on_trap_state():
    trapped = machine(
        [
            ("0", "a", "b", "0"),
            ("1", "a", "b", "0"),
            ("0", "b", "b", "1"),
            ("1", "b", "b", "1"),
        ],
        reset="a",
    )
    report = analyze_machine(trapped)
    assert "FSM004" in report.fired_rules()


def test_fsm004_silent_on_toggle(toggle_machine):
    assert "FSM004" not in analyze_machine(toggle_machine).fired_rules()


def test_fsm005_fires_on_equivalent_states():
    redundant = machine(
        [
            ("0", "a", "b", "0"),
            ("1", "a", "c", "0"),
            ("0", "b", "a", "1"),
            ("1", "b", "a", "1"),
            ("0", "c", "a", "1"),
            ("1", "c", "a", "1"),
        ],
        reset="a",
    )
    report = analyze_machine(redundant)
    assert "FSM005" in report.fired_rules()
    assert any("equivalent" in d.message for d in report.warnings)


def test_fsm005_skipped_without_expensive_rules():
    redundant = machine(
        [
            ("0", "a", "b", "0"),
            ("1", "a", "b", "0"),
            ("0", "b", "b", "0"),
            ("1", "b", "b", "0"),
        ],
        reset="a",
    )
    report = analyze_machine(redundant, include_expensive=False)
    assert "FSM005" not in report.fired_rules()


def test_fsm006_fires_on_bad_cube_width():
    bad = machine([("00", "a", "a", "0"), ("1", "a", "a", "0")])
    report = analyze_machine(bad)
    assert "FSM006" in report.fired_rules()
    assert any("width" in d.message for d in report.errors)


def test_fsm007_fires_on_overwide_output_declaration():
    wide = machine(
        [
            ("0", "a", "a", "00"),
            ("1", "a", "b", "01"),
            ("0", "b", "b", "01"),
            ("1", "b", "a", "00"),
        ],
        n_outputs=2,
    )
    report = analyze_machine(wide)
    assert "FSM007" in report.fired_rules()
    assert report.ok  # INFO only


def test_fsm008_fires_on_unserializable_state_name():
    hashy = machine([("0", "s#x", "s#x", "0"), ("1", "s#x", "s#x", "0")])
    report = analyze_machine(hashy)
    assert "FSM008" in report.fired_rules()
    assert not report.ok


def test_fsm008_silent_on_toggle(toggle_machine):
    assert "FSM008" not in analyze_machine(toggle_machine).fired_rules()


def test_fsm009_fires_on_tampered_state_names():
    table = toggle_table()
    object.__setattr__(table, "state_names", ("off", "off"))
    report = analyze_machine(table)
    assert "FSM009" in report.fired_rules()
    assert any("not unique" in d.message for d in report.errors)


def test_fsm009_silent_on_dense_table():
    report = analyze_machine(toggle_table())
    assert "FSM009" not in report.fired_rules()
    assert report.ok


def test_kiss_machine_lint_convenience():
    incomplete = machine(TOGGLE_ROWS[:-1])
    report = incomplete.lint()
    assert "FSM001" in report.fired_rules()


# ----------------------------------------------------------------- netlist


def test_netlist_clean_has_no_findings():
    report = analyze_netlist(clean_netlist())
    assert report.clean


def test_net001_fires_on_combinational_cycle():
    net = Netlist("cyclic")
    net.add_input("a")
    net.add_gate(GateType.AND, (0, 0))
    net.add_gate(GateType.OR, (0, 1))
    net.set_outputs([2])
    # Rewire gate 1 to read gate 2: a 2-gate combinational loop.
    net._gates[1] = Gate(1, GateType.AND, (0, 2))
    report = analyze_netlist(net)
    assert "NET001" in report.fired_rules()
    assert any("cycle" in d.message for d in report.errors)


def test_net001_detects_self_loop():
    net = Netlist("selfloop")
    net.add_input("a")
    net.add_gate(GateType.AND, (0, 0))
    net.set_outputs([1])
    net._gates[1] = Gate(1, GateType.AND, (0, 1))
    report = analyze_netlist(net)
    assert "NET001" in report.fired_rules()


def test_net002_fires_on_nonexistent_fanin():
    net = clean_netlist()
    net._gates[2] = Gate(2, GateType.AND, (0, 99))
    report = analyze_netlist(net)
    assert "NET002" in report.fired_rules()
    assert any("nonexistent" in d.message for d in report.errors)


def test_net002_fires_on_dangling_output():
    net = clean_netlist()
    net._outputs = [99]
    report = analyze_netlist(net)
    assert "NET002" in report.fired_rules()


def test_net003_fires_on_dead_logic_and_unused_input():
    net = Netlist("dangling")
    a = net.add_input("a")
    b = net.add_input("b")
    net.add_input("unused")
    g = net.add_gate(GateType.AND, (a, b))
    net.add_gate(GateType.OR, (a, b), name="dead")
    net.set_outputs([g])
    report = analyze_netlist(net)
    assert "NET003" in report.fired_rules()
    assert any(d.severity is Severity.WARNING for d in report.diagnostics)
    assert any(d.severity is Severity.INFO for d in report.diagnostics)
    assert report.ok  # never ERROR


def test_net004_fires_on_arity_violation():
    net = clean_netlist()
    net._gates[2] = Gate(2, GateType.NOT, (0, 1))
    report = analyze_netlist(net)
    assert "NET004" in report.fired_rules()


def test_net005_fires_without_outputs():
    net = Netlist("blind")
    a = net.add_input("a")
    net.add_gate(GateType.NOT, (a,))
    report = analyze_netlist(net)
    assert "NET005" in report.fired_rules()
    assert any("no outputs" in d.message for d in report.errors)


def test_net006_fires_on_inconsistent_scan_interface(toggle_machine):
    scan = ScanCircuit.from_machine(toggle_machine)
    assert analyze_netlist(scan).ok
    scan.n_primary_inputs += 1
    report = analyze_netlist(scan)
    assert "NET006" in report.fired_rules()


def test_net006_skipped_for_bare_netlist():
    # The scan-chain rule needs a scan circuit; bare netlists never fire it.
    assert "NET006" not in analyze_netlist(clean_netlist()).fired_rules()


def sca_blocked_netlist():
    """NOT(c) cut off by a CONST0 side input: constants, dead cone, certs."""
    net = Netlist("blocked")
    a = net.add_input("a")                      # 0
    c = net.add_input("c")                      # 1
    d = net.add_gate(GateType.NOT, (c,))        # 2: unobservable
    z = net.add_gate(GateType.CONST0, ())       # 3
    g = net.add_gate(GateType.AND, (d, z))      # 4: provably constant 0
    out = net.add_gate(GateType.OR, (g, a))     # 5
    net.set_outputs([out])
    return net


def deep_netlist():
    """Exponential CC1 growth: pathological SCOAP without any redundancy."""
    net = Netlist("deep")
    line = net.add_input("a")
    for _ in range(12):
        line = net.add_gate(GateType.AND, (line, line))
    net.set_outputs([line])
    return net


def test_net007_fires_on_proven_constant_gate():
    report = analyze_netlist(sca_blocked_netlist())
    assert "NET007" in report.fired_rules()
    findings = [d for d in report.diagnostics if d.rule_id == "NET007"]
    assert any(d.location == "gate 4" for d in findings)
    # The CONST0 generator itself is constant on purpose: never reported.
    assert not any(d.location == "gate 3" for d in findings)
    assert report.ok  # WARNING, not ERROR


def test_net007_silent_on_clean_netlist():
    assert "NET007" not in analyze_netlist(clean_netlist()).fired_rules()


def test_net008_fires_on_unobservable_gate():
    report = analyze_netlist(sca_blocked_netlist())
    findings = [d for d in report.diagnostics if d.rule_id == "NET008"]
    # The NOT gate (line 2) is live, non-constant, and provably blocked.
    assert any(d.location == "gate 2" for d in findings)
    # The blocked primary input is NET009's finding, not NET008's.
    assert not any(d.location == "gate 1" for d in findings)


def test_net008_silent_on_clean_netlist():
    assert "NET008" not in analyze_netlist(clean_netlist()).fired_rules()


def test_net009_fires_on_dead_input_cone():
    report = analyze_netlist(sca_blocked_netlist())
    findings = [d for d in report.diagnostics if d.rule_id == "NET009"]
    assert any(d.location == "gate 1" for d in findings)


def test_net009_silent_on_clean_netlist():
    assert "NET009" not in analyze_netlist(clean_netlist()).fired_rules()


def test_net010_summarizes_certified_redundancy():
    report = analyze_netlist(sca_blocked_netlist())
    findings = [d for d in report.diagnostics if d.rule_id == "NET010"]
    assert len(findings) == 1  # one summary, not one per fault
    assert findings[0].severity is Severity.INFO
    assert "provably untestable" in findings[0].message


def test_net010_silent_without_certificates():
    assert "NET010" not in analyze_netlist(clean_netlist()).fired_rules()


def test_net011_fires_on_pathological_scoap():
    report = analyze_netlist(deep_netlist())
    assert "NET011" in report.fired_rules()
    assert report.ok  # INFO only


def test_net011_silent_on_clean_netlist():
    assert "NET011" not in analyze_netlist(clean_netlist()).fired_rules()
    # ... and on a real benchmark netlist: the threshold sits above the
    # corpus's worst finite testability on purpose.
    scan = ScanCircuit.from_machine(
        machine(TOGGLE_ROWS, name="toggle")
    )
    assert "NET011" not in analyze_netlist(scan).fired_rules()


def test_sca_rules_stay_silent_on_broken_netlists():
    # Structurally invalid netlists belong to the ERROR rules; the sca
    # analyses must not crash the sweep or double-report.
    net = clean_netlist()
    net._gates[2] = Gate(2, GateType.AND, (0, 99))
    report = analyze_netlist(net)
    assert "NET002" in report.fired_rules()
    assert not report.fired_rules() & {"NET007", "NET008", "NET009",
                                       "NET010", "NET011"}


def test_sca_rules_are_expensive_and_skip_preflight():
    from repro.lint.registry import get_rule

    for rule_id in ("NET007", "NET008", "NET009", "NET010", "NET011"):
        rule = get_rule(rule_id)
        assert rule.cost == "expensive"
        assert rule.severity is not Severity.ERROR
    # A netlist full of sca findings still passes the cheap preflight.
    preflight_netlist(sca_blocked_netlist())


def test_scc_helper_finds_components():
    # 0 -> 1 -> 2 -> 1 (cycle {1, 2}), 3 isolated.
    components = strongly_connected_components(4, [(1,), (2,), (1,), ()])
    assert [1, 2] in components
    assert sum(len(c) for c in components) == 4


# ------------------------------------------------------------ test programs


def test_test_program_clean(lion, lion_result):
    report = analyze_test_program(
        lion, lion_result.test_set, GeneratorConfig(), lion_result.uio_table
    )
    assert report.ok
    assert not report.warnings


def test_tst001_fires_on_overlong_uio_segment():
    table = toggle_table()
    test = ScanTest(
        initial_state=0,
        inputs=(1, 0, 0, 0),
        final_state=1,
        segments=(
            Segment(SegmentKind.TRANSITION, 0, (1,)),
            Segment(SegmentKind.UIO, 1, (0, 0, 0)),
        ),
        tested=((0, 1),),
    )
    report = analyze_test_program(table, [test], GeneratorConfig())
    assert "TST001" in report.fired_rules()


def test_tst001_fires_on_overlong_stored_uio():
    table = toggle_table()
    uios = UioTable(
        machine_name="toggle",
        max_length=1,
        sequences={0: UioSequence(0, (0, 0), 0)},
    )
    report = analyze_test_program(table, [], uio_table=uios)
    assert "TST001" in report.fired_rules()


def test_tst002_fires_on_wrong_final_state():
    table = toggle_table()
    test = ScanTest(
        initial_state=0,
        inputs=(1,),
        final_state=0,  # input 1 from 'off' lands on 'on' (state 1)
        segments=(Segment(SegmentKind.TRANSITION, 0, (1,)),),
        tested=((0, 1),),
    )
    report = analyze_test_program(table, [test])
    assert "TST002" in report.fired_rules()


def test_tst002_fires_on_broken_segment_chain():
    table = toggle_table()
    test = ScanTest(
        initial_state=0,
        inputs=(1,),
        final_state=1,
        segments=(Segment(SegmentKind.TRANSITION, 1, (1,)),),
        tested=(),
    )
    report = analyze_test_program(table, [test])
    assert any(
        d.rule_id == "TST002" and "start state" in d.message for d in report.errors
    )


def test_tst003_fires_on_out_of_range_references():
    table = toggle_table()
    tests = [
        ScanTest(initial_state=5, inputs=(0,), final_state=5),
        ScanTest(initial_state=0, inputs=(7,), final_state=0),
    ]
    report = analyze_test_program(table, tests)
    diag = [d for d in report.errors if d.rule_id == "TST003"]
    assert len(diag) == 2


def test_tst004_fires_on_unearned_coverage_claim():
    table = toggle_table()
    test = ScanTest(
        initial_state=0,
        inputs=(0,),
        final_state=0,
        segments=(),
        tested=((0, 1),),  # claims a transition no segment exercises
    )
    report = analyze_test_program(table, [test])
    assert "TST004" in report.fired_rules()


def test_tst005_fires_on_coverage_gap():
    table = toggle_table()
    test = ScanTest(
        initial_state=0,
        inputs=(1,),
        final_state=1,
        segments=(Segment(SegmentKind.TRANSITION, 0, (1,)),),
        tested=((0, 1),),
    )
    report = analyze_test_program(table, [test])
    diag = [d for d in report.warnings if d.rule_id == "TST005"]
    assert len(diag) == 1
    assert "never" in diag[0].message


def test_tst006_fires_on_overlong_transfer():
    table = toggle_table()
    test = ScanTest(
        initial_state=0,
        inputs=(0, 0),
        final_state=0,
        segments=(Segment(SegmentKind.TRANSFER, 0, (0, 0)),),
        tested=(),
    )
    report = analyze_test_program(
        table, [test], GeneratorConfig(max_transfer_length=1)
    )
    assert "TST006" in report.fired_rules()


def test_tst006_fires_when_transfers_disabled():
    table = toggle_table()
    test = ScanTest(
        initial_state=0,
        inputs=(0,),
        final_state=0,
        segments=(Segment(SegmentKind.TRANSFER, 0, (0,)),),
        tested=(),
    )
    report = analyze_test_program(
        table, [test], GeneratorConfig(max_transfer_length=0)
    )
    assert "TST006" in report.fired_rules()


# ----------------------------------------------------- registry & reporting


def test_registry_ids_are_unique_and_sorted():
    rules = all_rules()
    ids = [rule.rule_id for rule in rules]
    assert len(set(ids)) == len(ids)
    assert ids == sorted(ids)
    assert len(rules) >= 22


def test_registry_lookup_by_id_and_name():
    assert get_rule("FSM001").name == "fsm-completeness"
    assert get_rule("fsm-completeness").rule_id == "FSM001"
    with pytest.raises(LintError):
        get_rule("FSM999")


def test_rules_for_filters():
    errors = rules_for("fsm", errors_only=True)
    assert errors and all(r.severity is Severity.ERROR for r in errors)
    cheap = rules_for("fsm", include_expensive=False)
    assert all(r.cost == "cheap" for r in cheap)
    assert {"FSM005", "FSM008"}.isdisjoint({r.rule_id for r in cheap})
    with pytest.raises(LintError):
        rules_for("hardware")


def test_cap_diagnostics_summarizes_overflow():
    flood = [
        Diagnostic("X001", Severity.ERROR, f"finding {i}") for i in range(30)
    ]
    capped = list(cap_diagnostics(flood, limit=25))
    assert len(capped) == 26
    assert "5 more" in capped[-1].message
    assert capped[-1].severity is Severity.ERROR


def test_report_merge_and_raise():
    d1 = Diagnostic("A001", Severity.WARNING, "w")
    d2 = Diagnostic("B001", Severity.ERROR, "boom", location="gate 3")
    merged = LintReport((d1,)).merged(LintReport((d2,)))
    assert len(merged) == 2
    assert not merged.ok and not merged.clean
    with pytest.raises(LintError, match=r"\[B001\] gate 3: boom"):
        merged.raise_on_errors()
    with pytest.raises(NetlistError):
        merged.raise_on_errors(NetlistError)
    LintReport((d1,)).raise_on_errors()  # warnings never raise


def test_sarif_document_shape(toggle_machine):
    toggle_machine.rows.append(KissRow("0", "off", "on", "1"))
    report = analyze_machine(toggle_machine, name="toggle")
    document = json.loads(report.to_json())
    assert document["version"] == "2.1.0"
    run = document["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    assert any(rule["id"] == "FSM002" for rule in run["tool"]["driver"]["rules"])
    result = run["results"][0]
    assert result["ruleId"] == "FSM002"
    assert result["level"] == "error"
    assert "toggle" in result["locations"][0]["logicalLocations"][0][
        "fullyQualifiedName"
    ]


def test_sarif_2_1_0_envelope_and_rule_metadata(toggle_machine):
    from repro import __version__

    toggle_machine.rows.append(KissRow("0", "off", "on", "1"))
    report = analyze_machine(toggle_machine, name="toggle")
    document = report.to_sarif()
    assert document["$schema"].endswith("sarif-2.1.0.json")
    run = document["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["version"] == __version__
    assert driver["informationUri"].startswith("https://")
    assert run["columnKind"] == "utf16CodeUnits"
    rules = driver["rules"]
    # Registered rules carry their default severity level.
    by_id = {rule["id"]: rule for rule in rules}
    assert by_id["FSM002"]["defaultConfiguration"] == {"level": "error"}
    # Every result's ruleIndex points back at its own rule entry.
    for result in run["results"]:
        index = result["ruleIndex"]
        assert rules[index]["id"] == result["ruleId"]


def test_render_groups_by_artifact():
    report = LintReport(
        (
            Diagnostic("A001", Severity.ERROR, "first", artifact="m1"),
            Diagnostic("A001", Severity.WARNING, "second", artifact="m2"),
        )
    )
    text = report.render("check")
    assert "check: 1 error(s), 1 warning(s), 0 note(s)" in text
    assert "m1:" in text and "m2:" in text


# -------------------------------------------------------------- preflights


def test_generator_preflight_rejects_tampered_table():
    table = toggle_table()
    object.__setattr__(table, "state_names", ("off", "off"))
    with pytest.raises(GenerationError, match="FSM009"):
        generate_tests(table, GeneratorConfig())


def test_netlist_check_delegates_to_analyzer():
    net = Netlist("bad")
    net.add_input("a")
    net.add_gate(GateType.AND, (0, 0))
    net.set_outputs([1])
    net.check()
    net._gates[1] = Gate(1, GateType.AND, (0, 1))
    with pytest.raises(NetlistError, match="NET001"):
        net.check()


def test_preflight_netlist_memoizes_until_forgotten():
    net = clean_netlist()
    preflight_netlist(net)
    net._gates[2] = Gate(2, GateType.AND, (0, 99))
    preflight_netlist(net)  # cached verdict: still considered clean
    forget_netlist(net)
    with pytest.raises(LintError):
        preflight_netlist(net)


def test_preflight_machine_custom_exception():
    table = toggle_table()
    object.__setattr__(table, "state_names", ("off", "off"))
    with pytest.raises(GenerationError):
        preflight_machine(table, GenerationError)


def test_fault_sim_preflight_rejects_cyclic_netlist(toggle_machine):
    from repro.gatelevel.fault_sim import detects

    circuit = ScanCircuit.from_machine(toggle_machine)
    table = toggle_table()
    test = ScanTest(initial_state=0, inputs=(0,), final_state=0)
    index = circuit.netlist.n_gates - 1
    broken = Gate(index, GateType.AND, (0, index))
    forget_netlist(circuit.netlist)
    circuit.netlist._gates[index] = broken
    with pytest.raises(FaultSimulationError, match="NET001"):
        detects(circuit, table, test, [StuckAtFault(0, None, 1)])


# --------------------------------------------------------------------- CLI


def test_cli_lint_clean_circuit(capsys):
    from repro.cli import main

    assert main(["lint", "--circuits", "lion"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_cli_lint_json_output(capsys):
    from repro.cli import main

    code = main(
        ["lint", "--circuits", "lion", "--format", "json",
         "--no-gatelevel", "--no-tests"]
    )
    assert code == 0
    document = json.loads(capsys.readouterr().out)
    assert document["runs"][0]["tool"]["driver"]["name"] == "repro-lint"


def test_cli_lint_kiss_file_errors(tmp_path, capsys):
    from repro.cli import main

    bad = tmp_path / "incomplete.kiss"
    bad.write_text(".i 1\n.o 1\n.s 2\n.p 1\n0 s0 s1 0\n")
    assert main(["lint", "--kiss", str(bad)]) == 1
    assert "FSM001" in capsys.readouterr().out


def test_cli_lint_strict_promotes_warnings(tmp_path, capsys):
    from repro.cli import main

    stranded = tmp_path / "stranded.kiss"
    stranded.write_text(
        ".i 1\n.o 1\n.s 2\n.r a\n.p 4\n"
        "0 a a 0\n1 a a 1\n0 b a 0\n1 b a 0\n"
    )
    assert main(["lint", "--kiss", str(stranded)]) == 0
    assert main(["lint", "--kiss", str(stranded), "--strict"]) == 1
    assert "FSM003" in capsys.readouterr().out


def test_cli_lint_missing_file_is_usage_error(capsys):
    from repro.cli import main

    assert main(["lint", "--kiss", "/nonexistent/file.kiss"]) == 2

"""Content-addressed on-disk cache for expensive pipeline artifacts.

Artifacts — UIO tables, synthesized circuits, detectability partitions,
generated fault-simulator source — are keyed by a stable SHA-256 hash of
*everything that determines them*: the state table (or netlist) contents plus
every relevant option, plus a per-kind algorithm version.  Changing an
algorithm means bumping its entry in :data:`ARTIFACT_VERSIONS`, which moves
every affected artifact to a new key; stale entries are ignored and can be
swept with ``repro-fsatpg cache clear``.

The cache lives under ``~/.cache/repro-fsatpg`` by default (respecting
``XDG_CACHE_HOME``) and can be redirected with the ``REPRO_CACHE_DIR``
environment variable or the ``--cache-dir`` CLI flag.  Writes are atomic
(temp file + ``os.replace``), so concurrent worker processes can share one
cache directory safely; a corrupt or unreadable entry is treated as a miss
and removed.

Nothing in the library touches the disk unless a cache is *activated*
(:func:`set_active_cache` / :func:`cache_enabled`); with no active cache
every lookup helper degrades to plain computation.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import os
import pickle
import shutil
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from repro.errors import ReproError
from repro.obs.metrics import counter_add

__all__ = [
    "ARTIFACT_VERSIONS",
    "ArtifactCache",
    "CacheError",
    "ReplayVerifier",
    "active_cache",
    "active_probe",
    "artifact_key",
    "cache_enabled",
    "cache_probe",
    "default_cache_dir",
    "set_active_cache",
    "set_cache_probe",
    "stable_hash",
]


class CacheError(ReproError):
    """The artifact cache was driven with inconsistent inputs."""


#: Per-kind algorithm versions.  Bump a value whenever the corresponding
#: computation changes meaning, so old on-disk entries can never be returned
#: for the new algorithm.
ARTIFACT_VERSIONS: dict[str, int] = {
    "uio": 1,
    "synthesis": 1,
    "detectability": 1,
    # 2: stuck-at store forces are parenthesized before masking (inverting
    # gates mis-injected output stuck-at-0 under the old precedence).
    "simulator-source": 2,
    "sca": 1,
    # 2: AtpgRun verdicts carry search-forensics traces (aborted and
    # hardest-N targets); entries stored by version 1 lack them.
    "atpg": 2,
}

#: On-disk layout version; bump to orphan every existing entry at once.
CACHE_FORMAT = "v1"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro-fsatpg``, else
    ``~/.cache/repro-fsatpg``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-fsatpg"


# --------------------------------------------------------------------- keys


def _feed(hasher: "hashlib._Hash", value: Any) -> None:
    """Feed one value into ``hasher`` with an unambiguous type prefix."""
    if value is None:
        hasher.update(b"N;")
    elif isinstance(value, bool):
        hasher.update(b"b1;" if value else b"b0;")
    elif isinstance(value, int):
        data = str(value).encode()
        hasher.update(b"i%d:%s;" % (len(data), data))
    elif isinstance(value, float):
        data = value.hex().encode()
        hasher.update(b"f%d:%s;" % (len(data), data))
    elif isinstance(value, str):
        data = value.encode()
        hasher.update(b"s%d:%s;" % (len(data), data))
    elif isinstance(value, bytes):
        hasher.update(b"y%d:" % len(value))
        hasher.update(value)
        hasher.update(b";")
    elif isinstance(value, enum.Enum):
        _feed(hasher, f"{type(value).__name__}.{value.name}")
    elif isinstance(value, (tuple, list)):
        hasher.update(b"t%d:" % len(value))
        for item in value:
            _feed(hasher, item)
        hasher.update(b";")
    elif isinstance(value, (set, frozenset)):
        hasher.update(b"S%d:" % len(value))
        for item in sorted(value, key=repr):
            _feed(hasher, item)
        hasher.update(b";")
    elif isinstance(value, dict):
        hasher.update(b"d%d:" % len(value))
        for key in sorted(value, key=repr):
            _feed(hasher, key)
            _feed(hasher, value[key])
        hasher.update(b";")
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        hasher.update(b"D:")
        _feed(hasher, type(value).__qualname__)
        for field in dataclasses.fields(value):
            _feed(hasher, field.name)
            _feed(hasher, getattr(value, field.name))
        hasher.update(b";")
    elif hasattr(value, "tobytes") and hasattr(value, "shape"):  # numpy array
        hasher.update(b"a:")
        _feed(hasher, str(getattr(value, "dtype", "")))
        _feed(hasher, tuple(int(n) for n in value.shape))
        hasher.update(value.tobytes())
        hasher.update(b";")
    else:
        raise CacheError(
            f"cannot hash value of type {type(value).__name__!r} into a cache key"
        )


def stable_hash(*parts: Any) -> str:
    """Deterministic SHA-256 hex digest of structured values.

    Supports None, bool, int, float, str, bytes, enums, (frozen)sets, dicts,
    tuples/lists, dataclasses, and numpy arrays, nested arbitrarily.  The
    encoding is type-prefixed and length-delimited, so distinct structures
    never collide by concatenation.
    """
    hasher = hashlib.sha256()
    for part in parts:
        _feed(hasher, part)
    return hasher.hexdigest()


def artifact_key(kind: str, *parts: Any) -> str:
    """Cache key for one artifact: content hash + the kind's algorithm version."""
    try:
        version = ARTIFACT_VERSIONS[kind]
    except KeyError:
        raise CacheError(
            f"unknown artifact kind {kind!r}; known: {sorted(ARTIFACT_VERSIONS)}"
        ) from None
    return stable_hash(kind, version, parts)


# -------------------------------------------------------------------- store


class ArtifactCache:
    """Pickle-backed content-addressed store with hit/miss accounting."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root).expanduser() if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def _path(self, kind: str, key: str) -> Path:
        return self.root / CACHE_FORMAT / kind / key[:2] / f"{key}.pkl"

    def get(self, kind: str, key: str) -> Any | None:
        """The stored artifact, or ``None`` on a miss (also counts it)."""
        path = self._path(kind, key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            counter_add("cache.miss")
            counter_add(f"cache.miss.{kind}")
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, MemoryError):
            # Corrupt / stale / unreadable entry: drop it and treat as a miss.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            counter_add("cache.miss")
            counter_add(f"cache.miss.{kind}")
            return None
        self.hits += 1
        counter_add("cache.hit")
        counter_add(f"cache.hit.{kind}")
        if _PROBE is not None:
            _PROBE.on_replay(kind, key, value)
        return value

    def put(self, kind: str, key: str, value: Any) -> None:
        """Store an artifact atomically (safe under concurrent writers)."""
        if _PROBE is not None:
            _PROBE.on_store(kind, key, value)
        path = self._path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with open(temp, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp, path)
        except OSError:
            # A read-only or full cache directory must never fail the
            # computation it was meant to accelerate.
            try:
                temp.unlink()
            except OSError:
                pass

    # ----------------------------------------------------------- management

    def info(self) -> dict:
        """Entry counts and byte totals, per artifact kind."""
        kinds: dict[str, dict[str, int]] = {}
        base = self.root / CACHE_FORMAT
        total_entries = 0
        total_bytes = 0
        if base.is_dir():
            for kind_dir in sorted(base.iterdir()):
                if not kind_dir.is_dir():
                    continue
                entries = 0
                size = 0
                for path in kind_dir.rglob("*.pkl"):
                    entries += 1
                    try:
                        size += path.stat().st_size
                    except OSError:
                        pass
                kinds[kind_dir.name] = {"entries": entries, "bytes": size}
                total_entries += entries
                total_bytes += size
        lookups = self.hits + self.misses
        return {
            "root": str(self.root),
            "format": CACHE_FORMAT,
            "versions": dict(ARTIFACT_VERSIONS),
            "kinds": kinds,
            "entries": total_entries,
            "bytes": total_bytes,
            "session": {
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": (self.hits / lookups) if lookups else 0.0,
            },
        }

    def clear(self) -> int:
        """Remove every entry; returns the number of entries removed."""
        base = self.root / CACHE_FORMAT
        removed = 0
        if base.is_dir():
            removed = sum(1 for _ in base.rglob("*.pkl"))
            shutil.rmtree(base, ignore_errors=True)
        return removed

    def __repr__(self) -> str:
        return f"<ArtifactCache {str(self.root)!r} ({self.hits}h/{self.misses}m)>"


# ------------------------------------------------------------ active cache

_ACTIVE: ArtifactCache | None = None


def active_cache() -> ArtifactCache | None:
    """The process-wide cache, or ``None`` when caching is disabled."""
    return _ACTIVE


def set_active_cache(cache: ArtifactCache | None) -> ArtifactCache | None:
    """Install (or remove, with ``None``) the process-wide cache.

    Returns the previously active cache so callers can restore it.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = cache
    return previous


@contextmanager
def cache_enabled(root: str | Path | None = None) -> Iterator[ArtifactCache]:
    """Activate an :class:`ArtifactCache` for the duration of a block."""
    cache = ArtifactCache(root)
    previous = set_active_cache(cache)
    try:
        yield cache
    finally:
        set_active_cache(previous)


# ------------------------------------------------------------- replay hook


class CacheProbe:
    """Observer of every artifact store and cache-hit replay.

    Subclasses override :meth:`on_store` / :meth:`on_replay`; the active
    probe (see :func:`set_cache_probe`) is invoked synchronously from
    :meth:`ArtifactCache.put` and :meth:`ArtifactCache.get`.  Probes must
    never mutate the artifact they observe.
    """

    def on_store(self, kind: str, key: str, value: Any) -> None:
        """Called before an artifact is written to disk."""

    def on_replay(self, kind: str, key: str, value: Any) -> None:
        """Called after an artifact was successfully read back (a hit)."""


class ReplayVerifier(CacheProbe):
    """Probe asserting that cache-hit replays equal the stored originals.

    Stores a fingerprint of every artifact at :meth:`on_store` time and
    compares each later replay against it: ``str``/``bytes`` artifacts (and
    tuples of them, e.g. compiled-simulator sources) must be bit-identical;
    everything else must compare equal.  Mismatches are collected in
    :attr:`mismatches` — one human-readable line per event — so a fuzzing
    oracle (or a paranoid production run) can fail loudly instead of
    silently trusting a corrupted or stale cache entry.
    """

    def __init__(self) -> None:
        self.stored: dict[tuple[str, str], Any] = {}
        self.replays = 0
        self.mismatches: list[str] = []

    def on_store(self, kind: str, key: str, value: Any) -> None:
        self.stored[(kind, key)] = value

    def on_replay(self, kind: str, key: str, value: Any) -> None:
        self.replays += 1
        if (kind, key) not in self.stored:
            return  # stored by an earlier process; nothing to compare against
        original = self.stored[(kind, key)]
        if not _replay_equal(original, value):
            self.mismatches.append(
                f"{kind}/{key[:12]}: replayed artifact differs from the "
                "value stored this run"
            )


def _replay_equal(original: Any, replayed: Any) -> bool:
    if type(original) is not type(replayed):
        return False
    if isinstance(original, (str, bytes)):
        return bool(original == replayed)  # bit-identical by definition
    if isinstance(original, tuple):
        return len(original) == len(replayed) and all(
            _replay_equal(a, b) for a, b in zip(original, replayed)
        )
    result = original == replayed
    return bool(result)


_PROBE: CacheProbe | None = None


def active_probe() -> CacheProbe | None:
    """The process-wide cache probe, or ``None`` when none is installed."""
    return _PROBE


def set_cache_probe(probe: CacheProbe | None) -> CacheProbe | None:
    """Install (or remove, with ``None``) the process-wide cache probe.

    Returns the previously active probe so callers can restore it.
    """
    global _PROBE
    previous = _PROBE
    _PROBE = probe
    return previous


@contextmanager
def cache_probe(probe: CacheProbe) -> Iterator[CacheProbe]:
    """Activate a :class:`CacheProbe` for the duration of a block."""
    previous = set_cache_probe(probe)
    try:
        yield probe
    finally:
        set_cache_probe(previous)

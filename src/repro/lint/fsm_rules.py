"""FSM lint rules: state tables and KISS machines.

The analyzer accepts either a cube-level :class:`~repro.fsm.kiss.KissMachine`
or a dense :class:`~repro.fsm.state_table.StateTable`.  Cube-level rules
(completeness, determinism, cube widths) only apply to KISS machines — a
dense table is complete and deterministic by construction — while the graph
rules (reachability, trap states, equivalence, round-trip) run on the dense
expansion either way.

Rule ids
--------
======  ======================  ========  =========
id      name                    severity  cost
======  ======================  ========  =========
FSM000  kiss-parse              ERROR     cheap
FSM001  fsm-completeness        ERROR     cheap
FSM002  fsm-determinism         ERROR     cheap
FSM003  fsm-unreachable-state   WARNING   cheap
FSM004  fsm-trap-state          WARNING   cheap
FSM005  fsm-equivalent-states   WARNING   expensive
FSM006  fsm-cube-width          ERROR     cheap
FSM007  fsm-output-width        INFO      cheap
FSM008  fsm-kiss-roundtrip      ERROR     expensive
FSM009  fsm-table-domain        ERROR     cheap
======  ======================  ========  =========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ReproError
from repro.fsm.analysis import equivalence_classes, reachable_states
from repro.fsm.kiss import (
    CubeExpansion,
    KissMachine,
    expand_machine,
    parse_kiss,
    table_to_kiss,
    write_kiss,
)
from repro.fsm.state_table import StateTable
from repro.lint.diagnostics import (
    Diagnostic,
    LintReport,
    Severity,
    cap_diagnostics,
)
from repro.lint.registry import Rule, register, rule_index, rules_for

__all__ = ["MachineArtifact", "analyze_machine", "lint_kiss_source"]


@dataclass
class MachineArtifact:
    """What the FSM rules see: the machine and/or its dense expansion.

    ``table`` is ``None`` when the cube expansion had ERROR-level defects
    (widths, conflicts) that make a dense table meaningless; graph rules
    skip silently in that case and the cube rules carry the findings.
    """

    name: str
    machine: KissMachine | None
    expansion: CubeExpansion | None
    table: StateTable | None

    def state_name(self, state: int) -> str:
        if self.table is not None:
            return self.table.state_names[state]
        if self.expansion is not None and state < len(self.expansion.names):
            return self.expansion.names[state]
        return f"s{state}"

    def input_label(self, combination: int) -> str:
        width = (
            self.table.n_inputs if self.table is not None
            else self.machine.n_inputs if self.machine is not None
            else 0
        )
        return format(combination, f"0{width}b") if width else str(combination)


@register
class KissParseRule(Rule):
    """Placeholder rule carrying KISS2 parse failures (see
    :func:`lint_kiss_source`); never fires on an already-parsed machine."""

    rule_id = "FSM000"
    name = "kiss-parse"
    severity = Severity.ERROR
    domain = "fsm"
    cost = "cheap"
    description = "KISS2 document could not be parsed"

    def check(self, context: MachineArtifact) -> Iterator[Diagnostic]:
        return iter(())


@register
class CompletenessRule(Rule):
    rule_id = "FSM001"
    name = "fsm-completeness"
    severity = Severity.ERROR
    domain = "fsm"
    cost = "cheap"
    description = "every (state, input) entry must be specified"

    def check(self, context: MachineArtifact) -> Iterator[Diagnostic]:
        if context.expansion is None:
            return
        holes = context.expansion.holes
        yield from cap_diagnostics(
            self.diagnostic(
                "unspecified transition: no row covers this entry",
                location=(
                    f"state {context.state_name(state)!r}, "
                    f"input {context.input_label(combo)}"
                ),
                hint="add a row or expand with fill_unspecified=True",
                artifact=context.name,
            )
            for state, combo in holes
        )


@register
class DeterminismRule(Rule):
    rule_id = "FSM002"
    name = "fsm-determinism"
    severity = Severity.ERROR
    domain = "fsm"
    cost = "cheap"
    description = "no two rows may disagree on the same (state, input) entry"

    def check(self, context: MachineArtifact) -> Iterator[Diagnostic]:
        if context.expansion is None:
            return
        yield from cap_diagnostics(
            self.diagnostic(
                anomaly.message,
                location=f"row {anomaly.row_index}",
                hint="remove or reconcile the overlapping cubes",
                artifact=context.name,
            )
            for anomaly in context.expansion.conflicts
        )


@register
class UnreachableStateRule(Rule):
    rule_id = "FSM003"
    name = "fsm-unreachable-state"
    severity = Severity.WARNING
    domain = "fsm"
    cost = "cheap"
    description = "states unreachable from the reset state"

    def check(self, context: MachineArtifact) -> Iterator[Diagnostic]:
        table = context.table
        if table is None or table.n_states < 2:
            return
        reachable = reachable_states(table, 0)
        yield from cap_diagnostics(
            self.diagnostic(
                f"state {context.state_name(state)!r} is unreachable from "
                f"the reset state {context.state_name(0)!r}",
                location=f"state {context.state_name(state)!r}",
                hint="harmless under full scan (scan-in reaches any state) "
                "but dead weight in non-scan operation",
                artifact=context.name,
            )
            for state in range(table.n_states)
            if state not in reachable
        )


@register
class TrapStateRule(Rule):
    rule_id = "FSM004"
    name = "fsm-trap-state"
    severity = Severity.WARNING
    domain = "fsm"
    cost = "cheap"
    description = "states every transition of which self-loops (no transfer out)"

    def check(self, context: MachineArtifact) -> Iterator[Diagnostic]:
        table = context.table
        if table is None or table.n_states < 2:
            return
        nexts = np.asarray(table.next_state)
        trapped = np.flatnonzero((nexts == np.arange(table.n_states)[:, None]).all(axis=1))
        yield from cap_diagnostics(
            self.diagnostic(
                f"state {context.state_name(int(state))!r} loops to itself "
                "under every input; no transfer sequence can leave it",
                location=f"state {context.state_name(int(state))!r}",
                hint="tests landing here must end with a scan-out",
                artifact=context.name,
            )
            for state in trapped
        )


@register
class EquivalentStatesRule(Rule):
    rule_id = "FSM005"
    name = "fsm-equivalent-states"
    severity = Severity.WARNING
    domain = "fsm"
    cost = "expensive"
    description = "equivalent state pairs (partition refinement); they have no UIO"

    def check(self, context: MachineArtifact) -> Iterator[Diagnostic]:
        table = context.table
        if table is None:
            return
        def classes() -> Iterator[Diagnostic]:
            for members in equivalence_classes(table):
                if len(members) < 2:
                    continue
                names = ", ".join(
                    repr(context.state_name(s)) for s in sorted(members)
                )
                yield self.diagnostic(
                    f"states {names} are pairwise equivalent; no sequence "
                    "distinguishes them, so none of them has a UIO",
                    location=f"states {{{names}}}",
                    hint="expected for completed machines (fill states); "
                    "merge the states to obtain a reduced machine",
                    artifact=context.name,
                )
        yield from cap_diagnostics(classes())


@register
class CubeWidthRule(Rule):
    rule_id = "FSM006"
    name = "fsm-cube-width"
    severity = Severity.ERROR
    domain = "fsm"
    cost = "cheap"
    description = "input/output cube widths must match the declared .i/.o counts"

    def check(self, context: MachineArtifact) -> Iterator[Diagnostic]:
        if context.expansion is None:
            return
        yield from cap_diagnostics(
            self.diagnostic(
                anomaly.message,
                location=f"row {anomaly.row_index}",
                hint="pad or trim the cube to the declared width",
                artifact=context.name,
            )
            for anomaly in context.expansion.width_errors
        )


@register
class OutputWidthRule(Rule):
    rule_id = "FSM007"
    name = "fsm-output-width"
    severity = Severity.INFO
    domain = "fsm"
    cost = "cheap"
    description = "declared output width wider than any output actually uses"

    def check(self, context: MachineArtifact) -> Iterator[Diagnostic]:
        table = context.table
        if table is None or table.n_outputs == 0 or not table.output.size:
            return
        used = int(np.asarray(table.output).max())
        needed = max(1, used.bit_length())
        if needed < table.n_outputs:
            yield self.diagnostic(
                f"outputs declare {table.n_outputs} bits but only the low "
                f"{needed} bit(s) are ever non-zero",
                hint="the unused output lines are constant 0 in every "
                "synthesized implementation",
                artifact=context.name,
            )


@register
class KissRoundTripRule(Rule):
    rule_id = "FSM008"
    name = "fsm-kiss-roundtrip"
    severity = Severity.ERROR
    domain = "fsm"
    cost = "expensive"
    description = "write_kiss -> parse_kiss -> expand must reproduce the machine"

    def check(self, context: MachineArtifact) -> Iterator[Diagnostic]:
        machine = context.machine
        if machine is None:
            if context.table is None:
                return
            machine = table_to_kiss(context.table)
        try:
            reparsed = parse_kiss(write_kiss(machine), name=machine.name)
        except ReproError as exc:
            yield self.diagnostic(
                f"serialized machine failed to reparse: {exc}",
                hint="state names containing '#', whitespace or '*' do not "
                "survive the KISS2 text format",
                artifact=context.name,
            )
            return
        original = expand_machine(machine)
        round_tripped = expand_machine(reparsed)
        if original.names != round_tripped.names:
            yield self.diagnostic(
                "round trip changed the state set: "
                f"{original.names} -> {round_tripped.names}",
                artifact=context.name,
            )
            return
        if not (
            np.array_equal(original.next_state, round_tripped.next_state)
            and np.array_equal(original.output, round_tripped.output)
        ):
            yield self.diagnostic(
                "round trip through KISS2 text changed the transition "
                "behaviour of the machine",
                artifact=context.name,
            )


@register
class TableDomainRule(Rule):
    rule_id = "FSM009"
    name = "fsm-table-domain"
    severity = Severity.ERROR
    domain = "fsm"
    cost = "cheap"
    description = "dense table entries must stay inside their declared domains"

    def check(self, context: MachineArtifact) -> Iterator[Diagnostic]:
        table = context.table
        if table is None:
            return
        nexts = np.asarray(table.next_state)
        outs = np.asarray(table.output)
        if nexts.shape != outs.shape or nexts.ndim != 2:
            yield self.diagnostic(
                f"next-state shape {nexts.shape} and output shape "
                f"{outs.shape} are inconsistent",
                artifact=context.name,
            )
            return
        if nexts.shape[1] != table.n_input_combinations:
            yield self.diagnostic(
                f"table has {nexts.shape[1]} input columns, "
                f"2**{table.n_inputs} expected",
                artifact=context.name,
            )
        if nexts.size and (nexts.min() < 0 or nexts.max() >= table.n_states):
            yield self.diagnostic(
                "next-state entries fall outside the state index range "
                f"[0, {table.n_states})",
                artifact=context.name,
            )
        if outs.size and (outs.min() < 0 or outs.max() >= (1 << table.n_outputs)):
            yield self.diagnostic(
                f"output entries do not fit in {table.n_outputs} output bits",
                artifact=context.name,
            )
        if len(set(table.state_names)) != table.n_states:
            yield self.diagnostic(
                "state names are not unique",
                artifact=context.name,
            )


def _build_artifact(
    subject: KissMachine | StateTable, name: str
) -> MachineArtifact:
    if isinstance(subject, StateTable):
        return MachineArtifact(name or subject.name, None, None, subject)
    expansion = expand_machine(subject)
    table: StateTable | None = None
    if expansion.names and not expansion.anomalies:
        next_state = expansion.next_state.copy()
        output = expansion.output.copy()
        output[next_state == -1] = 0
        next_state[next_state == -1] = 0
        table = StateTable(
            next_state,
            output,
            subject.n_inputs,
            subject.n_outputs,
            expansion.names,
            subject.name,
        )
    return MachineArtifact(name or subject.name, subject, expansion, table)


def analyze_machine(
    subject: KissMachine | StateTable,
    *,
    errors_only: bool = False,
    include_expensive: bool = True,
    name: str = "",
) -> LintReport:
    """Run the FSM rules over a machine or a dense state table.

    ``errors_only`` restricts to ERROR-capable rules (the preflight mode);
    ``include_expensive=False`` additionally skips whole-machine checks like
    the KISS round trip and the equivalence partition.
    """
    rules = rules_for(
        "fsm", errors_only=errors_only, include_expensive=include_expensive
    )
    artifact = _build_artifact(subject, name)
    diagnostics: list[Diagnostic] = []
    for rule in rules:
        diagnostics.extend(rule.check(artifact))
    return LintReport(tuple(diagnostics), rule_index(rules))


def lint_kiss_source(text: str, name: str = "") -> LintReport:
    """Lint a KISS2 document given as text.

    Parse failures become an ``FSM000`` diagnostic instead of an exception,
    so the CLI can lint arbitrary files without crashing.
    """
    try:
        machine = parse_kiss(text, name=name)
    except ReproError as exc:
        rules = rules_for("fsm")
        diagnostic = Diagnostic(
            "FSM000",
            Severity.ERROR,
            f"KISS2 parse failed: {exc}",
            artifact=name,
        )
        return LintReport((diagnostic,), rule_index(rules))
    return analyze_machine(machine, name=name)

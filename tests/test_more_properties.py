"""Additional property-based tests: export, schedule, non-scan, delay."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import export
from repro.core.baseline import per_transition_tests
from repro.core.generator import generate_tests
from repro.core.schedule import TestSchedule
from repro.fuzz.strategies import state_tables
from repro.nonscan.generator import generate_nonscan_sequence
from repro.nonscan.synchronizing import (
    find_homing_sequence,
    find_synchronizing_sequence,
)

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestExportProperties:
    @SETTINGS
    @given(state_tables())
    def test_json_roundtrip_lossless(self, table):
        original = generate_tests(table).test_set
        again = export.test_set_from_json(export.test_set_to_json(original))
        assert again.tests == original.tests
        assert again.n_transitions == original.n_transitions

    @SETTINGS
    @given(state_tables())
    def test_vectors_agree_with_machine(self, table):
        tests = generate_tests(table).test_set
        text = export.test_set_to_vectors(tests, table)
        assert text.count("scan-in") == tests.n_tests


class TestScheduleProperties:
    @SETTINGS
    @given(state_tables(), st.integers(1, 4))
    def test_total_cycles_equal_formula(self, table, ratio):
        tests = generate_tests(table).test_set
        schedule = TestSchedule.from_test_set(tests, ratio)
        assert schedule.total_cycles == tests.clock_cycles(ratio)

    @SETTINGS
    @given(state_tables())
    def test_events_contiguous_and_ordered(self, table):
        tests = generate_tests(table).test_set
        schedule = TestSchedule.from_test_set(tests)
        clock = 0
        for event in schedule:
            assert event.start == clock
            clock = event.end

    @SETTINGS
    @given(state_tables())
    def test_baseline_schedule_scan_dominated(self, table):
        baseline = per_transition_tests(table)
        schedule = TestSchedule.from_test_set(baseline)
        assert schedule.functional_cycles == baseline.n_tests
        assert schedule.n_scan_operations == baseline.n_tests + 1


class TestNonScanProperties:
    @SETTINGS
    @given(state_tables())
    def test_partition_of_transitions(self, table):
        result = generate_nonscan_sequence(table)
        total = (
            len(result.verified)
            + len(result.exercised_only)
            + len(result.unreachable)
        )
        assert total == table.n_transitions
        assert not result.verified & result.exercised_only
        assert not result.verified & result.unreachable

    @SETTINGS
    @given(state_tables())
    def test_sequence_is_applicable(self, table):
        result = generate_nonscan_sequence(table)
        table.run(result.start_state, result.sequence)  # must not raise

    @SETTINGS
    @given(state_tables())
    def test_verified_transitions_really_have_uios(self, table):
        result = generate_nonscan_sequence(table)
        for state, combo in result.verified:
            next_state = int(table.next_state[state, combo])
            assert result.uio_table.has(next_state)

    @SETTINGS
    @given(state_tables(max_states=5))
    def test_synchronizing_sequence_synchronizes(self, table):
        sequence = find_synchronizing_sequence(table)
        if sequence is not None:
            finals = {
                table.final_state(state, sequence)
                for state in range(table.n_states)
            }
            assert len(finals) == 1

    @SETTINGS
    @given(state_tables(max_states=5))
    def test_homing_sequence_homes(self, table):
        sequence = find_homing_sequence(table)
        if sequence is None:
            return
        by_output: dict[tuple[int, ...], set[int]] = {}
        for state in range(table.n_states):
            final, outputs = table.run(state, sequence)
            by_output.setdefault(outputs, set()).add(final)
        assert all(len(finals) == 1 for finals in by_output.values())

"""Differential fuzzing and cross-implementation oracles.

The subsystem has five pieces (see ``docs/fuzzing.md``):

* :mod:`repro.fuzz.generators` — seeded random machines and fault universes;
* :mod:`repro.fuzz.oracles` — the registry of differential checks;
* :mod:`repro.fuzz.shrink` — greedy delta-debugging of failing machines;
* :mod:`repro.fuzz.corpus` — KISS-file persistence and replay of failures;
* :mod:`repro.fuzz.runner` — the campaign driver behind ``repro-fsatpg fuzz``.

:mod:`repro.fuzz.strategies` (Hypothesis strategies over the same
generators) is intentionally not re-exported here: it imports a test-only
library and is reached directly by the test suite.
"""

from __future__ import annotations

from repro.fuzz.corpus import CorpusEntry, load_corpus, save_failure
from repro.fuzz.generators import (
    MACHINE_VARIANTS,
    MachineSpec,
    generate_machine,
    random_gate_faults,
    spec_stream,
)
from repro.fuzz.oracles import (
    FuzzCase,
    Oracle,
    OracleFailure,
    OracleSkip,
    get_oracle,
    oracle_names,
    resolve_oracles,
)
from repro.fuzz.runner import (
    FuzzConfig,
    FuzzFailure,
    FuzzReport,
    OracleTimeout,
    run_fuzz,
)
from repro.fuzz.shrink import ShrinkResult, shrink_machine

__all__ = [
    "CorpusEntry",
    "FuzzCase",
    "FuzzConfig",
    "FuzzFailure",
    "FuzzReport",
    "MACHINE_VARIANTS",
    "MachineSpec",
    "Oracle",
    "OracleFailure",
    "OracleSkip",
    "OracleTimeout",
    "ShrinkResult",
    "generate_machine",
    "get_oracle",
    "load_corpus",
    "oracle_names",
    "random_gate_faults",
    "resolve_oracles",
    "run_fuzz",
    "save_failure",
    "shrink_machine",
    "spec_stream",
]

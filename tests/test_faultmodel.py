"""Unit tests for explicit state-transition fault simulation."""

from __future__ import annotations

import pytest

from repro.core.faultmodel import (
    StateTransitionFault,
    apply_fault,
    enumerate_transition_faults,
    sample_faults,
    simulate_functional_faults,
)
from repro.core.generator import generate_tests
from repro.errors import FaultSimulationError


class TestApplyFault:
    def test_single_entry_rewritten(self, lion):
        fault = StateTransitionFault(0, 0b00, 3, 1)
        faulty = apply_fault(lion, fault)
        assert faulty.step(0, 0b00) == (3, 1)
        # every other entry untouched
        for state in range(4):
            for combo in range(4):
                if (state, combo) != (0, 0b00):
                    assert faulty.step(state, combo) == lion.step(state, combo)

    def test_original_untouched(self, lion):
        apply_fault(lion, StateTransitionFault(0, 0, 3, 1))
        assert lion.step(0, 0) == (0, 0)

    def test_invalid_next_state_rejected(self, lion):
        with pytest.raises(FaultSimulationError):
            apply_fault(lion, StateTransitionFault(0, 0, 9, 0))

    def test_invalid_output_rejected(self, lion):
        with pytest.raises(FaultSimulationError):
            apply_fault(lion, StateTransitionFault(0, 0, 0, 4))


class TestEnumerateAndSample:
    def test_enumeration_count(self, lion):
        faults = list(enumerate_transition_faults(lion, 0, 0))
        # N_ST * 2**N_PO - 1 = 4*2 - 1
        assert len(faults) == 7

    def test_enumeration_excludes_noop(self, lion):
        for fault in enumerate_transition_faults(lion, 1, 2):
            assert not fault.is_noop_for(lion)

    def test_sampling_reproducible(self, lion):
        assert sample_faults(lion, 10, seed=1) == sample_faults(lion, 10, seed=1)

    def test_sampling_no_noops_or_duplicates(self, lion):
        faults = sample_faults(lion, 25, seed=2)
        assert len(set(faults)) == len(faults)
        assert all(not fault.is_noop_for(lion) for fault in faults)

    def test_negative_sample_count_rejected(self, lion):
        with pytest.raises(FaultSimulationError):
            sample_faults(lion, -1)


class TestSimulation:
    def test_next_state_fault_on_scan_out_verified_transition(self, lion, lion_result):
        # τ8 = (3, (11), 3): corrupting 3 --11--> 3 must be caught by scan-out.
        fault = StateTransitionFault(3, 0b11, 0, 1)
        result = simulate_functional_faults(lion, lion_result.test_set, [fault])
        assert fault in result.detected

    def test_output_fault_detected_at_po(self, lion, lion_result):
        fault = StateTransitionFault(0, 0b00, 0, 1)  # wrong output only
        result = simulate_functional_faults(lion, lion_result.test_set, [fault])
        assert fault in result.detected

    def test_full_enumeration_on_lion_has_high_coverage(self, lion, lion_result):
        """The paper's caveat: coverage of explicit ST faults can dip below
        100% when a fault corrupts the UIO responses a test relies on, but
        this should be rare.  On lion it does not happen at all."""
        faults = [
            fault
            for state in range(4)
            for combo in range(4)
            for fault in enumerate_transition_faults(lion, state, combo)
        ]
        result = simulate_functional_faults(lion, lion_result.test_set, faults)
        assert result.n_faults == 16 * 7
        assert result.coverage_pct == 100.0

    def test_noop_fault_rejected(self, lion, lion_result):
        with pytest.raises(FaultSimulationError):
            simulate_functional_faults(
                lion, lion_result.test_set, [StateTransitionFault(0, 0, 0, 0)]
            )

    def test_sampled_faults_on_synthetic_circuit(self):
        from repro.benchmarks import load_circuit

        table = load_circuit("dk512")
        tests = generate_tests(table).test_set
        faults = sample_faults(table, 60, seed="dk512")
        result = simulate_functional_faults(table, tests, faults)
        assert result.coverage_pct >= 95.0

"""Unit tests for the gate-level netlist and word-parallel evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import NetlistError
from repro.gatelevel.netlist import (
    ALL_ONES,
    GateType,
    Netlist,
    exhaustive_pattern_words,
    pack_bits,
    unpack_bits,
)


def xor_netlist():
    """y = a XOR b built from AND/OR/NOT."""
    netlist = Netlist("xor")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    na = netlist.add_gate(GateType.NOT, (a,))
    nb = netlist.add_gate(GateType.NOT, (b,))
    t1 = netlist.add_gate(GateType.AND, (a, nb))
    t2 = netlist.add_gate(GateType.AND, (na, b))
    y = netlist.add_gate(GateType.OR, (t1, t2))
    netlist.set_outputs([y])
    return netlist


class TestConstruction:
    def test_gate_count(self):
        assert xor_netlist().n_gates == 7

    def test_forward_reference_rejected(self):
        netlist = Netlist()
        netlist.add_input()
        with pytest.raises(NetlistError, match="topological"):
            netlist.add_gate(GateType.NOT, (5,))

    def test_input_via_add_gate_rejected(self):
        with pytest.raises(NetlistError):
            Netlist().add_gate(GateType.INPUT, ())

    def test_fanin_arity_enforced(self):
        netlist = Netlist()
        a = netlist.add_input()
        with pytest.raises(NetlistError):
            netlist.add_gate(GateType.AND, (a,))
        with pytest.raises(NetlistError):
            netlist.add_gate(GateType.NOT, (a, a))

    def test_unknown_output_rejected(self):
        with pytest.raises(NetlistError):
            xor_netlist().set_outputs([99])

    def test_check_requires_outputs(self):
        netlist = Netlist()
        netlist.add_input()
        with pytest.raises(NetlistError, match="outputs"):
            netlist.check()


class TestEvaluation:
    @pytest.mark.parametrize("a,b,expected", [(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 0)])
    def test_xor_truth_table(self, a, b, expected):
        assert xor_netlist().evaluate_bits([a, b]) == (expected,)

    def test_all_gate_types(self):
        netlist = Netlist()
        a = netlist.add_input()
        b = netlist.add_input()
        gates = {
            "and": netlist.add_gate(GateType.AND, (a, b)),
            "or": netlist.add_gate(GateType.OR, (a, b)),
            "nand": netlist.add_gate(GateType.NAND, (a, b)),
            "nor": netlist.add_gate(GateType.NOR, (a, b)),
            "xor": netlist.add_gate(GateType.XOR, (a, b)),
            "xnor": netlist.add_gate(GateType.XNOR, (a, b)),
            "not": netlist.add_gate(GateType.NOT, (a,)),
            "buf": netlist.add_gate(GateType.BUF, (a,)),
            "c0": netlist.add_gate(GateType.CONST0, ()),
            "c1": netlist.add_gate(GateType.CONST1, ()),
        }
        netlist.set_outputs(list(gates.values()))
        truth = {
            (0, 0): (0, 0, 1, 1, 0, 1, 1, 0, 0, 1),
            (0, 1): (0, 1, 1, 0, 1, 0, 1, 0, 0, 1),
            (1, 0): (0, 1, 1, 0, 1, 0, 0, 1, 0, 1),
            (1, 1): (1, 1, 0, 0, 0, 1, 0, 1, 0, 1),
        }
        for (a_bit, b_bit), expected in truth.items():
            assert netlist.evaluate_bits([a_bit, b_bit]) == expected

    def test_wide_gates(self):
        netlist = Netlist()
        ins = [netlist.add_input() for _ in range(5)]
        wide_and = netlist.add_gate(GateType.AND, ins)
        wide_or = netlist.add_gate(GateType.OR, ins)
        netlist.set_outputs([wide_and, wide_or])
        assert netlist.evaluate_bits([1] * 5) == (1, 1)
        assert netlist.evaluate_bits([1, 1, 0, 1, 1]) == (0, 1)
        assert netlist.evaluate_bits([0] * 5) == (0, 0)

    def test_word_parallel_matches_scalar(self):
        netlist = xor_netlist()
        words = exhaustive_pattern_words(2)
        values = netlist.evaluate(words)
        out = unpack_bits(values[netlist.outputs[0]], 4)
        expected = [netlist.evaluate_bits([p >> 1, p & 1])[0] for p in range(4)]
        assert list(out.astype(int)) == expected

    def test_input_count_mismatch(self):
        with pytest.raises(NetlistError):
            xor_netlist().evaluate([np.zeros(1, dtype=np.uint64)])

    def test_width_mismatch(self):
        with pytest.raises(NetlistError):
            xor_netlist().evaluate(
                [np.zeros(1, dtype=np.uint64), np.zeros(2, dtype=np.uint64)]
            )


class TestStructureQueries:
    def test_fanouts(self):
        netlist = xor_netlist()
        fanouts = netlist.fanouts()
        assert fanouts[0] == [2, 4]  # input a feeds NOT and AND

    def test_fanout_closure_topological(self):
        netlist = xor_netlist()
        closure = netlist.fanout_closure([0])
        assert closure == sorted(closure)
        assert 6 in closure  # the OR output depends on input a

    def test_reaches(self):
        netlist = xor_netlist()
        assert netlist.reaches(0, 6)
        assert not netlist.reaches(6, 0)
        assert netlist.reaches(3, 3)

    def test_reachability_matrix_agrees_with_reaches(self):
        netlist = xor_netlist()
        matrix = netlist.reachability_matrix()
        for src in range(netlist.n_gates):
            for dst in range(netlist.n_gates):
                bit = bool(
                    (matrix[src, dst // 64] >> np.uint64(dst % 64)) & np.uint64(1)
                )
                assert bit == netlist.reaches(src, dst)


class TestPackUnpack:
    def test_roundtrip(self):
        rng = np.random.default_rng(7)
        bits = rng.integers(0, 2, size=157).astype(bool)
        assert np.array_equal(unpack_bits(pack_bits(bits), 157), bits)

    def test_exhaustive_patterns_msb_first(self):
        words = exhaustive_pattern_words(3)
        # input 0 is the MSB of the pattern index
        first = unpack_bits(words[0], 8).astype(int)
        assert list(first) == [0, 0, 0, 0, 1, 1, 1, 1]
        last = unpack_bits(words[2], 8).astype(int)
        assert list(last) == [0, 1, 0, 1, 0, 1, 0, 1]

    def test_all_ones_constant(self):
        assert int(ALL_ONES) == 2**64 - 1

"""Table 7 benchmark: clock cycles for test application.

Times the end-to-end cycle accounting (baseline vs functional vs effective
subsets) per circuit and asserts the paper's shape: the functional tests do
not meaningfully exceed the baseline, and the effective subsets cost a small
fraction of it.
"""

from __future__ import annotations

import pytest

from conftest import gate_level_circuits
from repro.core.testset import baseline_clock_cycles
from repro.harness.experiments import StudyOptions, CircuitStudy

OPTIONS = StudyOptions(bridging_pair_limit=200)


def cycle_row(name: str):
    # A fresh study each round: this benchmark times the whole pipeline.
    study = CircuitStudy(name, OPTIONS)
    base = study.baseline_cycles
    funct = study.generation.clock_cycles()
    sa = study.stuck_at_selection.effective.clock_cycles()
    bridge = study.bridging_selection.effective.clock_cycles()
    return base, funct, sa, bridge


@pytest.mark.parametrize("name", gate_level_circuits())
def test_clock_cycles(benchmark, name):
    base, funct, sa, bridge = benchmark.pedantic(
        cycle_row, args=(name,), rounds=1, iterations=1
    )
    assert base == baseline_clock_cycles(
        CircuitStudy(name, OPTIONS).table.n_state_variables,
        CircuitStudy(name, OPTIONS).table.n_transitions,
    )
    # Paper shape: chained tests at most a whisker over the baseline
    # (their worst case is 102.99%), effective subsets far below it.
    assert funct <= 1.10 * base
    assert sa <= funct
    assert bridge <= funct

"""Cross-implementation oracle registry for the differential fuzzer.

An *oracle* checks one equivalence between two independently implemented
procedures — the shape of the paper's own central claim (chained functional
tests detect everything the per-transition baseline detects).  Each oracle
receives a :class:`FuzzCase` and returns normally when the implementations
agree, raises :class:`OracleFailure` with a human-readable detail when they
diverge, and raises :class:`OracleSkip` when the case is outside its domain
(for example gate-level oracles cap the machine size they synthesize).

Any *other* exception escaping an oracle is treated as a failure by the
runner — a crash in ``generate_tests`` on a random machine is exactly the
kind of bug the fuzzer exists to find.

Registered oracles
------------------
``uio-verify``          UIO search results re-proved against the state table
``coverage-chaining``   chained tests cover ⊇ the per-transition baseline
``kiss-roundtrip``      table → KISS2 text → table is the identity
``sim-equivalence``     interpreted vs compiled fault-simulator detect masks
``sim-ppsfp-vs-bigint`` PPSFP table engine vs compiled big-int detect masks
``scan-vs-nonscan``     scan-test detection re-derived via the non-scan path
``synthesis-replay``    gate-level scan circuit replays equal table replays
``cache-replay``        warm artifact-cache replays bit-identical to cold runs
``atpg-vs-faultsim``    structural ATPG verdicts match exhaustive detectability
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.core.baseline import per_transition_tests
from repro.core.coverage import verify_test_set
from repro.core.faultmodel import (
    StateTransitionFault,
    apply_fault,
    sample_faults,
    simulate_functional_faults,
)
from repro.core.generator import GenerationResult, generate_tests
from repro.errors import FuzzError, StateTableError
from repro.fsm.kiss import parse_kiss, table_to_kiss, write_kiss
from repro.fsm.state_table import StateTable
from repro.fuzz.generators import Fault, MachineSpec, random_gate_faults
from repro.gatelevel.compiled import CompiledFaultSimulator
from repro.gatelevel.fault_sim import detects as interpreted_detects
from repro.gatelevel.ppsfp import PpsfpSimulator
from repro.gatelevel.scan import ScanCircuit
from repro.gatelevel.synthesis import SynthesisOptions
from repro.nonscan.simulate import sequence_detects
from repro.perf.artifacts import cached_atpg, cached_uio_table, state_table_parts
from repro.perf.cache import ReplayVerifier, cache_enabled, cache_probe, stable_hash
from repro.uio.search import DEFAULT_NODE_BUDGET, compute_uio_table

__all__ = [
    "FuzzCase",
    "Oracle",
    "OracleFailure",
    "OracleSkip",
    "get_oracle",
    "oracle_names",
    "resolve_oracles",
]

#: Size caps for oracles that synthesize a netlist; beyond these the
#: exhaustive ``verify_against`` sweep / compilation stop being cheap.
_GATE_MAX_STATES = 8
_GATE_MAX_INPUTS = 2
_GATE_MAX_OUTPUTS = 3
#: At most this many generated tests are fault-simulated per case.
_GATE_MAX_TESTS = 6


class OracleFailure(Exception):
    """Two implementations disagreed; the message says how."""


class OracleSkip(Exception):
    """The case is outside this oracle's domain; the message says why."""


class FuzzCase:
    """One machine under test plus memoized derived artifacts.

    Oracles share expensive intermediates (generated tests, the synthesized
    scan circuit, the gate-level fault universe) through this object so that
    running every registered oracle on a case costs little more than the
    most expensive one.  Derived randomness (fault samples) is seeded from
    the *table contents*, not the case name, so a machine fails identically
    whether it arrives from the generator, the corpus, or the shrinker.
    """

    def __init__(
        self,
        name: str,
        table: StateTable,
        origin: str = "generated",
        spec: MachineSpec | None = None,
    ) -> None:
        self.name = name
        self.table = table
        self.origin = origin
        self.spec = spec
        self._memo: dict[str, Any] = {}

    @property
    def content_seed(self) -> str:
        """Seed string derived from the table contents (name-independent)."""
        if "content_seed" not in self._memo:
            self._memo["content_seed"] = stable_hash(state_table_parts(self.table))[
                :16
            ]
        return str(self._memo["content_seed"])

    def generation(self) -> GenerationResult:
        """``generate_tests`` on the table, memoized.

        Failures (including watchdog timeouts) are memoized too: several
        oracles need the generated tests, and when the generator hangs on
        this machine each of them would otherwise pay the full timeout.
        """
        if "generation" not in self._memo:
            try:
                self._memo["generation"] = generate_tests(self.table)
            except Exception as exc:
                self._memo["generation"] = exc
                raise
        result = self._memo["generation"]
        if isinstance(result, Exception):
            raise result
        assert isinstance(result, GenerationResult)
        return result

    def scan_circuit(self) -> ScanCircuit:
        """Synthesized (not yet verified) scan circuit, memoized."""
        if "circuit" not in self._memo:
            self._memo["circuit"] = ScanCircuit.from_machine(
                self.table, SynthesisOptions(max_fanin=4)
            )
        circuit: ScanCircuit = self._memo["circuit"]
        return circuit

    def gate_faults(self) -> list[Fault]:
        """Deterministic stuck-at + bridging universe, memoized."""
        if "faults" not in self._memo:
            self._memo["faults"] = random_gate_faults(
                self.scan_circuit(), self.content_seed
            )
        faults: list[Fault] = self._memo["faults"]
        return faults

    def __repr__(self) -> str:
        return f"<FuzzCase {self.name!r} ({self.origin})>"


@dataclass(frozen=True)
class Oracle:
    """A named differential check over one :class:`FuzzCase`."""

    name: str
    description: str
    run: Callable[[FuzzCase], None]


_REGISTRY: dict[str, Oracle] = {}


def _oracle(name: str, description: str) -> Callable[
    [Callable[[FuzzCase], None]], Callable[[FuzzCase], None]
]:
    def register(fn: Callable[[FuzzCase], None]) -> Callable[[FuzzCase], None]:
        _REGISTRY[name] = Oracle(name, description, fn)
        return fn

    return register


def oracle_names() -> tuple[str, ...]:
    """Every registered oracle name, sorted."""
    return tuple(sorted(_REGISTRY))


def get_oracle(name: str) -> Oracle:
    """The oracle called ``name``; raises :class:`FuzzError` when unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise FuzzError(
            f"unknown oracle {name!r}; known: {', '.join(oracle_names())}"
        ) from None


def resolve_oracles(names: Sequence[str] | None) -> tuple[Oracle, ...]:
    """Oracles for ``names`` (every registered oracle when empty/None)."""
    if not names:
        return tuple(_REGISTRY[name] for name in oracle_names())
    return tuple(get_oracle(name) for name in names)


def _require(condition: bool, reason: str) -> None:
    if not condition:
        raise OracleSkip(reason)


def _gate_level_case(case: FuzzCase) -> None:
    table = case.table
    _require(
        table.n_states <= _GATE_MAX_STATES
        and table.n_inputs >= 1
        and table.n_inputs <= _GATE_MAX_INPUTS
        and table.n_outputs >= 1
        and table.n_outputs <= _GATE_MAX_OUTPUTS,
        "gate-level oracles run on machines with <= "
        f"{_GATE_MAX_STATES} states, 1..{_GATE_MAX_INPUTS} inputs, "
        f"1..{_GATE_MAX_OUTPUTS} outputs",
    )


# ----------------------------------------------------------------- oracles


@_oracle("uio-verify", "UIO search results re-proved against the state table")
def _uio_verify(case: FuzzCase) -> None:
    table = case.table
    uio = compute_uio_table(table, table.n_state_variables + 1)
    try:
        uio.verify(table)  # independent re-proof of every stored sequence
    except StateTableError as exc:
        raise OracleFailure(str(exc)) from None
    shorter = compute_uio_table(table, 1)
    lost = [state for state in shorter.sequences if not uio.has(state)]
    if lost:
        raise OracleFailure(
            f"states {lost} have a length-1 UIO but none under the longer bound"
        )


@_oracle(
    "coverage-chaining",
    "chained tests cover every transition the baseline covers, credited once",
)
def _coverage_chaining(case: FuzzCase) -> None:
    table = case.table
    result = case.generation()
    seen: set[tuple[int, int]] = set()
    for test in result.test_set:
        for key in test.tested:
            if key in seen:
                raise OracleFailure(f"transition {key} credited more than once")
            seen.add(key)
    report = verify_test_set(table, result.test_set)
    baseline = verify_test_set(table, per_transition_tests(table))
    missing = baseline.verified - report.verified
    if missing:
        raise OracleFailure(
            f"{len(missing)} transitions verified by the baseline but not by "
            f"the chained tests, e.g. {sorted(missing)[:3]}"
        )
    if not report.is_complete:
        raise OracleFailure(
            f"strict checker verified only {len(report.verified)}/"
            f"{report.n_transitions} transitions"
        )


@_oracle("kiss-roundtrip", "table -> KISS2 text -> table is the identity")
def _kiss_roundtrip(case: FuzzCase) -> None:
    table = case.table
    _require(
        table.n_inputs >= 1 and table.n_outputs >= 1,
        "KISS2 rows cannot express zero-width input/output cubes",
    )
    text = write_kiss(table_to_kiss(table))
    again = parse_kiss(text, name=table.name).to_state_table()
    if again != table:
        raise OracleFailure(
            "round-tripped table differs from the original "
            f"(states {again.n_states} vs {table.n_states})"
        )


@_oracle(
    "sim-equivalence",
    "interpreted vs compiled fault-simulator detect masks agree per test",
)
def _sim_equivalence(case: FuzzCase) -> None:
    _gate_level_case(case)
    table = case.table
    circuit = case.scan_circuit()
    faults = case.gate_faults()
    _require(bool(faults), "empty gate-level fault universe")
    simulator = CompiledFaultSimulator(circuit, table, faults)
    for test in list(case.generation().test_set)[:_GATE_MAX_TESTS]:
        compiled = simulator.detects(test)
        interpreted = frozenset(interpreted_detects(circuit, table, test, faults))
        if compiled != interpreted:
            only_compiled = sorted(
                fault.site() for fault in compiled - interpreted
            )
            only_interpreted = sorted(
                fault.site() for fault in interpreted - compiled
            )
            raise OracleFailure(
                f"test {test} masks diverge: compiled-only={only_compiled} "
                f"interpreted-only={only_interpreted}"
            )


@_oracle(
    "sim-ppsfp-vs-bigint",
    "PPSFP behavioral-table engine produces bit-identical masks to big-int",
)
def _sim_ppsfp_vs_bigint(case: FuzzCase) -> None:
    _gate_level_case(case)
    table = case.table
    circuit = case.scan_circuit()
    faults = case.gate_faults()
    _require(bool(faults), "empty gate-level fault universe")
    ppsfp = PpsfpSimulator(circuit, table, faults)
    bigint = CompiledFaultSimulator(circuit, table, faults)
    tests = list(case.generation().test_set)[:_GATE_MAX_TESTS]
    batched = ppsfp.detect_masks(tests)
    for position, test in enumerate(tests):
        left = ppsfp.detect_mask(test)
        right = bigint.detect_mask(test)
        if left != right:
            delta = left ^ right
            sites = [
                faults[bit].site()
                for bit in range(len(faults))
                if delta >> bit & 1
            ]
            raise OracleFailure(
                f"test {test} masks diverge on {sites[:4]} "
                f"(ppsfp={left:#x} bigint={right:#x})"
            )
        if batched[position] != left:
            raise OracleFailure(
                f"test {test}: batched PPSFP mask {batched[position]:#x} "
                f"differs from the per-test mask {left:#x}"
            )


@_oracle(
    "scan-vs-nonscan",
    "scan-test fault detection re-derived through the non-scan simulator",
)
def _scan_vs_nonscan(case: FuzzCase) -> None:
    table = case.table
    faults = sample_faults(table, 12, seed=case.content_seed)
    _require(bool(faults), "no non-trivial state-transition faults exist")
    tests = case.generation().test_set
    scan_detected = simulate_functional_faults(table, tests, faults).detected
    independent: set[StateTransitionFault] = set()
    for fault in faults:
        faulty = apply_fault(table, fault)
        for test in tests:
            outputs_differ = sequence_detects(
                table, faulty, test.inputs, (test.initial_state,)
            )
            finals_differ = table.final_state(
                test.initial_state, test.inputs
            ) != faulty.final_state(test.initial_state, test.inputs)
            if outputs_differ or finals_differ:
                independent.add(fault)
                break
    if scan_detected != frozenset(independent):
        difference = scan_detected.symmetric_difference(independent)
        raise OracleFailure(
            f"{len(difference)} faults classified differently, "
            f"e.g. {sorted(difference, key=repr)[:2]}"
        )


@_oracle(
    "synthesis-replay",
    "gate-level scan circuit agrees with the state table on every test trace",
)
def _synthesis_replay(case: FuzzCase) -> None:
    _gate_level_case(case)
    table = case.table
    circuit = case.scan_circuit()
    circuit.verify_against(table)  # raises SynthesisError on any mismatch
    for test in list(case.generation().test_set)[:_GATE_MAX_TESTS]:
        gate = circuit.run_test(test)
        functional = test.replay(table)
        if gate != functional:
            raise OracleFailure(
                f"test {test}: netlist replay {gate} != table replay {functional}"
            )


@_oracle(
    "atpg-vs-faultsim",
    "structural ATPG finds a test iff exhaustive detectability agrees",
)
def _atpg_vs_faultsim(case: FuzzCase) -> None:
    from repro.atpg import STATUS_ABORTED, generate_structural_tests
    from repro.gatelevel.detectability import (
        assigned_pattern_mask,
        detectable_faults,
    )
    from repro.gatelevel.stuck_at import collapse_stuck_at

    _gate_level_case(case)
    table = case.table
    circuit = case.scan_circuit()
    netlist = circuit.netlist
    representatives = sorted(set(collapse_stuck_at(netlist).values()))
    _require(bool(representatives), "empty collapsed stuck-at universe")
    # The ground truth must judge only patterns a scan test can establish
    # (assigned state codes), exactly the constraint the search honours.
    mask = assigned_pattern_mask(circuit.encoding, circuit.n_primary_inputs)
    detectable, undetectable = detectable_faults(
        netlist, representatives, pattern_mask=mask
    )
    for algorithm in ("podem", "d"):
        run = generate_structural_tests(
            circuit, table, representatives, algorithm=algorithm, replay=True
        )
        for verdict in run.verdicts:
            if verdict.status == STATUS_ABORTED:
                raise OracleFailure(
                    f"{algorithm} aborted on {verdict.fault.site()} under "
                    "the default budget; complete searches must terminate"
                )
        found = {verdict.fault for verdict in run.tests}
        untestable = {verdict.fault for verdict in run.untestable}
        if found != detectable or untestable != undetectable:
            false_negative = sorted(
                fault.site() for fault in detectable - found
            )
            false_positive = sorted(
                fault.site() for fault in found - detectable
            )
            raise OracleFailure(
                f"{algorithm} disagrees with exhaustive detectability: "
                f"missed={false_negative[:4]} phantom={false_positive[:4]}"
            )


@_oracle(
    "cache-replay",
    "warm artifact-cache replays are identical to the cold computation",
)
def _cache_replay(case: FuzzCase) -> None:
    table = case.table
    bound = table.n_state_variables
    cold = compute_uio_table(table, bound, DEFAULT_NODE_BUDGET)
    verifier = ReplayVerifier()
    with tempfile.TemporaryDirectory(prefix="repro-fuzz-cache-") as root:
        with cache_enabled(root) as cache, cache_probe(verifier):
            first, _ = cached_uio_table(table, bound, DEFAULT_NODE_BUDGET)
            second, _ = cached_uio_table(table, bound, DEFAULT_NODE_BUDGET)
            gate_ok = True
            try:
                _gate_level_case(case)
            except OracleSkip:
                gate_ok = False
            if gate_ok and case.gate_faults():
                # Compiling twice exercises the simulator-source cache path.
                CompiledFaultSimulator(case.scan_circuit(), table, case.gate_faults())
                CompiledFaultSimulator(case.scan_circuit(), table, case.gate_faults())
            if gate_ok:
                # Running ATPG twice exercises the atpg cache path: the
                # second call must replay the stored verdicts verbatim
                # (the probe compares them against the cold run).
                first_run = cached_atpg(case.scan_circuit(), table)
                second_run = cached_atpg(case.scan_circuit(), table)
                if first_run != second_run:
                    raise OracleFailure(
                        "warm ATPG run differs from the cold computation"
                    )
            if cache.hits < 1:
                raise OracleFailure("no cache hit on immediate replay")
    if not (cold == first == second):
        raise OracleFailure("warm UIO table differs from the cold computation")
    if verifier.mismatches:
        raise OracleFailure("; ".join(verifier.mismatches))

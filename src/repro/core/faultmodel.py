"""Explicit single state-transition faults and their functional simulation.

Under the paper's fault model, a single state-transition may produce a
faulty next state and/or a faulty output combination.  The test generation
procedure never needs the faulty values (any deviation is caught), but the
paper also notes a caveat: a fault can corrupt the *UIO sequences* a test
relies on, so covering every transition does not formally guarantee
detecting every state-transition fault — "this is expected to affect the
coverage of single state-transition faults only rarely".  This module makes
that claim measurable: it enumerates (or samples) explicit faulty machines
and simulates the generated tests against them.

A scan test detects a fault when the faulty machine's primary output
sequence differs from the fault-free one at any step, or its final state
(scanned out and compared) differs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.testset import TestSet
from repro.errors import FaultSimulationError
from repro.fsm.state_table import StateTable

__all__ = [
    "StateTransitionFault",
    "apply_fault",
    "enumerate_transition_faults",
    "sample_faults",
    "simulate_functional_faults",
    "FunctionalFaultResult",
]


@dataclass(frozen=True)
class StateTransitionFault:
    """One transition's entry replaced by ``(faulty_next, faulty_output)``."""

    state: int
    input: int
    faulty_next: int
    faulty_output: int

    def is_noop_for(self, table: StateTable) -> bool:
        """True when the "fault" equals the fault-free entry."""
        nxt, out = table.step(self.state, self.input)
        return nxt == self.faulty_next and out == self.faulty_output


def apply_fault(table: StateTable, fault: StateTransitionFault) -> StateTable:
    """The faulty machine: ``table`` with one table entry rewritten."""
    if not 0 <= fault.faulty_next < table.n_states:
        raise FaultSimulationError(f"faulty next state {fault.faulty_next} invalid")
    if not 0 <= fault.faulty_output < (1 << max(table.n_outputs, 1)):
        raise FaultSimulationError(f"faulty output {fault.faulty_output} invalid")
    next_state = np.array(table.next_state, copy=True)
    output = np.array(table.output, copy=True)
    next_state[fault.state, fault.input] = fault.faulty_next
    output[fault.state, fault.input] = fault.faulty_output
    return StateTable(
        next_state,
        output,
        table.n_inputs,
        table.n_outputs,
        table.state_names,
        f"{table.name}+fault",
    )


def enumerate_transition_faults(
    table: StateTable, state: int, combo: int
) -> Iterator[StateTransitionFault]:
    """All non-trivial faults of one transition.

    There are ``N_ST * 2**N_PO - 1`` of them per transition (every wrong
    combination of next state and output).
    """
    good_next, good_out = table.step(state, combo)
    for faulty_next in range(table.n_states):
        for faulty_out in range(1 << table.n_outputs):
            if faulty_next == good_next and faulty_out == good_out:
                continue
            yield StateTransitionFault(state, combo, faulty_next, faulty_out)


def sample_faults(
    table: StateTable,
    n_samples: int,
    seed: int | str = 0,
) -> list[StateTransitionFault]:
    """A reproducible random sample of non-trivial state-transition faults."""
    if n_samples < 0:
        raise FaultSimulationError("n_samples must be non-negative")
    rng = random.Random(f"repro-st-faults:{seed}")
    faults: list[StateTransitionFault] = []
    seen: set[StateTransitionFault] = set()
    attempts = 0
    limit = 50 * max(1, n_samples)
    while len(faults) < n_samples and attempts < limit:
        attempts += 1
        state = rng.randrange(table.n_states)
        combo = rng.randrange(table.n_input_combinations)
        faulty_next = rng.randrange(table.n_states)
        faulty_out = rng.randrange(1 << table.n_outputs) if table.n_outputs else 0
        fault = StateTransitionFault(state, combo, faulty_next, faulty_out)
        if fault.is_noop_for(table) or fault in seen:
            continue
        seen.add(fault)
        faults.append(fault)
    return faults


@dataclass
class FunctionalFaultResult:
    """Detection outcome of simulating explicit state-transition faults."""

    detected: frozenset[StateTransitionFault]
    undetected: frozenset[StateTransitionFault]

    @property
    def n_faults(self) -> int:
        return len(self.detected) + len(self.undetected)

    @property
    def coverage_pct(self) -> float:
        if self.n_faults == 0:
            return 100.0
        return 100.0 * len(self.detected) / self.n_faults


def _test_detects(
    table: StateTable,
    faulty: StateTable,
    initial_state: int,
    inputs: Sequence[int],
) -> bool:
    good_state = initial_state
    bad_state = initial_state  # scan-in forces the state in both machines
    for combo in inputs:
        good_next, good_out = table.step(good_state, combo)
        bad_next, bad_out = faulty.step(bad_state, combo)
        if good_out != bad_out:
            return True  # observed at the primary outputs
        good_state, bad_state = good_next, bad_next
    return good_state != bad_state  # observed by the scan-out comparison


def simulate_functional_faults(
    table: StateTable,
    test_set: TestSet,
    faults: Iterable[StateTransitionFault],
) -> FunctionalFaultResult:
    """Which of ``faults`` does ``test_set`` detect?

    Straightforward serial simulation with fault dropping; intended for
    validation studies and the functional-fault example, not for the
    gate-level tables (those use the bit-parallel simulator in
    :mod:`repro.gatelevel.fault_sim`).
    """
    remaining = list(dict.fromkeys(faults))
    detected: set[StateTransitionFault] = set()
    for fault in remaining:
        if fault.is_noop_for(table):
            raise FaultSimulationError(f"fault {fault} does not change the machine")
    for test in test_set.by_decreasing_length():
        if not remaining:
            break
        still: list[StateTransitionFault] = []
        for fault in remaining:
            faulty = apply_fault(table, fault)
            if _test_detects(table, faulty, test.initial_state, test.inputs):
                detected.add(fault)
            else:
                still.append(fault)
        remaining = still
    return FunctionalFaultResult(frozenset(detected), frozenset(remaining))

"""Table 8 benchmark: test generation without transfer sequences.

The paper re-runs the procedure with ``T = 0`` on the circuits whose
functional tests reached >= 100% of the baseline cycles in Table 7
(``bbtas``, ``dk15``, ``dk27``, ``shiftreg``) and shows the cycle count
drops back to at most 100%.  This benchmark regenerates those rows.
"""

from __future__ import annotations

import pytest

from repro.benchmarks import load_circuit
from repro.benchmarks.paper_data import PAPER_TABLE8
from repro.core.config import GeneratorConfig
from repro.core.coverage import verify_test_set
from repro.core.generator import generate_tests
from repro.core.testset import SegmentKind


@pytest.mark.parametrize("name", sorted(PAPER_TABLE8))
def test_generation_without_transfers(benchmark, name):
    table = load_circuit(name)
    config = GeneratorConfig(max_transfer_length=0)
    result = benchmark(generate_tests, table, config)
    # No transfer segments anywhere.
    for test in result.test_set:
        assert all(
            segment.kind is not SegmentKind.TRANSFER for segment in test.segments
        )
    # Coverage still complete.
    assert verify_test_set(table, result.test_set).is_complete
    # The Table 8 claim: without transfers the cycles never exceed the
    # per-transition baseline.
    assert result.cycles_pct_of_baseline() <= 100.0 + 1e-9


@pytest.mark.parametrize("name", sorted(PAPER_TABLE8))
def test_transfers_trade_tests_for_length(benchmark, name):
    """Comparing T=0 against T=1 reproduces the paper's observation that
    transfers let one test cover more transitions (fewer, longer tests)."""
    table = load_circuit(name)

    def both():
        with_t = generate_tests(table, GeneratorConfig(max_transfer_length=1))
        without = generate_tests(table, GeneratorConfig(max_transfer_length=0))
        return with_t, without

    with_t, without = benchmark.pedantic(both, rounds=1, iterations=1)
    assert without.n_tests >= with_t.n_tests
    assert without.total_length <= with_t.total_length

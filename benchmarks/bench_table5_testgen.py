"""Table 5 benchmark: functional test generation across the suite.

Times ``generate_tests`` per circuit (the paper's ``time`` column) and
asserts Table 5's shape: fewer tests than transitions, every transition
covered with verified endpoints (checked independently), and ``lion``'s
row pinned to the paper's exact numbers.
"""

from __future__ import annotations

import pytest

from conftest import bench_circuits
from repro.benchmarks import load_circuit
from repro.benchmarks.paper_data import PAPER_TABLE5
from repro.core.coverage import verify_test_set
from repro.core.generator import generate_tests


@pytest.mark.parametrize("name", bench_circuits())
def test_functional_test_generation(benchmark, name):
    table = load_circuit(name)
    result = benchmark.pedantic(
        generate_tests, args=(table,), rounds=1, iterations=1
    )
    paper = PAPER_TABLE5[name]
    assert table.n_transitions == paper.trans
    assert result.n_tests <= table.n_transitions
    assert 0.0 <= result.pct_length_one <= 100.0
    report = verify_test_set(table, result.test_set)
    assert report.is_complete


def test_lion_row_matches_paper_exactly(benchmark):
    table = load_circuit("lion")
    result = benchmark(generate_tests, table)
    paper = PAPER_TABLE5["lion"]
    assert result.n_tests == paper.tests == 9
    assert result.total_length == paper.length == 28
    assert result.pct_length_one == pytest.approx(paper.pct_len1)

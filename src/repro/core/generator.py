"""The paper's functional test generation procedure (Section 2).

Tests have the form

    s_i0 --α_j0--> s_i0j0 --D--> s_i1 --α_j1--> s_i1j1 --D--> s_i2 ...

where each ``α`` exercises a yet-untested state-transition and each ``D`` is
the unique input-output sequence of the transition's next state (possibly
followed by a transfer sequence).  A test ends — and the final state is
scanned out — as soon as the current next state has no UIO, or the UIO's
landing state offers no untested transition and no transfer to one.

Two passes select the starting transitions.  The first pass skips ("post-
pones") transitions whose next state has no UIO, because starting with one
forces a length-1 test; the second pass emits the leftovers.  Both passes,
and all in-test choices, scan transitions in (state, input) order, which
reproduces the paper's worked example τ0…τ8 for ``lion`` exactly.

Two documented extensions can be enabled through
:class:`~repro.core.config.GeneratorConfig`: *partial UIO sets* (chaining
through states that only have a jointly-distinguishing set of sequences) and
*incidental credit* (optimistically counting transitions traversed inside
UIO/transfer segments).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import GeneratorConfig
from repro.core.testset import ScanTest, Segment, SegmentKind, TestSet
from repro.errors import GenerationError
from repro.fsm.state_table import StateTable
from repro.obs.metrics import current_registry
from repro.obs.provenance import current_provenance
from repro.obs.trace import complete_event, tracing_active
from repro.obs.trace import span as trace_span
from repro.uio.partial import PartialUioSet, compute_partial_uio_set
from repro.uio.search import UioTable, compute_uio_table
from repro.uio.transfer import find_transfer

__all__ = ["GenerationResult", "generate_tests"]


@dataclass
class GenerationResult:
    """Everything produced by one run of the procedure."""

    test_set: TestSet
    uio_table: UioTable
    config: GeneratorConfig
    generation_time_s: float
    #: transitions credited only through the optimistic incidental mode
    incidental_credits: tuple[tuple[int, int], ...] = ()
    #: partial UIO sets that were actually used (extension mode)
    partial_sets_used: dict[int, PartialUioSet] = field(default_factory=dict)

    @property
    def n_tests(self) -> int:
        return self.test_set.n_tests

    @property
    def total_length(self) -> int:
        return self.test_set.total_length

    @property
    def pct_length_one(self) -> float:
        return self.test_set.pct_transitions_by_length_one

    def clock_cycles(self) -> int:
        return self.test_set.clock_cycles(self.config.scan_ratio)

    def cycles_pct_of_baseline(self) -> float:
        return self.test_set.cycles_pct_of_baseline(self.config.scan_ratio)


class _Generator:
    """One generation run; all mutable bookkeeping lives here."""

    def __init__(
        self,
        table: StateTable,
        config: GeneratorConfig,
        uio_table: UioTable | None,
    ) -> None:
        self.table = table
        self.config = config
        if uio_table is None:
            uio_table = compute_uio_table(
                table,
                config.resolved_uio_length(table.n_state_variables),
                config.uio_node_budget,
            )
        self.uio = uio_table
        self.n_states = table.n_states
        self.n_cols = table.n_input_combinations
        self.tested = np.zeros((self.n_states, self.n_cols), dtype=bool)
        self.untested_count = [self.n_cols] * self.n_states
        self.scan_ptr = [0] * self.n_states
        self.tests: list[ScanTest] = []
        self.incidental: list[tuple[int, int]] = []
        # (input, next_state) per state, deduplicated by next state keeping
        # the smallest input — O(#successors) length-1 transfer lookup.
        self._succ_options: list[list[tuple[int, int]]] = []
        nexts = np.asarray(table.next_state)
        for state in range(self.n_states):
            seen: dict[int, int] = {}
            row = nexts[state]
            for combo in range(self.n_cols):
                nxt = int(row[combo])
                if nxt not in seen:
                    seen[nxt] = combo
            self._succ_options.append(
                sorted(((combo, nxt) for nxt, combo in seen.items()))
            )
        self._partial_cache: dict[int, PartialUioSet | None] = {}
        self.partial_used: dict[int, PartialUioSet] = {}
        self.partial_progress: dict[tuple[int, int], set[int]] = {}
        # Chaining-decision accounting.  Plain local ints, folded into the
        # metrics registry once per run by generate_tests; transfer-search
        # time is only accumulated while a tracer is installed (two extra
        # clock reads per lookup otherwise avoided).
        self.n_chained = 0
        self.n_scan_out = 0
        self.n_transfer_steps = 0
        self.transfer_ns = 0
        self._time_transfers = tracing_active()
        # Decision provenance: one event per exercised transition saying why
        # it was chained vs scan-terminated.  ``None`` (the default) keeps
        # the hot path to a single attribute check per decision.
        self.prov = current_provenance()

    # ------------------------------------------------------------ bookkeeping

    def mark_tested(self, state: int, combo: int) -> None:
        if not self.tested[state, combo]:
            self.tested[state, combo] = True
            self.untested_count[state] -= 1

    def first_untested(self, state: int) -> int | None:
        """Smallest untested input combination out of ``state``."""
        if self.untested_count[state] == 0:
            return None
        row = self.tested[state]
        ptr = self.scan_ptr[state]
        while ptr < self.n_cols and row[ptr]:
            ptr += 1
        self.scan_ptr[state] = ptr
        if ptr < self.n_cols:
            return ptr
        # All inputs at/after the pointer are tested but untested_count > 0:
        # only possible in partial mode where earlier inputs stay pending.
        for combo in range(self.n_cols):
            if not row[combo]:
                return combo
        raise GenerationError("untested_count is inconsistent")  # pragma: no cover

    def _untested_predicate(self, state: int) -> bool:
        return self.untested_count[state] > 0

    def find_transfer_step(self, source: int) -> tuple[tuple[int, ...], int] | None:
        """Transfer ``(inputs, destination)`` into a state with untested work."""
        if not self._time_transfers:
            return self._find_transfer_step(source)
        started = time.perf_counter_ns()
        try:
            return self._find_transfer_step(source)
        finally:
            self.transfer_ns += time.perf_counter_ns() - started

    def _find_transfer_step(self, source: int) -> tuple[tuple[int, ...], int] | None:
        bound = self.config.max_transfer_length
        if bound == 0:
            return None
        if bound == 1:
            for combo, nxt in self._succ_options[source]:
                if self.untested_count[nxt] > 0:
                    return (combo,), nxt
            return None
        path = find_transfer(self.table, source, self._untested_predicate, bound)
        if path is None or not path:
            return None
        return path, self.table.final_state(source, path)

    def partial_set(self, state: int) -> PartialUioSet | None:
        """Complete partial UIO set for ``state`` or ``None`` (cached)."""
        if state not in self._partial_cache:
            pset = compute_partial_uio_set(
                self.table,
                state,
                self.config.resolved_uio_length(self.table.n_state_variables),
            )
            self._partial_cache[state] = pset if pset.complete else None
        return self._partial_cache[state]

    def credit_segment(self, start_state: int, inputs: tuple[int, ...]) -> None:
        """Optimistically credit transitions traversed by a UIO/transfer."""
        state = start_state
        for combo in inputs:
            if not self.tested[state, combo]:
                self.mark_tested(state, combo)
                self.incidental.append((state, combo))
            state = int(self.table.next_state[state, combo])

    def _decision(
        self, state: int, combo: int, outcome: str, reason: str, **detail: object
    ) -> None:
        """Record why transition ``(state, combo)`` was chained/scan-terminated."""
        if self.prov is not None:
            self.prov.decision(
                self.table.name, state, combo, outcome, reason,
                next_state=int(self.table.next_state[state, combo]),
                **detail,
            )

    # --------------------------------------------------------- test building

    def can_start(self, state: int, combo: int) -> bool:
        """First-pass start rule (the paper's postpone rule)."""
        if not self.config.postpone_no_uio_starts:
            return True
        next_state = int(self.table.next_state[state, combo])
        if self.uio.has(next_state):
            return True
        if self.config.use_partial_uio and self.partial_set(next_state) is not None:
            return True
        return False

    def build_test(self, start_state: int, start_combo: int) -> ScanTest:
        """Grow one test starting with transition ``(start_state, start_combo)``."""
        segments: list[Segment] = []
        state, combo = start_state, start_combo
        test_index = len(self.tests)
        step = 0
        while True:
            segments.append(Segment(SegmentKind.TRANSITION, state, (combo,)))
            next_state = int(self.table.next_state[state, combo])
            uio_seq = self.uio.get(next_state)
            if uio_seq is not None:
                self.mark_tested(state, combo)
                landing = uio_seq.final_state
                follow = self.first_untested(landing)
                transfer = None
                if follow is None:
                    transfer = self.find_transfer_step(landing)
                if follow is None and transfer is None:
                    if self.prov is not None:
                        self._decision(
                            state, combo, "scan_out", "uio-dead-end",
                            uio_length=uio_seq.length,
                            test_index=test_index, step=step,
                        )
                    return self._finish(start_state, segments, next_state)
                if uio_seq.inputs:
                    segments.append(Segment(SegmentKind.UIO, next_state, uio_seq.inputs))
                    if self.config.credit_incidental:
                        self.credit_segment(next_state, uio_seq.inputs)
                if transfer is not None:
                    path, landing = transfer
                    segments.append(Segment(SegmentKind.TRANSFER, uio_seq.final_state, path))
                    if self.config.credit_incidental:
                        self.credit_segment(uio_seq.final_state, path)
                    follow = self.first_untested(landing)
                    self.n_transfer_steps += 1
                if follow is None:
                    raise GenerationError(
                        "transfer destination lost its untested transitions"
                    )  # pragma: no cover
                if self.prov is not None:
                    self._decision(
                        state, combo, "chained", "uio",
                        uio_length=uio_seq.length,
                        transfer_length=len(transfer[0]) if transfer is not None else 0,
                        test_index=test_index, step=step,
                    )
                state, combo = landing, follow
                self.n_chained += 1
                step += 1
                continue
            if self.config.use_partial_uio:
                next_step = self._try_partial_step(state, combo, next_state, segments)
                if next_step is not None:
                    if self.prov is not None:
                        self._decision(
                            state, combo, "chained", "partial-uio",
                            test_index=test_index, step=step,
                        )
                    state, combo = next_step
                    self.n_chained += 1
                    step += 1
                    continue
            self.mark_tested(state, combo)  # verified by the final scan-out
            if self.config.use_partial_uio and self.partial_set(next_state) is not None:
                reason = "partial-uio-dead-end"
            elif next_state in self.uio.budget_exhausted:
                reason = "uio-budget-exhausted"
            else:
                reason = "no-uio"
            if self.prov is not None:
                self._decision(
                    state, combo, "scan_out", reason,
                    test_index=test_index, step=step,
                )
            return self._finish(start_state, segments, next_state)

    def _try_partial_step(
        self,
        state: int,
        combo: int,
        next_state: int,
        segments: list[Segment],
    ) -> tuple[int, int] | None:
        """Continue the chain through a partial UIO set, or return ``None``.

        Returns the next ``(state, input)`` to exercise when the chain keeps
        going; ``None`` means the caller should end the test (the scan-out
        then fully verifies the transition).
        """
        pset = self.partial_set(next_state)
        if pset is None or not pset.sequences:
            return None
        progress = self.partial_progress.setdefault((state, combo), set())
        pending = [i for i in range(len(pset.sequences)) if i not in progress]
        if not pending:  # pragma: no cover - tested transitions are never revisited
            return None
        index = pending[0]
        inputs = pset.sequences[index]
        landing = self.table.final_state(next_state, inputs)
        # Whichever way the decision below goes, applying the last pending
        # sequence completes the set and ending the test verifies by
        # scan-out — so when this is the final pending sequence the
        # transition is tested either way.  Mark it *before* probing for
        # untested work, otherwise a transfer destination whose only
        # untested transition is this very one would be chosen and then
        # found empty.
        if len(pending) == 1:
            self.mark_tested(state, combo)
        follow = self.first_untested(landing)
        transfer = None
        if follow is None:
            transfer = self.find_transfer_step(landing)
        if follow is None and transfer is None:
            return None
        progress.add(index)
        self.partial_used[next_state] = pset
        segments.append(Segment(SegmentKind.PARTIAL_UIO, next_state, inputs))
        if self.config.credit_incidental:
            self.credit_segment(next_state, inputs)
        if transfer is not None:
            path, landing = transfer
            segments.append(Segment(SegmentKind.TRANSFER, self.table.final_state(
                next_state, inputs), path))
            if self.config.credit_incidental:
                self.credit_segment(segments[-1].start_state, path)
            follow = self.first_untested(landing)
            self.n_transfer_steps += 1
        if follow is None:
            raise GenerationError(
                "transfer destination lost its untested transitions"
            )  # pragma: no cover
        return landing, follow

    def _finish(
        self, start_state: int, segments: list[Segment], final_state: int
    ) -> ScanTest:
        inputs = tuple(combo for segment in segments for combo in segment.inputs)
        tested = tuple(
            (segment.start_state, segment.inputs[0])
            for segment in segments
            if segment.kind is SegmentKind.TRANSITION
        )
        test = ScanTest(start_state, inputs, final_state, tuple(segments), tested)
        self.tests.append(test)
        self.n_scan_out += 1
        return test

    # ---------------------------------------------------------------- driver

    def run(self) -> None:
        # First pass: starts obeying the postpone rule.
        for state in range(self.n_states):
            for combo in range(self.n_cols):
                if self.tested[state, combo]:
                    continue
                if not self.can_start(state, combo):
                    continue
                self.build_test(state, combo)
        # Second pass: leftovers.  Without partial UIO sets one sweep always
        # suffices (each leftover becomes a length-1 test); with them a
        # transition may need several visits, one per pending sequence.
        max_sweeps = 1 + (
            max(
                (len(p.sequences) for p in self._partial_cache.values() if p),
                default=0,
            )
            if self.config.use_partial_uio
            else 0
        )
        for _sweep in range(max_sweeps + 1):
            remaining = int((~self.tested).sum())
            if remaining == 0:
                return
            for state in range(self.n_states):
                if self.untested_count[state] == 0:
                    continue
                for combo in range(self.n_cols):
                    if not self.tested[state, combo]:
                        self.build_test(state, combo)
        if int((~self.tested).sum()):  # pragma: no cover - monotone progress
            raise GenerationError("second pass failed to cover all transitions")


def generate_tests(
    table: StateTable,
    config: GeneratorConfig | None = None,
    uio_table: UioTable | None = None,
) -> GenerationResult:
    """Run the paper's procedure on ``table``.

    Parameters
    ----------
    table:
        The completely specified machine (typically completed to ``2**N_SV``
        states, as the paper's benchmarks are).
    config:
        Procedure knobs; defaults to the paper's main setting
        (``L = N_SV``, ``T = 1``, postpone rule on, extensions off).
    uio_table:
        Optional precomputed UIO table; must have been computed with the
        same length bound for the run to match the configuration.

    Returns
    -------
    GenerationResult
        The generated tests plus the UIO table and bookkeeping.  Every
        state-transition of ``table`` is credited to exactly one test
        (``test_set.covered_transitions()`` equals the full transition set),
        which the strict checker in :mod:`repro.core.coverage` re-verifies
        independently.
    """
    if config is None:
        config = GeneratorConfig()
    # Cheap static preflight (lazy import: repro.lint builds on this package).
    # Rejects malformed tables — out-of-range entries, inconsistent shapes —
    # with a precise diagnostic before the expensive UIO search starts.
    from repro.lint.preflight import preflight_machine

    preflight_machine(table, GenerationError)
    started = time.perf_counter()
    generator = _Generator(table, config, uio_table)
    with trace_span(
        "testgen.chaining", machine=table.name, transitions=table.n_transitions
    ) as sp:
        generator.run()
        if generator.transfer_ns:
            # Aggregate span for the transfer lookups: individual calls are
            # microseconds each, so per-call spans would dwarf the work.
            complete_event(
                "testgen.transfer",
                generator.transfer_ns / 1e9,
                steps=generator.n_transfer_steps,
            )
        sp.set(
            tests=len(generator.tests),
            chained=generator.n_chained,
            scan_out=generator.n_scan_out,
        )
    registry = current_registry()
    if registry is not None:
        registry.counter("testgen.tests").add(len(generator.tests))
        registry.counter("testgen.chained").add(generator.n_chained)
        registry.counter("testgen.scan_out").add(generator.n_scan_out)
        registry.counter("testgen.transfer_steps").add(generator.n_transfer_steps)
        registry.histogram("testgen.test_length").observe(
            max((test.length for test in generator.tests), default=0)
        )
    elapsed = time.perf_counter() - started
    test_set = TestSet(
        table.name,
        table.n_state_variables,
        table.n_transitions,
        generator.tests,
    )
    return GenerationResult(
        test_set,
        generator.uio,
        config,
        elapsed,
        tuple(generator.incidental),
        generator.partial_used,
    )

#!/usr/bin/env python
"""Non-scan vs. scan-based functional testing (the paper's introduction).

The paper's case for full scan rests on two structural limits of non-scan
functional testing: a tester without scan can only (a) reach states through
the machine's own transitions and (b) verify next states through unique
input-output sequences — neither of which always exists.  This example
measures both on the benchmark suite:

* non-scan: one long checking-experiment sequence (synchronizing prefix or
  assumed reset, transfers, UIO verification where possible),
* scan: the paper's procedure (scan-in/scan-out bracket every test).

It then cross-checks with explicit state-transition faults and with
transition-delay faults, reproducing the intro's two claims: scan closes
the coverage gap, and chained at-speed tests add delay-fault coverage the
per-transition baseline cannot have.

Run:  python examples/nonscan_vs_scan.py
"""

from repro import generate_tests, load_circuit, load_kiss_machine, verify_test_set
from repro.benchmarks import circuit_names
from repro.core.baseline import per_transition_tests
from repro.core.faultmodel import sample_faults, simulate_functional_faults
from repro.gatelevel.delay import simulate_delay_faults
from repro.gatelevel.scan import ScanCircuit
from repro.gatelevel.synthesis import SynthesisOptions
from repro.nonscan import generate_nonscan_sequence, simulate_nonscan_faults


def main() -> None:
    print("transition coverage: non-scan checking sequence vs scan tests")
    print(f"{'circuit':10} {'non-scan exercised%':>20} {'non-scan verified%':>19} "
          f"{'scan verified%':>15}")
    for name in sorted(circuit_names("small")):
        table = load_circuit(name)
        nonscan = generate_nonscan_sequence(table)
        scan = generate_tests(table)
        report = verify_test_set(table, scan.test_set)
        print(f"{name:10} {nonscan.exercised_pct:>19.2f}% "
              f"{nonscan.verified_pct:>18.2f}% "
              f"{100.0 * report.verified_fraction:>14.2f}%")
    print()
    print("Scan verifies 100% everywhere; non-scan is capped by unreachable")
    print("completion states and UIO-less next states.")
    print()

    name = "lion"
    table = load_circuit(name)
    faults = sample_faults(table, 120, seed="intro")
    nonscan = generate_nonscan_sequence(table)
    scan_tests = generate_tests(table).test_set
    nonscan_cov = simulate_nonscan_faults(table, nonscan.sequence, faults)
    scan_cov = simulate_functional_faults(table, scan_tests, faults)
    print(f"explicit state-transition faults on {name} "
          f"({nonscan_cov.n_faults} sampled):")
    print(f"  non-scan sequence (length {nonscan.length}): "
          f"{nonscan_cov.coverage_pct:.2f}%")
    print(f"  scan tests ({scan_tests.n_tests} tests): "
          f"{scan_cov.coverage_pct:.2f}%")
    print()

    circuit = ScanCircuit.from_machine(
        load_kiss_machine(name), SynthesisOptions(max_fanin=4)
    )
    chained = simulate_delay_faults(circuit, table, scan_tests)
    baseline = simulate_delay_faults(circuit, table, per_transition_tests(table))
    print(f"transition-delay faults on {name} (at-speed argument):")
    print(f"  per-transition baseline: {baseline.n_at_speed_pairs} at-speed "
          f"pairs, {baseline.coverage_pct:.2f}% coverage")
    print(f"  chained functional tests: {chained.n_at_speed_pairs} at-speed "
          f"pairs, {chained.coverage_pct:.2f}% coverage")


if __name__ == "__main__":
    main()

"""Unit tests for programmatic and random machine construction."""

from __future__ import annotations

import pytest

from repro.errors import IncompleteMachineError, StateTableError
from repro.fsm.builders import (
    StateTableBuilder,
    random_cube_machine,
    random_state_table,
)


class TestStateTableBuilder:
    def test_basic_build(self, toggle):
        assert toggle.n_states == 2
        assert toggle.step(0, 1) == (1, 0)
        assert toggle.step(1, 0) == (1, 1)

    def test_states_numbered_in_first_use_order(self):
        builder = StateTableBuilder(1, 1)
        builder.add("z", 0, "a", 0)
        builder.add("z", 1, "z", 0)
        builder.add("a", 0, "z", 1)
        builder.add("a", 1, "a", 1)
        table = builder.build()
        assert table.state_names == ("z", "a")

    def test_bit_iterables_accepted(self):
        builder = StateTableBuilder(2, 2)
        builder.add("a", (0, 1), "a", (1, 0))
        builder.add("a", 0, "a", 0)
        builder.add("a", 2, "a", 0)
        builder.add("a", 3, "a", 0)
        table = builder.build()
        assert table.step(0, 0b01) == (0, 0b10)

    def test_conflicting_redefinition_rejected(self):
        builder = StateTableBuilder(1, 1)
        builder.add("a", 0, "a", 0)
        with pytest.raises(StateTableError, match="conflicting"):
            builder.add("a", 0, "a", 1)

    def test_identical_redefinition_tolerated(self):
        builder = StateTableBuilder(1, 1)
        builder.add("a", 0, "a", 0)
        builder.add("a", 0, "a", 0)
        builder.add("a", 1, "a", 0)
        assert builder.build().n_states == 1

    def test_incomplete_raises(self):
        builder = StateTableBuilder(1, 1)
        builder.add("a", 0, "b", 0)
        builder.add("b", 0, "a", 0)
        builder.add("b", 1, "b", 0)
        with pytest.raises(IncompleteMachineError):
            builder.build()

    def test_fill_unspecified(self):
        builder = StateTableBuilder(1, 1)
        builder.add("a", 0, "b", 1)
        builder.add("b", 0, "a", 0)
        builder.add("b", 1, "b", 0)
        table = builder.build(fill_unspecified=True)
        assert table.step(0, 1) == (0, 0)

    def test_add_row(self):
        builder = StateTableBuilder(1, 1)
        builder.add_row("a", {0: ("a", 0), 1: ("b", 1)})
        builder.add_row("b", {0: ("a", 1), 1: ("b", 0)})
        assert builder.build().n_states == 2

    def test_empty_build_rejected(self):
        with pytest.raises(StateTableError):
            StateTableBuilder(1, 1).build()

    def test_out_of_range_combination_rejected(self):
        builder = StateTableBuilder(1, 1)
        with pytest.raises(StateTableError):
            builder.add("a", 2, "a", 0)


class TestRandomCubeMachine:
    def test_deterministic_in_seed(self):
        first = random_cube_machine(3, 8, 2, seed="x")
        second = random_cube_machine(3, 8, 2, seed="x")
        assert first.to_state_table() == second.to_state_table()

    def test_different_seeds_differ(self):
        first = random_cube_machine(3, 8, 2, seed="x")
        second = random_cube_machine(3, 8, 2, seed="y")
        assert first.to_state_table() != second.to_state_table()

    def test_completely_specified(self):
        table = random_state_table(4, 8, 2, seed=7)
        assert table.n_states == 8
        assert table.n_input_combinations == 16

    def test_cube_structure_is_partition(self):
        """Per-state cubes never overlap and jointly cover the input space."""
        machine = random_cube_machine(4, 6, 2, seed=3)
        from repro.fsm.kiss import expand_cube

        per_state: dict[str, list[int]] = {}
        for row in machine.rows:
            per_state.setdefault(row.present, []).extend(expand_cube(row.input_cube))
        for state, combos in per_state.items():
            assert sorted(combos) == list(range(16)), state

    def test_zero_bias_forces_zero_outputs(self):
        machine = random_cube_machine(2, 4, 3, seed=1, output_zero_bias=1.0)
        assert all(row.output_cube == "000" for row in machine.rows)

    def test_bias_out_of_range_rejected(self):
        with pytest.raises(StateTableError):
            random_cube_machine(2, 4, 1, seed=0, output_zero_bias=1.5)

    def test_zero_outputs_machine(self):
        table = random_state_table(2, 4, 0, seed=5)
        assert table.n_outputs == 0

    def test_single_input_variable(self):
        table = random_state_table(1, 4, 1, seed=5)
        assert table.n_input_combinations == 2

"""Unit tests for bridging fault enumeration (the paper's three conditions)."""

from __future__ import annotations

import pytest

from repro.errors import FaultSimulationError
from repro.gatelevel.bridging import (
    BridgeKind,
    BridgingFault,
    enumerate_bridging_faults,
)
from repro.gatelevel.netlist import GateType, Netlist


def two_cone_netlist():
    """Two independent cones whose AND outputs qualify for bridging."""
    netlist = Netlist()
    a = netlist.add_input()
    b = netlist.add_input()
    c = netlist.add_input()
    d = netlist.add_input()
    t1 = netlist.add_gate(GateType.AND, (a, b))    # 4
    t2 = netlist.add_gate(GateType.AND, (c, d))    # 5
    y1 = netlist.add_gate(GateType.NOT, (t1,))     # 6 consumer of t1
    y2 = netlist.add_gate(GateType.NOT, (t2,))     # 7 consumer of t2
    netlist.set_outputs([y1, y2])
    return netlist, t1, t2


class TestConditions:
    def test_qualifying_pair_found(self):
        netlist, t1, t2 = two_cone_netlist()
        faults = enumerate_bridging_faults(netlist)
        pairs = {(f.line1, f.line2) for f in faults}
        assert pairs == {(t1, t2)}
        kinds = {f.kind for f in faults}
        assert kinds == {BridgeKind.AND, BridgeKind.OR}

    def test_common_consumer_excluded(self):
        netlist = Netlist()
        a, b, c, d = (netlist.add_input() for _ in range(4))
        t1 = netlist.add_gate(GateType.AND, (a, b))
        t2 = netlist.add_gate(GateType.AND, (c, d))
        joint = netlist.add_gate(GateType.OR, (t1, t2))  # common consumer
        netlist.set_outputs([joint])
        assert enumerate_bridging_faults(netlist) == []

    def test_path_between_lines_excluded(self):
        netlist = Netlist()
        a, b, c = (netlist.add_input() for _ in range(3))
        t1 = netlist.add_gate(GateType.AND, (a, b))
        t2 = netlist.add_gate(GateType.AND, (t1, c))  # t1 -> t2 path
        y1 = netlist.add_gate(GateType.NOT, (t1,))
        y2 = netlist.add_gate(GateType.NOT, (t2,))
        netlist.set_outputs([y1, y2])
        assert enumerate_bridging_faults(netlist) == []

    def test_single_input_gates_excluded(self):
        netlist = Netlist()
        a = netlist.add_input()
        n1 = netlist.add_gate(GateType.NOT, (a,))
        n2 = netlist.add_gate(GateType.NOT, (n1,))
        netlist.set_outputs([n2])
        assert enumerate_bridging_faults(netlist) == []

    def test_lines_without_consumers_excluded(self):
        netlist, t1, t2 = two_cone_netlist()
        # add a dangling multi-input gate feeding nothing
        extra = netlist.add_gate(GateType.OR, (0, 1))
        netlist.set_outputs(list(netlist.outputs) + [extra])
        faults = enumerate_bridging_faults(netlist)
        assert all(extra not in (f.line1, f.line2) for f in faults)


class TestSampling:
    def test_limit_respected(self):
        from repro.benchmarks import load_kiss_machine
        from repro.gatelevel.synthesis import SynthesisOptions, synthesize

        netlist = synthesize(
            load_kiss_machine("bbtas"), SynthesisOptions(max_fanin=2)
        ).netlist
        full = enumerate_bridging_faults(netlist)
        limited = enumerate_bridging_faults(netlist, limit=10)
        assert len(limited) == 20  # 10 pairs, two kinds each
        assert set(limited) <= set(full)

    def test_sampling_deterministic(self):
        from repro.benchmarks import load_kiss_machine
        from repro.gatelevel.synthesis import SynthesisOptions, synthesize

        netlist = synthesize(
            load_kiss_machine("bbtas"), SynthesisOptions(max_fanin=2)
        ).netlist
        first = enumerate_bridging_faults(netlist, limit=25, seed="s")
        second = enumerate_bridging_faults(netlist, limit=25, seed="s")
        assert first == second
        third = enumerate_bridging_faults(netlist, limit=25, seed="t")
        assert first != third


class TestBridgingFault:
    def test_order_enforced(self):
        with pytest.raises(FaultSimulationError):
            BridgingFault(5, 3, BridgeKind.AND)

    def test_site_label(self):
        assert BridgingFault(3, 5, BridgeKind.OR).site() == "bridge-or(g3, g5)"

"""Gate-level substrate: netlists, synthesis, and fault simulation.

The paper evaluates its functional tests by fault-simulating gate-level
implementations of the benchmark machines.  This subpackage provides that
whole stack from scratch:

* :mod:`repro.gatelevel.netlist` — combinational netlists with word-parallel
  (64 instances per ``uint64`` bit) evaluation;
* :mod:`repro.gatelevel.sop` / :mod:`repro.gatelevel.synthesis` — two-level
  synthesis of a state table (natural state encoding, shared product terms)
  into a full-scan circuit model;
* :mod:`repro.gatelevel.stuck_at` — single stuck-at fault lists with
  equivalence collapsing;
* :mod:`repro.gatelevel.bridging` — non-feedback AND/OR bridging faults per
  the paper's three structural conditions;
* :mod:`repro.gatelevel.detectability` — exhaustive combinational
  detectability (the paper's redundant-fault oracle);
* :mod:`repro.gatelevel.fault_sim` — sequential bit-parallel fault
  simulation of scan tests with fault dropping.
"""

from repro.gatelevel.netlist import Gate, GateType, Netlist
from repro.gatelevel.synthesis import SynthesisOptions, synthesize
from repro.gatelevel.scan import ScanCircuit
from repro.gatelevel.stuck_at import StuckAtFault, collapse_stuck_at, enumerate_stuck_at
from repro.gatelevel.bridging import BridgingFault, BridgeKind, enumerate_bridging_faults
from repro.gatelevel.detectability import detectable_faults, reachable_state_pattern_mask
from repro.gatelevel.fault_sim import FaultSimResult, simulate_tests
from repro.gatelevel.compiled import CompiledFaultSimulator
from repro.gatelevel.delay import (
    TransitionDelayFault,
    enumerate_transition_delay_faults,
    simulate_delay_faults,
)
from repro.gatelevel.atpg import AtpgResult, generate_stuck_at_atpg
from repro.gatelevel.diagnosis import FaultDictionary, observed_signature

__all__ = [
    "Gate",
    "GateType",
    "Netlist",
    "SynthesisOptions",
    "synthesize",
    "ScanCircuit",
    "StuckAtFault",
    "collapse_stuck_at",
    "enumerate_stuck_at",
    "BridgingFault",
    "BridgeKind",
    "enumerate_bridging_faults",
    "detectable_faults",
    "reachable_state_pattern_mask",
    "FaultSimResult",
    "simulate_tests",
    "CompiledFaultSimulator",
    "TransitionDelayFault",
    "enumerate_transition_delay_faults",
    "simulate_delay_faults",
    "AtpgResult",
    "generate_stuck_at_atpg",
    "FaultDictionary",
    "observed_signature",
]

"""Persistent failure corpus for the fuzzer.

Every failing (ideally shrunk) machine is written as a standalone KISS2
file next to a small JSON metadata record::

    <corpus>/
        coverage-chaining/
            a3f09b2c41d6e8f7.kiss
            a3f09b2c41d6e8f7.json
        sim-equivalence/
            ...

The KISS file *is* the reproduction recipe — ``repro-fsatpg fuzz --corpus
<dir>`` replays every stored machine through its oracle before generating
anything new, so a once-found bug acts as a permanent regression test until
the files are deleted.  File names are content digests, which deduplicates
re-found failures for free.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import FuzzError
from repro.fsm.kiss import parse_kiss, table_to_kiss, write_kiss
from repro.fsm.state_table import StateTable
from repro.perf.artifacts import state_table_parts
from repro.perf.cache import stable_hash

__all__ = ["CorpusEntry", "corpus_digest", "load_corpus", "save_failure"]


@dataclass(frozen=True)
class CorpusEntry:
    """One stored failure: the machine plus how it failed."""

    oracle: str
    digest: str
    table: StateTable
    metadata: dict[str, Any]

    @property
    def relative_path(self) -> str:
        """Corpus-root-relative KISS path (stable across machines/CI)."""
        return f"{self.oracle}/{self.digest}.kiss"


def corpus_digest(table: StateTable) -> str:
    """Content digest naming ``table``'s corpus files (name-independent)."""
    return stable_hash(state_table_parts(table))[:16]


def save_failure(
    root: str | Path,
    oracle: str,
    table: StateTable,
    detail: str,
    origin: str = "generated",
    shrunk_from: str | None = None,
) -> CorpusEntry:
    """Persist one failing machine under ``root``; returns its entry.

    Existing files for the same machine/oracle pair are overwritten (the
    digest is content-derived, so this only refreshes the metadata).
    """
    if table.n_inputs < 1 or table.n_outputs < 1:
        raise FuzzError(
            "corpus machines need at least one input and one output bit "
            "(KISS2 rows cannot express zero-width cubes)"
        )
    if not oracle or "/" in oracle or oracle.startswith("."):
        raise FuzzError(f"unusable oracle name for corpus path: {oracle!r}")
    digest = corpus_digest(table)
    directory = Path(root) / oracle
    directory.mkdir(parents=True, exist_ok=True)
    metadata: dict[str, Any] = {
        "detail": detail,
        "machine": table.name,
        "n_inputs": table.n_inputs,
        "n_outputs": table.n_outputs,
        "n_states": table.n_states,
        "oracle": oracle,
        "origin": origin,
        "shrunk_from": shrunk_from,
    }
    (directory / f"{digest}.kiss").write_text(write_kiss(table_to_kiss(table)))
    (directory / f"{digest}.json").write_text(
        json.dumps(metadata, indent=2, sort_keys=True) + "\n"
    )
    return CorpusEntry(oracle, digest, table, metadata)


def load_corpus(root: str | Path) -> list[CorpusEntry]:
    """Every stored failure under ``root``, in deterministic order.

    A missing corpus directory is an empty corpus (first run); a corpus
    *file* that cannot be parsed is an error — silently skipping it would
    turn a regression guard into a no-op.
    """
    base = Path(root)
    if not base.exists():
        return []
    if not base.is_dir():
        raise FuzzError(f"corpus path {base} is not a directory")
    entries: list[CorpusEntry] = []
    for kiss_path in sorted(base.glob("*/*.kiss")):
        oracle = kiss_path.parent.name
        digest = kiss_path.stem
        try:
            machine = parse_kiss(kiss_path.read_text(), name=f"corpus-{digest}")
            table = machine.to_state_table()
        except Exception as exc:
            raise FuzzError(f"unreadable corpus entry {kiss_path}: {exc}") from exc
        metadata: dict[str, Any] = {}
        json_path = kiss_path.with_suffix(".json")
        if json_path.exists():
            try:
                metadata = json.loads(json_path.read_text())
            except json.JSONDecodeError as exc:
                raise FuzzError(
                    f"corrupt corpus metadata {json_path}: {exc}"
                ) from exc
        entries.append(CorpusEntry(oracle, digest, table, metadata))
    return entries

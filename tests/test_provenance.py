"""Tests of ATPG decision provenance (recording, merging, and ``explain``)."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.benchmarks import load_circuit
from repro.cli import main
from repro.core.config import GeneratorConfig
from repro.core.generator import generate_tests
from repro.obs.provenance import (
    ProvenanceEvent,
    ProvenanceLog,
    decision_summary,
    set_provenance,
)


@pytest.fixture(autouse=True)
def _fresh_study_cache():
    from repro.harness import experiments

    experiments._STUDIES.clear()
    yield
    experiments._STUDIES.clear()


class TestProvenanceLog:
    def test_record_and_query(self):
        log = ProvenanceLog()
        log.decision("m", 1, 0, "chained", "uio", uio_length=2)
        log.decision("m", 0, 1, "scan_out", "no-uio")
        log.uio_outcome("m", 0, "none", max_length=2)
        assert len(log) == 3
        decisions = list(log.decisions("m"))
        # (state, combo) order, not insertion order.
        assert [(e.state, e.combo) for e in decisions] == [(0, 1), (1, 0)]
        assert list(log.decisions("other")) == []

    def test_snapshot_and_absorb(self):
        log = ProvenanceLog()
        log.decision("m", 0, 0, "chained", "uio")
        drained = log.snapshot(reset=True)
        assert len(drained) == 1 and len(log) == 0
        other = ProvenanceLog()
        other.absorb(drained)
        assert len(other) == 1

    def test_event_to_dict_drops_empty_fields(self):
        event = ProvenanceEvent("uio", "m", 3, -1, "found", "", {"length": 2})
        data = event.to_dict()
        assert "combo" not in data and "reason" not in data
        assert data["detail"] == {"length": 2}

    def test_decision_summary_counts(self):
        log = ProvenanceLog()
        log.decision("m", 0, 0, "chained", "uio")
        log.decision("m", 0, 1, "chained", "uio")
        log.decision("m", 1, 0, "scan_out", "no-uio")
        log.uio_outcome("m", 0, "found")  # not a decision: ignored
        summary = decision_summary(log.events)
        assert summary == {
            "decisions": {"chained": 2, "scan_out": 1},
            "reasons": {"no-uio": 1, "uio": 2},
        }


class TestGeneratorRecording:
    def test_one_decision_per_transition(self, lion):
        with obs.observing() as session:
            generate_tests(lion, GeneratorConfig())
        decisions = list(session.provenance.decisions("lion"))
        assert len(decisions) == lion.n_transitions == 16
        seen = {(e.state, e.combo) for e in decisions}
        assert len(seen) == 16

    def test_decision_reasons_match_papers_lion_schedule(self, lion):
        with obs.observing() as session:
            result = generate_tests(lion, GeneratorConfig())
        summary = decision_summary(session.provenance.events)
        assert summary["decisions"] == {"chained": 7, "scan_out": 9}
        assert summary["reasons"] == {"no-uio": 9, "uio": 7}
        # Every decision cites a test index inside the generated set.
        indices = {
            e.detail["test_index"]
            for e in session.provenance.decisions("lion")
        }
        assert indices == set(range(result.n_tests))

    def test_uio_outcomes_recorded_per_state(self, lion):
        with obs.observing() as session:
            generate_tests(lion, GeneratorConfig())
        outcomes = [e for e in session.provenance.events if e.kind == "uio"]
        assert len(outcomes) == lion.n_states
        found = {e.state for e in outcomes if e.outcome == "found"}
        none = {e.state for e in outcomes if e.outcome == "none"}
        assert found | none == set(range(lion.n_states))
        for event in outcomes:
            if event.outcome == "found":
                assert event.detail["length"] >= 1

    def test_nothing_recorded_when_disabled(self, lion):
        assert set_provenance(None) is None
        generate_tests(lion, GeneratorConfig())
        # No log installed: nothing to assert on except the absence of one.
        from repro.obs.provenance import current_provenance

        assert current_provenance() is None

    def test_transfer_outcomes_recorded_for_longer_bounds(self):
        from repro.uio.search import compute_uio_table
        from repro.uio.transfer import find_transfer

        table = load_circuit("bbtas")
        with obs.observing() as session:
            uio = compute_uio_table(table, table.n_state_variables)
            targets = {s for s in range(table.n_states) if uio.get(s)}
            # Exclude the source: a source-in-targets call early-returns
            # without a BFS and records nothing.
            find_transfer(table, 0, targets - {0}, max_length=3)
            find_transfer(table, 0, set(), max_length=3)
        outcomes = {
            e.outcome
            for e in session.provenance.events
            if e.kind == "transfer"
        }
        assert "none" in outcomes
        assert outcomes <= {"found", "none"}


class TestWorkerMerge:
    def test_jobs_2_events_match_serial(self):
        from repro.harness.experiments import warm_studies

        circuits = ("lion", "mc")

        def run(jobs: int) -> list[dict]:
            with obs.observing() as session:
                warm_studies(circuits, jobs=jobs, scope="functional")
            events = sorted(
                (e.to_dict() for e in session.provenance.events),
                key=lambda d: json.dumps(d, sort_keys=True),
            )
            return events

        assert run(1) == run(2)


class TestExplainCli:
    def test_explain_covers_every_transition(self, capsys):
        assert main(["explain", "table5", "--circuit", "lion"]) == 0
        out = capsys.readouterr().out
        assert "lion: 16 transition decision(s)" in out
        assert out.count("-->") == 16
        assert "chained [uio]" in out
        assert "scan_out [no-uio]" in out
        assert "summary: chained=7, scan_out=9" in out

    def test_explain_single_transition(self, capsys):
        assert main(["explain", "lion", "--transition", "2,1"]) == 0
        out = capsys.readouterr().out
        assert "lion: 1 transition decision(s)" in out
        assert "st2 --in1-->" in out

    def test_explain_json_format(self, capsys):
        assert main(["explain", "lion", "--transition", "0,1",
                     "--format", "json"]) == 0
        (event,) = json.loads(capsys.readouterr().out)
        assert event["kind"] == "decision"
        assert (event["state"], event["combo"]) == (0, 1)
        assert event["outcome"] in ("chained", "scan_out")
        assert event["reason"]

    def test_explain_missing_transition_exits_1(self, capsys):
        assert main(["explain", "lion", "--transition", "99,0"]) == 1

    def test_explain_bad_transition_syntax_exits_2(self, capsys):
        assert main(["explain", "lion", "--transition", "nope"]) == 2

    def test_explain_unknown_target_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["explain", "table99"])
        assert excinfo.value.code == 2

    def test_explain_respects_uio_bound(self, capsys):
        assert main(["explain", "lion", "--uio-length", "1",
                     "--format", "json"]) == 0
        events = json.loads(capsys.readouterr().out)
        lengths = {
            e["detail"]["uio_length"]
            for e in events
            if "detail" in e and "uio_length" in e["detail"]
        }
        assert lengths <= {1}


class TestLedgerEmbedding:
    def test_table5_record_embeds_decision_summary(self, capsys):
        from repro.obs import ledger

        assert main(["table5", "--circuits", "lion"]) == 0
        (record,) = ledger.read_records()
        assert record["provenance"] == {
            "decisions": {"chained": 7, "scan_out": 9},
            "reasons": {"no-uio": 9, "uio": 7},
        }

    def test_table4_record_is_jobs_invariant_with_provenance(self, capsys):
        from repro.obs import ledger

        assert main(["table4", "--circuits", "lion,mc"]) == 0
        assert main(["table4", "--circuits", "lion,mc", "--jobs", "2"]) == 0
        serial, parallel = ledger.read_records()
        assert serial["provenance"] == parallel["provenance"]

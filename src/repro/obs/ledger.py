"""Append-only, schema-versioned run ledger (JSONL on disk).

Every ledgered CLI invocation — the ``tableN`` commands, ``all``,
``generate``, ``claims``, ``fuzz``, and ``bench`` — appends one JSON record
to ``<ledger dir>/ledger.jsonl``.  The directory defaults to
``~/.local/state/repro-fsatpg/ledger`` and is overridden by the
``REPRO_LEDGER_DIR`` environment variable (set it to an empty string, or
pass ``--no-ledger``, to disable recording entirely).

A record captures what the run *was* (command, semantic argument hash,
circuits, git SHA) and what it *did* (wall seconds, per-stage span seconds,
metrics snapshot, per-command results such as test counts and fault
coverage, cache traffic, decision-provenance summary).  Records never
contain host names, user names, or absolute paths.

Determinism contract: for a deterministic workload the record is
byte-identical across runs and across ``--jobs`` values after
:func:`normalized` strips the volatile fields (timestamp, git SHA, argv,
jobs, timings, cache traffic).  Scheduling-shaped metrics — per-chunk
fault-simulation counters whose values depend on how the sweep was cut —
are excluded at write time (:data:`SCHEDULING_METRICS`), so the ``metrics``
block itself is jobs-invariant.

Reading is forgiving: a corrupted or truncated line (e.g. from an
interrupted append) is skipped with a warning, never a crash — an
append-only log must stay readable after a partial write.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import time
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.obs.log import get_logger

__all__ = [
    "LEDGER_SCHEMA",
    "LEDGER_ENV",
    "LEDGER_FILENAME",
    "SCHEDULING_METRICS",
    "SCHEDULING_METRIC_PREFIXES",
    "ledger_dir",
    "ledger_enabled",
    "args_hash",
    "git_sha",
    "curated_metrics",
    "build_record",
    "append_record",
    "read_records",
    "prune_records",
    "normalized",
    "validate_record",
]

#: Schema tag stored in every record; bump on layout changes.
#:
#: * ``/1`` — initial layout (PR 5).
#: * ``/2`` — adds the required ``resources`` block (CPU user/system
#:   seconds and max-RSS KiB for the whole invocation, workers included).
LEDGER_SCHEMA = "repro-fsatpg-ledger/2"

LEDGER_ENV = "REPRO_LEDGER_DIR"
LEDGER_FILENAME = "ledger.jsonl"

#: Metric names whose values depend on how the parallel sweep was chunked
#: (one entry per fault chunk / compiled universe).  They stay available in
#: ``--metrics-out`` snapshots but are dropped from ledger records so the
#: ``metrics`` block is identical for serial and ``--jobs N`` runs.
SCHEDULING_METRICS: frozenset[str] = frozenset(
    {
        "faultsim.batches",
        "faultsim.batch_detected",
        "faultsim.compiled_calls",
        "faultsim.compiled_universes",
    }
)

#: Metric-name prefixes that are scheduling-shaped as a family: the pool
#: utilization telemetry (``pool.worker.<i>.busy_s``, ``pool.task_s``, ...)
#: only exists for ``--jobs N`` runs and its values depend on worker count
#: and dispatch order, so the whole namespace is dropped from records.
SCHEDULING_METRIC_PREFIXES: tuple[str, ...] = ("pool.",)

_LOG = get_logger("ledger")


def ledger_dir() -> Path | None:
    """The active ledger directory, or ``None`` when recording is disabled.

    ``REPRO_LEDGER_DIR`` overrides the default; an empty value disables the
    ledger (useful for hermetic scripts and CI steps that must not write
    outside the workspace).
    """
    value = os.environ.get(LEDGER_ENV)
    if value is not None:
        return Path(value).expanduser() if value.strip() else None
    return Path.home() / ".local" / "state" / "repro-fsatpg" / "ledger"


def ledger_enabled() -> bool:
    return ledger_dir() is not None


def args_hash(command: str, values: Mapping[str, Any]) -> str:
    """Stable hash of a run's *semantic* arguments.

    Callers pass only knobs that change results (circuit set, UIO/transfer
    bounds, fanin, ...) — never scheduling knobs like ``--jobs`` or
    ``--cache-dir`` — so serial and parallel runs of the same workload
    share a hash and ``history``/``regress`` can group them.
    """
    canonical = json.dumps(
        {"command": command, **{k: values[k] for k in sorted(values)}},
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


_GIT_SHA: str | None = None


def git_sha() -> str:
    """The current checkout's HEAD SHA, cached per process.

    Falls back to the ``REPRO_GIT_SHA`` environment variable (CI images
    without a ``.git`` directory) and then to ``"unknown"`` — the ledger
    must keep working outside a repository.
    """
    global _GIT_SHA
    if _GIT_SHA is None:
        sha = os.environ.get("REPRO_GIT_SHA", "").strip()
        if not sha:
            try:
                sha = subprocess.run(
                    ["git", "rev-parse", "HEAD"],
                    capture_output=True,
                    text=True,
                    timeout=5,
                    check=False,
                ).stdout.strip()
            except (OSError, subprocess.SubprocessError):
                sha = ""
        _GIT_SHA = sha or "unknown"
    return _GIT_SHA


def curated_metrics(snapshot: Mapping[str, Any]) -> dict[str, Any]:
    """A metrics snapshot minus the scheduling-shaped names."""
    return {
        name: snapshot[name]
        for name in sorted(snapshot)
        if name not in SCHEDULING_METRICS
        and not name.startswith(SCHEDULING_METRIC_PREFIXES)
    }


def build_record(
    command: str,
    *,
    semantic_args: Mapping[str, Any],
    argv: Iterable[str] = (),
    circuits: Iterable[str] = (),
    jobs: int = 1,
    exit_code: int = 0,
    wall_s: float = 0.0,
    stage_seconds: Mapping[str, float] | None = None,
    metrics: Mapping[str, Any] | None = None,
    results: Mapping[str, Any] | None = None,
    provenance: Mapping[str, Any] | None = None,
    cache_hits: int = 0,
    cache_misses: int = 0,
    resources: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble one schema-conformant ledger record.

    ``resources`` is a :meth:`repro.obs.resources.ResourceUsage.to_dict`
    mapping for the invocation (the CLI samples a
    :class:`~repro.obs.resources.UsageProbe` spanning the command, which
    folds in worker-process deltas).  When omitted, the process's own
    cumulative usage is recorded so every record stays schema-valid.
    """
    if resources is None:
        from repro.obs.resources import process_usage

        resources = process_usage().to_dict()
    traffic = cache_hits + cache_misses
    record: dict[str, Any] = {
        "schema": LEDGER_SCHEMA,
        "ts": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "git_sha": git_sha(),
        "command": command,
        "args_hash": args_hash(command, semantic_args),
        "argv": list(argv),
        "circuits": list(circuits),
        "jobs": int(jobs),
        "exit_code": int(exit_code),
        "wall_s": float(wall_s),
        "stage_seconds": {
            name: float(seconds)
            for name, seconds in sorted((stage_seconds or {}).items())
        },
        "cache": {
            "hits": int(cache_hits),
            "misses": int(cache_misses),
            "hit_rate": (cache_hits / traffic) if traffic else 0.0,
        },
        "resources": {
            "cpu_user_s": float(resources.get("cpu_user_s", 0.0)),
            "cpu_system_s": float(resources.get("cpu_system_s", 0.0)),
            "max_rss_kb": int(resources.get("max_rss_kb", 0)),
        },
        "metrics": curated_metrics(metrics or {}),
        "results": dict(results or {}),
    }
    if provenance:
        record["provenance"] = dict(provenance)
    return record


def append_record(record: Mapping[str, Any],
                  directory: Path | None = None) -> Path | None:
    """Append one record to the ledger; returns the file written.

    A disabled ledger (or any I/O failure) returns ``None`` — recording
    must never break the run that produced the data.
    """
    root = directory if directory is not None else ledger_dir()
    if root is None:
        return None
    try:
        root.mkdir(parents=True, exist_ok=True)
        path = root / LEDGER_FILENAME
        line = json.dumps(record, sort_keys=True, default=str)
        with open(path, "a") as handle:
            handle.write(line + "\n")
    except OSError as exc:
        _LOG.warning(f"could not append ledger record: {exc}")
        return None
    _LOG.debug("ledger record appended", command=record.get("command"),
               path=str(path))
    return path


def read_records(directory: Path | None = None) -> list[dict[str, Any]]:
    """Every parseable record, oldest first.

    Corrupted or truncated lines are skipped with a warning — an
    append-only log interrupted mid-write must stay readable.
    """
    root = directory if directory is not None else ledger_dir()
    if root is None:
        return []
    path = root / LEDGER_FILENAME
    if not path.exists():
        return []
    records: list[dict[str, Any]] = []
    try:
        text = path.read_text()
    except OSError as exc:
        _LOG.warning(f"could not read ledger: {exc}")
        return []
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            _LOG.warning(f"skipping corrupt ledger line {number} in {path}")
            continue
        if not isinstance(record, dict):
            _LOG.warning(f"skipping non-object ledger line {number} in {path}")
            continue
        records.append(record)
    return records


def prune_records(
    keep: int, directory: Path | None = None
) -> dict[str, int] | None:
    """Rewrite the ledger keeping the newest ``keep`` records per circuit.

    Long-lived ledger directories grow without bound (one record per
    invocation, forever); pruning bounds them while preserving enough
    history per circuit for ``history``/``diff``/anomaly detection.  A
    record naming several circuits survives if it is among the newest
    ``keep`` for *any* of them; a record naming none (e.g. a failed run
    recorded before circuit resolution) is grouped under its command name
    instead.  Surviving lines are rewritten byte-for-byte (no re-
    serialization), corrupt lines are dropped and counted, and the rewrite
    is atomic (temp file + :func:`os.replace`) so a reader never sees a
    half-pruned log.

    Returns ``{"kept": ..., "pruned": ..., "corrupt": ...}``, or ``None``
    when the ledger is disabled or the file does not exist.
    """
    if keep < 1:
        raise ValueError(f"--keep must be >= 1, got {keep}")
    root = directory if directory is not None else ledger_dir()
    if root is None:
        return None
    path = root / LEDGER_FILENAME
    if not path.exists():
        return None
    try:
        text = path.read_text()
    except OSError as exc:
        _LOG.warning(f"could not read ledger for pruning: {exc}")
        return None
    parsed: list[tuple[str, dict[str, Any]]] = []
    corrupt = 0
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        try:
            record = json.loads(stripped)
        except json.JSONDecodeError:
            corrupt += 1
            continue
        if not isinstance(record, dict):
            corrupt += 1
            continue
        parsed.append((stripped, record))
    counts: dict[str, int] = {}
    keep_flags: list[bool] = []
    for _, record in reversed(parsed):
        circuits = record.get("circuits")
        groups = (
            [str(name) for name in circuits]
            if isinstance(circuits, list) and circuits
            else [f"command:{record.get('command', '?')}"]
        )
        keep_flags.append(any(counts.get(g, 0) < keep for g in groups))
        for group in groups:
            counts[group] = counts.get(group, 0) + 1
    keep_flags.reverse()
    survivors = [line for (line, _), kept in zip(parsed, keep_flags) if kept]
    temp = path.with_suffix(".jsonl.tmp")
    try:
        with open(temp, "w") as handle:
            for line in survivors:
                handle.write(line + "\n")
        os.replace(temp, path)
    except OSError as exc:
        _LOG.warning(f"could not rewrite ledger: {exc}")
        try:
            temp.unlink()
        except OSError:
            pass
        return None
    summary = {
        "kept": len(survivors),
        "pruned": len(parsed) - len(survivors),
        "corrupt": corrupt,
    }
    _LOG.debug("ledger pruned", **{k: str(v) for k, v in summary.items()})
    return summary


#: Fields stripped by :func:`normalized`: run identity and anything timing-
#: or scheduling-shaped.  ``argv`` and ``jobs`` go too — ``--jobs 2`` and a
#: serial run of the same workload must normalize identically.
_VOLATILE_FIELDS = (
    "ts", "git_sha", "argv", "jobs", "wall_s", "cache", "resources",
)


def normalized(record: Mapping[str, Any]) -> dict[str, Any]:
    """The determinism-comparable view of a record.

    Drops timestamps, SHA, argv, jobs, wall seconds, and cache traffic, and
    reduces ``stage_seconds`` to its sorted stage-name list (the *set* of
    stages executed is part of the contract; their durations are not).
    Two runs of the same workload — serial or ``--jobs N`` — must produce
    byte-identical JSON dumps of this view.
    """
    view = {
        key: value
        for key, value in record.items()
        if key not in _VOLATILE_FIELDS
    }
    view["stage_seconds"] = sorted(record.get("stage_seconds", {}))
    return view


def validate_record(record: Any) -> list[str]:
    """Schema-check one record; returns a list of problems (empty = valid)."""
    problems: list[str] = []
    if not isinstance(record, dict):
        return ["record is not a JSON object"]
    schema = record.get("schema")
    if schema != LEDGER_SCHEMA:
        problems.append(f"schema is {schema!r}, expected {LEDGER_SCHEMA!r}")
    for key, kinds in (
        ("ts", str),
        ("git_sha", str),
        ("command", str),
        ("args_hash", str),
        ("argv", list),
        ("circuits", list),
        ("jobs", int),
        ("exit_code", int),
        ("wall_s", (int, float)),
        ("stage_seconds", dict),
        ("cache", dict),
        ("resources", dict),
        ("metrics", dict),
        ("results", dict),
    ):
        if key not in record:
            problems.append(f"missing required field {key!r}")
        elif not isinstance(record[key], kinds):
            problems.append(
                f"field {key!r} has type {type(record[key]).__name__}"
            )
    stage_seconds = record.get("stage_seconds")
    if isinstance(stage_seconds, dict):
        for name, seconds in stage_seconds.items():
            if not isinstance(seconds, (int, float)) or seconds < 0:
                problems.append(f"stage_seconds[{name!r}] is not a duration")
    cache = record.get("cache")
    if isinstance(cache, dict):
        for key in ("hits", "misses", "hit_rate"):
            if not isinstance(cache.get(key), (int, float)):
                problems.append(f"cache.{key} missing or non-numeric")
    usage = record.get("resources")
    if isinstance(usage, dict):
        for key in ("cpu_user_s", "cpu_system_s", "max_rss_kb"):
            value = usage.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(f"resources.{key} missing or non-numeric")
    circuits = record.get("circuits")
    if isinstance(circuits, list):
        for item in circuits:
            if not isinstance(item, str):
                problems.append("circuits must be a list of names")
                break
    return problems

"""Shared configuration for the table-regeneration benchmarks.

By default the benchmarks cover the small tier plus a few medium circuits so
``pytest benchmarks/ --benchmark-only`` completes in minutes.  Set
``REPRO_FULL=1`` to sweep every circuit of the paper's tables (including
``dvram``/``fetch``/``log``/``rie``/``nucpwr``), which can take hours — the
paper's own Table 5 run took 4.3 days on ``nucpwr``.
"""

from __future__ import annotations

import os

import pytest

from repro.benchmarks import circuit_names

FULL = bool(int(os.environ.get("REPRO_FULL", "0")))

#: circuits benchmarked by default (small tier + representative medium)
DEFAULT_CIRCUITS = tuple(sorted(circuit_names("small"))) + ("bbara", "ex4", "mark1")

#: the full paper list when REPRO_FULL=1
ALL_CIRCUITS = tuple(circuit_names())


def bench_circuits() -> tuple[str, ...]:
    return ALL_CIRCUITS if FULL else DEFAULT_CIRCUITS


def gate_level_circuits() -> tuple[str, ...]:
    """Gate-level tables are costlier; trim the default set further."""
    if FULL:
        return tuple(name for name in ALL_CIRCUITS if name != "nucpwr")
    return tuple(sorted(circuit_names("small")))


@pytest.fixture(scope="session")
def full_mode() -> bool:
    return FULL

"""Static implications: constant nets, blocked observability, and proofs.

Two sound analyses over a combinational netlist, each emitting a
*machine-checkable certificate* that an independent verifier replays
against the netlist:

* :func:`propagate_constants` proves lines constant over **all** input
  patterns.  Each proof is a topologically ordered list of
  :class:`DerivationStep` records naming the rule applied and the premise
  lines; :func:`verify_constant_steps` re-derives every step from the gate
  functions alone.

* :func:`site_observability` proves that a discrepancy originating at a
  given line can never reach a primary output: a forward frontier sweep in
  which propagation through a gate is *blocked* when some side input is a
  proven constant at the gate's controlling value — and that side input is
  itself outside the frontier, so the fault cannot disturb it.  The
  certificate records the blocking (gate, pin) pairs;
  :func:`verify_observability_blocks` replays the sweep trusting nothing.

Soundness notes
---------------
Constants are proven over the full ``2**n`` pattern space, so they hold on
any restricted pattern set (e.g. the reachable-state masks of
:func:`repro.gatelevel.detectability.reachable_state_pattern_mask`).  The
blocking argument is inductive: a line outside the frontier computes its
fault-free value on every pattern, hence a constant side input really is
stuck at its controlling value even in the faulty circuit.  Both analyses
are conservative — they may fail to prove a redundant fault, but a
completed certificate is a theorem, independently checkable and cross-checked
against the exhaustive oracle in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CertificateError
from repro.gatelevel.netlist import Gate, GateType, Netlist

__all__ = [
    "ConstantAnalysis",
    "DerivationStep",
    "controlling_value",
    "propagate_constants",
    "site_observability",
    "verify_constant_steps",
    "verify_observability_blocks",
]

#: Controlling input value per gate kind (a single input at this value
#: forces the output regardless of every other input).
_CONTROLLING_VALUE: dict[GateType, int] = {
    GateType.AND: 0,
    GateType.NAND: 0,
    GateType.OR: 1,
    GateType.NOR: 1,
}

#: Output value forced when a controlling input is present.
_CONTROLLED_OUTPUT: dict[GateType, int] = {
    GateType.AND: 0,
    GateType.NAND: 1,
    GateType.OR: 1,
    GateType.NOR: 0,
}


def controlling_value(kind: GateType) -> int | None:
    """The controlling input value of ``kind``, or ``None`` if it has none."""
    return _CONTROLLING_VALUE.get(kind)


@dataclass(frozen=True)
class DerivationStep:
    """One application of a constant-propagation rule.

    ``premises`` lists the fanin lines whose (already derived) values
    justify the conclusion ``line = value`` under ``rule``:

    ``const-gate``
        ``line`` is a CONST0/CONST1 generator; no premises.
    ``controlling-fanin``
        the single premise holds the gate's controlling value, forcing the
        output.
    ``all-fanins-known``
        every fanin value is derived; the gate function evaluates to
        ``value``.
    ``xor-identity``
        XOR/XNOR whose unknown fanins cancel pairwise (``x ^ x = 0``); the
        premises are the fanins with derived values, whose parity fixes the
        output.
    """

    line: int
    value: int
    rule: str
    premises: tuple[int, ...] = ()

    def to_dict(self) -> dict[str, object]:
        return {
            "line": self.line,
            "value": self.value,
            "rule": self.rule,
            "premises": list(self.premises),
        }


@dataclass(frozen=True)
class ConstantAnalysis:
    """Proven-constant lines and the derivations that prove them."""

    #: ``values[line]`` is 0/1 when proven, ``None`` otherwise.
    values: tuple[int | None, ...]
    steps: tuple[DerivationStep, ...] = field(default=())

    @property
    def constant_lines(self) -> tuple[int, ...]:
        return tuple(
            line for line, value in enumerate(self.values) if value is not None
        )

    def as_dict(self) -> dict[int, int]:
        return {
            line: value
            for line, value in enumerate(self.values)
            if value is not None
        }


def _evaluate_known(kind: GateType, bits: list[int]) -> int:
    """Gate function on fully known 0/1 fanin values."""
    if kind is GateType.BUF:
        return bits[0]
    if kind is GateType.NOT:
        return bits[0] ^ 1
    if kind in (GateType.AND, GateType.NAND):
        value = int(all(bits))
        return value if kind is GateType.AND else value ^ 1
    if kind in (GateType.OR, GateType.NOR):
        value = int(any(bits))
        return value if kind is GateType.OR else value ^ 1
    parity = 0
    for bit in bits:
        parity ^= bit
    return parity if kind is GateType.XOR else parity ^ 1


def _derive_gate(
    gate: Gate, values: list[int | None]
) -> DerivationStep | None:
    """The strongest constant derivable for one gate, or ``None``."""
    kind = gate.kind
    if kind is GateType.CONST0:
        return DerivationStep(gate.index, 0, "const-gate")
    if kind is GateType.CONST1:
        return DerivationStep(gate.index, 1, "const-gate")
    if kind is GateType.INPUT or not gate.fanins:
        return None
    control = _CONTROLLING_VALUE.get(kind)
    if control is not None:
        for fanin in gate.fanins:
            if values[fanin] == control:
                return DerivationStep(
                    gate.index,
                    _CONTROLLED_OUTPUT[kind],
                    "controlling-fanin",
                    (fanin,),
                )
    known = [values[fanin] for fanin in gate.fanins]
    if all(bit is not None for bit in known):
        return DerivationStep(
            gate.index,
            _evaluate_known(kind, [bit for bit in known if bit is not None]),
            "all-fanins-known",
            tuple(gate.fanins),
        )
    if kind in (GateType.XOR, GateType.XNOR):
        parity = 0
        premises: list[int] = []
        unknown_counts: dict[int, int] = {}
        for fanin in gate.fanins:
            bit = values[fanin]
            if bit is None:
                unknown_counts[fanin] = unknown_counts.get(fanin, 0) + 1
            else:
                parity ^= bit
                premises.append(fanin)
        if all(count % 2 == 0 for count in unknown_counts.values()):
            if kind is GateType.XNOR:
                parity ^= 1
            return DerivationStep(
                gate.index, parity, "xor-identity", tuple(premises)
            )
    return None


def propagate_constants(netlist: Netlist) -> ConstantAnalysis:
    """Prove lines constant over all input patterns (single forward sweep).

    Every rule reads only fanin values, and gate order is topological, so
    one pass reaches the fixpoint.
    """
    values: list[int | None] = [None] * netlist.n_gates
    steps: list[DerivationStep] = []
    for gate in netlist.gates:
        step = _derive_gate(gate, values)
        if step is not None:
            values[gate.index] = step.value
            steps.append(step)
    return ConstantAnalysis(tuple(values), tuple(steps))


def verify_constant_steps(
    netlist: Netlist, steps: tuple[DerivationStep, ...]
) -> dict[int, int]:
    """Replay ``steps`` against ``netlist``; raises on any invalid step.

    Returns the verified ``line -> value`` mapping.  Nothing from the
    original analysis is trusted: each step's rule is re-checked against
    the gate it names, using only previously verified values.
    """
    verified: dict[int, int] = {}
    gates = netlist.gates
    for step in steps:
        if not 0 <= step.line < len(gates):
            raise CertificateError(f"step names nonexistent line {step.line}")
        if step.value not in (0, 1):
            raise CertificateError(f"step value {step.value!r} is not a bit")
        gate = gates[step.line]
        replayed = _replay_step(gate, step, verified)
        if replayed != step.value:
            raise CertificateError(
                f"step for line {step.line} claims {step.value}, "
                f"rule {step.rule!r} derives {replayed}"
            )
        verified[step.line] = step.value
    return verified


def _replay_step(
    gate: Gate, step: DerivationStep, verified: dict[int, int]
) -> int:
    kind = gate.kind
    if step.rule == "const-gate":
        if kind is GateType.CONST0:
            return 0
        if kind is GateType.CONST1:
            return 1
        raise CertificateError(
            f"line {step.line} is {kind.value}, not a constant generator"
        )
    if step.rule == "controlling-fanin":
        if len(step.premises) != 1 or step.premises[0] not in gate.fanins:
            raise CertificateError(
                f"line {step.line}: premise is not a fanin of the gate"
            )
        control = _CONTROLLING_VALUE.get(kind)
        if control is None:
            raise CertificateError(
                f"line {step.line}: {kind.value} has no controlling value"
            )
        if verified.get(step.premises[0]) != control:
            raise CertificateError(
                f"line {step.line}: premise {step.premises[0]} is not a "
                f"verified constant {control}"
            )
        return _CONTROLLED_OUTPUT[kind]
    if step.rule == "all-fanins-known":
        if kind in (GateType.INPUT, GateType.CONST0, GateType.CONST1):
            raise CertificateError(
                f"line {step.line}: {kind.value} has no fanins to evaluate"
            )
        bits: list[int] = []
        for fanin in gate.fanins:
            if fanin not in verified:
                raise CertificateError(
                    f"line {step.line}: fanin {fanin} has no verified value"
                )
            bits.append(verified[fanin])
        return _evaluate_known(kind, bits)
    if step.rule == "xor-identity":
        if kind not in (GateType.XOR, GateType.XNOR):
            raise CertificateError(
                f"line {step.line}: xor-identity on a {kind.value} gate"
            )
        parity = 0
        unknown_counts: dict[int, int] = {}
        for fanin in gate.fanins:
            if fanin in verified:
                parity ^= verified[fanin]
            else:
                unknown_counts[fanin] = unknown_counts.get(fanin, 0) + 1
        if any(count % 2 for count in unknown_counts.values()):
            raise CertificateError(
                f"line {step.line}: unknown fanins do not cancel pairwise"
            )
        return parity if kind is GateType.XOR else parity ^ 1
    raise CertificateError(f"unknown derivation rule {step.rule!r}")


# ----------------------------------------------------------- observability


def site_observability(
    netlist: Netlist,
    constants: ConstantAnalysis,
    site: int,
) -> tuple[bool, tuple[tuple[int, int], ...]]:
    """Can a discrepancy originating at line ``site`` reach an output?

    Returns ``(observable, blocks)``.  ``observable`` is a conservative
    "possibly yes"; ``False`` is a proof of unobservability whose evidence
    is ``blocks`` — the (gate, pin) pairs where propagation was cut by a
    constant controlling side input outside the deviation frontier.
    """
    values = constants.values
    outputs = set(netlist.outputs)
    deviated = {site}
    blocks: list[tuple[int, int]] = []
    for gate in netlist.gates[site + 1 :]:
        if not any(fanin in deviated for fanin in gate.fanins):
            continue
        control = _CONTROLLING_VALUE.get(gate.kind)
        blocking_pin = None
        if control is not None:
            for pin, fanin in enumerate(gate.fanins):
                if fanin in deviated:
                    continue
                if values[fanin] == control:
                    blocking_pin = pin
                    break
        if blocking_pin is None:
            deviated.add(gate.index)
        else:
            blocks.append((gate.index, blocking_pin))
    observable = bool(deviated & outputs)
    if observable:
        return True, ()
    return False, tuple(blocks)


def verify_observability_blocks(
    netlist: Netlist,
    site: int,
    blocks: tuple[tuple[int, int], ...],
    verified_constants: dict[int, int],
) -> None:
    """Check that ``blocks`` proves line ``site`` unobservable.

    Replays the frontier sweep of :func:`site_observability`, but every
    claimed block is verified on the spot: the named pin must carry a
    verified constant at the gate's controlling value, and that pin's line
    must be outside the frontier (so the fault cannot disturb it).  Raises
    :class:`~repro.errors.CertificateError` if any claim fails or a primary
    output still ends up in the frontier.
    """
    gates = netlist.gates
    if not 0 <= site < len(gates):
        raise CertificateError(f"unobservability site {site} does not exist")
    block_at: dict[int, int] = {}
    for gate_index, pin in blocks:
        if gate_index in block_at:
            raise CertificateError(f"duplicate block for gate {gate_index}")
        block_at[gate_index] = pin
    outputs = set(netlist.outputs)
    if site in outputs:
        raise CertificateError(
            f"site {site} is a primary output; trivially observable"
        )
    deviated = {site}
    for gate in gates[site + 1 :]:
        if not any(fanin in deviated for fanin in gate.fanins):
            continue
        pin = block_at.get(gate.index)
        if pin is None:
            deviated.add(gate.index)
            if gate.index in outputs:
                raise CertificateError(
                    f"deviation from site {site} reaches output line "
                    f"{gate.index}"
                )
            continue
        if not 0 <= pin < gate.n_fanins:
            raise CertificateError(
                f"block names nonexistent pin {pin} of gate {gate.index}"
            )
        control = _CONTROLLING_VALUE.get(gate.kind)
        if control is None:
            raise CertificateError(
                f"gate {gate.index} ({gate.kind.value}) has no controlling "
                "value; cannot block"
            )
        blocking_line = gate.fanins[pin]
        if blocking_line in deviated:
            raise CertificateError(
                f"blocking line {blocking_line} of gate {gate.index} is "
                "inside the deviation frontier"
            )
        if verified_constants.get(blocking_line) != control:
            raise CertificateError(
                f"blocking line {blocking_line} of gate {gate.index} is not "
                f"a verified constant {control}"
            )
    remaining = deviated & outputs
    if remaining:
        raise CertificateError(
            f"deviation from site {site} reaches outputs {sorted(remaining)}"
        )

"""Table 6 benchmark: gate-level stuck-at and bridging fault grading.

Per circuit, times the complete grading pipeline and asserts the paper's
headline result: the functional tests detect **every detectable fault** of
both models; sub-100% coverage rows are exactly the provably redundant
faults.
"""

from __future__ import annotations

import pytest

from conftest import gate_level_circuits
from repro.benchmarks import load_circuit, load_kiss_machine
from repro.core.compaction import select_effective_tests
from repro.core.generator import generate_tests
from repro.gatelevel.bridging import enumerate_bridging_faults
from repro.gatelevel.compiled import CompiledFaultSimulator
from repro.gatelevel.detectability import detectable_faults
from repro.gatelevel.scan import ScanCircuit
from repro.gatelevel.stuck_at import collapse_stuck_at
from repro.gatelevel.synthesis import SynthesisOptions

BRIDGING_PAIR_LIMIT = 200


def grade(name: str, kind: str):
    table = load_circuit(name)
    tests = generate_tests(table).test_set
    circuit = ScanCircuit.from_machine(
        load_kiss_machine(name), SynthesisOptions(max_fanin=4)
    )
    if kind == "stuck-at":
        faults = sorted(set(collapse_stuck_at(circuit.netlist).values()))
    else:
        faults = enumerate_bridging_faults(
            circuit.netlist, limit=BRIDGING_PAIR_LIMIT, seed=name
        )
    if not faults:
        return None, None
    detectable, undetectable = detectable_faults(circuit.netlist, faults)
    simulator = CompiledFaultSimulator(circuit, table, faults)
    selection = select_effective_tests(
        tests,
        simulator.make_effective_simulator(),
        faults,
        stop_when_exhausted=undetectable,
    )
    return selection, detectable


@pytest.mark.parametrize("name", gate_level_circuits())
def test_stuck_at_grading(benchmark, name):
    selection, detectable = benchmark.pedantic(
        grade, args=(name, "stuck-at"), rounds=1, iterations=1
    )
    assert selection.detected == frozenset(detectable)
    assert selection.n_effective <= len(selection.rows)


@pytest.mark.parametrize("name", gate_level_circuits())
def test_bridging_grading(benchmark, name):
    selection, detectable = benchmark.pedantic(
        grade, args=(name, "bridging"), rounds=1, iterations=1
    )
    if selection is None:
        pytest.skip("no qualifying bridging pairs on this netlist")
    assert selection.detected == frozenset(detectable)

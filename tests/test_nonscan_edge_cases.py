"""Edge cases of the non-scan generator and simulator."""

from __future__ import annotations

import pytest

from repro.core.config import GeneratorConfig
from repro.fsm.builders import StateTableBuilder
from repro.nonscan.generator import generate_nonscan_sequence
from repro.nonscan.simulate import simulate_nonscan_faults
from repro.core.faultmodel import StateTransitionFault


def permutation_machine():
    builder = StateTableBuilder(1, 1)
    builder.add("a", 0, "b", 0)
    builder.add("a", 1, "a", 0)
    builder.add("b", 0, "a", 1)
    builder.add("b", 1, "b", 1)
    return builder.build()


class TestResetAssumption:
    def test_no_synchronizer_and_no_reset_rejected(self):
        with pytest.raises(ValueError, match="reset"):
            generate_nonscan_sequence(
                permutation_machine(), assume_reset=False
            )

    def test_no_synchronizer_with_reset_starts_at_zero(self):
        result = generate_nonscan_sequence(permutation_machine())
        assert result.start_state == 0
        assert not result.used_synchronizing

    def test_custom_config_uio_bound(self):
        table = permutation_machine()
        short = generate_nonscan_sequence(
            table, GeneratorConfig(max_uio_length=0)
        )
        # With L = 0, no UIOs exist: nothing can be verified.
        assert not short.verified
        assert short.exercised_only or short.unreachable


class TestWorstCaseStartSemantics:
    def test_worst_case_start_detection_is_conservative(self):
        """With assume_reset=False, detection must hold from every start
        pair; a fault caught only from some starts does not count."""
        table = permutation_machine()
        fault = StateTransitionFault(0, 0, 0, 1)  # a --0--> b output flips
        sequence = (0,)
        relaxed = simulate_nonscan_faults(table, sequence, [fault], assume_reset=True)
        strict = simulate_nonscan_faults(table, sequence, [fault], assume_reset=False)
        assert fault in relaxed.detected
        # From start state b the sequence never exercises the faulty entry.
        assert fault in strict.undetected

    def test_empty_sequence_detects_nothing(self):
        table = permutation_machine()
        fault = StateTransitionFault(0, 0, 0, 1)
        result = simulate_nonscan_faults(table, (), [fault])
        assert fault in result.undetected

    def test_empty_fault_list(self):
        table = permutation_machine()
        result = simulate_nonscan_faults(table, (0, 1), [])
        assert result.n_faults == 0
        assert result.coverage_pct == 100.0

"""Seeded random generators for machines and fault universes.

Everything the fuzzer feeds to an oracle is produced here, deterministically
from a :class:`MachineSpec` — the same ``(variant, sizes, seed)`` always
yields the same machine, so any failure reported by the CLI can be
reproduced from the numbers in its report alone.

Variants
--------
``dense``
    Every table entry drawn independently (:func:`repro.fsm.builders.
    random_dense_table`).  Explores corners cube-structured machines cannot
    reach: heavy next-state fan-in, states reachable under exactly one
    combination, equivalent-state clusters.
``strongly-connected``
    Dense, plus one redirected column per state embedding the cycle
    ``s -> s + 1`` — every state reachable from every other, the shape the
    transfer-sequence machinery is most exercised by.
``cube``
    Cube-structured like real KISS benchmarks
    (:func:`repro.fsm.builders.random_cube_machine`).
``uio-poor``
    Cube-structured with sparse outputs (high zero bias), which starves
    states of UIO sequences the way the MCNC circuits do — stressing the
    postpone rule and the length-1 fallback of the generator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.errors import FuzzError
from repro.fsm.builders import random_cube_machine, random_dense_table
from repro.fsm.state_table import StateTable
from repro.gatelevel.bridging import BridgingFault, enumerate_bridging_faults
from repro.gatelevel.scan import ScanCircuit
from repro.gatelevel.stuck_at import StuckAtFault, collapse_stuck_at

__all__ = [
    "MACHINE_VARIANTS",
    "MachineSpec",
    "generate_machine",
    "random_gate_faults",
    "spec_stream",
]

Fault = StuckAtFault | BridgingFault

#: Generator variants, in the order the spec stream cycles through them.
MACHINE_VARIANTS: tuple[str, ...] = (
    "dense",
    "strongly-connected",
    "cube",
    "uio-poor",
)


@dataclass(frozen=True)
class MachineSpec:
    """Complete recipe for one generated machine (a pure value)."""

    variant: str
    n_states: int
    n_inputs: int
    n_outputs: int
    seed: int

    def __post_init__(self) -> None:
        if self.variant not in MACHINE_VARIANTS:
            raise FuzzError(
                f"unknown machine variant {self.variant!r}; "
                f"known: {', '.join(MACHINE_VARIANTS)}"
            )
        if self.n_states < 1:
            raise FuzzError("a machine spec needs at least one state")
        if self.n_inputs < 0 or self.n_outputs < 0:
            raise FuzzError("machine spec widths must be non-negative")

    def label(self) -> str:
        """Compact, filename-safe identity used in reports and case names."""
        return (
            f"{self.variant}-s{self.n_states}i{self.n_inputs}"
            f"o{self.n_outputs}-{self.seed:08x}"
        )


def generate_machine(spec: MachineSpec) -> StateTable:
    """The completely specified Mealy machine described by ``spec``."""
    if spec.variant == "dense":
        table = random_dense_table(
            spec.n_inputs, spec.n_states, spec.n_outputs, spec.seed
        )
    elif spec.variant == "strongly-connected":
        table = random_dense_table(
            spec.n_inputs,
            spec.n_states,
            spec.n_outputs,
            spec.seed,
            strongly_connected=True,
        )
    elif spec.variant == "cube":
        table = random_cube_machine(
            spec.n_inputs, spec.n_states, spec.n_outputs, spec.seed
        ).to_state_table()
    else:  # uio-poor
        table = random_cube_machine(
            spec.n_inputs,
            spec.n_states,
            spec.n_outputs,
            spec.seed,
            output_zero_bias=0.85,
        ).to_state_table()
    return table.renamed(spec.label())


def spec_stream(
    n_cases: int,
    seed: int,
    max_states: int = 10,
    max_inputs: int = 3,
    max_outputs: int = 3,
) -> Iterator[MachineSpec]:
    """A deterministic stream of ``n_cases`` machine specs.

    Sizes are drawn uniformly with floors of one state, one input bit, and
    one output bit (zero-width machines cannot round-trip through the KISS
    corpus format; the Hypothesis strategies cover those corners instead).
    """
    if n_cases < 0:
        raise FuzzError("n_cases must be non-negative")
    if max_states < 1 or max_inputs < 1 or max_outputs < 1:
        raise FuzzError("spec stream bounds must be at least 1")
    rng = random.Random(f"repro-fuzz-stream:{seed}")
    for index in range(n_cases):
        variant = MACHINE_VARIANTS[index % len(MACHINE_VARIANTS)]
        yield MachineSpec(
            variant,
            rng.randint(1, max_states),
            rng.randint(1, max_inputs),
            rng.randint(1, max_outputs),
            rng.getrandbits(32),
        )


def random_gate_faults(
    circuit: ScanCircuit,
    seed: int | str,
    bridging_limit: int = 16,
) -> list[Fault]:
    """A deterministic mixed stuck-at + bridging universe for ``circuit``.

    Collapsed stuck-at representatives plus a seeded sample of paper-
    condition bridging faults, in a stable order (stuck-at first), so the
    same ``(circuit, seed)`` always produces the same universe.
    """
    faults: list[Fault] = sorted(set(collapse_stuck_at(circuit.netlist).values()))
    faults.extend(
        enumerate_bridging_faults(circuit.netlist, limit=bridging_limit, seed=seed)
    )
    return faults

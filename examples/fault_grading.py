#!/usr/bin/env python
"""Full gate-level fault grading of functional tests (paper Tables 3/6/7).

Runs the complete evaluation pipeline on one benchmark:

* synthesize a multi-level full-scan implementation,
* enumerate collapsed stuck-at faults and paper-condition bridging faults,
* prove which faults are detectable at all (exhaustive combinational oracle),
* fault-simulate the functional tests longest-first with fault dropping,
* keep only the *effective* tests and compare three test-application costs:
  per-transition baseline, all functional tests, effective subset only.

Also cross-grades the explicit single state-transition fault model, closing
the loop between the functional fault model and the gate-level one.

Run:  python examples/fault_grading.py [circuit]
"""

import sys

from repro import generate_tests, load_circuit, load_kiss_machine
from repro.core.compaction import select_effective_tests
from repro.core.faultmodel import sample_faults, simulate_functional_faults
from repro.core.testset import baseline_clock_cycles
from repro.gatelevel.bridging import enumerate_bridging_faults
from repro.gatelevel.compiled import CompiledFaultSimulator
from repro.gatelevel.detectability import detectable_faults
from repro.gatelevel.scan import ScanCircuit
from repro.gatelevel.stuck_at import collapse_stuck_at
from repro.gatelevel.synthesis import SynthesisOptions


def grade(name: str) -> None:
    table = load_circuit(name)
    result = generate_tests(table)
    circuit = ScanCircuit.from_machine(
        load_kiss_machine(name), SynthesisOptions(max_fanin=4)
    )
    circuit.verify_against(table)
    print(f"circuit {name}: {circuit.netlist.n_gates} gates, "
          f"{result.n_tests} functional tests")
    print()

    universes = {
        "stuck-at": sorted(set(collapse_stuck_at(circuit.netlist).values())),
        "bridging": enumerate_bridging_faults(circuit.netlist, limit=500, seed=name),
    }
    effective_cycles = {}
    for label, faults in universes.items():
        if not faults:
            print(f"{label}: no qualifying faults on this netlist")
            continue
        detectable, undetectable = detectable_faults(circuit.netlist, faults)
        simulator = CompiledFaultSimulator(circuit, table, faults)
        selection = select_effective_tests(
            result.test_set,
            simulator.make_effective_simulator(),
            faults,
            stop_when_exhausted=undetectable,
        )
        complete = selection.detected == frozenset(detectable)
        print(f"{label} faults: {len(faults)} total, "
              f"{len(undetectable)} provably undetectable (redundant)")
        print(f"  coverage: {selection.coverage_pct:.2f}% "
              f"({'all detectable faults detected' if complete else 'INCOMPLETE'})")
        print(f"  effective tests: {selection.n_effective} of {result.n_tests} "
              f"(total length {selection.effective_length})")
        effective_cycles[label] = selection.effective.clock_cycles()
        print()

    base = baseline_clock_cycles(table.n_state_variables, table.n_transitions)
    funct = result.clock_cycles()
    print("test application time (clock cycles):")
    print(f"  per-transition baseline : {base:8d}  100.00%")
    print(f"  all functional tests    : {funct:8d}  {100.0*funct/base:6.2f}%")
    for label, cycles in effective_cycles.items():
        print(f"  {label} effective only ".ljust(26) +
              f": {cycles:8d}  {100.0*cycles/base:6.2f}%")
    print()

    st_faults = sample_faults(table, 100, seed=name)
    st_result = simulate_functional_faults(table, result.test_set, st_faults)
    print(f"explicit state-transition faults (sampled {st_result.n_faults}): "
          f"{st_result.coverage_pct:.2f}% detected")


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "beecount"
    grade(name)


if __name__ == "__main__":
    main()

"""Unit tests for effective-test selection and test combining."""

from __future__ import annotations

import pytest

from repro.core.baseline import per_transition_tests
from repro.core.compaction import combine_tests, select_effective_tests
from repro.core.coverage import verify_test_set
from repro.errors import GenerationError


def fake_simulator(detection_map):
    """simulate(test, remaining) driven by {inputs: faults} lookup."""

    def simulate(test, remaining):
        return set(detection_map.get(test.inputs, ())) & set(remaining)

    return simulate


class TestSelectEffective:
    def test_longest_first_order(self, lion_result):
        selection = select_effective_tests(
            lion_result.test_set, lambda t, r: set(), ["f1"]
        )
        lengths = [test.length for test, _, _ in selection.rows]
        assert lengths == sorted(lengths, reverse=True)

    def test_effective_flag_tracks_new_detections(self, lion_result):
        tests = lion_result.test_set
        longest = tests.by_decreasing_length()[0]
        second = tests.by_decreasing_length()[1]
        mapping = {longest.inputs: {"a"}, second.inputs: {"a"}}
        selection = select_effective_tests(
            tests, fake_simulator(mapping), {"a"}
        )
        assert selection.n_effective == 1
        assert selection.effective.tests[0] is longest

    def test_undetectable_faults_never_simulated(self, lion_result):
        calls = []

        def simulate(test, remaining):
            calls.append(set(remaining))
            return set()

        select_effective_tests(
            lion_result.test_set, simulate, {"a", "dead"}, stop_when_exhausted={"dead"}
        )
        assert all("dead" not in remaining for remaining in calls)

    def test_skips_simulation_once_exhausted(self, lion_result):
        calls = []
        longest = lion_result.test_set.by_decreasing_length()[0]

        def simulate(test, remaining):
            calls.append(test)
            return {"a"}

        selection = select_effective_tests(
            lion_result.test_set, simulate, {"a"}
        )
        assert calls == [longest]
        assert selection.coverage_pct == 100.0

    def test_rows_cover_all_tests(self, lion_result):
        selection = select_effective_tests(
            lion_result.test_set, lambda t, r: set(), {"a"}
        )
        assert len(selection.rows) == lion_result.n_tests

    def test_simulator_reporting_foreign_faults_rejected(self, lion_result):
        with pytest.raises(GenerationError):
            select_effective_tests(
                lion_result.test_set, lambda t, r: {"other"}, {"a"}
            )

    def test_empty_universe(self, lion_result):
        selection = select_effective_tests(
            lion_result.test_set, lambda t, r: set(), ()
        )
        assert selection.n_effective == 0
        assert selection.coverage_pct == 100.0


class TestCombineTests:
    def test_unconstrained_combination_chains_matching_endpoints(self, lion):
        baseline = per_transition_tests(lion)
        combined = combine_tests(baseline)
        assert combined.n_tests < baseline.n_tests
        # Total applied vectors never change; only scans disappear.
        assert combined.total_length == baseline.total_length
        for test in combined:
            test.check_consistency(lion)

    def test_combination_reduces_clock_cycles(self, lion):
        baseline = per_transition_tests(lion)
        combined = combine_tests(baseline)
        assert combined.clock_cycles() < baseline.clock_cycles()

    def test_strict_evaluator_blocks_coverage_loss(self, lion):
        baseline = per_transition_tests(lion)

        def coverage(test_set):
            return len(verify_test_set(lion, test_set).verified)

        combined = combine_tests(baseline, evaluate=coverage)
        assert coverage(combined) == coverage(baseline)

    def test_generated_tests_combinable(self, lion, lion_result):
        combined = combine_tests(lion_result.test_set)
        assert combined.n_tests <= lion_result.n_tests
        report = verify_test_set(lion, combined)
        assert report.exercised >= verify_test_set(
            lion, lion_result.test_set
        ).exercised

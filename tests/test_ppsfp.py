"""Tests for the pattern-parallel (PPSFP) fault-sim engine and dispatch.

The load-bearing property throughout is *bit-identity*: for any universe
and any test set, :class:`PpsfpSimulator` must produce exactly the detect
masks of the compiled big-int engine — the engine choice may only ever
change speed.  The pinned test sweeps every bundled benchmark circuit with
a deterministic fault subset so a table-build bug on any gate kind, fanin
shape, or pattern width fails loudly.
"""

from __future__ import annotations

import random

import pytest

from repro.benchmarks import circuit_names, load_circuit, load_kiss_machine
from repro.core.config import (
    DEFAULT_PPSFP_CELL_BUDGET,
    FaultSimConfig,
    adaptive_batch_bits,
)
from repro.core.generator import generate_tests
from repro.core.testset import ScanTest
from repro.errors import FaultSimulationError
from repro.gatelevel.bridging import BridgeKind, BridgingFault, enumerate_bridging_faults
from repro.gatelevel.compiled import CompiledFaultSimulator
from repro.gatelevel.dispatch import make_fault_simulator
from repro.gatelevel.ppsfp import PpsfpSimulator
from repro.gatelevel.scan import ScanCircuit
from repro.gatelevel.stuck_at import StuckAtFault, collapse_stuck_at
from repro.gatelevel.synthesis import SynthesisOptions

#: Cap on fault-rows x patterns for the pinned all-circuits sweep; keeps
#: the widest machines (2^18 patterns) to a few representative faults.
_PINNED_CELL_BUDGET = 1 << 20


def _synthesize(name):
    table = load_circuit(name)
    circuit = ScanCircuit.from_machine(
        load_kiss_machine(name), SynthesisOptions(max_fanin=4)
    )
    return table, circuit


def _walk_tests(table, n_tests=3, length=6, seed="ppsfp"):
    """Deterministic scan tests: seeded random walks through the table."""
    rng = random.Random(f"{seed}:{table.name}")
    tests = []
    for _ in range(n_tests):
        initial = rng.randrange(table.n_states)
        inputs = tuple(
            rng.randrange(table.n_input_combinations) for _ in range(length)
        )
        tests.append(ScanTest(initial, inputs, table.final_state(initial, inputs)))
    return tests


def _mixed_universe(circuit, max_bridges=6):
    stuck = sorted(set(collapse_stuck_at(circuit.netlist).values()))
    bridges = enumerate_bridging_faults(circuit.netlist)[:max_bridges]
    return stuck + bridges


def _assert_masks_match(circuit, table, faults, tests):
    ppsfp = PpsfpSimulator(circuit, table, faults)
    bigint = CompiledFaultSimulator(circuit, table, faults)
    batched = ppsfp.detect_masks(tests)
    for position, test in enumerate(tests):
        expected = bigint.detect_mask(test)
        assert ppsfp.detect_mask(test) == expected
        assert batched[position] == expected


# ----------------------------------------------------- small-circuit sweep


class TestEquivalenceSmall:
    @pytest.mark.parametrize("name", ["lion", "mc", "dk27", "shiftreg", "train11"])
    def test_generated_tests_full_universe(self, name):
        table, circuit = _synthesize(name)
        faults = _mixed_universe(circuit)
        tests = list(generate_tests(table).test_set)
        _assert_masks_match(circuit, table, faults, tests)

    def test_stuck_only_and_bridge_only(self):
        table, circuit = _synthesize("lion")
        tests = list(generate_tests(table).test_set)
        stuck = sorted(set(collapse_stuck_at(circuit.netlist).values()))
        bridges = enumerate_bridging_faults(circuit.netlist)
        _assert_masks_match(circuit, table, stuck, tests)
        _assert_masks_match(circuit, table, bridges, tests)

    def test_detects_set_matches_compiled(self):
        table, circuit = _synthesize("mc")
        faults = _mixed_universe(circuit)
        ppsfp = PpsfpSimulator(circuit, table, faults)
        bigint = CompiledFaultSimulator(circuit, table, faults)
        for test in generate_tests(table).test_set:
            assert ppsfp.detects(test) == bigint.detects(test)

    def test_effective_simulator_closure(self):
        table, circuit = _synthesize("lion")
        faults = _mixed_universe(circuit)
        remaining = frozenset(faults)
        simulate = PpsfpSimulator(circuit, table, faults).make_effective_simulator()
        reference = CompiledFaultSimulator(
            circuit, table, faults
        ).make_effective_simulator()
        for test in generate_tests(table).test_set:
            assert simulate(test, remaining) == reference(test, remaining)


# --------------------------------------------------- pinned benchmark sweep


class TestPinnedAllCircuits:
    """Every bundled circuit, deterministic fault subset, identical masks."""

    @pytest.mark.parametrize("name", sorted(circuit_names()))
    def test_ppsfp_matches_bigint(self, name):
        table, circuit = _synthesize(name)
        universe = _mixed_universe(circuit)
        patterns = 1 << (circuit.n_state_variables + circuit.n_primary_inputs)
        keep = max(1, min(len(universe), _PINNED_CELL_BUDGET // patterns))
        stride = max(1, len(universe) // keep)
        faults = universe[::stride][:keep]
        tests = _walk_tests(table, seed="ppsfp-pinned")
        _assert_masks_match(circuit, table, faults, tests)


# ------------------------------------------------------- dispatch + edges


class TestDispatchEdgeCases:
    def test_one_pattern_test_set(self):
        table, circuit = _synthesize("lion")
        faults = _mixed_universe(circuit)
        initial = 0
        tests = [ScanTest(initial, (1,), table.final_state(initial, (1,)))]
        _assert_masks_match(circuit, table, faults, tests)

    def test_universe_larger_than_one_word(self):
        table, circuit = _synthesize("bbtas")
        universe = _mixed_universe(circuit, max_bridges=40)
        assert len(universe) > 64  # masks must span multiple uint64 lanes
        tests = _walk_tests(table, n_tests=2)
        _assert_masks_match(circuit, table, universe, tests)

    def test_bridging_only_universe(self):
        table, circuit = _synthesize("mc")
        bridges = enumerate_bridging_faults(circuit.netlist)
        assert bridges
        tests = _walk_tests(table, n_tests=2)
        _assert_masks_match(circuit, table, bridges, tests)

    def test_ppsfp_with_zero_faults(self):
        table, circuit = _synthesize("lion")
        config = FaultSimConfig(engine="ppsfp")
        simulator = make_fault_simulator(circuit, table, [], config)
        assert isinstance(simulator, PpsfpSimulator)
        assert simulator.ones == 0
        for test in _walk_tests(table, n_tests=2):
            assert simulator.detect_mask(test) == 0
            assert simulator.detects(test) == frozenset()

    def test_empty_universe_always_ppsfp(self):
        table, circuit = _synthesize("lion")
        for engine in ("auto", "ppsfp", "bigint"):
            simulator = make_fault_simulator(
                circuit, table, [], FaultSimConfig(engine=engine)
            )
            assert isinstance(simulator, PpsfpSimulator)

    def test_forced_engines_dispatch(self):
        table, circuit = _synthesize("lion")
        faults = [StuckAtFault(0, None, 1)]
        assert isinstance(
            make_fault_simulator(circuit, table, faults, FaultSimConfig(engine="ppsfp")),
            PpsfpSimulator,
        )
        assert isinstance(
            make_fault_simulator(
                circuit, table, faults, FaultSimConfig(engine="bigint")
            ),
            CompiledFaultSimulator,
        )

    def test_auto_rejects_oversized_table(self):
        # nucpwr has 2^18 patterns: a full universe blows the cell budget,
        # so auto must fall back to the big-int engine.
        table, circuit = _synthesize("nucpwr")
        universe = sorted(set(collapse_stuck_at(circuit.netlist).values()))
        config = FaultSimConfig()
        simulator = make_fault_simulator(circuit, table, universe, config)
        assert isinstance(simulator, CompiledFaultSimulator)
        # A handful of faults fits the budget and dispatches to PPSFP --
        # unless the caller reports a tiny workload, where table builds
        # cannot amortize.
        few = universe[:4]
        assert isinstance(
            make_fault_simulator(circuit, table, few, config), PpsfpSimulator
        )
        assert isinstance(
            make_fault_simulator(circuit, table, few, config, total_test_cycles=10),
            CompiledFaultSimulator,
        )


# -------------------------------------------------------- config heuristics


class TestSelectEngine:
    def test_forced_engines_pass_through(self):
        assert FaultSimConfig(engine="ppsfp").select_engine(10, 4) == "ppsfp"
        assert FaultSimConfig(engine="bigint").select_engine(10, 4) == "bigint"

    def test_auto_zero_faults_is_ppsfp(self):
        assert FaultSimConfig().select_engine(0, 18) == "ppsfp"

    def test_auto_cell_budget(self):
        config = FaultSimConfig()
        patterns = 1 << 18
        fits = DEFAULT_PPSFP_CELL_BUDGET // patterns
        assert config.select_engine(fits, 18) == "ppsfp"
        assert config.select_engine(fits + 1, 18) == "bigint"

    def test_auto_small_workload_prefers_bigint(self):
        config = FaultSimConfig()
        # 2^18 patterns = 4096 words; with only 10 cycles of tests the
        # exhaustive build cannot pay for itself.
        assert config.select_engine(4, 18, total_test_cycles=10) == "bigint"
        assert config.select_engine(4, 18, total_test_cycles=10_000) == "ppsfp"

    def test_invalid_engine_rejected(self):
        with pytest.raises(FaultSimulationError):
            FaultSimConfig(engine="magic")

    def test_pattern_block_validation(self):
        with pytest.raises(FaultSimulationError):
            FaultSimConfig(ppsfp_pattern_block=100)  # not a multiple of 64
        with pytest.raises(FaultSimulationError):
            FaultSimConfig(ppsfp_pattern_block=0)
        config = FaultSimConfig(ppsfp_pattern_block=128)
        assert config.resolved_pattern_block(64) == 64
        assert config.resolved_pattern_block(1 << 12) == 128


class TestEngineAwareBatchBits:
    def test_ppsfp_batches_are_lane_aligned(self):
        for n_faults in (1, 63, 64, 65, 1000, 5000):
            width = adaptive_batch_bits(n_faults, engine="ppsfp")
            assert width % 64 == 0 or width >= n_faults

    def test_ppsfp_cap_balances_in_word_multiples(self):
        width = adaptive_batch_bits(10_000, cap=2048, engine="ppsfp")
        assert width % 64 == 0
        assert width <= 2048

    def test_bigint_unchanged_by_engine_param(self):
        assert adaptive_batch_bits(5000) == adaptive_batch_bits(5000, engine="bigint")

    def test_unknown_engine_rejected(self):
        with pytest.raises(FaultSimulationError):
            adaptive_batch_bits(100, engine="magic")


# ----------------------------------------------------------- sanity guards


class TestPreflight:
    def test_rejects_bridged_primary_input(self):
        table, circuit = _synthesize("lion")
        bogus = BridgingFault(0, 10**6, BridgeKind.AND)  # line 0 is an input
        with pytest.raises(FaultSimulationError):
            PpsfpSimulator(circuit, table, [bogus])

    def test_fault_bit_order_matches_input_order(self):
        table, circuit = _synthesize("lion")
        faults = [
            StuckAtFault(0, None, 1),
            StuckAtFault(1, None, 0),
            StuckAtFault(2, None, 1),
        ]
        simulator = PpsfpSimulator(circuit, table, faults)
        assert list(simulator.faults) == faults
        assert simulator.ones == 0b111

"""Structural analysis of state tables.

These helpers back the validation story of the library: reachability and
strong connectivity explain when transfer sequences can exist, and state
equivalence (classic partition refinement) explains when unique input-output
sequences *cannot* exist — an equivalent state pair is indistinguishable by
any sequence, so neither state has a UIO.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import StateTableError
from repro.fsm.state_table import StateTable

__all__ = [
    "reachable_states",
    "is_strongly_connected",
    "equivalence_classes",
    "equivalent_state_pairs",
    "has_equivalent_sibling",
    "machines_equivalent",
]


def reachable_states(table: StateTable, start: int = 0) -> frozenset[int]:
    """States reachable from ``start`` (inclusive) through any input path."""
    if not 0 <= start < table.n_states:
        raise StateTableError(f"start state {start} out of range")
    seen = {start}
    frontier = deque([start])
    while frontier:
        state = frontier.popleft()
        for nxt in table.successors(state):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return frozenset(seen)


def is_strongly_connected(table: StateTable) -> bool:
    """True when every state can reach every other state."""
    n = table.n_states
    if len(reachable_states(table, 0)) != n:
        return False
    # Reverse reachability from state 0: build reverse adjacency once.
    reverse: list[set[int]] = [set() for _ in range(n)]
    for state in range(n):
        for nxt in table.successors(state):
            reverse[nxt].add(state)
    seen = {0}
    frontier = deque([0])
    while frontier:
        state = frontier.popleft()
        for prev in reverse[state]:
            if prev not in seen:
                seen.add(prev)
                frontier.append(prev)
    return len(seen) == n


def equivalence_classes(table: StateTable) -> list[frozenset[int]]:
    """Partition the states into Mealy-equivalence classes.

    Uses Moore-style partition refinement: the initial partition groups
    states with identical output rows; each round refines by the block
    signature of the next-state row, until a fixed point.
    """
    outputs = np.asarray(table.output)
    nexts = np.asarray(table.next_state)
    # block[s] = id of the block containing s
    ids: dict[tuple[int, ...], int] = {}
    block = np.empty(table.n_states, dtype=np.int64)
    for state in range(table.n_states):
        signature = tuple(int(v) for v in outputs[state])
        if signature not in ids:
            ids[signature] = len(ids)
        block[state] = ids[signature]
    n_blocks = len(ids)
    while True:
        refined: dict[tuple[int, ...], int] = {}
        new_block = np.empty_like(block)
        for state in range(table.n_states):
            signature = (int(block[state]), *(int(block[n]) for n in nexts[state]))
            if signature not in refined:
                refined[signature] = len(refined)
            new_block[state] = refined[signature]
        block = new_block
        if len(refined) == n_blocks:
            break
        n_blocks = len(refined)
    classes: dict[int, set[int]] = {}
    for state in range(table.n_states):
        classes.setdefault(int(block[state]), set()).add(state)
    return [frozenset(members) for members in classes.values()]


def equivalent_state_pairs(table: StateTable) -> frozenset[tuple[int, int]]:
    """All ordered-normalized pairs ``(s, t), s < t`` of equivalent states."""
    pairs: set[tuple[int, int]] = set()
    for members in equivalence_classes(table):
        ordered = sorted(members)
        for i, s in enumerate(ordered):
            for t in ordered[i + 1 :]:
                pairs.add((s, t))
    return frozenset(pairs)


def has_equivalent_sibling(table: StateTable, state: int) -> bool:
    """True when some other state is equivalent to ``state``.

    Such a state provably has no unique input-output sequence.
    """
    for members in equivalence_classes(table):
        if state in members:
            return len(members) > 1
    raise StateTableError(f"state {state} out of range")


def machines_equivalent(
    first: StateTable,
    second: StateTable,
    first_start: int = 0,
    second_start: int = 0,
) -> bool:
    """Do two machines produce identical output streams from given starts?

    Standard product-machine breadth-first search; both machines must share
    input and output widths.
    """
    if first.n_inputs != second.n_inputs or first.n_outputs != second.n_outputs:
        return False
    seen = {(first_start, second_start)}
    frontier = deque(seen)
    while frontier:
        a, b = frontier.popleft()
        for combo in range(first.n_input_combinations):
            next_a, out_a = first.step(a, combo)
            next_b, out_b = second.step(b, combo)
            if out_a != out_b:
                return False
            if (next_a, next_b) not in seen:
                seen.add((next_a, next_b))
                frontier.append((next_a, next_b))
    return True

"""Code-generated fault simulation: one compiled sweep per circuit.

The interpreted simulator in :mod:`repro.gatelevel.fault_sim` walks the gate
list in Python for every clock cycle, which dominates the run time of the
Table 6 experiments.  This module generates straight-line Python source for
one *fixed* fault universe — every injection mask baked in as an integer
literal — compiles it once, and then evaluates a clock cycle with a single
function call.

Key ideas
---------
* One bit per fault, with the whole universe (possibly thousands of faults)
  in a single arbitrary-precision integer word.
* Detection of a fault by a test never depends on which other faults are
  simulated (each bit is its own machine), so effective-test selection can
  simulate the full universe once per test and intersect with the remaining
  set — no per-test re-batching, no recompilation.
* Bridging faults use the same two-pass scheme as the interpreted engine,
  but the bridge adjustment is applied at the *store* of each bridged line:
  pass 1 computes raw values, Python combines them into per-line forced
  words, pass 2 re-evaluates with those words ORed in under the bridge
  masks.  Store-level application is equivalent to read-level application
  because every consumer and the observation see the stored value, and a
  bridged line is never downstream of its own bridge (paper condition 3).

The interpreted engine remains the reference; the test suite asserts that
both produce identical detection masks.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.testset import ScanTest
from repro.errors import FaultSimulationError
from repro.fsm.state_table import StateTable
from repro.gatelevel.fault_sim import Fault, _Batch
from repro.gatelevel.netlist import GateType
from repro.gatelevel.scan import ScanCircuit
from repro.obs.metrics import current_registry
from repro.obs.trace import span as trace_span

__all__ = ["CompiledFaultSimulator"]


class CompiledFaultSimulator:
    """Simulates scan tests against a fixed fault universe, compiled once."""

    def __init__(
        self,
        circuit: ScanCircuit,
        table: StateTable,
        faults: Sequence[Fault],
    ) -> None:
        if not faults:
            raise FaultSimulationError("the fault universe must not be empty")
        self.circuit = circuit
        self.table = table
        self.faults = list(faults)
        self.ones = (1 << len(self.faults)) - 1
        self._batch = _Batch(circuit.netlist, self.faults)
        self._fault_bits = {fault: bit for bit, fault in enumerate(self.faults)}
        #: per bridged line: total bridge mask and the rule list
        self._bridge_lines = sorted(self._batch.bridges)
        with trace_span(
            "faultsim.compile",
            circuit=circuit.name,
            n_faults=len(self.faults),
            n_gates=circuit.netlist.n_gates,
        ):
            self._eff_fn, self._raw_fn = self._compile()
        registry = current_registry()
        if registry is not None:
            registry.counter("faultsim.compiled_universes").add(1)
            registry.counter("faultsim.compiled_faults").add(len(self.faults))

    # -------------------------------------------------------------- codegen

    def _read_expr(self, line: int, reader: int, pin: int) -> str:
        expression = f"v{line}"
        forced = self._batch.pin_force.get((reader, pin))
        if forced:
            ones, zeros = forced
            if ones:
                expression = f"({expression} | {ones})"
            if zeros:
                expression = f"({expression} & {self.ones ^ zeros})"
        return expression

    def _gate_expr(self, gate, masked_not: str) -> str:
        kind = gate.kind
        reads = [
            self._read_expr(line, gate.index, pin)
            for pin, line in enumerate(gate.fanins)
        ]
        if kind is GateType.BUF:
            return reads[0]
        if kind is GateType.NOT:
            return f"({reads[0]}) ^ {masked_not}"
        if kind in (GateType.AND, GateType.NAND):
            body = " & ".join(reads)
        elif kind in (GateType.OR, GateType.NOR):
            body = " | ".join(reads)
        else:
            body = " ^ ".join(reads)
        if kind in (GateType.NAND, GateType.NOR, GateType.XNOR):
            return f"({body}) ^ {masked_not}"
        return f"({body})"

    def _compile(self):
        """Compiled ``(_eff, _raw)`` functions, with source-level caching.

        Generating straight-line source for a big circuit is itself
        noticeable; when an artifact cache is active the generated source
        strings are stored keyed by netlist structure + fault universe, so
        warm runs go straight to ``compile``/``exec``.
        """
        # Lazy import: repro.perf imports this module.
        from repro.perf.artifacts import fault_universe_parts, netlist_parts
        from repro.perf.cache import active_cache, artifact_key

        cache = active_cache()
        key = ""
        sources: tuple[str, str | None] | None = None
        if cache is not None:
            key = artifact_key(
                "simulator-source",
                netlist_parts(self.circuit.netlist),
                fault_universe_parts(self.faults),
            )
            sources = cache.get("simulator-source", key)
        if sources is None:
            sources = self._generate_sources()
            if cache is not None:
                cache.put("simulator-source", key, sources)
        eff_source, raw_source = sources
        namespace: dict[str, object] = {}
        exec(compile(eff_source, "<compiled-fault-sim>", "exec"), namespace)
        eff_fn = namespace["_eff"]
        raw_fn = None
        if raw_source is not None:
            namespace = {}
            exec(compile(raw_source, "<compiled-fault-sim-raw>", "exec"), namespace)
            raw_fn = namespace["_raw"]
        return eff_fn, raw_fn

    def _generate_sources(self) -> tuple[str, str | None]:
        """The ``_eff`` (and, with bridges, ``_raw``) function sources."""
        netlist = self.circuit.netlist
        ones = self.ones
        store = self._batch.store_force
        bridges = self._batch.bridges

        def body_lines(apply_bridges: bool) -> list[str]:
            lines: list[str] = []
            position = 0
            for gate in netlist.gates:
                if gate.kind is GateType.INPUT:
                    expression = f"a[{position}]"
                    position += 1
                elif gate.kind is GateType.CONST0:
                    lines.append(f"    v{gate.index} = 0")
                    continue
                elif gate.kind is GateType.CONST1:
                    lines.append(f"    v{gate.index} = {ones}")
                    continue
                else:
                    expression = self._gate_expr(gate, str(ones))
                forced = store.get(gate.index)
                if forced:
                    so, sz = forced
                    # Parenthesize the whole expression first: inverting
                    # gates generate a trailing `^ mask`, and `&` binds
                    # tighter than `^`, so an unwrapped `... ^ m & z` would
                    # mask the literal instead of the gate value.
                    if so:
                        expression = f"(({expression}) | {so})"
                    if sz:
                        expression = f"(({expression}) & {ones ^ sz})"
                if apply_bridges and gate.index in bridges:
                    total = 0
                    for mask, _partner, _is_and in bridges[gate.index]:
                        total |= mask
                    expression = (
                        f"(({expression}) & {ones ^ total}) | f{gate.index}"
                    )
                lines.append(f"    v{gate.index} = {expression}")
            return lines

        # Inputs that are also bridged lines would need forcing on v<input>;
        # candidate bridge lines are multi-input gate outputs, so inputs
        # never appear in `bridges` — asserted here for safety.
        for line in self._bridge_lines:
            if netlist.gate(line).kind is GateType.INPUT:  # pragma: no cover
                raise FaultSimulationError("bridged primary input unsupported")

        returns = ", ".join(f"v{line}" for line in netlist.outputs)
        source = ["def _eff(a, r):"]
        if self._bridge_lines:
            # Preamble: compute every bridged line's forced word from the
            # raw values tuple ``r`` (one entry per bridged line, in
            # self._bridge_lines order) — no per-cycle Python rule loop.
            raw_index = {line: k for k, line in enumerate(self._bridge_lines)}
            for line in self._bridge_lines:
                terms = []
                for mask, partner, is_and in bridges[line]:
                    operator = "&" if is_and else "|"
                    terms.append(
                        f"((r[{raw_index[line]}] {operator} "
                        f"r[{raw_index[partner]}]) & {mask})"
                    )
                source.append(f"    f{line} = " + " | ".join(terms))
        source += body_lines(apply_bridges=True)
        source.append(f"    return ({returns},)")
        eff_source = "\n".join(source)

        raw_source = None
        if self._bridge_lines:
            raw_returns = ", ".join(f"v{line}" for line in self._bridge_lines)
            source = ["def _raw(a):"]
            source += body_lines(apply_bridges=False)
            source.append(f"    return ({raw_returns},)")
            raw_source = "\n".join(source)
        return eff_source, raw_source

    # ------------------------------------------------------------ execution

    def _cycle(self, input_words: list[int]) -> tuple[int, ...]:
        """Output-line words (netlist.outputs order) for one clock."""
        if self._raw_fn is None:
            return self._eff_fn(input_words, None)
        return self._eff_fn(input_words, self._raw_fn(input_words))

    def detect_mask(self, test: ScanTest) -> int:
        """Bit mask (over the fault universe) of faults ``test`` detects."""
        sv = self.circuit.n_state_variables
        pi = self.circuit.n_primary_inputs
        po = self.circuit.n_primary_outputs
        ones = self.ones
        encode_bits = self.circuit.encoding.encode_bits
        state_words = [
            ones if bit else 0 for bit in encode_bits(test.initial_state)
        ]
        detected = 0
        good_state = test.initial_state
        step = self.table.step
        for combo in test.inputs:
            words = state_words + [
                ones if (combo >> (pi - 1 - j)) & 1 else 0 for j in range(pi)
            ]
            outputs = self._cycle(words)
            good_state, good_out = step(good_state, combo)
            for j in range(po):
                good_bit = ones if (good_out >> (po - 1 - j)) & 1 else 0
                detected |= outputs[sv + j] ^ good_bit
            state_words = list(outputs[:sv])
            if detected == ones:
                return detected
        for j, bit in enumerate(encode_bits(good_state)):
            good_bit = ones if bit else 0
            detected |= state_words[j] ^ good_bit
        return detected & ones

    def detect_masks(self, tests: Sequence[ScanTest]) -> list[int]:
        """Detection masks for many tests (API parity with the PPSFP
        engine, which vectorizes this; here the tests are independent
        big-int runs)."""
        return [self.detect_mask(test) for test in tests]

    def detects(self, test: ScanTest) -> frozenset[Fault]:
        """The set of universe faults ``test`` detects."""
        mask = self.detect_mask(test)
        found = []
        while mask:
            low = (mask & -mask).bit_length() - 1
            found.append(self.faults[low])
            mask &= mask - 1
        registry = current_registry()
        if registry is not None:
            registry.counter("faultsim.compiled_calls").add(1)
            registry.counter("faultsim.compiled_detected").add(len(found))
        return frozenset(found)

    def make_effective_simulator(self):
        """A ``simulate(test, remaining)`` closure for
        :func:`repro.core.compaction.select_effective_tests`.

        Simulates the full compiled universe (detection per fault is
        independent of the batch contents) and intersects with the caller's
        remaining set.
        """

        def simulate(test: ScanTest, remaining: frozenset[Fault]) -> set[Fault]:
            return set(self.detects(test)) & set(remaining)

        return simulate

"""Two-level (sum-of-products) cube utilities.

The synthesis flow works on cubes — strings over ``{0, 1, -}`` — exactly as
they appear in KISS rows.  :func:`merge_cubes` performs iterated adjacency
merging (the distance-1 step of Quine-McCluskey) which is what keeps
minterm-listed machines like ``lion`` from synthesizing one product term per
table entry.  :func:`quine_mccluskey` is a complete single-output minimizer
(prime generation + greedy/essential cover) for small variable counts, used
by tests and available as a library utility.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import SynthesisError

__all__ = ["cube_covers", "cubes_overlap", "merge_cubes", "quine_mccluskey"]


def _check_cube(cube: str) -> None:
    if any(ch not in "01-" for ch in cube):
        raise SynthesisError(f"bad cube {cube!r}")


def cube_covers(cube: str, minterm: int) -> bool:
    """Does ``cube`` contain ``minterm`` (MSB-first bit order)?"""
    _check_cube(cube)
    width = len(cube)
    for position, ch in enumerate(cube):
        if ch == "-":
            continue
        bit = (minterm >> (width - 1 - position)) & 1
        if bit != int(ch):
            return False
    return True


def cubes_overlap(first: str, second: str) -> bool:
    """Do two cubes share at least one minterm?"""
    if len(first) != len(second):
        raise SynthesisError("cubes must have equal width")
    _check_cube(first)
    _check_cube(second)
    return all(
        a == "-" or b == "-" or a == b for a, b in zip(first, second)
    )


def _try_merge(first: str, second: str) -> str | None:
    """Merge two cubes differing in exactly one specified position."""
    if len(first) != len(second):
        return None
    difference = -1
    for position, (a, b) in enumerate(zip(first, second)):
        if a == b:
            continue
        if a == "-" or b == "-" or difference != -1:
            return None
        difference = position
    if difference == -1:
        return None
    return first[:difference] + "-" + first[difference + 1 :]


def merge_cubes(cubes: Iterable[str]) -> list[str]:
    """Iteratively merge adjacent cubes until a fixed point.

    The input cubes must be pairwise disjoint (as KISS rows of one
    present-state/next-state/output group are); the result covers exactly
    the same minterms with (usually far) fewer cubes.
    """
    current = list(dict.fromkeys(cubes))
    for cube in current:
        _check_cube(cube)
    changed = True
    while changed:
        changed = False
        result: list[str] = []
        used = [False] * len(current)
        for i in range(len(current)):
            if used[i]:
                continue
            merged_any = False
            for j in range(i + 1, len(current)):
                if used[j]:
                    continue
                merged = _try_merge(current[i], current[j])
                if merged is not None:
                    used[i] = used[j] = True
                    result.append(merged)
                    merged_any = True
                    changed = True
                    break
            if not merged_any and not used[i]:
                result.append(current[i])
        current = list(dict.fromkeys(result))
    return current


def quine_mccluskey(
    n_vars: int,
    minterms: Sequence[int],
    dont_cares: Sequence[int] = (),
) -> list[str]:
    """Minimal-ish SOP cover of ``minterms`` as cubes (MSB-first).

    Exact prime-implicant generation followed by essential-prime selection
    and a greedy cover of the rest.  Intended for ``n_vars`` up to ~12.
    """
    if n_vars < 0:
        raise SynthesisError("n_vars must be non-negative")
    if n_vars > 16:
        raise SynthesisError("quine_mccluskey is limited to 16 variables")
    on_set = sorted(set(minterms))
    dc_set = sorted(set(dont_cares) - set(on_set))
    for term in on_set + dc_set:
        if not 0 <= term < (1 << n_vars):
            raise SynthesisError(f"minterm {term} out of range")
    if not on_set:
        return []
    if n_vars == 0:
        return [""]

    def to_cube(term: int) -> str:
        return format(term, f"0{n_vars}b")

    groups = {to_cube(term) for term in on_set + dc_set}
    primes: set[str] = set()
    current = groups
    while current:
        merged_into: set[str] = set()
        next_level: set[str] = set()
        current_list = sorted(current)
        for i, first in enumerate(current_list):
            for second in current_list[i + 1 :]:
                merged = _try_merge(first, second)
                if merged is not None:
                    merged_into.add(first)
                    merged_into.add(second)
                    next_level.add(merged)
        primes |= current - merged_into
        current = next_level
    # Cover selection over the on-set only.
    prime_list = sorted(primes)
    coverage = {
        cube: frozenset(t for t in on_set if cube_covers(cube, t))
        for cube in prime_list
    }
    chosen: list[str] = []
    uncovered = set(on_set)
    # Essential primes first.
    for term in on_set:
        covering = [cube for cube in prime_list if term in coverage[cube]]
        if len(covering) == 1 and covering[0] not in chosen:
            chosen.append(covering[0])
            uncovered -= coverage[covering[0]]
    # Greedy for the remainder.
    while uncovered:
        best = max(
            prime_list,
            key=lambda cube: (len(coverage[cube] & uncovered), cube.count("-")),
        )
        if not coverage[best] & uncovered:  # pragma: no cover - cover exists
            raise SynthesisError("greedy cover failed")
        chosen.append(best)
        uncovered -= coverage[best]
    return chosen

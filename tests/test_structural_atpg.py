"""Structural ATPG (D-algorithm + PODEM) vs exhaustive ground truth.

The load-bearing property is *verdict equivalence*: for any fault the
bounded structural search must return a test exactly when exhaustive
detectability (restricted to assigned state codes, the same constraint
the search enforces) says the fault is detectable — and an untestable
verdict exactly when it is not.  The sweep pins that equivalence on every
bundled benchmark circuit with a deterministic fault subset sized so the
widest netlists stay cheap; lion/bbtas/bbara run their full collapsed
universes with pinned counts.

On top of the sweep: hypothesis properties over random machines (every
returned cube, expanded and replayed through BOTH the PPSFP and big-int
engines, detects its target fault; untestable verdicts agree with static
sca certificates whenever one exists), certificate cross-validation on a
netlist with genuine structural redundancy, and budget-exhaustion edge
cases on a deep-reconvergence fixture — an exhausted budget must produce
an explicit ``aborted`` verdict, never ``untestable``.
"""

from __future__ import annotations

from functools import lru_cache

import pytest
from hypothesis import HealthCheck, given, settings

from repro.atpg import (
    ALGORITHMS,
    DEFAULT_BACKTRACK_LIMIT,
    STATUS_ABORTED,
    STATUS_TEST,
    STATUS_UNTESTABLE,
    generate_structural_tests,
)
from repro.atpg.model import FaultedCircuit, StateCodeConstraint
from repro.atpg.podem import podem_search
from repro.atpg.dalg import d_algorithm_search
from repro.atpg.search import ABORT_BACKTRACKS, ABORT_TIME, SearchBudget
from repro.benchmarks import circuit_names, load_circuit
from repro.core.testset import ScanTest
from repro.errors import AtpgError
from repro.fuzz.strategies import state_tables
from repro.gatelevel.compiled import CompiledFaultSimulator
from repro.gatelevel.detectability import assigned_pattern_mask, detectable_faults
from repro.gatelevel.netlist import GateType, Netlist
from repro.gatelevel.ppsfp import PpsfpSimulator
from repro.gatelevel.scan import ScanCircuit
from repro.gatelevel.stuck_at import StuckAtFault, collapse_stuck_at
from repro.gatelevel.synthesis import SynthesisOptions
from repro.sca.analysis import analyze
from repro.sca.certificates import UntestableCertificate
from repro.sca.scoap import compute_scoap

_SEARCHERS = {"podem": podem_search, "d": d_algorithm_search}

#: Cap on faults x exhaustive patterns for the all-circuits sweep ground
#: truth; keeps the widest machines to a few representative faults.
_TRUTH_CELL_BUDGET = 1 << 20

#: Cap on faults x gates for the per-circuit ATPG runs in the sweep — the
#: search cost scales with netlist size, not pattern count.
_ATPG_CELL_BUDGET = 1 << 15


@lru_cache(maxsize=None)
def _synthesize(name):
    table = load_circuit(name)
    circuit = ScanCircuit.from_machine(table, SynthesisOptions(max_fanin=4))
    return table, circuit


def _representatives(circuit):
    return sorted(set(collapse_stuck_at(circuit.netlist).values()))


def _ground_truth(circuit, faults):
    """Exhaustive detectability under the assigned-state-code constraint."""
    mask = assigned_pattern_mask(circuit.encoding, circuit.n_primary_inputs)
    return detectable_faults(circuit.netlist, faults, pattern_mask=mask)


def _pinned_subset(circuit, universe):
    """Deterministic stride subset sized for sweep-friendly runtimes."""
    patterns = 1 << (circuit.n_state_variables + circuit.n_primary_inputs)
    keep = max(
        1,
        min(
            len(universe),
            _TRUTH_CELL_BUDGET // patterns,
            _ATPG_CELL_BUDGET // max(1, circuit.netlist.n_gates),
        ),
    )
    stride = max(1, len(universe) // keep)
    return universe[::stride][:keep]


def _expanded_test(table, verdict):
    assert verdict.state is not None and verdict.combo is not None
    return ScanTest(
        verdict.state,
        (verdict.combo,),
        table.final_state(verdict.state, (verdict.combo,)),
    )


# ------------------------------------------------- all-circuits equivalence


class TestVerdictEquivalenceAllCircuits:
    """Both engines agree with exhaustive detectability on every circuit."""

    @pytest.mark.parametrize("name", sorted(circuit_names()))
    def test_verdicts_match_exhaustive_detectability(self, name):
        table, circuit = _synthesize(name)
        faults = _pinned_subset(circuit, _representatives(circuit))
        detectable, undetectable = _ground_truth(circuit, faults)
        for algorithm in ALGORITHMS:
            run = generate_structural_tests(
                circuit, table, faults, algorithm=algorithm, replay=True
            )
            assert not run.aborted, f"{name}/{algorithm} aborted"
            assert {v.fault for v in run.tests} == detectable
            assert {v.fault for v in run.untestable} == undetectable
            assert all(v.witness for v in run.tests)


# ------------------------------------------------------------ pinned counts


class TestPinnedCounts:
    """Full collapsed universes with frozen verdict counts."""

    @pytest.mark.parametrize(
        "name, targets, tests, untestable",
        [("lion", 90, 81, 9), ("bbtas", 193, 177, 16), ("bbara", 775, 737, 38)],
    )
    def test_full_universe_counts(self, name, targets, tests, untestable):
        table, circuit = _synthesize(name)
        faults = _representatives(circuit)
        assert len(faults) == targets
        for algorithm in ALGORITHMS:
            run = generate_structural_tests(
                circuit, table, faults, algorithm=algorithm, replay=True
            )
            assert run.n_targets == targets
            assert len(run.tests) == tests
            assert len(run.untestable) == untestable
            assert not run.aborted
            assert all(v.witness for v in run.tests)

    def test_test_set_export(self):
        table, circuit = _synthesize("lion")
        run = generate_structural_tests(circuit, table, _representatives(circuit))
        test_set = run.test_set(table)
        assert len(list(test_set)) == len(run.tests)
        patterns = [v.pattern for v in sorted(run.tests, key=lambda v: v.pattern)]
        assert patterns == sorted(patterns)

    def test_verdict_payload_schema(self):
        table, circuit = _synthesize("lion")
        run = generate_structural_tests(circuit, table, _representatives(circuit))
        payload = run.to_dict()
        assert payload["targets"] == payload["tests"] + payload["untestable"]
        for verdict in payload["verdicts"]:
            assert verdict["status"] in (STATUS_TEST, STATUS_UNTESTABLE)
            if verdict["status"] == STATUS_TEST:
                assert set(verdict["cube"]) <= set("01X")
                assert verdict["witness"] is True


# -------------------------------------------------------------- properties


SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _machines():
    return state_tables(min_states=2, max_states=5, min_inputs=1, min_outputs=1)


class TestAtpgProperties:
    @SETTINGS
    @given(_machines())
    def test_cubes_detect_through_both_engines(self, table):
        """Every returned cube, expanded to a scan test, detects its target
        fault through the PPSFP *and* the big-int fault-sim engines, and
        untestable verdicts agree with static certificates when they exist.
        """
        circuit = ScanCircuit.from_machine(table, SynthesisOptions(max_fanin=4))
        faults = _representatives(circuit)
        if not faults:
            return
        certificates = analyze(circuit.netlist).certificates
        run = generate_structural_tests(
            circuit, table, faults, certificates=certificates, replay=False
        )
        assert not run.aborted
        if run.tests:
            ppsfp = PpsfpSimulator(circuit, table, faults)
            bigint = CompiledFaultSimulator(circuit, table, faults)
            for verdict in run.tests:
                test = _expanded_test(table, verdict)
                assert verdict.fault in ppsfp.detects(test)
                assert verdict.fault in bigint.detects(test)
        certified = {c.fault for c in certificates} & set(faults)
        untestable = {v.fault for v in run.untestable}
        assert certified <= untestable
        for verdict in run.untestable:
            assert verdict.certified == (verdict.fault in certified)

    @SETTINGS
    @given(_machines())
    def test_podem_and_d_return_identical_verdict_sets(self, table):
        circuit = ScanCircuit.from_machine(table, SynthesisOptions(max_fanin=4))
        faults = _representatives(circuit)
        if not faults:
            return
        runs = {
            algorithm: generate_structural_tests(
                circuit, table, faults, algorithm=algorithm, replay=False
            )
            for algorithm in ALGORITHMS
        }
        tests = {a: {v.fault for v in r.tests} for a, r in runs.items()}
        untestable = {a: {v.fault for v in r.untestable} for a, r in runs.items()}
        assert tests["podem"] == tests["d"]
        assert untestable["podem"] == untestable["d"]


# --------------------------------------------- certificate cross-validation


def _const_path_netlist():
    """A netlist with genuine structural redundancy: an input whose only
    fanout is masked by a constant, so sca issues unobservability
    certificates for it."""
    netlist = Netlist("const-path")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    zero = netlist.add_gate(GateType.CONST0, ())
    masked = netlist.add_gate(GateType.AND, (a, zero))
    out = netlist.add_gate(GateType.OR, (masked, b))
    netlist.set_outputs([out])
    return netlist


def _free_constraint(width):
    """Every state code assigned — the constraint is vacuous."""
    return StateCodeConstraint(tuple(range(1 << width)), width)


class TestCertificateCrossValidation:
    def test_search_proves_certified_faults_untestable(self):
        netlist = _const_path_netlist()
        certificates = analyze(netlist).certificates
        assert certificates, "fixture must carry static certificates"
        scoap = compute_scoap(netlist)
        constraint = _free_constraint(2)
        for certificate in certificates:
            for algorithm, search in _SEARCHERS.items():
                outcome = search(
                    FaultedCircuit(netlist, certificate.fault),
                    scoap,
                    constraint,
                    SearchBudget(DEFAULT_BACKTRACK_LIMIT),
                )
                assert outcome.status == STATUS_UNTESTABLE, (
                    f"{algorithm} disagrees with certificate for "
                    f"{certificate.fault.site()}"
                )

    def test_engine_marks_certified_untestable_verdicts(self):
        table, circuit = _synthesize("lion")
        faults = _representatives(circuit)
        baseline = generate_structural_tests(circuit, table, faults, replay=False)
        target = baseline.untestable[0].fault
        certificate = UntestableCertificate(target, "unobservable")
        run = generate_structural_tests(
            circuit, table, faults, certificates=(certificate,), replay=False
        )
        by_fault = {v.fault: v for v in run.untestable}
        assert by_fault[target].certified
        others = [v for v in run.untestable if v.fault != target]
        assert not any(v.certified for v in others)

    def test_engine_raises_on_contradicted_certificate(self):
        table, circuit = _synthesize("lion")
        faults = _representatives(circuit)
        baseline = generate_structural_tests(circuit, table, faults, replay=False)
        testable = baseline.tests[0].fault
        bogus = UntestableCertificate(testable, "unobservable")
        with pytest.raises(AtpgError, match="certificate"):
            generate_structural_tests(
                circuit, table, faults, certificates=(bogus,), replay=False
            )


# ------------------------------------------------------ budget exhaustion


def _deep_reconvergence_netlist(depth=6):
    """Stacked reconvergent XOR/XNOR diamonds; justifying a value at the
    sink forces the search to flip decisions deep in the stack, so even a
    small backtrack budget is exhausted."""
    netlist = Netlist("deep-reconv")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    c = netlist.add_input("c")
    x, y = a, b
    for _ in range(depth):
        p = netlist.add_gate(GateType.XOR, (x, y))
        q = netlist.add_gate(GateType.XNOR, (x, y))
        x = netlist.add_gate(GateType.NAND, (p, q))
        y = netlist.add_gate(GateType.OR, (p, c))
    out = netlist.add_gate(GateType.AND, (x, y))
    netlist.set_outputs([out])
    return netlist, out


class TestBudgetExhaustion:
    """An exhausted budget must abort explicitly — never claim untestable."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_backtrack_limit_zero_aborts_detectable_fault(self, algorithm):
        netlist, out = _deep_reconvergence_netlist()
        fault = StuckAtFault(out, None, 1)
        scoap = compute_scoap(netlist)
        constraint = _free_constraint(2)
        search = _SEARCHERS[algorithm]
        full = search(
            FaultedCircuit(netlist, fault),
            scoap,
            constraint,
            SearchBudget(DEFAULT_BACKTRACK_LIMIT),
        )
        assert full.status == STATUS_TEST  # the fault IS detectable...
        assert full.backtracks > 0  # ...but only after backtracking
        starved = search(
            FaultedCircuit(netlist, fault), scoap, constraint, SearchBudget(0)
        )
        assert starved.status == STATUS_ABORTED
        assert starved.aborted_reason == ABORT_BACKTRACKS
        assert starved.cube is None

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_time_budget_zero_aborts(self, algorithm):
        netlist, out = _deep_reconvergence_netlist()
        fault = StuckAtFault(out, None, 1)
        scoap = compute_scoap(netlist)
        outcome = _SEARCHERS[algorithm](
            FaultedCircuit(netlist, fault),
            scoap,
            _free_constraint(2),
            SearchBudget(DEFAULT_BACKTRACK_LIMIT, time_budget_s=0.0),
        )
        assert outcome.status == STATUS_ABORTED
        assert outcome.aborted_reason == ABORT_TIME

    def test_engine_starved_run_never_misreports_untestable(self):
        """Under backtrack_limit=0 on a real circuit the engine may abort
        freely, but every verdict it still commits to must be correct."""
        table, circuit = _synthesize("lion")
        faults = _representatives(circuit)
        detectable, undetectable = _ground_truth(circuit, faults)
        for algorithm in ALGORITHMS:
            run = generate_structural_tests(
                circuit, table, faults, algorithm=algorithm,
                backtrack_limit=0, replay=True,
            )
            assert run.aborted, "limit 0 must starve at least one fault"
            assert {v.fault for v in run.tests} <= detectable
            assert {v.fault for v in run.untestable} <= undetectable
            for verdict in run.aborted:
                assert verdict.aborted_reason == ABORT_BACKTRACKS
            counted = len(run.tests) + len(run.untestable) + len(run.aborted)
            assert counted == run.n_targets

    def test_engine_rejects_bad_arguments(self):
        table, circuit = _synthesize("lion")
        with pytest.raises(AtpgError, match="algorithm"):
            generate_structural_tests(circuit, table, algorithm="fan")
        with pytest.raises(AtpgError, match="backtrack"):
            generate_structural_tests(circuit, table, backtrack_limit=-1)

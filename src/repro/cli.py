"""Command-line interface: ``python -m repro`` / ``repro-fsatpg``.

Subcommands
-----------
``info``       — registry and machine statistics for one circuit
``generate``   — run the test generation procedure and print the tests
``export``     — generate and write the tests as JSON or tester vectors
``nonscan``    — non-scan checking sequence and its coverage gap
``delay``      — transition-delay coverage, chained tests vs baseline
``table2..9``  — regenerate the corresponding paper table
``all``        — regenerate every table over a tier
``lint``       — static analysis of machines, netlists, and test programs
``analyze``    — static netlist analysis: collapsing, SCOAP, redundancy
``atpg``       — structural ATPG (D-algorithm / PODEM), every verdict
                 machine-checked; ``--top-off`` closes the functional gap
``fuzz``       — differential fuzzing of the whole stack (exit 1 on failure)
``claims``     — run the reproduction certificate (exit 1 on any failure)
``bench``      — serial vs parallel vs warm-cache timing (BENCH_perf.json)
``cache``      — inspect (``info``) or wipe (``clear``) the artifact cache
``trace``      — run a table/circuit pipeline with span tracing on and
                 write a Chrome ``trace_event`` file (chrome://tracing,
                 Perfetto)
``stats``      — same run, but print a profile (top spans by self time,
                 counter/histogram tables) instead of a trace file
``history``    — trend table of run-ledger records for one command
``report``     — self-contained HTML dashboard of the run ledger
``regress``    — rerun a BENCH baseline's workload and fail on stage-time
                 or test-quality regressions
``explain``    — decision provenance: why each transition was chained into
                 a longer test or terminated with a scan-out

Table-regeneration commands, ``all``, ``generate``, ``claims``, ``fuzz``,
and ``bench`` append one record per invocation to the run ledger (JSONL
under ``~/.local/state/repro-fsatpg/ledger`` by default; see
``REPRO_LEDGER_DIR``, ``--ledger-dir``, and ``--no-ledger``).

Table-regeneration commands accept ``--jobs N`` to fan the per-circuit
pipeline across worker processes and ``--cache-dir PATH`` to reuse
artifacts (UIO tables, synthesized netlists, detectability sets, compiled
simulator source) across invocations; results are identical either way.
They also accept ``--trace-out PATH`` / ``--metrics-out PATH`` to capture
a trace or metrics snapshot of any normal run (see docs/observability.md),
and the top-level ``-v``/``-q`` flags gate the structured stderr logger.

Examples
--------
::

    repro-fsatpg generate lion
    repro-fsatpg table5 --tier medium
    repro-fsatpg table9 --circuits dk512,mark1
    repro-fsatpg all --tier small
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.benchmarks import circuit_names, get_spec, load_circuit
from repro.core.config import FAULT_SIM_ENGINES, FaultSimConfig, GeneratorConfig
from repro.core.coverage import verify_test_set
from repro.core.generator import generate_tests
from repro.harness import experiments
from repro.harness.experiments import StudyOptions, render

__all__ = ["main", "build_parser"]


def _circuit_list(args: argparse.Namespace) -> tuple[str, ...]:
    if getattr(args, "circuits", None):
        return tuple(name.strip() for name in args.circuits.split(",") if name.strip())
    tier = getattr(args, "tier", None)
    if tier in (None, "all"):
        return circuit_names()
    if tier == "default":
        return circuit_names("small") + circuit_names("medium")
    return circuit_names(tier)


def _config_from(args: argparse.Namespace) -> GeneratorConfig:
    return GeneratorConfig(
        max_uio_length=getattr(args, "uio_length", None),
        max_transfer_length=getattr(args, "transfer_length", 1),
        scan_ratio=getattr(args, "scan_ratio", 1),
    )


def _options_from(args: argparse.Namespace) -> StudyOptions:
    return StudyOptions(
        config=_config_from(args),
        max_fanin=getattr(args, "max_fanin", 4),
        bridging_pair_limit=getattr(args, "bridging_limit", 500),
        faultsim=FaultSimConfig(engine=getattr(args, "engine", "auto")),
    )


def _cmd_info(args: argparse.Namespace) -> int:
    spec = get_spec(args.circuit)
    table = load_circuit(args.circuit)
    print(f"circuit           {spec.name}")
    print(f"source            {'exact' if spec.exact else 'synthetic stand-in'}")
    print(f"tier              {spec.tier}")
    print(f"primary inputs    {spec.n_inputs}")
    print(f"primary outputs   {spec.n_outputs}")
    print(f"states            {spec.n_states} ({spec.n_core_states} core + "
          f"{spec.n_fill_states} fill)")
    print(f"state variables   {spec.n_state_variables}")
    print(f"transitions       {table.n_transitions}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    table = load_circuit(args.circuit)
    result = generate_tests(table, _config_from(args))
    args._ledger_circuits = [args.circuit]
    args._ledger_results = {
        args.circuit: {
            "tests": result.n_tests,
            "test_length": result.total_length,
            "pct_length_one": round(result.pct_length_one, 4),
            "clock_cycles": result.clock_cycles(),
        }
    }
    if args.verify:
        report = verify_test_set(table, result.test_set)
        status = "complete" if report.is_complete else "INCOMPLETE"
        print(f"# strict coverage: {status} "
              f"({len(report.verified)}/{report.n_transitions} verified)")
    print(f"# {result.n_tests} tests, total length {result.total_length}, "
          f"{result.pct_length_one:.2f}% of transitions in length-1 tests")
    print(f"# {result.clock_cycles()} clock cycles "
          f"({result.cycles_pct_of_baseline():.2f}% of per-transition baseline)")
    if args.show_tests:
        for test in result.test_set:
            print(test)
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.core.export import test_set_to_json, test_set_to_vectors

    table = load_circuit(args.circuit)
    result = generate_tests(table, _config_from(args))
    if args.format == "json":
        text = test_set_to_json(result.test_set)
    else:
        text = test_set_to_vectors(result.test_set, table)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {result.n_tests} tests to {args.output}")
    return 0


def _cmd_nonscan(args: argparse.Namespace) -> int:
    from repro.core.coverage import verify_test_set as _verify
    from repro.nonscan import generate_nonscan_sequence

    table = load_circuit(args.circuit)
    nonscan = generate_nonscan_sequence(table, _config_from(args))
    scan = generate_tests(table, _config_from(args))
    report = _verify(table, scan.test_set)
    sync = "synchronizing prefix" if nonscan.used_synchronizing else "assumed reset"
    print(f"non-scan checking sequence for {args.circuit} ({sync}):")
    print(f"  length            {nonscan.length}")
    print(f"  exercised         {nonscan.exercised_pct:.2f}% of transitions")
    print(f"  verified          {nonscan.verified_pct:.2f}%")
    print(f"  unreachable       {len(nonscan.unreachable)} transitions")
    print(f"  unverifiable      {len(nonscan.exercised_only)} transitions")
    print(f"scan-based tests:   {scan.n_tests} tests, "
          f"{100.0 * report.verified_fraction:.2f}% verified")
    return 0


def _cmd_delay(args: argparse.Namespace) -> int:
    from repro.benchmarks import load_kiss_machine
    from repro.core.baseline import per_transition_tests
    from repro.gatelevel.delay import simulate_delay_faults
    from repro.gatelevel.scan import ScanCircuit
    from repro.gatelevel.synthesis import SynthesisOptions

    table = load_circuit(args.circuit)
    circuit = ScanCircuit.from_machine(
        load_kiss_machine(args.circuit),
        SynthesisOptions(max_fanin=args.max_fanin),
    )
    chained = simulate_delay_faults(
        circuit, table, generate_tests(table, _config_from(args)).test_set
    )
    baseline = simulate_delay_faults(circuit, table, per_transition_tests(table))
    print(f"transition-delay faults on {args.circuit} "
          f"({chained.n_faults} faults, fanin-{args.max_fanin} netlist):")
    print(f"  per-transition baseline : {baseline.n_at_speed_pairs:5d} at-speed "
          f"pairs, {baseline.coverage_pct:6.2f}% coverage")
    print(f"  chained functional tests: {chained.n_at_speed_pairs:5d} at-speed "
          f"pairs, {chained.coverage_pct:6.2f}% coverage")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.benchmarks import load_kiss_machine
    from repro.lint import (
        LintReport,
        analyze_machine,
        analyze_netlist,
        analyze_test_program,
        lint_kiss_source,
    )

    reports: list[LintReport] = []
    for path in args.kiss or ():
        try:
            with open(path) as handle:
                text = handle.read()
        except OSError as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 2
        reports.append(lint_kiss_source(text, name=path))
    if args.kiss and not args.circuits and args.tier == "default":
        circuits: tuple[str, ...] = ()
    else:
        circuits = _circuit_list(args)
    config = _config_from(args)
    for name in circuits:
        machine = load_kiss_machine(name)
        reports.append(analyze_machine(machine, name=name))
        if args.gatelevel or args.run_tests:
            table = load_circuit(name)
        if args.gatelevel:
            from repro.gatelevel.scan import ScanCircuit
            from repro.gatelevel.synthesis import SynthesisOptions

            circuit = ScanCircuit.from_machine(
                machine, SynthesisOptions(max_fanin=args.max_fanin)
            )
            reports.append(analyze_netlist(circuit, name=f"{name}/netlist"))
        if args.run_tests:
            result = generate_tests(table, config)
            reports.append(
                analyze_test_program(
                    table,
                    result.test_set,
                    config,
                    result.uio_table,
                    name=f"{name}/tests",
                )
            )
    merged = reports[0].merged(*reports[1:]) if reports else LintReport()
    if args.format == "json":
        print(merged.to_json())
    else:
        artifacts = len(reports)
        print(merged.render(f"lint ({artifacts} artifact(s) analyzed)"))
    if merged.errors or (args.strict and merged.warnings):
        return 1
    return 0


def _cmd_claims(args: argparse.Namespace) -> int:
    from repro.harness.claims import render_claims, verify_claims

    circuits = _circuit_list(args) if args.circuits or args.tier != "default" \
        else None
    if circuits is not None:
        _warm(args, circuits, _options_from(args))
        args._ledger_circuits = list(circuits)
    results = verify_claims(circuits, _options_from(args))
    print(render_claims(results))
    passed = sum(1 for result in results if result.passed)
    args._ledger_results = {
        "claims": {"passed": passed, "failed": len(results) - passed}
    }
    return 0 if passed == len(results) else 1


def _warm(args: argparse.Namespace, circuits: tuple[str, ...],
          options: StudyOptions, scope: str = "full"):
    """Precompute the per-circuit studies before rendering.

    Always runs — serially or across ``--jobs`` workers — so every table
    command takes the same pipeline path regardless of job count and its
    ledger record is jobs-invariant by construction.  ``scope="functional"``
    stops after test generation for tables that never read gate-level
    artifacts.  Returns the per-circuit ``StudyArtifacts`` mapping.
    """
    jobs = getattr(args, "jobs", 1) or 1
    if not circuits:
        return {}
    return experiments.warm_studies(circuits, options, jobs=jobs, scope=scope)


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf.bench import main as bench_main

    argv: list[str] = ["--jobs", str(args.jobs), "-o", args.output]
    if args.circuits:
        argv += ["--circuits", args.circuits]
    if args.cache_dir:
        argv += ["--cache-dir", args.cache_dir]
    if args.quick:
        argv.append("--quick")
    if args.engine:
        argv += ["--engine", args.engine]
    # Forward the global verbosity flags: bench re-resolves them itself.
    if args.quiet_global:
        argv.append("-q")
    argv += ["-v"] * args.verbose_global
    return bench_main(argv)


def _cache_root(args: argparse.Namespace) -> str | None:
    root = getattr(args, "cache_dir", None)
    return None if root in (None, "", "default") else root


def _cmd_cache_info(args: argparse.Namespace) -> int:
    from repro.perf.cache import ArtifactCache, active_cache

    # Prefer the in-process cache when one is active so the session
    # hit/miss counters reflect real traffic, not a fresh zeroed instance.
    cache = active_cache() or ArtifactCache(_cache_root(args))
    info = cache.info()
    print(f"root      {info['root']}")
    print(f"format    {info['format']}")
    versions = " ".join(f"{k}={v}" for k, v in sorted(info["versions"].items()))
    print(f"versions  {versions}")
    for kind, stats in sorted(info["kinds"].items()):
        print(f"  {kind:<18} {stats['entries']:6d} entries  "
              f"{stats['bytes']:12,d} bytes")
    print(f"total     {info['entries']} entries, {info['bytes']:,} bytes")
    session = info["session"]
    lookups = session["hits"] + session["misses"]
    if lookups:
        print(f"session   {session['hits']} hit(s), {session['misses']} miss(es)"
              f" ({100.0 * session['hit_rate']:.1f}% hit rate)")
    else:
        # A 0.0% rate would misread as "all misses" when nothing was asked.
        print("session   no lookups yet (hit rate n/a)")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    import json as _json

    from repro.benchmarks import load_kiss_machine
    from repro.perf.artifacts import cached_scan_circuit, cached_sca
    from repro.sca import INFINITY

    table = load_circuit(args.circuit)
    options = _options_from(args)
    scan = cached_scan_circuit(
        load_kiss_machine(args.circuit), options.synthesis, table,
        circuit=args.circuit,
    )
    sca = cached_sca(scan.netlist, circuit=args.circuit)
    # cached_sca verifies before storing; re-check here so what gets printed
    # is machine-checked in this very process, even on a cache hit.
    sca.verify()
    universe = sca.universe
    args._ledger_circuits = [args.circuit]
    args._ledger_results = {
        args.circuit: {
            "faults": universe.n_faults,
            "representatives": universe.n_representatives,
            "collapse_ratio": round(universe.ratio, 4),
            "constant_nets": len(sca.constants.constant_lines),
            "unobservable_nets": len(sca.unobservable),
            "certificates": len(sca.certificates),
            "untestable_faults": len(sca.untestable_faults),
        }
    }
    if args.format == "json":
        payload = sca.to_dict(include_scoap=not args.no_scoap)
        payload["circuit"] = args.circuit
        payload["max_fanin"] = args.max_fanin
        payload["verified"] = True
        print(_json.dumps(payload, indent=2, sort_keys=True))
        return 0

    netlist = scan.netlist
    fmt = lambda v: "inf" if v >= INFINITY else str(v)  # noqa: E731
    print(f"circuit        {args.circuit}")
    print(f"netlist        {netlist.n_gates} gates, "
          f"{len(netlist.inputs)} inputs, {len(netlist.outputs)} outputs, "
          f"depth {max(sca.levels, default=0)}")
    print(f"regions        {sca.regions.n_regions} fanout-free regions, "
          f"{len(netlist.inputs) + len(sca.regions.branches)} checkpoints")
    print(f"collapse       {universe.n_faults} faults -> "
          f"{universe.n_representatives} representatives "
          f"({universe.ratio:.2f}x)")
    print(f"constants      {len(sca.constants.constant_lines)} proven-constant "
          f"net(s)")
    print(f"unobservable   {len(sca.unobservable)} proven-unobservable net(s)")
    print(f"untestable     {len(sca.certificates)} certificate(s) covering "
          f"{len(sca.untestable_faults)} fault(s), all verified")
    scoap = sca.scoap
    hardest = sorted(
        range(netlist.n_gates),
        key=lambda line: (-scoap.testability(line), line),
    )[: max(args.top, 0)]
    if hardest:
        print()
        print(f"hardest nets by SCOAP (top {len(hardest)}):")
        print(f"  {'net':<14} {'cc0':>6} {'cc1':>6} {'co':>6} {'t':>6}")
        for line in hardest:
            label = netlist.gate(line).name or f"g{line}"
            print(f"  {label:<14} {fmt(scoap.cc0[line]):>6} "
                  f"{fmt(scoap.cc1[line]):>6} {fmt(scoap.co[line]):>6} "
                  f"{fmt(scoap.testability(line)):>6}")
    if sca.certificates:
        print()
        shown = sca.certificates[:20]
        print(f"certificates ({len(sca.certificates)} total, "
              f"{len(shown)} shown):")
        for cert in shown:
            print(f"  {cert.fault.site():<20} {cert.reason}")
    return 0


def _cmd_atpg(args: argparse.Namespace) -> int:
    import json as _json

    from repro.atpg import ATPG_SCHEMA, top_off
    from repro.harness.experiments import CircuitStudy
    from repro.perf.artifacts import cached_atpg

    options = _options_from(args)
    runs = []
    results: dict[str, dict] = {}
    for name in args.circuits:
        study = CircuitStudy(name, options)
        scan, sca, table = study.scan_circuit, study.sca, study.table
        payload: dict[str, object]
        if args.top_off:
            report = top_off(
                scan,
                table,
                study.stuck_at_faults,
                study.stuck_at_selection.detected,
                proven_untestable=study.stuck_at_proven,
                algorithm=args.algorithm,
                backtrack_limit=args.backtrack_limit,
                scoap=sca.scoap,
                certificates=sca.certificates,
            )
            run = report.run
            payload = run.to_dict()
            payload["top_off"] = report.to_dict()
        else:
            run = cached_atpg(
                scan,
                table,
                study.stuck_at_faults,
                algorithm=args.algorithm,
                backtrack_limit=args.backtrack_limit,
                certificates=sca.certificates,
                circuit=name,
            )
            report = None
            payload = run.to_dict()
        payload["circuit"] = name
        runs.append((name, run, report, payload))
        results[name] = {
            "targets": run.n_targets,
            "tests": len(run.tests),
            "untestable": len(run.untestable),
            "aborted": len(run.aborted),
            "coverage_pct": round(run.coverage_pct, 2),
            "backtracks": run.total_backtracks,
        }
    args._ledger_circuits = list(args.circuits)
    args._ledger_results = results
    args._ledger_semantics = {
        "algorithm": args.algorithm,
        "backtrack_limit": args.backtrack_limit,
        "top_off": bool(args.top_off),
    }
    if args.format == "json":
        print(_json.dumps(
            {"schema": ATPG_SCHEMA,
             "algorithm": args.algorithm,
             "backtrack_limit": args.backtrack_limit,
             "max_fanin": args.max_fanin,
             "runs": [payload for _, _, _, payload in runs]},
            indent=2, sort_keys=True,
        ))
        return 0
    for name, run, report, _ in runs:
        certified = sum(1 for v in run.untestable if v.certified)
        print(f"circuit      {name}")
        print(f"algorithm    {run.algorithm} "
              f"(backtrack limit {run.backtrack_limit})")
        print(f"targets      {run.n_targets} collapsed representative(s)")
        print(f"tests        {len(run.tests)} found, every witness "
              f"replayed through the fault simulator")
        print(f"untestable   {len(run.untestable)} proven by exhausted "
              f"search ({certified} matching a static certificate)")
        print(f"aborted      {len(run.aborted)} (budget exhausted, "
              f"no verdict)")
        print(f"coverage     {run.coverage_pct:.2f}% of targets")
        print(f"backtracks   {run.total_backtracks} total")
        if report is not None:
            print(f"top-off      functional "
                  f"{report.functional_coverage_pct:.2f}% -> combined "
                  f"{report.combined_coverage_pct:.2f}% "
                  f"({len(run.tests)} structural test(s) added)")
        if run is not runs[-1][1]:
            print()
    return 0


def _cmd_cache_clear(args: argparse.Namespace) -> int:
    from repro.perf.cache import ArtifactCache

    cache = ArtifactCache(_cache_root(args))
    removed = cache.clear()
    print(f"removed {removed} cached artifact(s) from {cache.root}")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import json as _json

    from repro.errors import FuzzError
    from repro.fuzz import FuzzConfig, oracle_names, run_fuzz

    if args.list_oracles:
        from repro.fuzz import get_oracle

        for name in oracle_names():
            print(f"{name}: {get_oracle(name).description}")
        return 0
    from repro.obs.log import INFO, get_logger, set_verbosity, verbosity

    if args.verbose and verbosity() > INFO:
        # `fuzz -v` predates the global -v flag; keep it working.
        set_verbosity(INFO)
    logger = get_logger("fuzz")
    progress: Callable[[str], None] | None = None
    if verbosity() <= INFO:

        def progress(message: str) -> None:
            logger.info(message)
    try:
        config = FuzzConfig(
            cases=args.cases,
            seed=args.seed,
            oracles=tuple(args.oracle or ()),
            corpus_dir=args.corpus,
            shrink=not args.no_shrink,
            max_states=args.max_states,
            max_inputs=args.max_inputs,
            max_outputs=args.max_outputs,
            time_budget_s=args.time_budget,
            max_failures=args.max_failures,
        )
        report = run_fuzz(config, progress)
    except FuzzError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(_json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render(), end="")
    args._ledger_semantics = {
        "cases": args.cases,
        "seed": args.seed,
        "oracles": sorted(args.oracle or ()),
    }
    args._ledger_results = {
        "fuzz": {
            "executed_cases": report.executed_cases,
            "replayed_entries": report.replayed_entries,
            "failures": len(report.failures),
        }
    }
    return 0 if report.ok else 1


def _trace_targets(args: argparse.Namespace) -> tuple[int | None, tuple[str, ...]]:
    """Resolve a ``trace``/``stats``/``explain`` target into
    (table number, circuits)."""
    target = args.target
    if target in circuit_names():
        return None, (target,)
    if target.startswith("table") and target[5:] in tuple("23456789"):
        circuits = tuple(
            name.strip() for name in args.circuit.split(",") if name.strip()
        )
        return int(target[5:]), circuits or ("lion",)
    print(f"error: unknown target {target!r} "
          "(expected table2..table9 or a circuit name)", file=sys.stderr)
    raise SystemExit(2)


def _run_observed(args: argparse.Namespace):
    """Run the target pipeline under a fresh obs session; returns it.

    The full three-phase sweep runs for the selected circuits (so UIO
    search, transfer, chaining, and fault-simulation spans all appear even
    for purely functional tables), then the table itself renders from the
    warmed studies.
    """
    from repro import obs

    number, circuits = _trace_targets(args)
    options = _options_from(args)
    jobs = getattr(args, "jobs", 1) or 1
    table_text = ""
    # Diagnostic commands opt into tracemalloc-backed per-span peak-memory
    # attribution; ledgered/bench runs keep it off (real overhead).
    with obs.observing(deep_memory=True) as session:
        experiments.warm_studies(circuits, options, jobs=jobs)
        if number is not None:
            if number in (2, 3):
                function = getattr(experiments, f"table{number}")
                rows = function(circuits[0], options)
            elif number == 8:
                rows = experiments.table8(circuits, options)
            elif number == 9:
                rows = experiments.table9(circuits, options)
            else:
                function = getattr(experiments, f"table{number}")
                rows = function(circuits, options)
            table_text = render(number, rows)
    return session, table_text


def _write_chrome_trace(path: str, events) -> None:
    import json as _json

    from repro.obs.trace import to_chrome

    with open(path, "w") as handle:
        _json.dump(to_chrome(events), handle)


def _write_metrics(path: str, registry) -> None:
    import json as _json

    with open(path, "w") as handle:
        _json.dump(registry.snapshot(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def _cmd_trace(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs.trace import render_span_tree, span_tree

    session, table_text = _run_observed(args)
    events = session.tracer.events
    _write_chrome_trace(args.trace_out, events)
    if args.format == "json":
        print(_json.dumps(
            {
                "target": args.target,
                "spans": [event.to_dict() for event in events],
                "tree": span_tree(events),
                "metrics": session.registry.snapshot(),
                "trace_out": args.trace_out,
            },
            indent=2,
        ))
    else:
        if table_text:
            print(table_text)
            print()
        print(render_span_tree(events))
        print(f"wrote {len(events)} span(s) to {args.trace_out} "
              "(load in chrome://tracing or https://ui.perfetto.dev)")
    if args.metrics_out:
        _write_metrics(args.metrics_out, session.registry)
        if args.format != "json":
            print(f"wrote metrics snapshot to {args.metrics_out}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs.report import aggregate_spans, pool_utilization, render_stats

    session, table_text = _run_observed(args)
    if args.format == "json":
        metrics = session.registry.snapshot()
        print(_json.dumps(
            {
                "target": args.target,
                "spans": [
                    {
                        "name": stat.name,
                        "calls": stat.calls,
                        "total_s": stat.total_s,
                        "self_s": stat.self_s,
                        "mean_ms": stat.mean_ms,
                        "cpu_s": stat.cpu_s,
                        "self_cpu_s": stat.self_cpu_s,
                        "mem_peak_bytes": stat.mem_peak_bytes,
                    }
                    for stat in aggregate_spans(session.tracer.events)
                ],
                "pool": pool_utilization(metrics),
                "metrics": metrics,
            },
            indent=2,
        ))
    else:
        if table_text:
            print(table_text)
            print()
        print(render_stats(session.tracer.events, session.registry,
                           top=args.top))
    if args.trace_out:
        _write_chrome_trace(args.trace_out, session.tracer.events)
    if args.metrics_out:
        _write_metrics(args.metrics_out, session.registry)
    return 0


def _cmd_history(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs.analytics import detect_anomalies
    from repro.obs.history import command_records, render_history
    from repro.obs.ledger import read_records

    records = read_records()
    anomalies = [] if args.no_anomalies else detect_anomalies(records)
    if args.format == "json":
        selected = command_records(records, args.target)
        shown = selected[-args.limit:] if args.limit > 0 else selected
        print(_json.dumps(
            {"command": args.target, "total": len(selected),
             "records": list(shown),
             "anomalies": [
                 a.to_dict() for a in anomalies if a.command == args.target
             ]},
            indent=2,
        ))
        return 0
    print(render_history(records, args.target, limit=args.limit,
                         anomalies=anomalies))
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs.analytics import (
        circuit_frame,
        render_fits_latex,
        render_fits_markdown,
        scaling_fits,
        tables_payload,
    )
    from repro.obs.ledger import read_records

    records = read_records()
    commands = [
        name.strip() for name in args.command.split(",") if name.strip()
    ] or None
    if args.format == "json":
        text = _json.dumps(
            tables_payload(records, commands), indent=2, sort_keys=True
        )
    else:
        frame = circuit_frame(records)
        if commands is None:
            commands = sorted(
                {str(c) for c in frame.column("command")}
                if len(frame) else set()
            )
        render = (
            render_fits_markdown if args.format == "markdown"
            else render_fits_latex
        )
        blocks = [
            render(scaling_fits(frame.where(command=name)), name)
            for name in commands
        ]
        text = "\n\n".join(blocks) if blocks else render([], "")
    if args.out == "-":
        print(text)
    else:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote scaling tables ({args.format}) to {args.out}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs.analytics import (
        diff_payload,
        diff_records,
        resolve_record,
    )
    from repro.obs.analytics import render_diff as _render_diff
    from repro.obs.ledger import read_records

    records = read_records()
    if not records:
        print("error: the ledger is empty (nothing to diff)",
              file=sys.stderr)
        return 2
    try:
        base_index, base = resolve_record(records, args.base)
        other_index, other = resolve_record(records, args.other)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    diff = diff_records(base, other, base_index, other_index)
    if args.format == "json":
        print(_json.dumps(diff_payload(diff), indent=2, sort_keys=True))
    else:
        print(_render_diff(diff, top_metrics=args.top_metrics))
    return 0


def _cmd_ledger_prune(args: argparse.Namespace) -> int:
    from repro.obs.ledger import ledger_dir, prune_records

    if args.keep < 1:
        print("error: --keep must be >= 1", file=sys.stderr)
        return 2
    summary = prune_records(args.keep)
    if summary is None:
        root = ledger_dir()
        where = "disabled" if root is None else f"empty at {root}"
        print(f"ledger {where}; nothing to prune")
        return 0
    corrupt = (
        f", dropped {summary['corrupt']} corrupt line(s)"
        if summary["corrupt"] else ""
    )
    print(
        f"kept {summary['kept']} record(s), pruned {summary['pruned']}"
        f"{corrupt} (newest {args.keep} per circuit)"
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.history import render_html
    from repro.obs.ledger import read_records

    records = read_records()
    text = render_html(records, title=args.title)
    if args.out == "-":
        print(text)
    else:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {len(records)} ledger record(s) to {args.out}")
    return 0


def _cmd_regress(args: argparse.Namespace) -> int:
    from repro.obs.regress import run_regress

    circuits = tuple(
        name.strip() for name in args.circuits.split(",") if name.strip()
    )
    report, code = run_regress(
        args.baseline,
        circuits=circuits or None,
        jobs=max(1, args.jobs),
        threshold_pct=args.threshold,
        min_seconds=args.min_seconds,
        min_rss_kb=args.min_rss_kb,
    )
    if report is not None:
        print(report.render())
    return code


def _state_labels(machine: str) -> tuple[str, ...]:
    """Symbolic state names for ``explain`` output (falls back to ``s<N>``)."""
    try:
        from repro.benchmarks import load_kiss_machine

        return tuple(load_kiss_machine(machine).state_names())
    except Exception:
        return ()


def _explain_fault(args: argparse.Namespace, circuits: tuple[str, ...]) -> int:
    """Replay one fault's ATPG search with a deep forensic trace.

    The per-fault ring buffer kept on sweep verdicts holds the *last*
    ``trace_capacity`` events; this re-runs the single target with a much
    larger buffer so the whole decision/backtrack history is available,
    then renders it as an indented tree (or JSON).
    """
    import json as _json

    from repro.atpg import generate_structural_tests
    from repro.harness.experiments import CircuitStudy

    name = circuits[0]
    options = _options_from(args)
    study = CircuitStudy(name, options)
    scan, sca, table = study.scan_circuit, study.sca, study.table
    faults = list(study.stuck_at_faults)
    wanted = args.fault
    matches = [f for f in faults if f.site() == wanted]
    if not matches:
        close = [f.site() for f in faults if wanted in f.site()][:8]
        hint = f" (close: {', '.join(close)})" if close else ""
        print(f"error: no collapsed fault {wanted!r} in {name}; "
              f"{len(faults)} representative(s){hint}", file=sys.stderr)
        return 2
    run = generate_structural_tests(
        scan,
        table,
        matches[:1],
        algorithm=args.algorithm,
        backtrack_limit=args.backtrack_limit,
        certificates=sca.certificates,
        trace_capacity=args.trace_capacity,
        trace_hardest=1,
    )
    verdict = run.verdicts[0]
    if args.format == "json":
        payload = verdict.to_dict()
        payload["circuit"] = name
        payload["algorithm"] = args.algorithm
        print(_json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"fault        {verdict.fault.site()}  (circuit {name})")
    print(f"algorithm    {args.algorithm} "
          f"(backtrack limit {args.backtrack_limit})")
    outcome = verdict.status
    if verdict.aborted_reason:
        outcome += f" [{verdict.aborted_reason}]"
    print(f"verdict      {outcome} after {verdict.decisions} decision(s), "
          f"{verdict.backtracks} backtrack(s)")
    if verdict.pattern is not None:
        print(f"test         pattern {verdict.pattern:#x} "
              f"(state {verdict.state}, input {verdict.combo})")
    events = verdict.search_trace or ()
    dropped = verdict.trace_total - len(events)
    suffix = f" ({dropped} earlier event(s) evicted)" if dropped > 0 else ""
    print(f"trace        {len(events)} of {verdict.trace_total} "
          f"search event(s){suffix}")
    for position, event in enumerate(events, 1):
        indent = "  " * max(1, event.depth)
        frontier = f"|D|={event.d_frontier}"
        if event.j_frontier:
            frontier += f" |J|={event.j_frontier}"
        print(f"  #{position:<4d}{indent}{event.kind:<9s} "
              f"{event.line}={event.value}  depth {event.depth}  {frontier}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    import json as _json

    from repro import obs
    from repro.obs.provenance import decision_summary

    _number, circuits = _trace_targets(args)
    if args.fault:
        return _explain_fault(args, circuits)
    transition: tuple[int, int] | None = None
    if args.transition:
        parts = args.transition.split(",")
        try:
            state_text, combo_text = parts
            transition = (int(state_text), int(combo_text))
        except ValueError:
            print("error: --transition wants 'state,input' "
                  f"(got {args.transition!r})", file=sys.stderr)
            return 2
    options = _options_from(args)
    # Decisions are made during test generation, so the functional scope is
    # always enough — no synthesis or fault simulation runs here.
    with obs.observing() as session:
        experiments.warm_studies(circuits, options, jobs=1, scope="functional")
    selected = [
        event
        for event in session.provenance.decisions()
        if transition is None
        or (event.state, event.combo) == transition
    ]
    if args.format == "json":
        print(_json.dumps([event.to_dict() for event in selected], indent=2))
        return 0 if selected else 1
    if not selected:
        where = f" for transition {args.transition}" if transition else ""
        print(f"no decisions recorded{where} (circuits: {', '.join(circuits)})")
        return 1
    by_machine: dict[str, list] = {}
    for event in selected:
        by_machine.setdefault(event.machine, []).append(event)
    for machine in sorted(by_machine):
        events = by_machine[machine]
        labels = _state_labels(machine)

        def label(state: object) -> str:
            if isinstance(state, int) and 0 <= state < len(labels):
                return labels[state]
            return f"s{state}"

        print(f"{machine}: {len(events)} transition decision(s)")
        for event in events:
            detail = dict(event.detail)
            next_state = detail.pop("next_state", "?")
            test_index = detail.pop("test_index", "?")
            step = detail.pop("step", "?")
            extra = ", ".join(
                f"{key}={value}" for key, value in sorted(detail.items())
            )
            print(f"  {label(event.state)} --in{event.combo}--> "
                  f"{label(next_state)}: {event.outcome} [{event.reason}] "
                  f"(test {test_index}, step {step}"
                  + (f", {extra}" if extra else "") + ")")
    if transition is None:
        summary = decision_summary(selected)
        decisions = ", ".join(
            f"{name}={count}" for name, count in summary["decisions"].items()
        )
        reasons = ", ".join(
            f"{name}={count}" for name, count in summary["reasons"].items()
        )
        print(f"summary: {decisions} ({reasons})")
    return 0


def _table_command(number: int):
    def run(args: argparse.Namespace) -> int:
        options = _options_from(args)
        artifacts: dict = {}
        if number in (2, 3):
            circuits: tuple[str, ...] = (args.circuit,)
            # table2 reads only the UIO table; table3 fault-simulates.
            scope = "functional" if number == 2 else "full"
            artifacts = _warm(args, circuits, options, scope)
            function = getattr(experiments, f"table{number}")
            rows = function(args.circuit, options)
        elif number in (8, 9):
            # Per-row option sweeps: the base-option studies would never be
            # read, so these render from their own lazy (serial) pipelines.
            circuits = _circuit_list(args) if args.circuits else ()
            function = getattr(experiments, f"table{number}")
            rows = function(circuits or None, options)
        else:
            circuits = _circuit_list(args)
            # Tables 4/5 are purely functional; 6/7 need the gate level.
            scope = "functional" if number in (4, 5) else "full"
            artifacts = _warm(args, circuits, options, scope)
            function = getattr(experiments, f"table{number}")
            rows = function(circuits, options)
        print(render(number, rows, csv=getattr(args, "csv", False)))
        args._ledger_circuits = list(circuits)
        args._ledger_results = {
            name: art.summary() for name, art in artifacts.items()
        }
        return 0

    return run


def _cmd_all(args: argparse.Namespace) -> int:
    options = _options_from(args)
    circuits = _circuit_list(args)
    artifacts = _warm(args, circuits, options)
    args._ledger_circuits = list(circuits)
    args._ledger_results = {
        name: art.summary() for name, art in artifacts.items()
    }
    print(render(2, experiments.table2("lion", options)))
    print()
    print(render(3, experiments.table3("lion", options)))
    print()
    for number in (4, 5, 6, 7):
        function = getattr(experiments, f"table{number}")
        print(render(number, function(circuits, options)))
        print()
    print(render(8, experiments.table8(None, options)))
    print()
    table9_circuits = [c for c in experiments.TABLE9_CIRCUITS if c in circuits]
    if table9_circuits:
        print(render(9, experiments.table9(table9_circuits, options)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fsatpg",
        description="Functional test generation for full scan circuits "
        "(Pomeranz & Reddy, DATE 2000).",
    )
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        dest="verbose_global",
                        help="structured progress logging on stderr "
                        "(-vv for debug)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        dest="quiet_global",
                        help="errors only on stderr")
    parser.add_argument("--progress", action="store_true",
                        dest="progress_global",
                        help="live heartbeat lines (done/total, rate, ETA "
                        "from the run ledger) for long sweeps")
    parser.add_argument("--no-ledger", action="store_true",
                        help="do not append this run to the run ledger")
    parser.add_argument("--ledger-dir", default=None, metavar="PATH",
                        help="run-ledger directory (default: $REPRO_LEDGER_DIR "
                        "or ~/.local/state/repro-fsatpg/ledger)")
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="show one circuit's parameters")
    info.add_argument("circuit")
    info.set_defaults(func=_cmd_info)

    gen = sub.add_parser("generate", help="generate functional scan tests")
    gen.add_argument("circuit")
    gen.add_argument("--uio-length", type=int, default=None,
                     help="bound L on UIO length (default: N_SV)")
    gen.add_argument("--transfer-length", type=int, default=1,
                     help="bound T on transfer length (0 disables)")
    gen.add_argument("--scan-ratio", type=int, default=1,
                     help="scan clock period in functional clock periods")
    gen.add_argument("--no-tests", dest="show_tests", action="store_false",
                     help="print statistics only")
    gen.add_argument("--verify", action="store_true",
                     help="run the strict coverage checker")
    gen.set_defaults(func=_cmd_generate)

    export = sub.add_parser("export", help="write generated tests to a file")
    export.add_argument("circuit")
    export.add_argument("--format", choices=("json", "vectors"), default="json")
    export.add_argument("-o", "--output", default="-",
                        help="output path ('-' prints to stdout)")
    export.add_argument("--uio-length", type=int, default=None)
    export.add_argument("--transfer-length", type=int, default=1)
    export.add_argument("--scan-ratio", type=int, default=1)
    export.set_defaults(func=_cmd_export)

    nonscan = sub.add_parser(
        "nonscan", help="non-scan checking sequence vs scan coverage"
    )
    nonscan.add_argument("circuit")
    nonscan.add_argument("--uio-length", type=int, default=None)
    nonscan.add_argument("--transfer-length", type=int, default=1)
    nonscan.add_argument("--scan-ratio", type=int, default=1)
    nonscan.set_defaults(func=_cmd_nonscan)

    delay = sub.add_parser(
        "delay", help="transition-delay coverage, chained vs baseline"
    )
    delay.add_argument("circuit")
    delay.add_argument("--max-fanin", type=int, default=4)
    delay.add_argument("--uio-length", type=int, default=None)
    delay.add_argument("--transfer-length", type=int, default=1)
    delay.add_argument("--scan-ratio", type=int, default=1)
    delay.set_defaults(func=_cmd_delay)

    def add_common(p: argparse.ArgumentParser, with_circuit_list: bool) -> None:
        if with_circuit_list:
            p.add_argument("--circuits", default="",
                           help="comma-separated circuit names")
            p.add_argument("--tier", default="default",
                           choices=("small", "medium", "large", "all", "default"),
                           help="circuit tier (default: small+medium)")
        p.add_argument("--uio-length", type=int, default=None)
        p.add_argument("--transfer-length", type=int, default=1)
        p.add_argument("--scan-ratio", type=int, default=1)
        p.add_argument("--max-fanin", type=int, default=4,
                       help="gate fanin bound for synthesis (0 = unbounded)")
        p.add_argument("--bridging-limit", type=int, default=500,
                       help="max bridging line pairs (0 = unlimited)")
        p.add_argument("--engine", default="auto", choices=FAULT_SIM_ENGINES,
                       help="fault-sim engine: ppsfp (pattern-parallel "
                       "tables), bigint (compiled parallel-fault), or auto "
                       "dispatch per universe (default)")
        p.add_argument("--csv", action="store_true",
                       help="emit CSV instead of the fixed-width table")
        if with_circuit_list:
            p.add_argument("--jobs", type=int, default=1,
                           help="worker processes for the per-circuit "
                           "pipeline (1 = serial)")
        p.add_argument("--cache-dir", default=None, metavar="PATH",
                       help="enable the artifact cache rooted at PATH "
                       "('default' = ~/.cache/repro-fsatpg)")
        p.add_argument("--trace-out", default=None, metavar="PATH",
                       help="write a Chrome trace_event file of this run "
                       "(chrome://tracing / Perfetto)")
        p.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write a JSON metrics snapshot of this run")

    for number in range(2, 10):
        help_text = {
            2: "UIO sequences of one circuit",
            3: "stuck-at simulation rows for one circuit",
            4: "circuit parameters and UIO statistics",
            5: "functional test generation statistics",
            6: "gate-level stuck-at and bridging coverage",
            7: "clock cycles for test application",
            8: "test generation without transfer sequences",
            9: "sweep of the UIO length bound",
        }[number]
        p = sub.add_parser(f"table{number}", help=help_text)
        if number in (2, 3):
            p.add_argument("circuit", nargs="?", default="lion")
            add_common(p, with_circuit_list=False)
        else:
            add_common(p, with_circuit_list=True)
        p.set_defaults(func=_table_command(number))

    lint = sub.add_parser(
        "lint",
        help="static analysis of machines, netlists, and generated tests",
    )
    lint.add_argument("--circuits", default="",
                      help="comma-separated circuit names")
    lint.add_argument("--tier", default="default",
                      choices=("small", "medium", "large", "all", "default"),
                      help="circuit tier (default: small+medium)")
    lint.add_argument("--kiss", nargs="*", metavar="FILE",
                      help="lint KISS2 files instead of (or besides) circuits")
    lint.add_argument("--format", choices=("human", "json"), default="human",
                      help="output format (json is SARIF-like)")
    lint.add_argument("--strict", action="store_true",
                      help="exit non-zero on warnings, not just errors")
    lint.add_argument("--no-gatelevel", dest="gatelevel", action="store_false",
                      help="skip synthesizing and linting the netlist")
    lint.add_argument("--no-tests", dest="run_tests", action="store_false",
                      help="skip generating and linting the test program")
    lint.add_argument("--max-fanin", type=int, default=4,
                      help="gate fanin bound for synthesis (0 = unbounded)")
    lint.add_argument("--uio-length", type=int, default=None)
    lint.add_argument("--transfer-length", type=int, default=1)
    lint.add_argument("--scan-ratio", type=int, default=1)
    lint.set_defaults(func=_cmd_lint)

    analyze = sub.add_parser(
        "analyze",
        help="static netlist analysis: fault collapsing, SCOAP measures, "
        "and machine-checked redundancy proofs",
    )
    analyze.add_argument("circuit")
    analyze.add_argument("--max-fanin", type=int, default=4,
                         help="gate fanin bound for synthesis (0 = unbounded)")
    analyze.add_argument("--format", choices=("human", "json"),
                         default="human",
                         help="json emits the full repro-fsatpg-sca/1 "
                         "payload (see scripts/validate_sca.py)")
    analyze.add_argument("--top", type=int, default=10,
                         help="hardest nets shown in the SCOAP table "
                         "(human format; default: 10)")
    analyze.add_argument("--no-scoap", action="store_true",
                         help="omit the per-net SCOAP block from JSON output")
    analyze.add_argument("--cache-dir", default=None, metavar="PATH",
                         help="enable the artifact cache rooted at PATH "
                         "('default' = ~/.cache/repro-fsatpg)")
    analyze.add_argument("--trace-out", default=None, metavar="PATH",
                         help="write a Chrome trace_event file of this run")
    analyze.add_argument("--metrics-out", default=None, metavar="PATH",
                         help="write a JSON metrics snapshot of this run")
    analyze.set_defaults(func=_cmd_analyze)

    atpg = sub.add_parser(
        "atpg",
        help="structural ATPG: D-algorithm / PODEM over the collapsed "
        "fault list with machine-checked verdicts",
    )
    atpg.add_argument("circuits", nargs="+", metavar="circuit",
                      help="benchmark circuit name(s)")
    atpg.add_argument("--algorithm", choices=("podem", "d"),
                      default="podem",
                      help="search engine: PODEM (input branching) or the "
                      "D-algorithm (internal-line branching)")
    atpg.add_argument("--backtrack-limit", type=int, default=100_000,
                      metavar="N",
                      help="abort a fault's search after N backtracks "
                      "(aborts claim nothing; default: 100000)")
    atpg.add_argument("--top-off", action="store_true",
                      help="target only the representatives the functional "
                      "test set missed and report combined coverage")
    atpg.add_argument("--max-fanin", type=int, default=4,
                      help="gate fanin bound for synthesis (0 = unbounded)")
    atpg.add_argument("--format", choices=("human", "json"),
                      default="human",
                      help="json emits the full repro-fsatpg-atpg/1 "
                      "payload (see scripts/validate_atpg.py)")
    atpg.add_argument("--cache-dir", default=None, metavar="PATH",
                      help="enable the artifact cache rooted at PATH "
                      "('default' = ~/.cache/repro-fsatpg)")
    atpg.add_argument("--trace-out", default=None, metavar="PATH",
                      help="write a Chrome trace_event file of this run")
    atpg.add_argument("--metrics-out", default=None, metavar="PATH",
                      help="write a JSON metrics snapshot of this run")
    atpg.set_defaults(func=_cmd_atpg)

    fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing: random machines through paired "
        "implementations (exit 1 on any disagreement)",
    )
    fuzz.add_argument("--cases", type=int, default=100, metavar="N",
                      help="number of machines to generate (0 = only replay "
                      "the corpus; default: 100)")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="campaign seed; same seed, same machines "
                      "(default: 0)")
    fuzz.add_argument("--oracle", action="append", metavar="NAME",
                      help="run only this oracle (repeatable; default: all)")
    fuzz.add_argument("--corpus", default=None, metavar="DIR",
                      help="failure corpus directory: stored failures replay "
                      "first, new failures are saved as KISS files")
    fuzz.add_argument("--list-oracles", action="store_true",
                      help="list registered oracles and exit")
    fuzz.add_argument("--max-states", type=int, default=10,
                      help="largest generated machine (default: 10)")
    fuzz.add_argument("--max-inputs", type=int, default=3,
                      help="widest primary input (default: 3 bits)")
    fuzz.add_argument("--max-outputs", type=int, default=3,
                      help="widest primary output (default: 3 bits)")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="report failures unminimized")
    fuzz.add_argument("--time-budget", type=float, default=None,
                      metavar="SECONDS",
                      help="stop generating new cases after this long "
                      "(corpus replay always completes)")
    fuzz.add_argument("--max-failures", type=int, default=8, metavar="N",
                      help="stop after N failures, 0 = never (default: 8)")
    fuzz.add_argument("--format", choices=("human", "json"), default="human",
                      help="report format (both are deterministic)")
    fuzz.add_argument("-v", "--verbose", action="store_true",
                      help="per-case progress on stderr")
    fuzz.set_defaults(func=_cmd_fuzz)

    everything = sub.add_parser("all", help="regenerate every table")
    add_common(everything, with_circuit_list=True)
    everything.set_defaults(func=_cmd_all)

    claims = sub.add_parser(
        "claims", help="verify every headline claim (reproduction certificate)"
    )
    add_common(claims, with_circuit_list=True)
    claims.set_defaults(func=_cmd_claims)

    bench = sub.add_parser(
        "bench",
        help="serial vs parallel vs warm-cache sweep timing (BENCH_perf.json)",
    )
    bench.add_argument("--circuits", default="",
                       help="comma-separated circuit names")
    bench.add_argument("--jobs", type=int, default=4,
                       help="worker processes for the parallel runs")
    bench.add_argument("--cache-dir", default=None, metavar="PATH",
                       help="cache directory for the cold/warm runs")
    bench.add_argument("--engine", default=None, choices=FAULT_SIM_ENGINES,
                       help="fault-sim engine for every bench run")
    bench.add_argument("--quick", action="store_true",
                       help="tiny circuit set for smoke runs")
    bench.add_argument("-o", "--output", default="BENCH_perf.json",
                       help="report path ('-' prints JSON to stdout)")
    bench.set_defaults(func=_cmd_bench)

    def add_trace_like(name: str, help_text: str) -> argparse.ArgumentParser:
        p = sub.add_parser(name, help=help_text)
        p.add_argument("target",
                       help="what to run: table2..table9 or a circuit name")
        p.add_argument("--circuit", default="", metavar="NAMES",
                       help="comma-separated circuits for a tableN target "
                       "(default: lion)")
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes; worker spans merge under "
                       "the parent sweep span")
        p.add_argument("--uio-length", type=int, default=None)
        p.add_argument("--transfer-length", type=int, default=1)
        p.add_argument("--scan-ratio", type=int, default=1)
        p.add_argument("--max-fanin", type=int, default=4)
        p.add_argument("--bridging-limit", type=int, default=500)
        p.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="also write a JSON metrics snapshot")
        p.add_argument("--format", choices=("human", "json"), default="human",
                       help="json mirrors the rendered output "
                       "machine-parsably")
        return p

    trace = add_trace_like(
        "trace",
        "run one table/circuit pipeline with span tracing and export a "
        "Chrome trace_event file",
    )
    trace.add_argument("--trace-out", default="trace.json", metavar="PATH",
                       help="Chrome trace output path (default: trace.json)")
    trace.set_defaults(func=_cmd_trace, obs_managed=True)

    stats = add_trace_like(
        "stats",
        "run one table/circuit pipeline and print a profile: top spans by "
        "self time plus counter/histogram tables",
    )
    stats.add_argument("--trace-out", default=None, metavar="PATH",
                       help="also write a Chrome trace_event file")
    stats.add_argument("--top", type=int, default=15,
                       help="span rows to show (default: 15)")
    stats.set_defaults(func=_cmd_stats, obs_managed=True)

    history = sub.add_parser(
        "history",
        help="trend table of run-ledger records for one command",
    )
    history.add_argument("target",
                         help="ledgered command name (table5, bench, ...)")
    history.add_argument("--format", choices=("human", "json"),
                         default="human",
                         help="human: fixed-width trend table; json: the "
                         "raw ledger records")
    history.add_argument("--limit", type=int, default=20,
                         help="most recent runs to show (default: 20)")
    history.add_argument("--no-anomalies", action="store_true",
                         help="skip the MAD-based outlier warnings")
    history.set_defaults(func=_cmd_history)

    tables = sub.add_parser(
        "tables",
        help="asymptotic scaling fits (tests, cycles, stage seconds, RSS "
        "vs machine size) from the run ledger",
    )
    tables.add_argument("--command", default="", metavar="NAMES",
                        help="comma-separated ledgered commands to fit "
                        "(default: every command in the ledger)")
    tables.add_argument("--format", choices=("markdown", "latex", "json"),
                        default="markdown",
                        help="markdown/latex: fit + residual tables; "
                        "json: the machine-readable payload")
    tables.add_argument("--out", default="-", metavar="PATH",
                        help="output path ('-' prints to stdout)")
    tables.set_defaults(func=_cmd_tables)

    diff = sub.add_parser(
        "diff",
        help="attribute wall-time/metric/result deltas between two "
        "ledger records",
    )
    diff.add_argument("base",
                      help="base record: 'last', 'prev', '@N'/an index, or "
                      "a record-id / git-SHA / args-hash prefix")
    diff.add_argument("other", nargs="?", default="last",
                      help="other record (same selectors; default: last)")
    diff.add_argument("--format", choices=("human", "json"),
                      default="human")
    diff.add_argument("--top-metrics", type=int, default=10, metavar="N",
                      help="changed metrics to show (default: 10)")
    diff.set_defaults(func=_cmd_diff)

    report = sub.add_parser(
        "report",
        help="self-contained HTML dashboard of the run ledger "
        "(inline SVG sparklines, no JavaScript)",
    )
    report.add_argument("--out", default="report.html", metavar="PATH",
                        help="output path ('-' prints to stdout; "
                        "default: report.html)")
    report.add_argument("--title", default="repro-fsatpg run ledger",
                        help="page title")
    report.set_defaults(func=_cmd_report)

    regress = sub.add_parser(
        "regress",
        help="rerun a BENCH baseline's workload and exit non-zero on "
        "stage-time or test-quality regressions",
    )
    regress.add_argument("--baseline", default="BENCH_perf.json",
                         metavar="PATH",
                         help="BENCH_perf.json to compare against")
    regress.add_argument("--circuits", default="",
                         help="override the baseline's circuit list")
    regress.add_argument("--jobs", type=int, default=1,
                         help="worker processes for the rerun")
    regress.add_argument("--threshold", type=float, default=25.0,
                         metavar="PCT",
                         help="allowed stage-time growth in percent "
                         "(default: 25)")
    regress.add_argument("--min-seconds", type=float, default=0.1,
                         metavar="S",
                         help="noise floor: stages under S seconds in both "
                         "runs are never flagged (default: 0.1)")
    regress.add_argument("--min-rss-kb", type=float, default=51200.0,
                         metavar="KB",
                         help="memory-gate floor: peak RSS under KB always "
                         "passes regardless of growth (default: 51200 = "
                         "50 MiB, the interpreter-baseline noise band)")
    regress.set_defaults(func=_cmd_regress)

    explain = sub.add_parser(
        "explain",
        help="decision provenance: why each transition was chained or "
        "scan-terminated (or, with --fault, one ATPG search's forensics)",
    )
    explain.add_argument("target",
                         help="what to explain: table2..table9 or a "
                         "circuit name")
    explain.add_argument("--circuit", default="", metavar="NAMES",
                         help="comma-separated circuits for a tableN target "
                         "(default: lion)")
    explain.add_argument("--transition", default=None, metavar="S,I",
                         help="only the decision for state S under input "
                         "combination I")
    explain.add_argument("--fault", default=None, metavar="ID",
                         help="replay one collapsed fault's structural "
                         "search (an ID like 'g7.pin1/sa1' from "
                         "`atpg --format json`) with a deep trace")
    explain.add_argument("--algorithm", choices=("podem", "d"),
                         default="podem",
                         help="search algorithm for --fault replays")
    explain.add_argument("--backtrack-limit", type=int, default=100_000,
                         metavar="N",
                         help="backtrack budget for --fault replays")
    explain.add_argument("--trace-capacity", type=int, default=65536,
                         metavar="N",
                         help="forensic ring-buffer size for --fault "
                         "replays (default: 65536 events)")
    explain.add_argument("--max-fanin", type=int, default=4,
                         help="synthesis fan-in bound for --fault replays "
                         "(0 = unbounded)")
    explain.add_argument("--format", choices=("human", "json"),
                         default="human")
    explain.add_argument("--uio-length", type=int, default=None)
    explain.add_argument("--transfer-length", type=int, default=1)
    explain.add_argument("--scan-ratio", type=int, default=1)
    explain.set_defaults(func=_cmd_explain)

    cache = sub.add_parser(
        "cache", help="inspect or clear the on-disk artifact cache"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    for name, help_text, function in (
        ("info", "show cache location, entry counts, and sizes", _cmd_cache_info),
        ("clear", "remove every cached artifact", _cmd_cache_clear),
    ):
        p = cache_sub.add_parser(name, help=help_text)
        p.add_argument("--cache-dir", default=None, metavar="PATH",
                       help="cache root (default: ~/.cache/repro-fsatpg)")
        p.set_defaults(func=function, cache_management=True)

    ledger = sub.add_parser(
        "ledger", help="maintain the on-disk run ledger"
    )
    ledger_sub = ledger.add_subparsers(dest="ledger_command", required=True)
    prune = ledger_sub.add_parser(
        "prune",
        help="keep only the newest N records per circuit (atomic rewrite)",
    )
    prune.add_argument("--keep", type=int, required=True, metavar="N",
                       help="records to keep per circuit")
    prune.set_defaults(func=_cmd_ledger_prune)
    return parser


def _normalize(args: argparse.Namespace) -> None:
    if getattr(args, "max_fanin", None) == 0:
        args.max_fanin = None
    if getattr(args, "bridging_limit", None) == 0:
        args.bridging_limit = None


#: Commands that append a run-ledger record.  ``bench`` ledgers itself
#: (wrapping it here would skew the overhead figure it measures); ``trace``,
#: ``stats``, and ``explain`` are diagnostic queries, not runs worth
#: trending; the cache and ledger subcommands are bookkeeping.
_LEDGER_COMMANDS = frozenset(
    {f"table{number}" for number in range(2, 10)}
    | {"all", "generate", "claims", "fuzz", "analyze", "atpg"}
)

#: Span names that are pipeline stages (see ``repro.perf.artifacts``).
_STAGE_SPAN_NAMES = frozenset(
    {"uio", "synthesis", "generation", "detectability", "fault-sim", "sca",
     "atpg"}
)


def _stage_seconds_from(events) -> dict[str, float]:
    """Total seconds per pipeline stage, summed over the session's spans."""
    totals: dict[str, float] = {}
    for event in events:
        if event.name in _STAGE_SPAN_NAMES:
            totals[event.name] = (
                totals.get(event.name, 0.0) + event.duration_ns / 1e9
            )
    return totals


def _semantic_args(args: argparse.Namespace) -> dict:
    """The result-determining arguments of a run (never scheduling knobs)."""
    semantics: dict = dict(getattr(args, "_ledger_semantics", {}))
    for key in ("uio_length", "transfer_length", "scan_ratio",
                "max_fanin", "bridging_limit"):
        if hasattr(args, key):
            semantics[key] = getattr(args, key)
    circuits = getattr(args, "_ledger_circuits", None)
    if circuits:
        semantics["circuits"] = list(circuits)
    elif getattr(args, "circuit", None):
        semantics["circuits"] = [args.circuit]
    return semantics


def _append_ledger(args: argparse.Namespace, argv: Sequence[str],
                   session, exit_code: int, wall_s: float,
                   resources: dict | None = None) -> None:
    from repro.obs.ledger import append_record, build_record
    from repro.obs.provenance import decision_summary
    from repro.perf.cache import active_cache

    semantics = _semantic_args(args)
    cache = active_cache()
    record = build_record(
        args.command,
        resources=resources,
        semantic_args=semantics,
        argv=argv,
        circuits=getattr(args, "_ledger_circuits", None)
        or semantics.get("circuits", []),
        jobs=getattr(args, "jobs", 1) or 1,
        exit_code=exit_code,
        wall_s=wall_s,
        stage_seconds=_stage_seconds_from(session.tracer.events),
        metrics=session.registry.snapshot(),
        results=getattr(args, "_ledger_results", {}),
        provenance=(
            decision_summary(session.provenance.events)
            if len(session.provenance)
            else None
        ),
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0,
    )
    append_record(record)


def _run_command(args: argparse.Namespace, argv: Sequence[str]) -> int:
    """Dispatch, optionally under an obs session.

    The ``trace``/``stats`` commands manage their own session
    (``obs_managed``).  Every other command runs under a session when
    ``--trace-out``/``--metrics-out`` asks for an export or when the
    command is ledgered — the ledger record embeds the session's stage
    spans, curated metrics, and provenance summary.  With the ledger
    disabled and no export requested, the default path stays
    collector-free.
    """
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    if getattr(args, "obs_managed", False):
        return args.func(args)
    from repro.obs.ledger import ledger_enabled

    wants_ledger = args.command in _LEDGER_COMMANDS and ledger_enabled()
    if not (trace_out or metrics_out or wants_ledger):
        return args.func(args)
    import time as _time

    from repro import obs
    from repro.obs.resources import UsageProbe

    started = _time.perf_counter()
    probe = UsageProbe()
    with obs.observing() as session:
        code = args.func(args)
    wall_s = _time.perf_counter() - started
    resources = probe.sample().to_dict()
    if trace_out:
        _write_chrome_trace(trace_out, session.tracer.events)
        print(f"wrote {len(session.tracer.events)} span(s) to {trace_out}",
              file=sys.stderr)
    if metrics_out:
        _write_metrics(metrics_out, session.registry)
        print(f"wrote metrics snapshot to {metrics_out}", file=sys.stderr)
    if wants_ledger:
        _append_ledger(args, argv, session, code, wall_s, resources)
    return code


def main(argv: Sequence[str] | None = None) -> int:
    import os

    from repro.obs.ledger import LEDGER_ENV
    from repro.obs.log import set_verbosity, verbosity_from_flags

    parser = build_parser()
    arglist = list(argv) if argv is not None else sys.argv[1:]
    args = parser.parse_args(arglist)
    _normalize(args)
    set_verbosity(verbosity_from_flags(args.verbose_global, args.quiet_global))
    from repro.obs.progress import enable_progress, set_command_context

    # The command name keys ledger-history ETA lookups for every meter
    # that does not name its own command (the sweep phases).
    set_command_context(args.command)
    if args.progress_global:
        enable_progress(True)
    # The ledger flags work through the environment variable so worker
    # processes and in-process helpers all see the same setting.
    if args.no_ledger:
        os.environ[LEDGER_ENV] = ""
    elif args.ledger_dir:
        os.environ[LEDGER_ENV] = args.ledger_dir
    try:
        # `bench` and `cache` manage the cache themselves; everything else
        # opts in through --cache-dir (artifacts are then reused across
        # invocations, including by the worker processes of --jobs).
        if (
            getattr(args, "cache_dir", None)
            and not getattr(args, "cache_management", False)
            and args.command != "bench"
        ):
            from repro.perf.cache import cache_enabled

            with cache_enabled(_cache_root(args)):
                return _run_command(args, arglist)
        return _run_command(args, arglist)
    except BrokenPipeError:  # output piped into e.g. `head`: not an error
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

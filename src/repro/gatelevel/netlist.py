"""Combinational gate-level netlists with word-parallel evaluation.

A :class:`Netlist` is an append-only DAG: every gate's fanins must already
exist when the gate is added, so gate index order *is* a topological order
and evaluation is a single forward sweep.  Values are ``numpy.uint64`` words
(or arrays of words); each bit position is an independent simulation
instance, which is what both the pattern-parallel detectability check and
the fault-parallel sequential simulator build on.  Logical constants are
all-zeros / all-ones words, so inversion is plain bitwise NOT and no masking
is ever needed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np
import numpy.typing as npt

from repro.errors import NetlistError

#: One uint64 word array: each bit position is an independent instance.
Words = npt.NDArray[np.uint64]

__all__ = [
    "GateType",
    "Gate",
    "Netlist",
    "Words",
    "ALL_ONES",
    "pack_bits",
    "unpack_bits",
    "exhaustive_pattern_words",
]

#: The all-ones word representing logical 1 in every instance.
ALL_ONES = np.uint64(0xFFFF_FFFF_FFFF_FFFF)


class GateType(enum.Enum):
    """Supported gate functions."""

    INPUT = "input"
    CONST0 = "const0"
    CONST1 = "const1"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    NAND = "nand"
    OR = "or"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"


_MIN_FANIN = {
    GateType.INPUT: 0,
    GateType.CONST0: 0,
    GateType.CONST1: 0,
    GateType.BUF: 1,
    GateType.NOT: 1,
    GateType.AND: 2,
    GateType.NAND: 2,
    GateType.OR: 2,
    GateType.NOR: 2,
    GateType.XOR: 2,
    GateType.XNOR: 2,
}
_MAX_FANIN = {
    GateType.INPUT: 0,
    GateType.CONST0: 0,
    GateType.CONST1: 0,
    GateType.BUF: 1,
    GateType.NOT: 1,
}


@dataclass(frozen=True)
class Gate:
    """One gate: ``index`` is its output line, ``fanins`` its input lines."""

    index: int
    kind: GateType
    fanins: tuple[int, ...]
    name: str = ""

    @property
    def n_fanins(self) -> int:
        return len(self.fanins)


def _evaluate_gate(kind: GateType, fanin_values: Sequence[Words]) -> Words:
    """Word-parallel value of one gate from its fanin values."""
    if kind is GateType.CONST0:
        return np.zeros(1, dtype=np.uint64)
    if kind is GateType.CONST1:
        return np.full(1, ALL_ONES, dtype=np.uint64)
    if kind in (GateType.BUF,):
        return fanin_values[0].copy()
    if kind is GateType.NOT:
        return ~fanin_values[0]
    acc = fanin_values[0].copy()
    if kind in (GateType.AND, GateType.NAND):
        for value in fanin_values[1:]:
            acc &= value
    elif kind in (GateType.OR, GateType.NOR):
        for value in fanin_values[1:]:
            acc |= value
    elif kind in (GateType.XOR, GateType.XNOR):
        for value in fanin_values[1:]:
            acc ^= value
    else:  # pragma: no cover - INPUT handled by the caller
        raise NetlistError(f"cannot evaluate gate of kind {kind}")
    if kind in (GateType.NAND, GateType.NOR, GateType.XNOR):
        acc = ~acc
    return acc


class Netlist:
    """An append-only combinational DAG of gates.

    ``inputs`` and ``outputs`` are ordered tuples of gate indices; outputs
    may alias any line, including inputs (a wire straight through).
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._gates: list[Gate] = []
        self._inputs: list[int] = []
        self._outputs: list[int] = []
        self._fanouts: list[list[int]] | None = None

    # --------------------------------------------------------- construction

    def add_input(self, name: str = "") -> int:
        index = len(self._gates)
        self._gates.append(Gate(index, GateType.INPUT, (), name or f"in{index}"))
        self._inputs.append(index)
        self._fanouts = None
        return index

    def add_gate(self, kind: GateType, fanins: Iterable[int], name: str = "") -> int:
        fanin_tuple = tuple(fanins)
        index = len(self._gates)
        if kind is GateType.INPUT:
            raise NetlistError("use add_input() for primary inputs")
        minimum = _MIN_FANIN[kind]
        maximum = _MAX_FANIN.get(kind)
        if len(fanin_tuple) < minimum:
            raise NetlistError(
                f"{kind.value} gate needs at least {minimum} fanins, "
                f"got {len(fanin_tuple)}"
            )
        if maximum is not None and len(fanin_tuple) > maximum:
            raise NetlistError(
                f"{kind.value} gate takes at most {maximum} fanins"
            )
        for fanin in fanin_tuple:
            if not 0 <= fanin < index:
                raise NetlistError(
                    f"fanin {fanin} of new gate {index} does not exist yet "
                    "(gates must be added in topological order)"
                )
        self._gates.append(Gate(index, kind, fanin_tuple, name or f"g{index}"))
        self._fanouts = None
        return index

    def set_outputs(self, outputs: Iterable[int]) -> None:
        output_list = list(outputs)
        for line in output_list:
            if not 0 <= line < len(self._gates):
                raise NetlistError(f"output line {line} does not exist")
        self._outputs = output_list

    # ------------------------------------------------------------ structure

    @property
    def n_gates(self) -> int:
        return len(self._gates)

    @property
    def gates(self) -> tuple[Gate, ...]:
        return tuple(self._gates)

    def gate(self, index: int) -> Gate:
        return self._gates[index]

    @property
    def inputs(self) -> tuple[int, ...]:
        return tuple(self._inputs)

    @property
    def outputs(self) -> tuple[int, ...]:
        return tuple(self._outputs)

    @property
    def n_inputs(self) -> int:
        return len(self._inputs)

    @property
    def n_outputs(self) -> int:
        return len(self._outputs)

    def fanouts(self) -> list[list[int]]:
        """``fanouts()[line]`` lists the gates reading ``line`` (cached)."""
        if self._fanouts is None:
            table: list[list[int]] = [[] for _ in self._gates]
            for gate in self._gates:
                for fanin in gate.fanins:
                    table[fanin].append(gate.index)
            self._fanouts = table
        return self._fanouts

    def fanout_closure(self, seeds: Iterable[int]) -> list[int]:
        """Gates affected when any seed line changes, in topological order.

        Includes the seeds themselves.
        """
        dirty = set(seeds)
        fanouts = self.fanouts()
        order: list[int] = []
        for index in sorted(dirty):
            order.append(index)
        # One forward sweep suffices because indices are topologically sorted.
        for gate in self._gates:
            if gate.index in dirty:
                continue
            if any(fanin in dirty for fanin in gate.fanins):
                dirty.add(gate.index)
                order.append(gate.index)
        return sorted(dirty)

    def reaches(self, source: int, sink: int) -> bool:
        """Is there a combinational path from ``source`` to ``sink``?"""
        if source == sink:
            return True
        return sink in self.fanout_closure([source])

    def reachability_matrix(self) -> Words:
        """Bitset matrix ``R``: bit ``j`` of ``R[i]`` word ``j//64`` says
        line ``j`` is combinationally reachable from line ``i`` (reflexive).
        """
        n = self.n_gates
        words = (n + 63) // 64
        matrix = np.zeros((n, words), dtype=np.uint64)
        for index in range(n):
            matrix[index, index // 64] |= np.uint64(1) << np.uint64(index % 64)
        # Reverse sweep: everything a gate reaches flows back to its fanins.
        for gate in reversed(self._gates):
            for fanin in gate.fanins:
                matrix[fanin] |= matrix[gate.index]
        return matrix

    def check(self) -> None:
        """Structural sanity check; raises :class:`NetlistError` on trouble.

        Delegates to the netlist analyzer (:mod:`repro.lint.netlist_rules`),
        so construction-time call sites catch combinational cycles, undriven
        nets, arity violations, and missing outputs — not just the
        topological-order fragment this method used to enforce.  The import
        is lazy because the analyzer builds on this module.
        """
        from repro.lint.netlist_rules import analyze_netlist

        report = analyze_netlist(self, errors_only=True)
        report.raise_on_errors(NetlistError)

    # ----------------------------------------------------------- evaluation

    def evaluate(
        self, input_values: Sequence[npt.ArrayLike] | npt.ArrayLike
    ) -> Words:
        """Forward-evaluate all gates.

        ``input_values`` is one uint64 word array per primary input (all of
        the same width ``W``); the result has shape ``(n_gates, W)``.
        """
        arrays = [np.atleast_1d(np.asarray(v, dtype=np.uint64)) for v in input_values]
        if len(arrays) != len(self._inputs):
            raise NetlistError(
                f"{len(arrays)} input values for {len(self._inputs)} inputs"
            )
        width = arrays[0].shape[0] if arrays else 1
        for array in arrays:
            if array.shape != (width,):
                raise NetlistError("all input words must have the same width")
        values = np.zeros((len(self._gates), width), dtype=np.uint64)
        position = 0
        for gate in self._gates:
            if gate.kind is GateType.INPUT:
                values[gate.index] = arrays[position]
                position += 1
            else:
                values[gate.index] = _evaluate_gate(
                    gate.kind, [values[f] for f in gate.fanins]
                )
        return values

    def evaluate_bits(self, bits: Sequence[int]) -> tuple[int, ...]:
        """Single-instance convenience: 0/1 bits in, output 0/1 bits out."""
        words = [
            np.full(1, ALL_ONES if bit else 0, dtype=np.uint64) for bit in bits
        ]
        values = self.evaluate(words)
        return tuple(int(values[line, 0] & np.uint64(1)) for line in self._outputs)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<Netlist{label}: {self.n_gates} gates, {self.n_inputs} inputs, "
            f"{self.n_outputs} outputs>"
        )


def pack_bits(bits: npt.ArrayLike) -> Words:
    """Pack a boolean vector into uint64 words (bit ``i`` -> word ``i//64``)."""
    flat = np.asarray(bits, dtype=bool)
    n_words = (flat.size + 63) // 64
    padded = np.zeros(n_words * 64, dtype=bool)
    padded[: flat.size] = flat
    weights = np.uint64(1) << np.arange(64, dtype=np.uint64)
    return (padded.reshape(n_words, 64) * weights).sum(axis=1, dtype=np.uint64)


def unpack_bits(words: npt.ArrayLike, n_bits: int) -> npt.NDArray[np.bool_]:
    """Inverse of :func:`pack_bits` (truncated to ``n_bits``)."""
    packed = np.asarray(words, dtype=np.uint64)
    shifts = np.arange(64, dtype=np.uint64)
    bits = ((packed[:, None] >> shifts) & np.uint64(1)).astype(bool)
    return bits.reshape(-1)[:n_bits]


def exhaustive_pattern_words(n_inputs: int) -> list[Words]:
    """Word vectors enumerating all ``2**n_inputs`` patterns, one per input.

    Pattern ``p`` (its bit position across all words) applies bit
    ``(p >> (n_inputs - 1 - k)) & 1`` to input ``k`` — i.e. input 0 is the
    most significant bit of the pattern index, matching the MSB-first
    conventions used throughout the package.
    """
    if n_inputs < 0:
        raise NetlistError("n_inputs must be non-negative")
    total = 1 << n_inputs
    indices = np.arange(total, dtype=np.uint64)
    return [
        pack_bits(((indices >> np.uint64(n_inputs - 1 - k)) & np.uint64(1)).astype(bool))
        for k in range(n_inputs)
    ]

"""Machine-checkable untestable-fault certificates.

A :class:`UntestableCertificate` is a small, self-contained proof object
that a specific stuck-at fault is undetectable by *any* input pattern.
Three proof shapes exist:

``unactivatable``
    the fault site's fault-free value is a proven constant equal to the
    stuck value, so the fault never changes anything;
``masked-pin``
    a pin fault whose gate has *another* pin proven constant at the gate's
    controlling value — the gate output is pinned in both the good and the
    faulty circuit, and a pin fault affects nothing else;
``unobservable``
    the deviation the fault could cause at its gate's output can never
    reach a primary output, witnessed by the blocking (gate, pin) pairs of
    :func:`repro.sca.implications.site_observability`.

:func:`verify_certificate` re-derives every claim from the netlist and a
*verified* constant table (see
:func:`repro.sca.implications.verify_constant_steps`) — the analysis that
produced the certificate is not trusted.  The test suite additionally
cross-checks each certificate against exhaustive fault simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CertificateError
from repro.gatelevel.netlist import Netlist
from repro.gatelevel.stuck_at import StuckAtFault
from repro.sca.implications import (
    ConstantAnalysis,
    controlling_value,
    verify_observability_blocks,
)

__all__ = ["UntestableCertificate", "prove_untestable", "verify_certificate"]

REASONS = ("unactivatable", "masked-pin", "unobservable")


@dataclass(frozen=True)
class UntestableCertificate:
    """Proof that ``fault`` is undetectable; see the module docstring."""

    fault: StuckAtFault
    reason: str
    #: ``unactivatable``: the constant line equal to the stuck value.
    line: int | None = None
    value: int | None = None
    #: ``masked-pin``: the single masking (gate, pin); ``unobservable``:
    #: every (gate, pin) where the deviation frontier was cut.
    blocks: tuple[tuple[int, int], ...] = field(default=())
    #: ``unobservable``: the line where the deviation originates.
    site: int | None = None

    def to_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "fault": {
                "gate": self.fault.gate,
                "pin": self.fault.pin,
                "value": self.fault.value,
                "site": self.fault.site(),
            },
            "reason": self.reason,
        }
        if self.reason == "unactivatable":
            payload["line"] = self.line
            payload["value"] = self.value
        elif self.reason == "masked-pin":
            payload["blocks"] = [list(block) for block in self.blocks]
        else:
            payload["site"] = self.site
            payload["blocks"] = [list(block) for block in self.blocks]
        return payload


def prove_untestable(
    netlist: Netlist,
    faults: tuple[StuckAtFault, ...],
    constants: ConstantAnalysis,
    unobservable: dict[int, tuple[tuple[int, int], ...]],
) -> tuple[UntestableCertificate, ...]:
    """Attempt an untestability proof for each fault in ``faults``.

    ``unobservable`` maps a line to the blocking evidence proving no
    deviation at that line reaches an output (see
    :meth:`repro.sca.analysis.ScaAnalysis.unobservable`).  Faults with no
    proof are simply omitted — absence of a certificate means "unknown",
    never "testable".
    """
    values = constants.values
    certificates: list[UntestableCertificate] = []
    for fault in faults:
        gate = netlist.gate(fault.gate)
        site_line = (
            fault.gate if fault.pin is None else gate.fanins[fault.pin]
        )
        if values[site_line] == fault.value:
            certificates.append(
                UntestableCertificate(
                    fault,
                    "unactivatable",
                    line=site_line,
                    value=fault.value,
                )
            )
            continue
        if fault.pin is not None:
            control = controlling_value(gate.kind)
            masking_pin = None
            if control is not None:
                for pin, fanin in enumerate(gate.fanins):
                    if pin != fault.pin and values[fanin] == control:
                        masking_pin = pin
                        break
            if masking_pin is not None:
                certificates.append(
                    UntestableCertificate(
                        fault,
                        "masked-pin",
                        blocks=((fault.gate, masking_pin),),
                    )
                )
                continue
        if fault.gate in unobservable:
            certificates.append(
                UntestableCertificate(
                    fault,
                    "unobservable",
                    site=fault.gate,
                    blocks=unobservable[fault.gate],
                )
            )
    return tuple(certificates)


def verify_certificate(
    netlist: Netlist,
    certificate: UntestableCertificate,
    verified_constants: dict[int, int],
) -> None:
    """Re-derive ``certificate`` from scratch; raises if any claim fails.

    ``verified_constants`` must come from
    :func:`repro.sca.implications.verify_constant_steps` — constants are the
    only premises a certificate may import, and they are themselves
    replayed, so the full proof chain bottoms out at the gate functions.
    """
    fault = certificate.fault
    if not 0 <= fault.gate < netlist.n_gates:
        raise CertificateError(
            f"certificate names nonexistent gate {fault.gate}"
        )
    gate = netlist.gate(fault.gate)
    if fault.pin is not None and not 0 <= fault.pin < gate.n_fanins:
        raise CertificateError(
            f"certificate names nonexistent pin {fault.pin} of gate "
            f"{fault.gate}"
        )
    if certificate.reason == "unactivatable":
        site_line = (
            fault.gate if fault.pin is None else gate.fanins[fault.pin]
        )
        if certificate.line != site_line:
            raise CertificateError(
                f"unactivatable proof names line {certificate.line}, but "
                f"fault {fault.site()} sits on line {site_line}"
            )
        if verified_constants.get(site_line) != fault.value:
            raise CertificateError(
                f"line {site_line} is not a verified constant "
                f"{fault.value}; fault {fault.site()} may activate"
            )
        return
    if certificate.reason == "masked-pin":
        if fault.pin is None:
            raise CertificateError(
                "masked-pin proofs apply only to pin faults, got "
                f"{fault.site()}"
            )
        if len(certificate.blocks) != 1:
            raise CertificateError(
                "masked-pin proof must name exactly one masking pin"
            )
        block_gate, masking_pin = certificate.blocks[0]
        if block_gate != fault.gate:
            raise CertificateError(
                f"masking pin sits on gate {block_gate}, not the faulty "
                f"gate {fault.gate}"
            )
        if masking_pin == fault.pin:
            raise CertificateError("masking pin is the faulty pin itself")
        if not 0 <= masking_pin < gate.n_fanins:
            raise CertificateError(
                f"masking pin {masking_pin} does not exist on gate "
                f"{fault.gate}"
            )
        control = controlling_value(gate.kind)
        if control is None:
            raise CertificateError(
                f"gate {fault.gate} ({gate.kind.value}) has no controlling "
                "value; masking is impossible"
            )
        masking_line = gate.fanins[masking_pin]
        if verified_constants.get(masking_line) != control:
            raise CertificateError(
                f"masking line {masking_line} is not a verified constant "
                f"{control}"
            )
        return
    if certificate.reason == "unobservable":
        if certificate.site != fault.gate:
            raise CertificateError(
                f"unobservability proof sits at line {certificate.site}, "
                f"but fault {fault.site()} deviates line {fault.gate}"
            )
        verify_observability_blocks(
            netlist, fault.gate, certificate.blocks, verified_constants
        )
        return
    raise CertificateError(
        f"unknown certificate reason {certificate.reason!r}"
    )

"""Section 3 remark: gate-level stuck-at ATPG vs the functional tests.

    "A gate-level stuck-at test generation procedure applied to the
    full-scan circuits may yield numbers of tests and numbers of clock
    cycles that are better than the ones of Tables 6 and 7.  However, it
    is not guaranteed to detect all the bridging faults."

Per circuit: run the idealized stuck-at ATPG (perfect detection knowledge,
greedy minimum cover — an upper bound on real ATPG quality), then grade its
tests against the bridging universe and compare with the functional tests,
which provably detect every detectable bridging fault.
"""

from __future__ import annotations

import pytest

from repro.benchmarks import circuit_names, load_circuit, load_kiss_machine
from repro.core.generator import generate_tests
from repro.gatelevel.atpg import generate_stuck_at_atpg
from repro.gatelevel.bridging import enumerate_bridging_faults
from repro.gatelevel.detectability import detectable_faults
from repro.gatelevel.fault_sim import simulate_tests
from repro.gatelevel.scan import ScanCircuit
from repro.gatelevel.stuck_at import collapse_stuck_at
from repro.gatelevel.synthesis import SynthesisOptions

CIRCUITS = sorted(circuit_names("small"))


@pytest.mark.parametrize("name", CIRCUITS)
def test_atpg_vs_functional_bridging(benchmark, name):
    table = load_circuit(name)
    circuit = ScanCircuit.from_machine(
        load_kiss_machine(name), SynthesisOptions(max_fanin=4)
    )

    def run():
        stuck = sorted(set(collapse_stuck_at(circuit.netlist).values()))
        atpg = generate_stuck_at_atpg(circuit, table, stuck)
        functional = generate_tests(table)
        bridging = enumerate_bridging_faults(circuit.netlist, limit=200, seed=name)
        if not bridging:
            return atpg, functional, None, None
        bridge_detectable, _ = detectable_faults(circuit.netlist, bridging)
        atpg_hits = simulate_tests(
            circuit, table, atpg.test_set, sorted(bridge_detectable, key=repr)
        )
        functional_hits = simulate_tests(
            circuit,
            table,
            functional.test_set,
            sorted(bridge_detectable, key=repr),
        )
        return atpg, functional, atpg_hits, functional_hits

    atpg, functional, atpg_hits, functional_hits = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    # ATPG covers faults with patterns; bounded by the pattern space.
    assert 0 < atpg.n_tests <= table.n_transitions
    if atpg_hits is None:
        pytest.skip("no qualifying bridging pairs on this netlist")
    # The functional tests detect every detectable bridging fault; the
    # stuck-at ATPG is not guaranteed to (and must never do better).
    assert len(atpg_hits.detected) <= len(functional_hits.detected)

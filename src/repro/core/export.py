"""Test-set interchange: JSON and tester-style text formats.

Downstream users need to move generated tests between tools — into a tester
program, a simulator testbench, or back into this library for re-grading.
Two formats are provided:

* **JSON** — lossless round-trip of a :class:`~repro.core.testset.TestSet`,
  including the segment structure (so the strict coverage checker works on
  re-imported sets).
* **Vector text** — one scan test per block in the paper's notation::

      test 0
        scan-in  00
        apply    00 -> observe 0
        apply    01 -> observe 1
        scan-out 01

  The observe columns are the fault-free responses, i.e. what a tester
  compares against.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.testset import ScanTest, Segment, SegmentKind, TestSet
from repro.errors import GenerationError
from repro.fsm.state_table import StateTable

__all__ = ["test_set_to_json", "test_set_from_json", "test_set_to_vectors"]

_FORMAT_VERSION = 1


def test_set_to_json(test_set: TestSet) -> str:
    """Serialize a test set (with segment structure) to a JSON string."""
    payload: dict[str, Any] = {
        "format": "repro-scan-tests",
        "version": _FORMAT_VERSION,
        "machine": test_set.machine_name,
        "state_variables": test_set.n_state_variables,
        "transitions": test_set.n_transitions,
        "tests": [
            {
                "initial_state": test.initial_state,
                "inputs": list(test.inputs),
                "final_state": test.final_state,
                "segments": [
                    {
                        "kind": segment.kind.value,
                        "start_state": segment.start_state,
                        "inputs": list(segment.inputs),
                    }
                    for segment in test.segments
                ],
                "tested": [list(key) for key in test.tested],
            }
            for test in test_set
        ],
    }
    return json.dumps(payload, indent=2)


def test_set_from_json(text: str) -> TestSet:
    """Parse a test set produced by :func:`test_set_to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise GenerationError(f"not valid JSON: {error}") from error
    if payload.get("format") != "repro-scan-tests":
        raise GenerationError("not a repro-scan-tests document")
    if payload.get("version") != _FORMAT_VERSION:
        raise GenerationError(
            f"unsupported format version {payload.get('version')!r}"
        )
    tests = []
    for entry in payload["tests"]:
        segments = tuple(
            Segment(
                SegmentKind(segment["kind"]),
                int(segment["start_state"]),
                tuple(int(value) for value in segment["inputs"]),
            )
            for segment in entry.get("segments", ())
        )
        tests.append(
            ScanTest(
                int(entry["initial_state"]),
                tuple(int(value) for value in entry["inputs"]),
                int(entry["final_state"]),
                segments,
                tuple(
                    (int(state), int(combo))
                    for state, combo in entry.get("tested", ())
                ),
            )
        )
    return TestSet(
        payload["machine"],
        int(payload["state_variables"]),
        int(payload["transitions"]),
        tests,
    )


def test_set_to_vectors(test_set: TestSet, table: StateTable) -> str:
    """Render tester-style vectors with fault-free expected responses."""
    sv = test_set.n_state_variables
    pi = table.n_inputs
    po = table.n_outputs
    lines: list[str] = [
        f"# machine {test_set.machine_name}: {test_set.n_tests} scan tests",
        f"# scan chain width {sv}, {pi} primary inputs, {po} primary outputs",
    ]
    for index, test in enumerate(test_set):
        lines.append(f"test {index}")
        lines.append(f"  scan-in  {test.initial_state:0{sv}b}")
        state = test.initial_state
        for combo in test.inputs:
            state, output = table.step(state, combo)
            lines.append(
                f"  apply    {combo:0{pi}b} -> observe {output:0{max(po, 1)}b}"
            )
        if state != test.final_state:
            raise GenerationError(
                f"test {index} records final state {test.final_state}, "
                f"machine reaches {state}"
            )
        lines.append(f"  scan-out {state:0{sv}b}")
    return "\n".join(lines) + "\n"

"""Observability v2: resource telemetry, search forensics, pool
utilization, and live progress.

Four layers, each pinned here:

* **Resource telemetry** — per-span CPU/peak-memory attribution, the
  cross-process :class:`ResourceUsage` merge, ledger schema /2's required
  ``resources`` block, and the ``regress`` memory gate (including an
  injected regression that must fail).
* **Search forensics** — the bounded :class:`SearchTrace` ring buffer,
  verdict keep-policy (every aborted target plus the hardest N), and the
  ``explain --fault`` replay.
* **Pool utilization** — ``pool.worker.<i>.*`` gauges, the task-latency
  histogram, and the dead-worker pin: a worker killed mid-run must not
  cost results *or* observability (the inline re-run records both in the
  parent).
* **Progress** — throttled heartbeats and the ledger-history cost model.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import obs
from repro.atpg import generate_structural_tests
from repro.atpg.search import (
    DEFAULT_TRACE_CAPACITY,
    SearchBudget,
    SearchEvent,
    SearchTrace,
)
from repro.cli import main
from repro.core.config import FaultSimConfig
from repro.harness.experiments import CircuitStudy, StudyOptions
from repro.obs import ObsSnapshot, absorb_snapshot
from repro.obs.ledger import build_record, normalized, validate_record
from repro.obs.log import WARNING, set_verbosity
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.progress import (
    CostModel,
    ProgressMeter,
    enable_progress,
    meter,
    progress_enabled,
    set_command_context,
)
from repro.obs.provenance import set_provenance
from repro.obs.regress import compare_reports
from repro.obs.report import aggregate_spans, pool_utilization, render_pool
from repro.obs.resources import (
    ResourceUsage,
    UsageProbe,
    process_usage,
)
from repro.obs.trace import (
    events_from_jsonl,
    set_tracer,
    span,
    to_chrome,
    to_jsonl,
    validate_chrome_trace,
)
from repro.perf.engine import compute_studies
from repro.perf.pool import WorkerPool, get_pool, shutdown_pool


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """No test leaks a tracer, registry, provenance log, or progress flag."""
    previous_tracer = set_tracer(None)
    previous_registry = set_registry(None)
    previous_provenance = set_provenance(None)
    previous_verbosity = set_verbosity(WARNING)
    yield
    set_tracer(previous_tracer)
    set_registry(previous_registry)
    set_provenance(previous_provenance)
    set_verbosity(previous_verbosity)
    enable_progress(False)
    set_command_context(None)


# ------------------------------------------------------- resource telemetry


class TestResourceUsage:
    def test_merge_sums_cpu_maxes_rss(self):
        left = ResourceUsage(cpu_user_s=1.0, cpu_system_s=0.5, max_rss_kb=100)
        right = ResourceUsage(cpu_user_s=2.0, cpu_system_s=0.25, max_rss_kb=300)
        merged = left.merged(right)
        assert merged.cpu_user_s == pytest.approx(3.0)
        assert merged.cpu_system_s == pytest.approx(0.75)
        assert merged.max_rss_kb == 300

    def test_dict_roundtrip(self):
        usage = ResourceUsage(cpu_user_s=1.5, cpu_system_s=0.5, max_rss_kb=42)
        assert ResourceUsage.from_dict(usage.to_dict()) == usage

    def test_process_usage_is_live(self):
        usage = process_usage()
        assert usage.cpu_user_s + usage.cpu_system_s > 0
        assert usage.max_rss_kb > 0

    def test_probe_windows_cpu(self):
        probe = UsageProbe()
        sum(i * i for i in range(200_000))
        sample = probe.sample()
        assert sample.cpu_user_s + sample.cpu_system_s >= 0.0
        assert sample.max_rss_kb > 0
        # The window is a delta: it must be far below process lifetime CPU.
        lifetime = process_usage()
        assert sample.cpu_user_s <= lifetime.cpu_user_s + 1e-9


class TestSpanResources:
    def test_span_cpu_attribution(self):
        with obs.observing() as session:
            with span("busy"):
                sum(i * i for i in range(300_000))
        (event,) = [e for e in session.tracer.events if e.name == "busy"]
        assert event.cpu_ns > 0
        assert event.cpu_ns <= event.duration_ns * 8  # sanity, not exactness

    def test_deep_memory_peaks_nest(self):
        with obs.observing(deep_memory=True) as session:
            with span("outer"):
                blob = [0] * 50_000
                with span("inner"):
                    inner_blob = [1] * 200_000
                del inner_blob
            del blob
        by_name = {e.name: e for e in session.tracer.events}
        assert by_name["inner"].mem_peak_bytes > 200_000 * 8 // 2
        # A parent's peak folds in its children's peaks.
        assert by_name["outer"].mem_peak_bytes >= by_name["inner"].mem_peak_bytes

    def test_memory_off_by_default(self):
        with obs.observing() as session:
            with span("plain"):
                _ = [0] * 100_000
        (event,) = session.tracer.events
        assert event.mem_peak_bytes == 0

    def test_jsonl_roundtrip_preserves_resources(self):
        with obs.observing(deep_memory=True) as session:
            with span("work"):
                _ = [0] * 100_000
        text = to_jsonl(session.tracer.events)
        (restored,) = events_from_jsonl(text)
        (original,) = session.tracer.events
        assert restored.cpu_ns // 1000 == original.cpu_ns // 1000
        assert restored.mem_peak_bytes == original.mem_peak_bytes

    def test_chrome_trace_requires_resource_args(self):
        with obs.observing() as session:
            with span("work"):
                pass
        chrome = to_chrome(session.tracer.events)
        assert validate_chrome_trace(chrome) == []
        (complete,) = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
        del complete["args"]["cpu_us"]
        problems = validate_chrome_trace(chrome)
        assert any("cpu_us" in p for p in problems)

    def test_chrome_trace_memory_counter_track(self):
        with obs.observing(deep_memory=True) as session:
            with span("hungry"):
                _ = [0] * 100_000
        chrome = to_chrome(session.tracer.events)
        assert validate_chrome_trace(chrome) == []
        (counter,) = [e for e in chrome["traceEvents"] if e["ph"] == "C"]
        assert counter["name"] == "mem_peak"
        assert counter["args"]["bytes"] > 0
        # Without deep memory no peak is measured, so no counter track.
        with obs.observing() as session:
            with span("plain"):
                pass
        chrome = to_chrome(session.tracer.events)
        assert [e for e in chrome["traceEvents"] if e["ph"] == "C"] == []

    def test_counter_event_validation(self):
        bad = {"traceEvents": [
            {"name": "mem_peak", "ph": "C", "pid": 0, "tid": 0,
             "ts": 1.0, "args": {"bytes": "not-a-number"}},
        ]}
        assert any(
            "numeric" in p for p in validate_chrome_trace(bad)
        )

    def test_aggregate_spans_carries_resources(self):
        with obs.observing(deep_memory=True) as session:
            with span("outer"):
                with span("inner"):
                    sum(i for i in range(200_000))
        stats = {s.name: s for s in aggregate_spans(session.tracer.events)}
        assert stats["outer"].cpu_s >= stats["inner"].cpu_s
        assert stats["outer"].self_cpu_s <= stats["outer"].cpu_s + 1e-9
        assert stats["inner"].mem_peak_bytes >= 0


class TestWorkerResourceMerge:
    def test_snapshot_resources_absorbed(self):
        """Absorbed worker usage lands in probe windows (CPU sums,
        RSS maxes), not in the parent's own rusage."""
        snapshot = ObsSnapshot()
        snapshot.resources = ResourceUsage(
            cpu_user_s=1.25, cpu_system_s=0.5, max_rss_kb=10**9
        ).to_dict()
        probe = UsageProbe()
        with obs.observing():
            absorb_snapshot(snapshot)
        sample = probe.sample()
        assert sample.cpu_user_s >= 1.25
        assert sample.cpu_system_s >= 0.5
        assert sample.max_rss_kb >= 10**9


class TestLedgerResources:
    def test_build_record_emits_resources(self):
        record = build_record("table5", semantic_args={})
        resources = record["resources"]
        assert set(resources) == {"cpu_user_s", "cpu_system_s", "max_rss_kb"}
        assert resources["max_rss_kb"] > 0
        assert validate_record(record) == []

    def test_validate_rejects_missing_resources(self):
        record = build_record("table5", semantic_args={})
        del record["resources"]
        assert any("resources" in p for p in validate_record(record))

    def test_validate_rejects_negative_cpu(self):
        record = build_record("table5", semantic_args={})
        record["resources"]["cpu_user_s"] = -1.0
        assert any("cpu_user_s" in p for p in validate_record(record))

    def test_resources_are_volatile(self):
        record = build_record("table5", semantic_args={})
        assert "resources" not in normalized(record)

    def test_pool_metrics_never_ledgered(self):
        record = build_record(
            "table5",
            semantic_args={},
            metrics={
                "pool.worker.0.busy_s": {"type": "gauge", "value": 1.0,
                                         "updates": 1},
                "atpg.targets": {"type": "counter", "value": 5},
            },
        )
        assert "atpg.targets" in record["metrics"]
        assert not any(k.startswith("pool.") for k in record["metrics"])


class TestRegressMemoryGate:
    BASE = {
        "schema": "repro-fsatpg-bench/5",
        "runs": {
            "serial_cold": {
                "stage_seconds": {},
                "resources": {"cpu_user_s": 1.0, "cpu_system_s": 0.1,
                              "max_rss_kb": 1000},
            }
        },
        "results": {},
    }

    def test_injected_memory_regression_fails(self):
        current = {
            "stage_seconds": {},
            "results": {},
            "resources": {"cpu_user_s": 1.0, "cpu_system_s": 0.1,
                          "max_rss_kb": 90_000},
        }
        report = compare_reports(self.BASE, current, min_rss_kb=0.0)
        (regression,) = report.regressions
        assert regression.kind == "memory"
        assert not report.ok

    def test_floor_absorbs_interpreter_noise(self):
        current = {
            "stage_seconds": {},
            "results": {},
            "resources": {"cpu_user_s": 1.0, "cpu_system_s": 0.1,
                          "max_rss_kb": 45_000},
        }
        report = compare_reports(self.BASE, current, min_rss_kb=51200.0)
        assert report.ok

    def test_pre_v5_baseline_skips_gate(self):
        baseline = {"schema": "repro-fsatpg-bench/4",
                    "runs": {"serial_cold": {"stage_seconds": {}}},
                    "results": {}}
        current = {"stage_seconds": {}, "results": {},
                   "resources": {"cpu_user_s": 0.0, "cpu_system_s": 0.0,
                                 "max_rss_kb": 10**9}}
        report = compare_reports(baseline, current, min_rss_kb=0.0)
        assert report.ok
        assert any("memory gate skipped" in note for note in report.notes)


# -------------------------------------------------------- search forensics


class TestSearchTrace:
    def test_ring_buffer_keeps_newest(self):
        trace = SearchTrace(3)
        for index in range(5):
            trace.record("decision", f"g{index}", 1, index)
        assert trace.total == 5
        assert trace.dropped == 2
        assert [e.line for e in trace.events()] == ["g2", "g3", "g4"]

    def test_event_roundtrip(self):
        event = SearchEvent("backtrack", "g7", 0, 3, d_frontier=2,
                            j_frontier=1)
        assert SearchEvent.from_dict(event.to_dict()) == event

    def test_budget_carries_trace(self):
        trace = SearchTrace(DEFAULT_TRACE_CAPACITY)
        budget = SearchBudget(backtrack_limit=10, trace=trace)
        assert budget.trace is trace


def _lion_scan():
    study = CircuitStudy("lion", StudyOptions())
    return study.scan_circuit, study.table, study.sca


class TestEngineForensics:
    def test_aborted_verdicts_keep_traces(self):
        scan, table, _sca = _lion_scan()
        run = generate_structural_tests(
            scan, table, backtrack_limit=1, replay=False
        )
        aborted = [v for v in run.verdicts if v.status == "aborted"]
        assert aborted, "backtrack_limit=1 must abort something on lion"
        for verdict in aborted:
            assert verdict.search_trace, verdict.fault.site()
            assert verdict.trace_total >= len(verdict.search_trace)
            kinds = {event.kind for event in verdict.search_trace}
            assert kinds <= {"decision", "backtrack"}

    def test_hardest_targets_keep_traces(self):
        scan, table, _sca = _lion_scan()
        run = generate_structural_tests(scan, table, trace_hardest=3,
                                        replay=False)
        traced = [v for v in run.verdicts if v.search_trace is not None]
        assert len(traced) >= 1
        hardest = max(run.verdicts, key=lambda v: (v.backtracks, v.decisions))
        assert hardest.search_trace is not None

    def test_trace_capacity_zero_disables(self):
        scan, table, _sca = _lion_scan()
        run = generate_structural_tests(scan, table, trace_capacity=0,
                                        replay=False)
        assert all(v.search_trace is None for v in run.verdicts)

    def test_traced_verdict_serializes(self):
        scan, table, _sca = _lion_scan()
        run = generate_structural_tests(scan, table, replay=False)
        traced = [v for v in run.verdicts if v.search_trace is not None]
        payload = traced[0].to_dict()
        block = payload["search_trace"]
        assert block["total"] >= len(block["events"])
        assert {"kind", "line", "value", "depth"} <= set(block["events"][0])
        json.dumps(payload)  # JSON-ready

    @pytest.mark.parametrize("algorithm", ("podem", "d"))
    def test_both_algorithms_emit_events(self, algorithm):
        scan, table, _sca = _lion_scan()
        run = generate_structural_tests(
            scan, table, algorithm=algorithm, trace_hardest=5, replay=False
        )
        traced = [v for v in run.verdicts if v.search_trace]
        assert traced
        event = traced[0].search_trace[0]
        assert event.depth >= 1
        if algorithm == "d":
            assert any(
                e.j_frontier >= 0 for v in traced for e in v.search_trace
            )


class TestExplainFaultCli:
    def test_human_replay(self, capsys):
        scan, table, _sca = _lion_scan()
        run = generate_structural_tests(scan, table, replay=False)
        target = max(
            run.verdicts, key=lambda v: (v.backtracks, v.decisions)
        ).fault.site()
        assert main(["--no-ledger", "explain", "lion", "--fault", target]) == 0
        out = capsys.readouterr().out
        assert target in out
        assert "search event(s)" in out
        assert "decision" in out

    def test_json_replay(self, capsys):
        assert main(["--no-ledger", "explain", "lion",
                     "--fault", "g7.pin1/sa1", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["circuit"] == "lion"
        assert payload["search_trace"]["events"]

    def test_unknown_fault_errors(self, capsys):
        assert main(["--no-ledger", "explain", "lion",
                     "--fault", "nope/sa9"]) == 2
        assert "no collapsed fault" in capsys.readouterr().err


# ------------------------------------------------------- pool utilization


def _obs_pool_task(snapshot, index):
    """Module-level so fork workers can unpickle it by reference."""
    from repro.obs import worker_snapshot
    from repro.obs.metrics import counter_add

    with span("v2.task", index=index):
        counter_add("v2.tasks_run")
    return index * index, worker_snapshot()


def _die_on_zero_task(snapshot, index):
    """Kill the worker process handling index 0; parent runs it inline."""
    if index == 0 and os.getpid() != snapshot["parent_pid"]:
        os._exit(1)
    return _obs_pool_task(snapshot, index)


class TestPoolTelemetry:
    def test_gauges_and_histogram_published(self):
        with obs.observing() as session:
            pool = WorkerPool(2)
            try:
                pool.prime({}, obs_on=True)
                results = pool.run(_obs_pool_task, 6)
            finally:
                pool.shutdown()
            snapshot = session.registry.snapshot()
        assert [value for value, _ in results] == [i * i for i in range(6)]
        rows = pool_utilization(snapshot)
        assert [int(row["worker"]) for row in rows] == [0, 1]
        assert sum(int(row["tasks"]) for row in rows) == 6
        assert all(row["busy_s"] >= 0.0 for row in rows)
        assert snapshot["pool.tasks.dispatched"]["value"] == 6
        assert snapshot["pool.task_s"]["count"] == 6
        table = render_pool(snapshot)
        assert "worker" in table and "util %" in table

    def test_utilization_snapshot_accumulates(self):
        pool = WorkerPool(2)
        try:
            pool.prime({})
            pool.run(_obs_pool_task, 3)
            first = pool.utilization()
            pool.run(_obs_pool_task, 3)
            second = pool.utilization()
        finally:
            pool.shutdown()
        total_first = sum(w["tasks"] for w in first["workers"])
        total_second = sum(w["tasks"] for w in second["workers"])
        assert total_first == 3 and total_second == 6

    def test_dead_worker_keeps_results_and_observability(self):
        """Satellite pin: a worker killed mid-run must not silently drop
        its task's result *or* its observability.  The inline re-run
        records spans/metrics straight into the parent's collectors."""
        with obs.observing() as session:
            pool = WorkerPool(2)
            try:
                pool.prime({"parent_pid": os.getpid()}, obs_on=True)
                results = pool.run(_die_on_zero_task, 5)
            finally:
                pool.shutdown()
            for _value, snapshot in results:
                absorb_snapshot(snapshot)
            merged_metrics = session.registry.snapshot()
            spans = [e for e in session.tracer.events if e.name == "v2.task"]
        assert [value for value, _ in results] == [i * i for i in range(5)]
        # Every one of the 5 tasks ran its span + counter exactly once —
        # worker-side ones arrived via snapshots, the re-run inline.
        assert merged_metrics["v2.tasks_run"]["value"] == 5
        assert sorted(e.attrs["index"] for e in spans) == [0, 1, 2, 3, 4]
        assert merged_metrics["pool.workers.dead"]["value"] >= 1
        assert merged_metrics["pool.tasks.inline"]["value"] >= 1


# ------------------------------------------------------------- progress


class TestProgressMeter:
    def test_throttles_and_finishes(self):
        clock = [0.0]
        lines: list[str] = []
        m = ProgressMeter("atpg lion", 10, interval_s=1.0,
                          clock=lambda: clock[0], emit=lines.append)
        m.update()          # first update may emit
        clock[0] = 0.2
        m.update()          # throttled
        clock[0] = 1.5
        m.update()          # emits 3/10
        m.finish()
        assert len(lines) == 3
        assert "1/10" in lines[0]
        assert "3/10" in lines[1]
        assert "done 10/10" in lines[-1]

    def test_eta_prefers_measured_rate(self):
        clock = [0.0]
        m = ProgressMeter("x", 10, expected_s=100.0,
                          clock=lambda: clock[0], emit=lambda line: None)
        assert m.eta_s() == pytest.approx(100.0)  # seeded before first item
        clock[0] = 2.0
        m.done = 4
        assert m.eta_s() == pytest.approx(3.0)  # 6 left at 2/s

    def test_meter_gated_by_enable(self):
        assert meter("x", 5) is None
        enable_progress(True)
        assert progress_enabled()
        m = meter("x", 5)
        assert isinstance(m, ProgressMeter)
        assert meter("x", 0) is None
        enable_progress(False)
        assert meter("x", 5) is None


class TestCostModel:
    RECORDS = [
        {"command": "atpg", "exit_code": 0, "wall_s": 16.0,
         "circuits": ["lion"]},
        {"command": "atpg", "exit_code": 0, "wall_s": 32.0,
         "circuits": ["lion"]},
        {"command": "atpg", "exit_code": 1, "wall_s": 1000.0,
         "circuits": ["lion"]},  # failed: ignored
        {"command": "table5", "exit_code": 0, "wall_s": 5.0,
         "circuits": ["lion"]},
    ]

    def test_median_rate_and_prediction(self):
        model = CostModel(self.RECORDS)
        # lion: 4 states x 2^2 inputs = 16 transitions, so the two good
        # atpg records rate at 1.0 and 2.0 s/unit; median 1.5.
        assert model.rate("atpg") == pytest.approx(1.5)
        assert model.predict_wall_s("atpg", ["lion"]) == pytest.approx(24.0)

    def test_no_history_predicts_none(self):
        model = CostModel(self.RECORDS)
        assert model.rate("bench") is None
        assert model.predict_wall_s("bench", ["lion"]) is None

    def test_unknown_circuits_contribute_nothing(self):
        model = CostModel(self.RECORDS)
        assert model.predict_wall_s("atpg", ["not-a-circuit"]) is None


# ------------------------------------- cross-process merge (ppsfp, jobs=2)


class TestCrossProcessMerge:
    def test_ppsfp_jobs2_merges_metrics_and_spans(self):
        if get_pool(2) is None:
            pytest.skip("worker processes unavailable")
        options = StudyOptions(faultsim=FaultSimConfig(engine="ppsfp"))
        try:
            with obs.observing() as session:
                parallel = compute_studies(("lion", "mc"), options, jobs=2)
            serial = compute_studies(("lion", "mc"), options, jobs=1)
        finally:
            shutdown_pool()
        # Bit-identical results regardless of scheduling.
        for name in ("lion", "mc"):
            assert parallel[name].signature() == serial[name].signature()
        metrics = session.registry.snapshot()
        # Worker-side fault-sim counters merged into the parent registry.
        assert metrics["faultsim.ppsfp.calls"]["value"] > 0
        assert metrics["faultsim.batches"]["value"] >= 2
        # Worker spans re-parented under the dispatching phase span.
        events = session.tracer.events
        by_id = {e.span_id: e for e in events}
        chunk_spans = [e for e in events if e.name == "sweep.chunk"]
        assert chunk_spans
        for chunk in chunk_spans:
            assert by_id[chunk.parent_id].name == "sweep.simulate"
        # And the run carries merged worker CPU in its span resources.
        prepare = [e for e in events if e.name == "circuit.prepare"]
        assert prepare and all(e.cpu_ns >= 0 for e in prepare)


# ------------------------------------------------------------ CLI surface


class TestCliSurface:
    def test_history_format_json(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path))
        assert main(["table5", "--circuits", "lion"]) == 0
        capsys.readouterr()
        assert main(["history", "table5", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "table5"
        assert payload["total"] == 1
        (record,) = payload["records"]
        assert record["resources"]["max_rss_kb"] > 0

    def test_stats_json_carries_resources_and_pool(self, capsys):
        assert main(["--no-ledger", "stats", "lion",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert all("cpu_s" in row and "mem_peak_bytes" in row
                   for row in payload["spans"])
        assert any(row["mem_peak_bytes"] > 0 for row in payload["spans"])
        assert "pool" in payload

    def test_progress_flag_emits_heartbeats(self, capsys):
        assert main(["--no-ledger", "--progress", "table4",
                     "--circuits", "lion"]) == 0
        err = capsys.readouterr().err
        assert "progress" in err and "done" in err

    def test_ledger_record_resources_from_probe(self, tmp_path, capsys,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path))
        assert main(["table4", "--circuits", "lion"]) == 0
        lines = [
            json.loads(line)
            for line in (tmp_path / "ledger.jsonl").read_text().splitlines()
        ]
        (record,) = lines
        assert validate_record(record) == []
        assert record["resources"]["max_rss_kb"] > 0

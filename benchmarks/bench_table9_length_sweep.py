"""Table 9 benchmark: sweeping the UIO length bound ``L``.

For each of the paper's sweep circuits, grows ``L`` from 1 until another
increase finds no new UIOs (the paper's stopping rule), regenerating the
tests at every step.  Assertions capture the table's qualitative content:
the number of states with UIOs grows monotonically with ``L``, every row
keeps complete verified coverage, and the percentage of length-1 tests
drops as soon as UIOs become available.
"""

from __future__ import annotations

import os

import pytest

from repro.benchmarks import load_circuit
from repro.core.config import GeneratorConfig
from repro.core.coverage import verify_test_set
from repro.core.generator import generate_tests
from repro.uio.search import compute_uio_table

# rie has 512 input columns; keep it behind REPRO_FULL.
CIRCUITS = ("dk512", "ex4", "mark1") + (
    ("rie",) if int(os.environ.get("REPRO_FULL", "0")) else ()
)


def sweep(name: str):
    table = load_circuit(name)
    rows = []
    previous = -1
    for bound in range(1, table.n_state_variables + 5):
        uio = compute_uio_table(table, bound)
        if uio.n_found == previous:
            break
        previous = uio.n_found
        config = GeneratorConfig(max_uio_length=bound)
        result = generate_tests(table, config, uio)
        rows.append((bound, uio.n_found, result))
    return table, rows


@pytest.mark.parametrize("name", CIRCUITS)
def test_length_bound_sweep(benchmark, name):
    table, rows = benchmark.pedantic(sweep, args=(name,), rounds=1, iterations=1)
    uniques = [unique for _, unique, _ in rows]
    assert uniques == sorted(uniques)
    for _bound, _unique, result in rows:
        assert verify_test_set(table, result.test_set).is_complete
    # Once any UIOs exist, chaining starts: fewer length-1 tests than the
    # all-length-1 degenerate case.
    if uniques[-1] > 0:
        assert rows[-1][2].pct_length_one < 100.0

"""Tests for the reproduction-certificate checker and CSV rendering."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.harness.claims import ClaimResult, render_claims, verify_claims
from repro.harness.tables import format_csv


class TestVerifyClaims:
    @pytest.fixture(scope="class")
    def results(self):
        return verify_claims(["lion", "shiftreg"])

    def test_all_claims_pass_on_exact_machines(self, results):
        assert all(result.passed for result in results), [
            result.claim for result in results if not result.passed
        ]

    def test_claim_ids_are_unique(self, results):
        ids = [result.claim for result in results]
        assert len(set(ids)) == len(ids)

    def test_all_expected_claims_present(self, results):
        ids = {result.claim for result in results}
        assert {
            "worked-example",
            "complete-coverage",
            "test-economy",
            "stuck-at-complete",
            "bridging-complete",
            "effective-subset",
            "cycle-budget",
            "no-transfer-budget",
            "scan-advantage",
            "at-speed-advantage",
        } <= ids

    def test_render_contains_verdicts(self, results):
        text = render_claims(results)
        assert "PASS" in text
        assert "worked-example" in text

    def test_render_fail_path(self):
        text = render_claims(
            [ClaimResult("x", "a fake failing claim", False, "boom")]
        )
        assert "FAIL" in text


class TestClaimsCli:
    def test_claims_command_exit_zero(self, capsys):
        assert main(["claims", "--circuits", "lion"]) == 0
        out = capsys.readouterr().out
        assert "worked-example" in out


class TestCsvRendering:
    def test_format_csv_basic(self):
        text = format_csv(("a", "b"), [("x", 1.5), ("y,z", 2)])
        lines = text.splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "x,1.50"
        assert lines[2] == '"y,z",2'

    def test_format_csv_width_check(self):
        with pytest.raises(ValueError):
            format_csv(("a", "b"), [("only",)])

    def test_render_csv_table5(self):
        from repro.harness.experiments import render, table5

        text = render(5, table5(["lion"]), csv=True)
        assert text.splitlines()[0] == "circuit,trans,tests,len,1len,time"
        assert text.splitlines()[1].startswith("lion,16,9,28,25.00")

    def test_cli_csv_flag(self, capsys):
        assert main(["table4", "--circuits", "lion", "--csv"]) == 0
        out = capsys.readouterr().out
        assert "circuit,pi,states,unique,sv,m.len,time" in out

"""Programmatic and random construction of state tables.

:class:`StateTableBuilder` builds small machines by naming states and listing
transitions (used heavily by the test suite and the examples).
:func:`random_cube_machine` generates deterministic pseudo-random machines
with the *cube structure* of real KISS benchmarks — each state's input space
is partitioned into a handful of cubes — which keeps two-level synthesis
realistic even for machines with many primary inputs.
"""

from __future__ import annotations

import random
from typing import Iterable, Mapping

import numpy as np

from repro.errors import IncompleteMachineError, StateTableError
from repro.fsm.kiss import KissMachine, KissRow
from repro.fsm.state_table import StateTable

__all__ = [
    "StateTableBuilder",
    "random_cube_machine",
    "random_dense_table",
    "random_state_table",
]


class StateTableBuilder:
    """Incremental construction of a dense :class:`StateTable`.

    Example
    -------
    >>> b = StateTableBuilder(n_inputs=1, n_outputs=1)
    >>> b.add("off", 0, "off", 0)
    >>> b.add("off", 1, "on", 1)
    >>> b.add("on", 0, "off", 0)
    >>> b.add("on", 1, "on", 1)
    >>> table = b.build()
    >>> table.n_states
    2
    """

    def __init__(self, n_inputs: int, n_outputs: int, name: str = "") -> None:
        if n_inputs < 0 or n_outputs < 0:
            raise StateTableError("widths must be non-negative")
        self.n_inputs = n_inputs
        self.n_outputs = n_outputs
        self.name = name
        self._states: dict[str, int] = {}
        self._entries: dict[tuple[int, int], tuple[int, int]] = {}

    def state(self, name: str) -> int:
        """Index of state ``name``, registering it on first use."""
        if name not in self._states:
            self._states[name] = len(self._states)
        return self._states[name]

    def add(
        self,
        present: str,
        combination: int | Iterable[int],
        next_state: str,
        output: int | Iterable[int],
    ) -> None:
        """Define ``present --combination/output--> next_state``.

        ``combination`` and ``output`` may be integers or bit iterables.
        Redefining an entry with a different target is an error.
        """
        src = self.state(present)
        dst = self.state(next_state)
        combo = self._coerce(combination, self.n_inputs, "input")
        out = self._coerce(output, self.n_outputs, "output")
        key = (src, combo)
        if key in self._entries and self._entries[key] != (dst, out):
            raise StateTableError(
                f"conflicting redefinition of {present!r} under input {combo}"
            )
        self._entries[key] = (dst, out)

    def add_row(
        self,
        present: str,
        targets: Mapping[int, tuple[str, int]],
    ) -> None:
        """Define several transitions out of ``present`` at once."""
        for combination, (next_state, output) in targets.items():
            self.add(present, combination, next_state, output)

    def build(self, fill_unspecified: bool = False) -> StateTable:
        """Produce the dense table; missing entries raise unless filled."""
        n_states = len(self._states)
        if n_states == 0:
            raise StateTableError("no states defined")
        n_cols = 1 << self.n_inputs
        next_state = np.full((n_states, n_cols), -1, dtype=np.int32)
        output = np.zeros((n_states, n_cols), dtype=np.int64)
        for (src, combo), (dst, out) in self._entries.items():
            next_state[src, combo] = dst
            output[src, combo] = out
        holes = int((next_state == -1).sum())
        if holes:
            if not fill_unspecified:
                raise IncompleteMachineError(
                    f"{holes} unspecified entries; pass fill_unspecified=True"
                )
            output[next_state == -1] = 0
            next_state[next_state == -1] = 0
        names = [name for name, _ in sorted(self._states.items(), key=lambda kv: kv[1])]
        return StateTable(
            next_state, output, self.n_inputs, self.n_outputs, names, self.name
        )

    def _coerce(self, value: int | Iterable[int], width: int, what: str) -> int:
        if isinstance(value, int):
            if not 0 <= value < (1 << width):
                raise StateTableError(f"{what} combination {value} out of range")
            return value
        bits = list(value)
        if len(bits) != width:
            raise StateTableError(f"{what} needs {width} bits, got {len(bits)}")
        result = 0
        for bit in bits:
            result = (result << 1) | (1 if bit else 0)
        return result


def _split_cubes(rng: random.Random, n_inputs: int, target: int) -> list[str]:
    """Partition the input space into roughly ``target`` disjoint cubes."""
    cubes = ["-" * n_inputs]
    while len(cubes) < target:
        splittable = [i for i, cube in enumerate(cubes) if "-" in cube]
        if not splittable:
            break
        index = rng.choice(splittable)
        cube = cubes.pop(index)
        free = [i for i, ch in enumerate(cube) if ch == "-"]
        var = rng.choice(free)
        cubes.append(cube[:var] + "0" + cube[var + 1 :])
        cubes.append(cube[:var] + "1" + cube[var + 1 :])
    return cubes


def random_cube_machine(
    n_inputs: int,
    n_states: int,
    n_outputs: int,
    seed: int | str,
    cubes_per_state: int = 4,
    name: str = "",
    output_zero_bias: float = 0.0,
) -> KissMachine:
    """Generate a deterministic pseudo-random cube-structured Mealy machine.

    Every state's input space is partitioned into about ``cubes_per_state``
    cubes, each mapped to a random next state and a random output cube, the
    way hand-written KISS benchmarks are structured.  The same
    ``(parameters, seed)`` always produces the same machine.

    ``output_zero_bias`` is the probability that a cube's output is forced
    to all zeros; real benchmark machines assert their outputs sparsely, and
    this bias is what makes some states lack unique input-output sequences
    the way the MCNC circuits do.
    """
    if n_states < 1:
        raise StateTableError("need at least one state")
    if n_inputs < 0 or n_outputs < 0:
        raise StateTableError("widths must be non-negative")
    if not 0.0 <= output_zero_bias <= 1.0:
        raise StateTableError("output_zero_bias must be within [0, 1]")
    rng = random.Random(f"repro-cube-machine:{seed}")
    state_names = [f"s{i}" for i in range(n_states)]
    rows: list[KissRow] = []
    for state in range(n_states):
        target = max(1, min(1 << n_inputs, rng.randint(
            max(1, cubes_per_state - 1), cubes_per_state + 2
        )))
        cubes = _split_cubes(rng, n_inputs, target)
        for cube in cubes:
            nxt = rng.randrange(n_states)
            if n_outputs and rng.random() >= output_zero_bias:
                out = rng.randrange(1 << n_outputs)
            else:
                out = 0
            out_cube = format(out, f"0{n_outputs}b") if n_outputs else ""
            rows.append(KissRow(cube, state_names[state], state_names[nxt], out_cube))
    return KissMachine(n_inputs, n_outputs, rows, state_names[0], name)


def random_dense_table(
    n_inputs: int,
    n_states: int,
    n_outputs: int,
    seed: int | str,
    strongly_connected: bool = False,
    output_zero_bias: float = 0.0,
    name: str = "",
) -> StateTable:
    """Generate a deterministic uniform-random dense state table.

    Unlike :func:`random_cube_machine` every ``(state, input)`` entry is
    drawn independently, which explores corners cube-structured machines
    cannot reach (states reachable only under one specific combination,
    heavy next-state fan-in, ...).  With ``strongly_connected`` one random
    input column per state is redirected onto the cycle
    ``s -> (s + 1) mod n_states``, which makes every state reachable from
    every other by construction.  ``output_zero_bias`` is the probability
    that an entry's output is forced to all zeros (sparse outputs are what
    starves states of UIO sequences).
    """
    if n_states < 1:
        raise StateTableError("need at least one state")
    if n_inputs < 0 or n_outputs < 0:
        raise StateTableError("widths must be non-negative")
    if not 0.0 <= output_zero_bias <= 1.0:
        raise StateTableError("output_zero_bias must be within [0, 1]")
    rng = random.Random(f"repro-dense-table:{seed}")
    n_cols = 1 << n_inputs
    next_state = np.empty((n_states, n_cols), dtype=np.int32)
    output = np.zeros((n_states, n_cols), dtype=np.int64)
    for state in range(n_states):
        for combo in range(n_cols):
            next_state[state, combo] = rng.randrange(n_states)
            if n_outputs and rng.random() >= output_zero_bias:
                output[state, combo] = rng.randrange(1 << n_outputs)
    if strongly_connected and n_states > 1:
        for state in range(n_states):
            next_state[state, rng.randrange(n_cols)] = (state + 1) % n_states
    return StateTable(next_state, output, n_inputs, n_outputs, name=name)


def random_state_table(
    n_inputs: int,
    n_states: int,
    n_outputs: int,
    seed: int | str,
    cubes_per_state: int = 4,
    name: str = "",
) -> StateTable:
    """Dense-table convenience wrapper around :func:`random_cube_machine`."""
    return random_cube_machine(
        n_inputs, n_states, n_outputs, seed, cubes_per_state, name
    ).to_state_table()

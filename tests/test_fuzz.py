"""Tests of the differential fuzzing subsystem.

Each oracle is proved non-vacuous by breaking one of its two
implementations (via monkeypatching the alias the oracle calls) and
asserting the oracle notices.  The shrinker, corpus, runner, and CLI are
tested directly.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.faultmodel import FunctionalFaultResult
from repro.errors import FuzzError
from repro.fsm.builders import random_dense_table
from repro.fuzz import (
    FuzzConfig,
    MachineSpec,
    generate_machine,
    load_corpus,
    oracle_names,
    run_fuzz,
    save_failure,
    shrink_machine,
    spec_stream,
)
from repro.fuzz import oracles as oracles_mod
from repro.fuzz.generators import MACHINE_VARIANTS, random_gate_faults
from repro.fuzz.oracles import (
    FuzzCase,
    Oracle,
    OracleFailure,
    OracleSkip,
    get_oracle,
    resolve_oracles,
)
from repro.fuzz.runner import OracleTimeout, _time_limit
from repro.fuzz.shrink import drop_input_bit, drop_output_bit, drop_state
from repro.gatelevel.bridging import BridgeKind, BridgingFault
from repro.gatelevel.compiled import CompiledFaultSimulator
from repro.gatelevel.fault_sim import detects as interpreted_detects
from repro.uio.search import UioTable


def small_case(seed: int = 5, variant: str = "dense") -> FuzzCase:
    spec = MachineSpec(variant, 4, 1, 1, seed)
    return FuzzCase(spec.label(), generate_machine(spec), spec=spec)


class TestGenerators:
    def test_spec_stream_is_deterministic(self):
        first = list(spec_stream(10, seed=3))
        second = list(spec_stream(10, seed=3))
        assert first == second
        assert list(spec_stream(10, seed=4)) != first

    def test_spec_stream_cycles_variants(self):
        variants = [spec.variant for spec in spec_stream(8, seed=0)]
        assert variants == list(MACHINE_VARIANTS) * 2

    def test_generate_machine_deterministic_and_labeled(self):
        spec = MachineSpec("strongly-connected", 5, 2, 2, 99)
        table = generate_machine(spec)
        assert table == generate_machine(spec)
        assert table.name == spec.label()

    def test_strongly_connected_variant_reaches_every_state(self):
        table = generate_machine(MachineSpec("strongly-connected", 6, 2, 1, 1))
        reached = {0}
        frontier = [0]
        while frontier:
            state = frontier.pop()
            for combo in range(table.n_input_combinations):
                nxt = int(table.next_state[state, combo])
                if nxt not in reached:
                    reached.add(nxt)
                    frontier.append(nxt)
        assert reached == set(range(6))

    def test_bad_specs_rejected(self):
        with pytest.raises(FuzzError):
            MachineSpec("nope", 2, 1, 1, 0)
        with pytest.raises(FuzzError):
            MachineSpec("dense", 0, 1, 1, 0)
        with pytest.raises(FuzzError):
            list(spec_stream(-1, 0))

    def test_random_gate_faults_mixes_models_deterministically(self):
        case = small_case()
        faults = random_gate_faults(case.scan_circuit(), "x")
        assert faults == random_gate_faults(case.scan_circuit(), "x")
        kinds = {type(fault).__name__ for fault in faults}
        assert "StuckAtFault" in kinds


class TestOracleRegistry:
    def test_oracles_registered(self):
        assert len(oracle_names()) >= 8
        assert "sim-ppsfp-vs-bigint" in oracle_names()
        assert oracle_names() == tuple(sorted(oracle_names()))

    def test_unknown_oracle_raises(self):
        with pytest.raises(FuzzError, match="unknown oracle"):
            get_oracle("nope")

    def test_resolve_defaults_to_all(self):
        assert [o.name for o in resolve_oracles(None)] == list(oracle_names())
        assert [o.name for o in resolve_oracles(("uio-verify",))] == ["uio-verify"]

    def test_all_oracles_pass_on_healthy_case(self):
        case = small_case()
        for name in oracle_names():
            get_oracle(name).run(case)  # must not raise


class TestBrokenImplementationsAreCaught:
    """Each oracle must notice when one of its two sides is broken."""

    def test_uio_verify_catches_forgotten_sequences(self, monkeypatch):
        case = small_case(seed=0)  # this machine has length-1 UIOs
        real = oracles_mod.compute_uio_table

        def forgetful(table, max_length, *args, **kwargs):
            found = real(table, max_length, *args, **kwargs)
            if max_length > 1:  # "optimized" long search loses everything
                return UioTable(found.machine_name, max_length, {}, frozenset())
            return found

        monkeypatch.setattr(oracles_mod, "compute_uio_table", forgetful)
        with pytest.raises(OracleFailure, match="length-1 UIO"):
            get_oracle("uio-verify").run(case)

    def test_uio_verify_catches_bogus_sequence(self, monkeypatch):
        case = small_case()
        real = oracles_mod.compute_uio_table

        def corrupt(table, max_length, *args, **kwargs):
            found = real(table, max_length, *args, **kwargs)
            sequences = dict(found.sequences)
            if sequences:
                state, seq = next(iter(sequences.items()))
                sequences[state] = type(seq)(
                    seq.state, seq.inputs, (seq.final_state + 1) % table.n_states
                )
            return UioTable(
                found.machine_name, found.max_length, sequences,
                found.budget_exhausted,
            )

        monkeypatch.setattr(oracles_mod, "compute_uio_table", corrupt)
        with pytest.raises(OracleFailure):
            get_oracle("uio-verify").run(case)

    def test_coverage_catches_dropped_test(self, monkeypatch):
        case = small_case()
        real = oracles_mod.generate_tests

        def lossy(table, *args, **kwargs):
            result = real(table, *args, **kwargs)
            result.test_set.tests[:] = result.test_set.tests[:-1]
            return result

        monkeypatch.setattr(oracles_mod, "generate_tests", lossy)
        with pytest.raises(OracleFailure):
            get_oracle("coverage-chaining").run(case)

    def test_kiss_roundtrip_catches_corrupt_writer(self, monkeypatch):
        case = small_case()
        real = oracles_mod.table_to_kiss

        def corrupt(table):
            output = table.output.copy()
            output[0, 0] ^= 1  # writer flips one output bit
            return real(
                type(table)(
                    table.next_state, output, table.n_inputs, table.n_outputs,
                    table.state_names, table.name,
                )
            )

        monkeypatch.setattr(oracles_mod, "table_to_kiss", corrupt)
        with pytest.raises(OracleFailure, match="round-trip"):
            get_oracle("kiss-roundtrip").run(case)

    def test_sim_equivalence_catches_blind_interpreter(self, monkeypatch):
        case = small_case()
        simulator = CompiledFaultSimulator(
            case.scan_circuit(), case.table, case.gate_faults()
        )
        assert any(
            simulator.detects(test) for test in case.generation().test_set
        ), "precondition: the compiled simulator detects something"
        monkeypatch.setattr(
            oracles_mod, "interpreted_detects", lambda *a, **k: set()
        )
        with pytest.raises(OracleFailure, match="diverge"):
            get_oracle("sim-equivalence").run(case)

    def test_scan_vs_nonscan_catches_blind_simulator(self, monkeypatch):
        case = small_case()
        get_oracle("scan-vs-nonscan").run(case)  # healthy first

        def blind(table, test_set, faults):
            ordered = list(dict.fromkeys(faults))
            return FunctionalFaultResult(frozenset(), frozenset(ordered))

        monkeypatch.setattr(oracles_mod, "simulate_functional_faults", blind)
        with pytest.raises(OracleFailure, match="classified differently"):
            get_oracle("scan-vs-nonscan").run(case)

    def test_synthesis_replay_catches_wrong_netlist_trace(self, monkeypatch):
        case = small_case()
        circuit_type = type(case.scan_circuit())
        original = circuit_type.run_test

        def wrong(self, test):
            final, outputs = original(self, test)
            return final, tuple(out ^ 1 for out in outputs)

        monkeypatch.setattr(circuit_type, "run_test", wrong)
        with pytest.raises(OracleFailure, match="replay"):
            get_oracle("synthesis-replay").run(case)

    def test_cache_replay_catches_corrupt_cache(self, monkeypatch):
        case = small_case()

        def corrupt(table, max_length, node_budget, **kwargs):
            return UioTable(table.name, max_length, {}, frozenset()), 0.0

        monkeypatch.setattr(oracles_mod, "cached_uio_table", corrupt)
        with pytest.raises(OracleFailure):
            get_oracle("cache-replay").run(case)

    def test_gate_oracles_skip_oversized_machines(self):
        table = random_dense_table(1, 12, 1, seed=0)
        case = FuzzCase("big", table)
        with pytest.raises(OracleSkip):
            get_oracle("sim-equivalence").run(case)
        with pytest.raises(OracleSkip):
            get_oracle("synthesis-replay").run(case)

    def test_kiss_roundtrip_skips_zero_width(self):
        table = random_dense_table(0, 3, 2, seed=1)
        with pytest.raises(OracleSkip):
            get_oracle("kiss-roundtrip").run(FuzzCase("no-inputs", table))


class TestBridgingPolarityRegression:
    """Interpreted and compiled simulators agree on a bridge whose
    wired-AND and wired-OR polarities behave differently.

    Pinned from the fuzzer stream: on this machine the AND short between
    lines 8 and 18 is detected by the first generated test while the OR
    short on the same line pair is not — exactly the asymmetry a polarity
    mix-up in either simulator would invert.
    """

    def test_polarity_sensitive_bridge_agrees(self):
        table = generate_machine(MachineSpec("dense", 4, 2, 2, 0))
        case = FuzzCase("polarity-pin", table)
        circuit = case.scan_circuit()
        faults = [
            BridgingFault(8, 18, BridgeKind.AND),
            BridgingFault(8, 18, BridgeKind.OR),
        ]
        simulator = CompiledFaultSimulator(circuit, table, faults)
        test = case.generation().test_set.tests[0]
        compiled = simulator.detects(test)
        interpreted = frozenset(interpreted_detects(circuit, table, test, faults))
        assert compiled == interpreted
        assert faults[0] in compiled and faults[1] not in compiled


class TestShrinker:
    def test_reductions_produce_valid_tables(self):
        table = generate_machine(MachineSpec("dense", 5, 2, 2, 11))
        assert drop_state(table, 2).n_states == 4
        assert drop_input_bit(table, 1).n_inputs == 1
        assert drop_output_bit(table, 0).n_outputs == 1

    def test_reduction_bounds_checked(self):
        table = generate_machine(MachineSpec("dense", 1, 1, 1, 0))
        with pytest.raises(FuzzError):
            drop_state(table, 0)
        with pytest.raises(FuzzError):
            drop_input_bit(table, 3)

    def test_shrink_converges_to_minimal_witness(self):
        table = generate_machine(MachineSpec("dense", 9, 3, 2, 42))
        result = shrink_machine(table, lambda t: t.n_states >= 3)
        assert result.reduced
        assert result.table.n_states == 3  # one fewer kills the predicate
        assert result.table.n_inputs == 1
        assert result.table.n_outputs == 1

    def test_shrink_treats_predicate_crash_as_not_failing(self):
        table = generate_machine(MachineSpec("dense", 6, 2, 1, 7))

        def predicate(candidate):
            if candidate.n_states < 4:
                raise RuntimeError("different bug")
            return True

        result = shrink_machine(table, predicate)
        assert result.table.n_states == 4

    def test_shrink_respects_attempt_budget(self):
        table = generate_machine(MachineSpec("dense", 9, 3, 3, 1))
        result = shrink_machine(table, lambda t: True, max_attempts=3)
        assert result.attempts == 3


class TestCorpus:
    def test_round_trip(self, tmp_path):
        table = generate_machine(MachineSpec("cube", 5, 2, 2, 3))
        entry = save_failure(tmp_path, "uio-verify", table, "detail text")
        loaded = load_corpus(tmp_path)
        assert len(loaded) == 1
        assert loaded[0].table == table
        assert loaded[0].oracle == "uio-verify"
        assert loaded[0].metadata["detail"] == "detail text"
        assert (tmp_path / entry.relative_path).exists()

    def test_digest_deduplicates(self, tmp_path):
        table = generate_machine(MachineSpec("cube", 4, 1, 1, 9))
        save_failure(tmp_path, "kiss-roundtrip", table, "first")
        save_failure(tmp_path, "kiss-roundtrip", table, "second")
        assert len(load_corpus(tmp_path)) == 1

    def test_missing_corpus_is_empty(self, tmp_path):
        assert load_corpus(tmp_path / "nope") == []

    def test_corrupt_entry_is_an_error(self, tmp_path):
        bad = tmp_path / "uio-verify"
        bad.mkdir()
        (bad / "deadbeef.kiss").write_text("not kiss at all\n")
        with pytest.raises(FuzzError, match="unreadable"):
            load_corpus(tmp_path)

    def test_zero_width_tables_rejected(self, tmp_path):
        table = random_dense_table(0, 2, 1, seed=0)
        with pytest.raises(FuzzError, match="zero-width"):
            save_failure(tmp_path, "uio-verify", table, "x")


class TestRunner:
    def test_clean_campaign_passes(self):
        report = run_fuzz(FuzzConfig(cases=6, seed=0))
        assert report.ok
        assert report.executed_cases == 6
        assert set(report.stats) == set(oracle_names())
        assert report.stats["uio-verify"]["ok"] == 6

    def test_failure_is_shrunk_and_persisted(self, tmp_path, monkeypatch):
        real = oracles_mod.compute_uio_table

        def broken(table, max_length, *args, **kwargs):
            if max_length > 1:  # lossy long search: forgets every sequence
                return UioTable(table.name, max_length, {}, frozenset())
            return real(table, max_length, *args, **kwargs)

        monkeypatch.setattr(oracles_mod, "compute_uio_table", broken)
        report = run_fuzz(
            FuzzConfig(
                cases=4,
                seed=0,
                oracles=("uio-verify",),
                corpus_dir=str(tmp_path),
                max_failures=2,
            )
        )
        assert not report.ok
        assert report.stop_reason.startswith("reached 2 failures")
        shrunk = [f for f in report.failures if f.shrunk_from]
        assert shrunk, "first failure must be shrunk"
        assert shrunk[0].n_states <= 6
        assert shrunk[0].corpus_path is not None
        assert load_corpus(tmp_path)

    def test_corpus_replays_before_generation(self, tmp_path, monkeypatch):
        table = generate_machine(MachineSpec("dense", 3, 1, 1, 2))
        save_failure(tmp_path, "uio-verify", table, "stored failure")
        report = run_fuzz(
            FuzzConfig(cases=0, corpus_dir=str(tmp_path))
        )
        assert report.replayed_entries == 1
        assert report.executed_cases == 0
        assert report.ok  # the bug this entry once caught is fixed

    def test_hanging_oracle_times_out(self, monkeypatch):
        def hang(case):
            while True:
                pass

        monkeypatch.setitem(
            oracles_mod._REGISTRY,
            "hang",
            Oracle("hang", "never returns", hang),
        )
        report = run_fuzz(
            FuzzConfig(
                cases=1, oracles=("hang",), shrink=False, oracle_timeout_s=0.2
            )
        )
        assert not report.ok
        assert "timeout" in report.failures[0].detail

    def test_time_limit_raises_and_restores(self):
        with pytest.raises(OracleTimeout):
            with _time_limit(0.05):
                while True:
                    pass
        with _time_limit(5.0):
            pass  # timer cleared, no stray alarm

    def test_reports_are_byte_identical(self):
        config = FuzzConfig(cases=8, seed=7)
        first = run_fuzz(config)
        second = run_fuzz(config)
        assert first.render() == second.render()
        assert json.dumps(first.to_dict()) == json.dumps(second.to_dict())


class TestFuzzCli:
    def test_pass_run_exits_zero(self, capsys):
        assert main(["fuzz", "--cases", "3", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "result: PASS" in out

    def test_deterministic_seed_byte_identical(self, capsys):
        assert main(["fuzz", "--cases", "25", "--seed", "7"]) == 0
        first = capsys.readouterr().out
        assert main(["fuzz", "--cases", "25", "--seed", "7"]) == 0
        second = capsys.readouterr().out
        assert first == second
        assert first.encode() == second.encode()

    def test_unknown_oracle_exits_two(self, capsys):
        assert main(["fuzz", "--oracle", "bogus", "--cases", "1"]) == 2
        assert "unknown oracle" in capsys.readouterr().err

    def test_failures_exit_one_and_fill_corpus(
        self, tmp_path, capsys, monkeypatch
    ):
        real = oracles_mod.compute_uio_table

        def broken(table, max_length, *args, **kwargs):
            if max_length > 1:
                return UioTable(table.name, max_length, {}, frozenset())
            return real(table, max_length, *args, **kwargs)

        monkeypatch.setattr(oracles_mod, "compute_uio_table", broken)
        code = main([
            "fuzz", "--cases", "2", "--oracle", "uio-verify",
            "--corpus", str(tmp_path), "--max-failures", "1",
        ])
        assert code == 1
        assert "FAIL uio-verify" in capsys.readouterr().out
        assert load_corpus(tmp_path)

    def test_json_format(self, capsys):
        assert main(["fuzz", "--cases", "2", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["requested_cases"] == 2

    def test_list_oracles(self, capsys):
        assert main(["fuzz", "--list-oracles"]) == 0
        out = capsys.readouterr().out
        for name in oracle_names():
            assert name in out

    def test_replay_only_mode(self, tmp_path, capsys):
        table = generate_machine(MachineSpec("dense", 3, 1, 1, 4))
        save_failure(tmp_path, "kiss-roundtrip", table, "old bug")
        assert main(["fuzz", "--cases", "0", "--corpus", str(tmp_path)]) == 0
        assert "corpus-replays=1" in capsys.readouterr().out


class TestHypothesisStrategies:
    def test_state_tables_strategy_importable_and_bounded(self):
        from hypothesis import find

        from repro.fuzz.strategies import machine_specs, state_tables

        spec = find(machine_specs(), lambda s: True)
        assert spec.variant in MACHINE_VARIANTS
        table = find(
            state_tables(min_states=2, max_states=4, min_inputs=1, min_outputs=1),
            lambda t: True,
        )
        assert 2 <= table.n_states <= 4
        assert table.n_inputs >= 1

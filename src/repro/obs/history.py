"""Ledger queries: trend tables and the zero-dependency HTML dashboard.

``repro-fsatpg history <command>`` renders the ledger's records for one
command as a fixed-width trend table (newest last, like the log itself);
``repro-fsatpg report --out report.html`` renders every command's history
as a self-contained HTML page with inline SVG sparklines — no JavaScript,
no external assets, safe to archive as a CI artifact.
"""

from __future__ import annotations

import html
from typing import Any, Mapping, Sequence

from repro.harness.tables import format_table

__all__ = [
    "command_records",
    "history_rows",
    "render_history",
    "sparkline",
    "render_html",
]


def command_records(
    records: Sequence[Mapping[str, Any]], command: str
) -> list[Mapping[str, Any]]:
    """The ledger records for one command, oldest first (ledger order)."""
    return [r for r in records if r.get("command") == command]


def _sum_result_field(record: Mapping[str, Any], key: str) -> int | None:
    """Sum ``key`` across per-circuit result summaries; ``None`` if absent."""
    results = record.get("results")
    if not isinstance(results, dict):
        return None
    total = 0
    seen = False
    for summary in results.values():
        if isinstance(summary, dict) and isinstance(summary.get(key), (int, float)):
            total += int(summary[key])
            seen = True
    return total if seen else None


def _mean_coverage(record: Mapping[str, Any], model: str = "stuck_at") -> float | None:
    results = record.get("results")
    if not isinstance(results, dict):
        return None
    values = [
        summary[model]["coverage"]
        for summary in results.values()
        if isinstance(summary, dict)
        and isinstance(summary.get(model), dict)
        and isinstance(summary[model].get("coverage"), (int, float))
    ]
    if not values:
        return None
    return sum(values) / len(values)


def history_rows(records: Sequence[Mapping[str, Any]]) -> list[list[str]]:
    """One row per record: when, sha, jobs, wall, circuits, tests, len, sa.cov."""
    rows: list[list[str]] = []
    for record in records:
        tests = _sum_result_field(record, "tests")
        length = _sum_result_field(record, "test_length")
        coverage = _mean_coverage(record)
        rows.append(
            [
                str(record.get("ts", "?")),
                str(record.get("git_sha", "?"))[:7],
                str(record.get("jobs", "?")),
                f"{float(record.get('wall_s', 0.0)):.2f}",
                str(len(record.get("circuits", []))),
                "-" if tests is None else str(tests),
                "-" if length is None else str(length),
                "-" if coverage is None else f"{100.0 * coverage:.2f}",
            ]
        )
    return rows


_HISTORY_HEADERS = (
    "when", "sha", "jobs", "wall", "circuits", "tests", "len", "sa.cov%",
)


def render_history(
    records: Sequence[Mapping[str, Any]],
    command: str,
    limit: int = 20,
) -> str:
    """Fixed-width trend table for one command (most recent ``limit`` runs)."""
    selected = command_records(records, command)
    if not selected:
        return f"no ledger records for {command!r}"
    shown = selected[-limit:] if limit > 0 else selected
    title = f"{command} history ({len(shown)} of {len(selected)} runs)"
    return format_table(_HISTORY_HEADERS, history_rows(shown), title)


# ------------------------------------------------------------------ HTML


def sparkline(
    values: Sequence[float],
    *,
    width: int = 160,
    height: int = 32,
    stroke: str = "#2563eb",
) -> str:
    """An inline SVG polyline through ``values`` (empty string for < 2 points)."""
    if len(values) < 2:
        return ""
    low = min(values)
    high = max(values)
    spread = (high - low) or 1.0
    pad = 2.0
    step = (width - 2 * pad) / (len(values) - 1)
    points = " ".join(
        f"{pad + index * step:.1f},"
        f"{height - pad - (value - low) / spread * (height - 2 * pad):.1f}"
        for index, value in enumerate(values)
    )
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" xmlns="http://www.w3.org/2000/svg">'
        f'<polyline fill="none" stroke="{stroke}" stroke-width="1.5" '
        f'points="{points}"/></svg>'
    )


_CSS = """
body { font-family: ui-monospace, SFMono-Regular, Menlo, monospace;
       margin: 2rem; color: #111; }
h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 2rem; }
table { border-collapse: collapse; margin-top: .5rem; }
th, td { border: 1px solid #ccc; padding: .25rem .6rem;
         font-size: .85rem; text-align: right; }
th { background: #f3f4f6; } td.l, th.l { text-align: left; }
.spark { vertical-align: middle; margin-left: .75rem; }
.meta { color: #555; font-size: .8rem; }
"""


def _metric_series(
    records: Sequence[Mapping[str, Any]], extract: Any
) -> list[float]:
    series = []
    for record in records:
        value = extract(record)
        if isinstance(value, (int, float)):
            series.append(float(value))
    return series


def render_html(
    records: Sequence[Mapping[str, Any]],
    title: str = "repro-fsatpg run ledger",
) -> str:
    """A self-contained dashboard: per-command trend tables + sparklines."""
    commands = sorted({str(r.get("command", "?")) for r in records})
    parts = [
        "<!doctype html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{html.escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f'<p class="meta">{len(records)} records, '
        f"{len(commands)} commands</p>",
    ]
    for command in commands:
        selected = command_records(records, command)
        walls = _metric_series(selected, lambda r: r.get("wall_s"))
        tests = _metric_series(selected, lambda r: _sum_result_field(r, "tests"))
        parts.append(
            f"<h2>{html.escape(command)} "
            f'<span class="meta">({len(selected)} runs)</span>'
            f"{sparkline(walls)}"
            f"{sparkline(tests, stroke='#16a34a')}</h2>"
        )
        header_cells = "".join(
            f'<th class="l">{html.escape(name)}</th>'
            if name in ("when", "sha")
            else f"<th>{html.escape(name)}</th>"
            for name in _HISTORY_HEADERS
        )
        body_rows = []
        for row in history_rows(selected[-30:]):
            cells = "".join(
                f'<td class="l">{html.escape(cell)}</td>'
                if index < 2
                else f"<td>{html.escape(cell)}</td>"
                for index, cell in enumerate(row)
            )
            body_rows.append(f"<tr>{cells}</tr>")
        parts.append(
            f"<table><thead><tr>{header_cells}</tr></thead>"
            f"<tbody>{''.join(body_rows)}</tbody></table>"
        )
    if not records:
        parts.append("<p>The ledger is empty.</p>")
    parts.append("</body></html>")
    return "\n".join(parts)

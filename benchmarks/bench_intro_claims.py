"""Benchmarks for the paper's introduction claims (its motivating figures).

The introduction makes two quantitative arguments that the evaluation
section leaves implicit; these benchmarks regenerate both:

1. *Scan closes the non-scan coverage gap* — a checking-experiment sequence
   without scan cannot reach all states nor verify all next states, while
   the scan-based tests verify every transition.
2. *Chained tests add at-speed coverage* — the per-transition baseline has
   zero launch/capture pairs and therefore zero transition-delay fault
   coverage; multi-transition tests detect a meaningful fraction.
"""

from __future__ import annotations

import pytest

from conftest import gate_level_circuits
from repro.benchmarks import circuit_names, load_circuit, load_kiss_machine
from repro.core.baseline import per_transition_tests
from repro.core.coverage import verify_test_set
from repro.core.generator import generate_tests
from repro.gatelevel.delay import simulate_delay_faults
from repro.gatelevel.scan import ScanCircuit
from repro.gatelevel.synthesis import SynthesisOptions
from repro.nonscan import generate_nonscan_sequence


@pytest.mark.parametrize("name", sorted(circuit_names("small")))
def test_nonscan_vs_scan_coverage(benchmark, name):
    table = load_circuit(name)

    def run_both():
        nonscan = generate_nonscan_sequence(table)
        scan = generate_tests(table)
        report = verify_test_set(table, scan.test_set)
        return nonscan, report

    nonscan, report = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert report.is_complete  # scan: always 100%
    assert nonscan.verified_pct <= 100.0
    # The machines with fill states or UIO-less states show a strict gap.
    if nonscan.unreachable or nonscan.exercised_only:
        assert nonscan.verified_pct < 100.0


@pytest.mark.parametrize("name", sorted(circuit_names("small"))[:8])
def test_at_speed_delay_coverage(benchmark, name):
    table = load_circuit(name)
    circuit = ScanCircuit.from_machine(
        load_kiss_machine(name), SynthesisOptions(max_fanin=4)
    )

    def run_both():
        chained = simulate_delay_faults(
            circuit, table, generate_tests(table).test_set
        )
        baseline = simulate_delay_faults(
            circuit, table, per_transition_tests(table)
        )
        return chained, baseline

    chained, baseline = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert baseline.n_at_speed_pairs == 0
    assert baseline.coverage_pct == 0.0
    assert chained.n_at_speed_pairs > 0
    assert chained.coverage_pct > 0.0

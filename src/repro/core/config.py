"""Configuration of the test generation and fault simulation procedures."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FaultSimulationError, GenerationError
from repro.uio.search import DEFAULT_NODE_BUDGET

__all__ = [
    "GeneratorConfig",
    "FaultSimConfig",
    "DEFAULT_BATCH_BITS_CAP",
    "adaptive_batch_bits",
]

#: Upper bound on faults packed per big-int batch word.  Larger batches
#: amortize per-gate Python overhead; beyond a few thousand bits the big-int
#: arithmetic itself starts to dominate.
DEFAULT_BATCH_BITS_CAP = 2048


def adaptive_batch_bits(n_faults: int, cap: int = DEFAULT_BATCH_BITS_CAP) -> int:
    """Batch width (bits) sized to the fault universe.

    Small universes get exactly-sized words instead of paying for
    ``cap``-bit arithmetic; universes above the cap are split into balanced
    batches (``ceil(n / ceil(n / cap))``), so e.g. 2049 faults become two
    ~1025-bit batches rather than a 2048-bit word plus a 1-bit straggler.
    """
    if cap < 1:
        raise FaultSimulationError("batch bit cap must be >= 1")
    if n_faults <= cap:
        return max(1, n_faults)
    n_batches = -(-n_faults // cap)
    return -(-n_faults // n_batches)


@dataclass(frozen=True)
class FaultSimConfig:
    """Knobs of the bit-parallel fault simulator.

    ``max_batch_bits`` caps the number of faults packed into one big-int
    word; the actual width adapts downward to the universe size
    (:func:`adaptive_batch_bits`).
    """

    max_batch_bits: int = DEFAULT_BATCH_BITS_CAP

    def __post_init__(self) -> None:
        if self.max_batch_bits < 1:
            raise FaultSimulationError("max_batch_bits must be >= 1")

    def resolved_batch_bits(self, n_faults: int) -> int:
        """The effective batch width for a universe of ``n_faults``."""
        return adaptive_batch_bits(n_faults, self.max_batch_bits)


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the paper's procedure.

    Parameters
    ----------
    max_uio_length:
        The bound ``L`` on unique input-output sequence lengths.  ``None``
        (the default) means ``L = N_SV``, the paper's main setting: a UIO
        then never takes longer to apply than a scan-out/scan-in pair.
        Table 9 sweeps this bound.
    max_transfer_length:
        The bound ``T`` on transfer sequence lengths.  The paper's main
        experiments use ``T = 1``; ``T = 0`` disables transfer sequences
        (Table 8).
    postpone_no_uio_starts:
        The paper's postpone rule: do not *start* a test with a transition
        whose next state has no UIO during the first pass, because that
        forces a length-1 test; a second pass picks the leftovers up.
    uio_node_budget:
        Node-expansion budget per UIO search (the search is exponential in
        the worst case).  States whose search is cut off are treated as
        having no UIO.
    credit_incidental:
        Extension (off by default, matching the paper's accounting): also
        mark transitions traversed inside UIO and transfer segments as
        tested.  This is *optimistic* — next-state errors on those
        transitions are only probabilistically observed — so the strict
        coverage checker reports such credits separately.
    use_partial_uio:
        Extension (off by default): for next states without a full UIO but
        with a complete partial UIO set, keep chaining by applying one
        pending sequence of the set per visit; the transition counts as
        tested once every sequence of the set has followed it somewhere in
        the test set.
    scan_ratio:
        The scan-to-functional clock period ratio ``M``; only affects the
        reported clock cycles, never the generated tests.
    """

    max_uio_length: int | None = None
    max_transfer_length: int = 1
    postpone_no_uio_starts: bool = True
    uio_node_budget: int = DEFAULT_NODE_BUDGET
    credit_incidental: bool = False
    use_partial_uio: bool = False
    scan_ratio: int = 1

    def __post_init__(self) -> None:
        if self.max_uio_length is not None and self.max_uio_length < 0:
            raise GenerationError("max_uio_length must be >= 0")
        if self.max_transfer_length < 0:
            raise GenerationError("max_transfer_length must be >= 0")
        if self.uio_node_budget < 1:
            raise GenerationError("uio_node_budget must be >= 1")
        if self.scan_ratio < 1:
            raise GenerationError("scan_ratio must be >= 1")

    def resolved_uio_length(self, n_state_variables: int) -> int:
        """The effective ``L`` for a machine with ``n_state_variables``."""
        if self.max_uio_length is None:
            return n_state_variables
        return self.max_uio_length

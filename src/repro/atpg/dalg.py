"""The D-algorithm (Roth 1966) with D- and J-frontier bookkeeping.

Unlike PODEM, the D-algorithm decides on *internal* lines: it first
requires a deviation at the fault site, then repeatedly either extends
the D-frontier (pick a frontier gate ordered by SCOAP observability and
require its output to carry D or D') or, once a deviation reaches an
observed output, discharges the J-frontier — the set of lines whose
required value is not yet implied by their fanins — by branching one
unknown fanin at a time over its composite domain.

The implication engine is an event-driven fixpoint: forward implication
through the componentwise five-valued gate evaluation, plus an exact
per-gate feasibility check (the (good, faulty) pair DP of
:meth:`~repro.atpg.model.FaultedCircuit.can_output`) that detects
unjustifiable requirements early.  Conflict-driven backtracking restores
a snapshot and tries the next alternative of the deepest open decision;
exhausting the root alternatives is a completeness-backed untestability
proof.
"""

from __future__ import annotations

from collections import deque

from repro.atpg.model import FaultedCircuit, StateCodeConstraint
from repro.atpg.search import (
    ABORT_BACKTRACKS,
    ABORT_TIME,
    STATUS_ABORTED,
    STATUS_TEST,
    STATUS_UNTESTABLE,
    SearchBudget,
    SearchOutcome,
)
from repro.atpg.values import D, D_BAR, GOOD, UNKNOWN, X3, eval3
from repro.gatelevel.netlist import GateType
from repro.sca.scoap import ScoapMeasures

__all__ = ["d_algorithm_search"]


class _DAlgorithm:
    def __init__(
        self,
        model: FaultedCircuit,
        scoap: ScoapMeasures,
        constraint: StateCodeConstraint | None,
        budget: SearchBudget,
    ) -> None:
        self.model = model
        self.scoap = scoap
        self.constraint = constraint
        self.budget = budget
        self.netlist = model.netlist
        self.values: list[int] = [UNKNOWN] * self.netlist.n_gates
        self.j_frontier: set[int] = set()

    # ----------------------------------------------------------- implication

    def _constraint_ok(self) -> bool:
        if self.constraint is None:
            return True
        bits: list[int | None] = []
        for line in self.netlist.inputs[: self.constraint.width]:
            value = self.values[line]
            bits.append(None if value == UNKNOWN else GOOD[value])
        return self.constraint.feasible(bits)

    def _imply(self, queue: deque[int]) -> bool:
        """Propagate to fixpoint; ``False`` on conflict.

        The queue is deduplicated (a gate with several freshly-changed
        fanins is evaluated once per drain, not once per event) and gates
        outside the fault cone fold their good components only — both
        components agree there by construction.
        """
        model = self.model
        values = self.values
        netlist = self.netlist
        fanouts = model.fanouts
        cone = model.cone
        queued = set(queue)

        def push(index: int) -> None:
            if index not in queued:
                queued.add(index)
                queue.append(index)

        while queue:
            index = queue.popleft()
            queued.discard(index)
            gate = netlist.gate(index)
            if gate.kind is GateType.INPUT:
                continue
            if index in cone:
                computed = model.evaluate_gate(index, values)
            else:
                good = eval3(
                    gate.kind, [GOOD[values[f]] for f in gate.fanins]
                )
                computed = UNKNOWN if good == X3 else good
            current = values[index]
            if computed != UNKNOWN:
                if current == UNKNOWN:
                    values[index] = computed
                    self.j_frontier.discard(index)
                    for reader in fanouts[index]:
                        push(reader)
                elif current != computed:
                    return False
                else:
                    self.j_frontier.discard(index)
            elif current != UNKNOWN:
                if not model.can_output(index, values, current):
                    return False
                # Backward (unique-fanin) implication: any unknown fanin
                # with a single feasible value is forced now.  This is the
                # classic D-drive side-input assignment — without it an
                # unjustifiable requirement is only discovered after the
                # deviation reached an output, which explodes the search.
                forced = self._unique_implications(index, current)
                if forced is None:
                    return False
                if forced:
                    for line, value in forced:
                        if values[line] != UNKNOWN:
                            continue
                        values[line] = value
                        for reader in fanouts[line]:
                            push(reader)
                        push(line)
                    push(index)
                self.j_frontier.add(index)
        return self._constraint_ok()

    def _unique_implications(
        self, index: int, required: int
    ) -> list[tuple[int, int]] | None:
        """Unknown fanins of gate ``index`` forced by its required output.

        For each unknown fanin, probe every value of its domain against
        the exact pair DP; no feasible value is a conflict (``None``), a
        single feasible value is an implication.
        """
        model = self.model
        values = self.values
        gate = self.netlist.gate(index)
        forced: list[tuple[int, int]] = []
        for fanin in gate.fanins:
            if values[fanin] != UNKNOWN:
                continue
            feasible = []
            for value in model.line_domain(fanin):
                values[fanin] = value
                if model.can_output(index, values, required):
                    feasible.append(value)
                values[fanin] = UNKNOWN
            if not feasible:
                return None
            if len(feasible) == 1:
                forced.append((fanin, feasible[0]))
        return forced

    def _assign(self, line: int, value: int) -> bool:
        """Decide ``line := value`` and re-imply."""
        values = self.values
        if values[line] != UNKNOWN:  # pragma: no cover - decisions pick X lines
            return values[line] == value
        values[line] = value
        queue: deque[int] = deque(self.netlist.fanouts()[line])
        queue.append(line)
        return self._imply(queue)

    def _init(self) -> bool:
        """Seed the deviation at the fault site and imply."""
        fault = self.model.fault
        values = self.values
        queue: deque[int] = deque()
        fanouts = self.netlist.fanouts()
        deviation = D if fault.value == 0 else D_BAR
        if fault.pin is None:
            values[fault.gate] = deviation
            queue.extend(fanouts[fault.gate])
            queue.append(fault.gate)
        else:
            driver = self.model.site_line
            need = 1 - fault.value
            if values[driver] == UNKNOWN:
                values[driver] = need
                queue.extend(fanouts[driver])
                queue.append(driver)
            elif GOOD[values[driver]] != need:  # pragma: no cover - fresh state
                return False
            queue.append(fault.gate)
        return self._imply(queue)

    # -------------------------------------------------------------- decisions

    def _alternatives(self) -> list[tuple[int, int]]:
        """The (line, value) branches of the next decision point.

        Before a deviation reaches an output: branch over the D-frontier
        (each frontier gate, required D then D'), cheapest observability
        first.  After: branch one unknown fanin of the lowest J-frontier
        gate over its composite domain.  Either list is exhaustive for
        its decision, which is what makes the search complete.
        """
        model = self.model
        values = self.values
        if not model.detected(values):
            frontier = model.d_frontier(values)
            if not frontier:
                return []
            open_lines = model.x_path_lines(values)
            frontier = [g for g in frontier if g in open_lines]
            co = self.scoap.co
            frontier.sort(key=lambda g: (co[g], g))
            alternatives = []
            for index in frontier:
                reachable = model.reachable_outputs(index, values)
                for deviation in (D, D_BAR):
                    if deviation in reachable:
                        alternatives.append((index, deviation))
            return alternatives
        gate_index = min(self.j_frontier)
        gate = self.netlist.gate(gate_index)
        unknown = [f for f in gate.fanins if values[f] == UNKNOWN]
        cc0, cc1 = self.scoap.cc0, self.scoap.cc1
        line = min(unknown, key=lambda f: (min(cc0[f], cc1[f]), f))
        required = values[gate_index]
        alternatives = []
        for value in model.line_domain(line):
            values[line] = value
            if model.can_output(gate_index, values, required):
                alternatives.append((line, value))
            values[line] = UNKNOWN
        return alternatives

    def _snapshot(self) -> tuple[list[int], set[int]]:
        return list(self.values), set(self.j_frontier)

    def _restore(self, snapshot: tuple[list[int], set[int]]) -> None:
        self.values = list(snapshot[0])
        self.j_frontier = set(snapshot[1])

    # ----------------------------------------------------------------- search

    def _line_name(self, line: int) -> str:
        return self.netlist.gate(line).name or str(line)

    def _frontier_size(self) -> int:
        """D-frontier size for trace events (only computed when tracing)."""
        return len(self.model.d_frontier(self.values))

    def run(self) -> SearchOutcome:
        decisions = 0
        backtracks = 0
        trace = self.budget.trace
        conflict = not self._init()
        # Frames: [snapshot, alternatives, index of the alternative in force].
        stack: list[list] = []
        while True:
            if self.budget.time_exceeded():
                return SearchOutcome(
                    STATUS_ABORTED, None, decisions, backtracks, ABORT_TIME
                )
            if not conflict:
                if self.model.detected(self.values) and not self.j_frontier:
                    cube = tuple(
                        -1 if self.values[line] == UNKNOWN
                        else GOOD[self.values[line]]
                        for line in self.netlist.inputs
                    )
                    return SearchOutcome(
                        STATUS_TEST, cube, decisions, backtracks
                    )
                alternatives = self._alternatives()
                if alternatives:
                    stack.append([self._snapshot(), alternatives, 0])
                    decisions += 1
                    line, value = alternatives[0]
                    conflict = not self._assign(line, value)
                    if trace is not None:
                        trace.record(
                            "decision",
                            self._line_name(line),
                            value,
                            len(stack),
                            d_frontier=self._frontier_size(),
                            j_frontier=len(self.j_frontier),
                        )
                    continue
                conflict = True
            # Conflict: advance the deepest frame with an untried branch.
            while stack:
                frame = stack[-1]
                snapshot, alternatives, position = frame
                if position + 1 < len(alternatives):
                    backtracks += 1
                    if backtracks > self.budget.backtrack_limit:
                        return SearchOutcome(
                            STATUS_ABORTED,
                            None,
                            decisions,
                            backtracks,
                            ABORT_BACKTRACKS,
                        )
                    self._restore(snapshot)
                    frame[2] = position + 1
                    line, value = alternatives[position + 1]
                    conflict = not self._assign(line, value)
                    if trace is not None:
                        trace.record(
                            "backtrack",
                            self._line_name(line),
                            value,
                            len(stack),
                            d_frontier=self._frontier_size(),
                            j_frontier=len(self.j_frontier),
                        )
                    break
                stack.pop()
            else:
                return SearchOutcome(
                    STATUS_UNTESTABLE, None, decisions, backtracks
                )


def d_algorithm_search(
    model: FaultedCircuit,
    scoap: ScoapMeasures,
    constraint: StateCodeConstraint | None = None,
    budget: SearchBudget | None = None,
) -> SearchOutcome:
    """Run the D-algorithm for ``model``'s fault; see :class:`SearchOutcome`."""
    if budget is None:
        budget = SearchBudget(backtrack_limit=100_000)
    return _DAlgorithm(model, scoap, constraint, budget).run()

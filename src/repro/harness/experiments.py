"""Regeneration of the paper's Tables 2-9.

Every ``tableN`` function returns a list of row dataclasses and can render
itself through :func:`repro.harness.tables.format_table`.  The heavy lifting
is cached per circuit in :class:`CircuitStudy`, so e.g. Table 7 reuses the
test sets and fault-simulation results of Tables 5 and 6.

Substitution note (DESIGN.md §3): gate-level rows are measured on our own
synthesized implementations (multi-level, fanin-bounded) and, for two-level
circuits with huge bridging universes, on a deterministic sample of bridging
pairs.  Absolute fault counts therefore differ from the paper; the claims
under test — complete coverage of detectable faults, few effective tests,
large cycle reductions — are what the rows demonstrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Sequence

from repro.benchmarks import circuit_names, get_spec, load_circuit, load_kiss_machine
from repro.benchmarks.paper_data import PAPER_TABLE8, PAPER_TABLE9
from repro.core.compaction import EffectiveSelection, select_effective_tests
from repro.core.config import FaultSimConfig, GeneratorConfig
from repro.core.generator import GenerationResult, generate_tests
from repro.core.testset import baseline_clock_cycles
from repro.gatelevel.bridging import BridgingFault, enumerate_bridging_faults
from repro.gatelevel.dispatch import make_fault_simulator
from repro.gatelevel.scan import ScanCircuit
from repro.gatelevel.stuck_at import StuckAtFault
from repro.gatelevel.synthesis import SynthesisOptions
from repro.harness.runtime import StageTimings
from repro.harness.tables import format_csv, format_table
from repro.obs.log import get_logger
from repro.obs.trace import span as trace_span
from repro.uio.search import UioTable, compute_uio_table

# NOTE: repro.perf is imported inside the methods that use it.
# ``repro.harness.__init__`` eagerly imports this module, and
# ``repro.perf.artifacts`` imports ``repro.harness.runtime`` — a module-level
# import here would make either import order circular.

__all__ = [
    "StudyOptions",
    "CircuitStudy",
    "get_study",
    "warm_studies",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "table9",
    "TABLE9_CIRCUITS",
]

#: The circuits the paper sweeps in Table 9.
TABLE9_CIRCUITS = tuple(PAPER_TABLE9)


@dataclass(frozen=True)
class StudyOptions:
    """Per-study knobs shared by all tables.

    ``max_fanin=4`` gives multi-level implementations comparable to the
    technology-mapped circuits the paper simulated (flat two-level SOP
    exposes almost no bridging sites); ``bridging_pair_limit`` caps the
    bridging universe with a deterministic sample.
    """

    config: GeneratorConfig = field(default_factory=GeneratorConfig)
    max_fanin: int | None = 4
    bridging_pair_limit: int | None = 500
    faultsim: FaultSimConfig = field(default_factory=FaultSimConfig)

    @property
    def synthesis(self) -> SynthesisOptions:
        return SynthesisOptions(max_fanin=self.max_fanin)


class CircuitStudy:
    """Cached per-circuit pipeline: machine → UIO → tests → fault grading."""

    def __init__(self, name: str, options: StudyOptions | None = None) -> None:
        self.name = name
        self.options = options or StudyOptions()
        self.spec = get_spec(name)

    # ----------------------------------------------------------- functional

    @cached_property
    def table(self):
        return load_circuit(self.name)

    @cached_property
    def _uio(self) -> tuple[UioTable, float]:
        from repro.perf.artifacts import cached_uio_table

        config = self.options.config
        length = config.resolved_uio_length(self.table.n_state_variables)
        return cached_uio_table(
            self.table, length, config.uio_node_budget, circuit=self.name
        )

    @property
    def uio_table(self) -> UioTable:
        return self._uio[0]

    @property
    def uio_time_s(self) -> float:
        return self._uio[1]

    @cached_property
    def generation(self) -> GenerationResult:
        return generate_tests(self.table, self.options.config, self.uio_table)

    @cached_property
    def baseline_cycles(self) -> int:
        return baseline_clock_cycles(
            self.table.n_state_variables,
            self.table.n_transitions,
            self.options.config.scan_ratio,
        )

    # ----------------------------------------------------------- gate level

    @cached_property
    def scan_circuit(self) -> ScanCircuit:
        from repro.perf.artifacts import cached_scan_circuit

        return cached_scan_circuit(
            load_kiss_machine(self.name),
            self.options.synthesis,
            self.table,
            circuit=self.name,
        )

    @cached_property
    def sca(self):
        """Static analysis of the synthesized netlist (cached per hash)."""
        from repro.perf.artifacts import cached_sca

        return cached_sca(self.scan_circuit.netlist, circuit=self.name)

    @cached_property
    def stuck_at_faults(self) -> list[StuckAtFault]:
        return list(self.sca.universe.representatives)

    @cached_property
    def stuck_at_proven(self) -> frozenset[StuckAtFault]:
        """Representatives whose untestability has a verified certificate."""
        return frozenset(self.sca.untestable_representatives)

    @cached_property
    def stuck_at_detectability(self) -> tuple[set, set]:
        from repro.perf.artifacts import cached_detectability

        # Certificate-proved representatives skip the exhaustive oracle: a
        # verified certificate already places them in the undetectable bin,
        # so the merged partition equals grading the full list.
        proven = self.stuck_at_proven
        live = [f for f in self.stuck_at_faults if f not in proven]
        detectable, undetectable = cached_detectability(
            self.scan_circuit.netlist, live, circuit=self.name
        )
        return detectable, undetectable | set(proven)

    @cached_property
    def stuck_at_selection(self) -> EffectiveSelection:
        _, undetectable = self.stuck_at_detectability
        live = [
            f for f in self.stuck_at_faults if f not in self.stuck_at_proven
        ]
        with trace_span(
            "faultsim.select", circuit=self.name, model="stuck_at",
            n_faults=len(live),
        ):
            simulator = make_fault_simulator(
                self.scan_circuit, self.table, live, self.options.faultsim,
                total_test_cycles=self.generation.total_length,
            )
            return select_effective_tests(
                self.generation.test_set,
                simulator.make_effective_simulator(),
                self.stuck_at_faults,
                stop_when_exhausted=undetectable,
            )

    @property
    def stuck_at_split(self):
        """Detected / redundant (proved) / missed split of the universe."""
        from repro.core.coverage import split_undetected

        return split_undetected(
            self.stuck_at_faults,
            self.stuck_at_selection.detected,
            self.stuck_at_proven,
        )

    @cached_property
    def bridging_faults(self) -> list[BridgingFault]:
        return enumerate_bridging_faults(
            self.scan_circuit.netlist,
            limit=self.options.bridging_pair_limit,
            seed=self.name,
        )

    @cached_property
    def bridging_detectability(self) -> tuple[set, set]:
        from repro.perf.artifacts import cached_detectability

        return cached_detectability(
            self.scan_circuit.netlist, self.bridging_faults, circuit=self.name
        )

    @cached_property
    def bridging_selection(self) -> EffectiveSelection:
        _, undetectable = self.bridging_detectability
        if not self.bridging_faults:
            return select_effective_tests(
                self.generation.test_set, lambda test, remaining: set(), ()
            )
        with trace_span(
            "faultsim.select", circuit=self.name, model="bridging",
            n_faults=len(self.bridging_faults),
        ):
            simulator = make_fault_simulator(
                self.scan_circuit, self.table, self.bridging_faults,
                self.options.faultsim,
                total_test_cycles=self.generation.total_length,
            )
            return select_effective_tests(
                self.generation.test_set,
                simulator.make_effective_simulator(),
                self.bridging_faults,
                stop_when_exhausted=undetectable,
            )


_STUDIES: dict[tuple[str, StudyOptions], CircuitStudy] = {}


def get_study(name: str, options: StudyOptions | None = None) -> CircuitStudy:
    """Module-level study cache so tables share computations."""
    options = options or StudyOptions()
    key = (name, options)
    if key not in _STUDIES:
        _STUDIES[key] = CircuitStudy(name, options)
    return _STUDIES[key]


def warm_studies(
    circuits: Sequence[str],
    options: StudyOptions | None = None,
    *,
    jobs: int = 1,
    timings: StageTimings | None = None,
    scope: str = "full",
):
    """Precompute study artifacts with the parallel engine.

    Runs :func:`repro.perf.engine.compute_studies` across ``jobs`` worker
    processes and installs the results into the module-level study cache, so
    subsequent ``tableN`` calls are pure lookups.  Results are bit-identical
    to the serial path for any ``jobs``.  ``scope="functional"`` stops after
    test generation — enough for tables 4/5.  Returns the per-circuit
    :class:`~repro.perf.engine.StudyArtifacts` mapping.
    """
    from repro.perf.engine import compute_studies

    log = get_logger("harness")
    log.info(
        "warming studies", circuits=len(tuple(circuits)), jobs=jobs, scope=scope
    )
    artifacts = compute_studies(
        circuits, options, jobs=jobs, timings=timings, scope=scope
    )
    for name, computed in artifacts.items():
        computed.install(get_study(name, options))
    return artifacts


def _resolve(circuits: Sequence[str] | None) -> tuple[str, ...]:
    return tuple(circuits) if circuits is not None else circuit_names()


# --------------------------------------------------------------------- rows


@dataclass(frozen=True)
class Table2Row:
    state: str
    sequence: str
    final_state: str


@dataclass(frozen=True)
class Table3Row:
    test: str
    length: int
    detected: int
    effective: bool


@dataclass(frozen=True)
class Table4Row:
    circuit: str
    pi: int
    states: int
    unique: int
    sv: int
    max_len: int
    time_s: float


@dataclass(frozen=True)
class Table5Row:
    circuit: str
    trans: int
    tests: int
    length: int
    pct_len1: float
    time_s: float


@dataclass(frozen=True)
class Table6Row:
    circuit: str
    sa_tests: int
    sa_len: int
    sa_total: int
    sa_detected: int
    sa_coverage: float
    bridge_tests: int
    bridge_len: int
    bridge_total: int
    bridge_detected: int
    bridge_coverage: float


@dataclass(frozen=True)
class Table7Row:
    circuit: str
    trans_cycles: int
    funct_cycles: int
    funct_pct: float
    sa_cycles: int
    sa_pct: float
    bridge_cycles: int
    bridge_pct: float


@dataclass(frozen=True)
class Table8Row:
    circuit: str
    trans: int
    tests: int
    length: int
    pct_len1: float
    cycles: int
    pct: float


@dataclass(frozen=True)
class Table9Row:
    circuit: str
    unique: int
    max_len: int
    tests: int
    length: int
    pct_len1: float
    cycles: int
    pct: float


# ------------------------------------------------------------------- tables


def table2(circuit: str = "lion", options: StudyOptions | None = None) -> list[Table2Row]:
    """Unique input-output sequences of one circuit (the paper's Table 2)."""
    study = get_study(circuit, options)
    table = study.table
    pi = table.n_inputs
    rows = []
    for state in range(table.n_states):
        sequence = study.uio_table.get(state)
        if sequence is None:
            rows.append(Table2Row(table.state_names[state], "-", "-"))
        else:
            text = " ".join(format(c, f"0{pi}b") for c in sequence.inputs)
            rows.append(
                Table2Row(
                    table.state_names[state],
                    text,
                    table.state_names[sequence.final_state],
                )
            )
    return rows


def table3(circuit: str = "lion", options: StudyOptions | None = None) -> list[Table3Row]:
    """Stuck-at simulation of the functional tests, longest first (Table 3)."""
    study = get_study(circuit, options)
    return [
        Table3Row(str(test), test.length, detected, effective)
        for test, detected, effective in study.stuck_at_selection.rows
    ]


def table4(
    circuits: Sequence[str] | None = None, options: StudyOptions | None = None
) -> list[Table4Row]:
    """Circuit parameters and UIO statistics (Table 4)."""
    rows = []
    for name in _resolve(circuits):
        study = get_study(name, options)
        uio = study.uio_table
        rows.append(
            Table4Row(
                name,
                study.table.n_inputs,
                study.table.n_states,
                uio.n_found,
                study.table.n_state_variables,
                uio.max_found_length,
                study.uio_time_s,
            )
        )
    return rows


def table5(
    circuits: Sequence[str] | None = None, options: StudyOptions | None = None
) -> list[Table5Row]:
    """Functional test generation statistics (Table 5)."""
    rows = []
    for name in _resolve(circuits):
        study = get_study(name, options)
        result = study.generation
        rows.append(
            Table5Row(
                name,
                study.table.n_transitions,
                result.n_tests,
                result.total_length,
                result.pct_length_one,
                result.generation_time_s,
            )
        )
    return rows


def table6(
    circuits: Sequence[str] | None = None, options: StudyOptions | None = None
) -> list[Table6Row]:
    """Gate-level stuck-at and bridging fault grading (Table 6)."""
    rows = []
    for name in _resolve(circuits):
        study = get_study(name, options)
        sa = study.stuck_at_selection
        bridge = study.bridging_selection
        rows.append(
            Table6Row(
                name,
                sa.n_effective,
                sa.effective_length,
                sa.n_faults,
                len(sa.detected),
                sa.coverage_pct,
                bridge.n_effective,
                bridge.effective_length,
                bridge.n_faults,
                len(bridge.detected),
                bridge.coverage_pct,
            )
        )
    return rows


def _cycles(study: CircuitStudy, selection: EffectiveSelection) -> int:
    return selection.effective.clock_cycles(study.options.config.scan_ratio)


def table7(
    circuits: Sequence[str] | None = None, options: StudyOptions | None = None
) -> list[Table7Row]:
    """Clock cycles for test application (Table 7)."""
    rows = []
    for name in _resolve(circuits):
        study = get_study(name, options)
        base = study.baseline_cycles
        funct = study.generation.clock_cycles()
        sa_cycles = _cycles(study, study.stuck_at_selection)
        bridge_cycles = _cycles(study, study.bridging_selection)
        rows.append(
            Table7Row(
                name,
                base,
                funct,
                100.0 * funct / base,
                sa_cycles,
                100.0 * sa_cycles / base,
                bridge_cycles,
                100.0 * bridge_cycles / base,
            )
        )
    return rows


def table8(
    circuits: Sequence[str] | None = None, options: StudyOptions | None = None
) -> list[Table8Row]:
    """Test generation without transfer sequences (Table 8).

    Defaults to the circuits the paper reports (those whose Table 7
    functional-test percentage reaches 100%).
    """
    if circuits is None:
        circuits = tuple(PAPER_TABLE8)
    base_options = options or StudyOptions()
    no_transfer = StudyOptions(
        config=GeneratorConfig(
            max_uio_length=base_options.config.max_uio_length,
            max_transfer_length=0,
            postpone_no_uio_starts=base_options.config.postpone_no_uio_starts,
            uio_node_budget=base_options.config.uio_node_budget,
            scan_ratio=base_options.config.scan_ratio,
        ),
        max_fanin=base_options.max_fanin,
        bridging_pair_limit=base_options.bridging_pair_limit,
    )
    rows = []
    for name in circuits:
        study = get_study(name, no_transfer)
        result = study.generation
        rows.append(
            Table8Row(
                name,
                study.table.n_transitions,
                result.n_tests,
                result.total_length,
                result.pct_length_one,
                result.clock_cycles(),
                result.cycles_pct_of_baseline(),
            )
        )
    return rows


def table9(
    circuits: Sequence[str] | None = None,
    options: StudyOptions | None = None,
    max_bound: int | None = None,
) -> list[Table9Row]:
    """Sweep of the UIO length bound ``L`` (Table 9).

    Following the paper, ``L`` grows from 1 until a further increase does
    not add any state with a UIO (``max_bound`` is a hard safety cap,
    defaulting to ``N_SV + 4``).
    """
    if circuits is None:
        circuits = TABLE9_CIRCUITS
    base_options = options or StudyOptions()
    rows: list[Table9Row] = []
    for name in circuits:
        table = load_circuit(name)
        cap = max_bound if max_bound is not None else table.n_state_variables + 4
        previous_found = -1
        for bound in range(1, cap + 1):
            config = GeneratorConfig(
                max_uio_length=bound,
                max_transfer_length=base_options.config.max_transfer_length,
                postpone_no_uio_starts=base_options.config.postpone_no_uio_starts,
                uio_node_budget=base_options.config.uio_node_budget,
                scan_ratio=base_options.config.scan_ratio,
            )
            uio = compute_uio_table(table, bound, config.uio_node_budget)
            if uio.n_found == previous_found:
                break
            previous_found = uio.n_found
            result = generate_tests(table, config, uio)
            rows.append(
                Table9Row(
                    name,
                    uio.n_found,
                    uio.max_found_length,
                    result.n_tests,
                    result.total_length,
                    result.pct_length_one,
                    result.clock_cycles(),
                    result.cycles_pct_of_baseline(),
                )
            )
    return rows


# ---------------------------------------------------------------- rendering

_HEADERS = {
    2: ("state", "unique", "f.stat"),
    3: ("test", "length", "detected", "effective"),
    4: ("circuit", "pi", "states", "unique", "sv", "m.len", "time"),
    5: ("circuit", "trans", "tests", "len", "1len", "time"),
    6: (
        "circuit",
        "sa.tsts",
        "sa.len",
        "sa.tot",
        "sa.det",
        "sa.f.c.",
        "br.tsts",
        "br.len",
        "br.tot",
        "br.det",
        "br.f.c.",
    ),
    7: ("circuit", "trans", "funct", "%", "s.a.", "%", "bridg.", "%"),
    8: ("circuit", "trans", "tests", "len", "1len", "cycles", "%"),
    9: ("circuit", "unique", "m.len", "tests", "len", "1len", "cycles", "%"),
}


def render(
    table_number: int,
    rows: Sequence[object],
    title: str = "",
    csv: bool = False,
) -> str:
    """Render ``tableN`` rows as fixed-width text (or CSV)."""
    headers = _HEADERS[table_number]
    data = [
        [getattr(row, field_name) for field_name in row.__dataclass_fields__]
        for row in rows
    ]
    if csv:
        return format_csv(headers, data)
    return format_table(headers, data, title or f"Table {table_number}")

"""Human-readable summaries of a trace + metrics pair (``repro-fsatpg stats``).

``self time`` is a span's own duration minus the summed durations of its
direct children — the classic profiler attribution that makes "where did
the time actually go" answerable even with deeply nested spans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import SpanRecord

__all__ = ["SpanStat", "aggregate_spans", "render_stats"]


@dataclass
class SpanStat:
    """Aggregated timing for one span name."""

    name: str
    calls: int
    total_s: float
    self_s: float

    @property
    def mean_ms(self) -> float:
        return 1000.0 * self.total_s / self.calls if self.calls else 0.0


def aggregate_spans(events: Sequence[SpanRecord]) -> list[SpanStat]:
    """Per-name call counts, total and self time, sorted by self time."""
    child_ns: dict[int, int] = {}
    for event in events:
        if event.parent_id is not None:
            child_ns[event.parent_id] = (
                child_ns.get(event.parent_id, 0) + event.duration_ns
            )
    stats: dict[str, SpanStat] = {}
    for event in events:
        stat = stats.get(event.name)
        if stat is None:
            stat = stats[event.name] = SpanStat(event.name, 0, 0.0, 0.0)
        stat.calls += 1
        stat.total_s += event.duration_ns / 1e9
        stat.self_s += max(
            0, event.duration_ns - child_ns.get(event.span_id, 0)
        ) / 1e9
    return sorted(
        stats.values(), key=lambda s: (-s.self_s, s.name)
    )


def render_stats(
    events: Sequence[SpanRecord],
    registry: MetricsRegistry | None = None,
    top: int = 15,
) -> str:
    """The ``repro-fsatpg stats`` report: top spans + metric tables."""
    lines: list[str] = []
    stats = aggregate_spans(events)
    wall = sum(
        e.duration_ns for e in events if e.parent_id is None
    ) / 1e9
    lines.append(
        f"spans: {len(events)} events, {len(stats)} distinct names, "
        f"{wall:.3f}s in root spans"
    )
    if stats:
        lines.append(
            f"  {'span':<28} {'calls':>7} {'total s':>9} {'self s':>9} "
            f"{'self %':>7}"
        )
        total_self = sum(stat.self_s for stat in stats) or 1.0
        for stat in stats[:top]:
            lines.append(
                f"  {stat.name:<28} {stat.calls:>7d} {stat.total_s:>9.3f} "
                f"{stat.self_s:>9.3f} {100.0 * stat.self_s / total_self:>6.1f}%"
            )
        if len(stats) > top:
            lines.append(f"  ... {len(stats) - top} more span name(s)")
    if registry is not None and len(registry):
        lines.append(registry.render())
    return "\n".join(lines)

"""Unit tests for partial UIO sets and pairwise distinguishing sequences."""

from __future__ import annotations

import pytest

from repro.errors import StateTableError
from repro.fsm.builders import StateTableBuilder
from repro.uio.partial import (
    compute_partial_uio_set,
    pairwise_distinguishing_sequence,
)


class TestPairwiseDistinguishing:
    def test_lion_state0_vs_others(self, lion):
        for other in (1, 2, 3):
            seq = pairwise_distinguishing_sequence(lion, 0, other)
            assert seq is not None
            assert lion.response(0, seq) != lion.response(other, seq)

    def test_shortest_returned(self, lion):
        # input 00 already separates state 0 (output 0) from state 2 (output 1).
        assert len(pairwise_distinguishing_sequence(lion, 0, 2)) == 1

    def test_equivalent_states_return_none(self):
        builder = StateTableBuilder(1, 1)
        builder.add("a", 0, "b", 0)
        builder.add("a", 1, "a", 1)
        builder.add("b", 0, "a", 1)
        builder.add("b", 1, "b", 0)
        builder.add("c", 0, "a", 1)
        builder.add("c", 1, "c", 0)
        table = builder.build()
        # b and c produce identical outputs forever
        assert pairwise_distinguishing_sequence(table, 1, 2) is None

    def test_same_state_rejected(self, lion):
        with pytest.raises(StateTableError):
            pairwise_distinguishing_sequence(lion, 1, 1)

    def test_length_bound_respected(self, shiftreg):
        # States 0 (000) and 1 (001) differ only in the last bit shifted out.
        assert pairwise_distinguishing_sequence(shiftreg, 0, 1, max_length=2) is None
        assert pairwise_distinguishing_sequence(shiftreg, 0, 1, max_length=3) is not None


class TestPartialUioSet:
    def test_lion_state1_gets_complete_partial_set(self, lion):
        """State 1 of lion has no full UIO, but short sequences jointly
        distinguish it — the exact situation the paper's remark describes."""
        pset = compute_partial_uio_set(lion, 1)
        assert pset.complete
        assert len(pset.sequences) >= 2  # no single sequence suffices
        covered = frozenset().union(*pset.covered)
        assert covered == frozenset({0, 2, 3})

    def test_sequences_actually_distinguish_their_sets(self, lion):
        pset = compute_partial_uio_set(lion, 3)
        for sequence, covered in zip(pset.sequences, pset.covered):
            reference = lion.response(3, sequence)
            for other in covered:
                assert lion.response(other, sequence) != reference

    def test_state_with_full_uio_gets_single_sequence(self, lion):
        pset = compute_partial_uio_set(lion, 0)
        assert pset.complete
        assert len(pset.sequences) == 1

    def test_incomplete_when_equivalent_sibling_exists(self):
        builder = StateTableBuilder(1, 1)
        builder.add("a", 0, "b", 0)
        builder.add("a", 1, "a", 1)
        builder.add("b", 0, "a", 1)
        builder.add("b", 1, "b", 0)
        builder.add("c", 0, "a", 1)
        builder.add("c", 1, "c", 0)
        table = builder.build()
        pset = compute_partial_uio_set(table, 1)
        assert not pset.complete

    def test_single_state_machine_trivially_complete(self):
        builder = StateTableBuilder(1, 1)
        builder.add("a", 0, "a", 0)
        builder.add("a", 1, "a", 1)
        pset = compute_partial_uio_set(builder.build(), 0)
        assert pset.complete
        assert pset.sequences == ()

    def test_total_length(self, lion):
        pset = compute_partial_uio_set(lion, 1)
        assert pset.total_length == sum(len(s) for s in pset.sequences)

    def test_bad_state_rejected(self, lion):
        with pytest.raises(StateTableError):
            compute_partial_uio_set(lion, 12)

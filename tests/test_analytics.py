"""Tests for the ledger analytics engine (``repro.obs.analytics``).

The acceptance bar from the issue: on synthetic ledgers generated from
known power laws the fits must recover each planted exponent within 5%,
and ``tables``/``diff`` output must be byte-identical across repeated
runs on the same ledger.
"""

from __future__ import annotations

import json

import pytest

from repro.benchmarks.registry import get_spec
from repro.cli import main
from repro.obs import ledger
from repro.obs.analytics import (
    Frame,
    attribute_deltas,
    best_fit,
    circuit_frame,
    detect_anomalies,
    diff_payload,
    diff_records,
    linear_fit,
    power_fit,
    record_id,
    render_attribution,
    render_diff,
    render_fits_latex,
    render_fits_markdown,
    resolve_record,
    robust_z_scores,
    run_frame,
    scaling_fits,
    tables_payload,
    validate_diff_payload,
    validate_tables_payload,
)

# Four bundled circuits with pairwise-distinct state counts, so every
# planted power law is sampled at four distinct sizes.
CIRCUITS = ("lion", "bbtas", "bbara", "dk16")


# ------------------------------------------------------------------ frame


class TestFrame:
    def test_init_and_len(self):
        frame = Frame({"a": [1, 2], "b": ["x", "y"]})
        assert len(frame) == 2
        assert frame.names == ("a", "b")
        assert frame.column("a") == [1, 2]

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError):
            Frame({"a": [1, 2], "b": [1]})

    def test_from_rows_fills_missing_with_none(self):
        frame = Frame.from_rows([{"a": 1}, {"a": 2, "b": 3}])
        assert frame.column("b") == [None, 3]

    def test_where_and_filter(self):
        frame = Frame({"a": [1, 2, 3], "b": ["x", "y", "x"]})
        assert frame.where(b="x").column("a") == [1, 3]
        assert frame.filter(lambda row: row["a"] > 1).column("a") == [2, 3]

    def test_group_by(self):
        frame = Frame({"a": [1, 2, 3], "b": ["x", "y", "x"]})
        groups = frame.group_by("b")
        assert {key: len(part) for key, part in groups.items()} == {
            ("x",): 2,
            ("y",): 1,
        }

    def test_sorted_by_totally_orders_mixed_values(self):
        frame = Frame({"a": [3, None, "txt", 1.5]})
        assert frame.sorted_by("a").column("a") == [None, 1.5, 3, "txt"]

    def test_numeric_drops_non_numbers_and_bools(self):
        frame = Frame({"a": [1, None, True, "x", 2.5]})
        assert frame.numeric("a") == [1.0, 2.5]

    def test_pairs_aligns_only_joint_numeric_rows(self):
        frame = Frame({"x": [1, 2, None], "y": [10, None, 30]})
        assert frame.pairs("x", "y") == [(1.0, 10.0)]


# ------------------------------------------------------------------- fits


class TestFits:
    def test_power_fit_recovers_exact_law(self):
        xs = [4.0, 8.0, 16.0, 32.0]
        fit = power_fit(xs, [3.0 * x**1.7 for x in xs])
        assert fit is not None
        assert fit.exponent == pytest.approx(1.7, rel=1e-9)
        assert fit.coeff == pytest.approx(3.0, rel=1e-9)
        assert fit.r2 == pytest.approx(1.0)

    def test_linear_fit_recovers_exact_line(self):
        xs = [1.0, 2.0, 3.0]
        fit = linear_fit(xs, [2.0 * x + 5.0 for x in xs])
        assert fit is not None
        assert fit.exponent == pytest.approx(2.0)
        assert fit.coeff == pytest.approx(5.0)

    def test_power_fit_demands_positive_data(self):
        assert power_fit([1.0, 2.0], [1.0, 0.0]) is None
        assert power_fit([0.0, 2.0], [1.0, 2.0]) is None
        assert power_fit([2.0, 2.0], [1.0, 2.0]) is None

    def test_best_fit_prefers_power_for_power_data(self):
        xs = [2.0, 4.0, 8.0, 16.0]
        fit = best_fit(xs, [x**2.0 for x in xs])
        assert fit is not None
        assert fit.model == "power"

    def test_formula_is_readable(self):
        fit = power_fit([1.0, 2.0, 4.0], [2.0, 4.0, 8.0])
        assert fit is not None
        assert "^" in fit.formula("tests", "n_states")


# ------------------------------------------------ synthetic scaling ledger

#: Planted laws: metric -> (coefficient, exponent) against n_states.
PLANTED = {
    "tests": (2.0, 1.5),
    "test_length": (1.0, 2.0),
    "clock_cycles": (3.0, 1.25),
    "wall_s": (0.001, 2.5),
    "max_rss_kb": (500.0, 1.0),
    "stage.generation": (0.002, 2.25),
}


def planted_records(repeats: int = 2) -> list[dict]:
    """Single-circuit table5 records following the planted power laws."""
    records = []
    for _ in range(repeats):
        for circuit in CIRCUITS:
            size = get_spec(circuit).n_states
            law = {
                metric: coeff * size**exponent
                for metric, (coeff, exponent) in PLANTED.items()
            }
            records.append(
                ledger.build_record(
                    "table5",
                    semantic_args={"circuits": [circuit]},
                    circuits=[circuit],
                    wall_s=law["wall_s"],
                    stage_seconds={"generation": law["stage.generation"]},
                    resources={
                        "cpu_user_s": 0.1,
                        "cpu_system_s": 0.0,
                        "max_rss_kb": int(law["max_rss_kb"]),
                    },
                    results={
                        circuit: {
                            "tests": round(law["tests"], 6),
                            "test_length": round(law["test_length"], 6),
                            "clock_cycles": round(law["clock_cycles"], 6),
                            "stuck_at": {
                                "faults": 100,
                                "detected": 90,
                                "coverage": 0.9,
                            },
                        }
                    },
                )
            )
    return records


class TestScalingFits:
    def test_distinct_state_counts(self):
        sizes = [get_spec(name).n_states for name in CIRCUITS]
        assert len(set(sizes)) == len(sizes)

    def test_planted_exponents_recovered_within_5pct(self):
        frame = circuit_frame(planted_records())
        fits = {
            (f.metric, f.size): f
            for f in scaling_fits(frame)
        }
        for metric, (coeff, exponent) in PLANTED.items():
            fit = fits[(metric, "n_states")].fit
            assert fit.model == "power", metric
            assert fit.exponent == pytest.approx(exponent, rel=0.05), metric
            assert fit.coeff == pytest.approx(coeff, rel=0.05), metric
            assert fit.r2 > 0.99, metric

    def test_residuals_near_zero_on_exact_data(self):
        frame = circuit_frame(planted_records())
        fits = [
            f for f in scaling_fits(frame, metrics=("tests",))
            if f.size == "n_states"
        ]
        assert fits
        for fit in fits:
            for _, residual in fit.residuals:
                assert abs(residual) < 0.05

    def test_multi_circuit_records_excluded_from_timing_fits(self):
        record = ledger.build_record(
            "table5",
            semantic_args={},
            circuits=["lion", "bbtas"],
            wall_s=9.9,
            results={"lion": {"tests": 4}, "bbtas": {"tests": 8}},
        )
        frame = circuit_frame([record])
        assert frame.column("wall_s") == [None, None]
        assert sorted(zip(frame.column("circuit"), frame.column("tests"))) \
            == [("bbtas", 8.0), ("lion", 4.0)]

    def test_record_order_does_not_change_fits(self):
        records = planted_records()
        forward = tables_payload(records)
        backward = tables_payload(list(reversed(records)))
        assert forward == backward


class TestRendering:
    def test_markdown_is_deterministic_and_complete(self):
        records = planted_records()
        fits = scaling_fits(circuit_frame(records))
        first = render_fits_markdown(fits, "table5")
        second = render_fits_markdown(
            scaling_fits(circuit_frame(records)), "table5"
        )
        assert first == second
        assert "| metric | size axis | model | fit | R² | circuits |" in first
        assert "tests" in first and "residual" in first

    def test_latex_is_deterministic_and_escaped(self):
        fits = scaling_fits(circuit_frame(planted_records()))
        first = render_fits_latex(fits, "table5")
        assert first == render_fits_latex(fits, "table5")
        assert r"\begin{table}" in first
        assert "max\\_rss\\_kb" in first

    def test_empty_fits_render_cleanly(self):
        assert "No fit" in render_fits_markdown([], "table5")
        assert render_fits_latex([], "table5").startswith("%")

    def test_tables_payload_validates(self):
        payload = tables_payload(planted_records())
        assert validate_tables_payload(payload) == []
        assert payload["commands"]["table5"]["circuits"] == sorted(CIRCUITS)

    def test_validate_rejects_malformed_payload(self):
        assert validate_tables_payload([]) != []
        assert validate_tables_payload({"schema": "nope"}) != []
        bad = tables_payload(planted_records())
        bad["commands"]["table5"]["fits"][0]["fit"]["r2"] = float("nan")
        assert validate_tables_payload(bad) != []


# ------------------------------------------------------------------- diff


def two_records() -> list[dict]:
    base = ledger.build_record(
        "table5",
        semantic_args={"circuits": ["lion"]},
        circuits=["lion"],
        wall_s=1.0,
        stage_seconds={"uio": 0.2, "generation": 0.8},
        metrics={"testgen.tests": {"value": 9}},
        resources={"cpu_user_s": 1.0, "cpu_system_s": 0.1,
                   "max_rss_kb": 1000},
        results={"lion": {"tests": 9}},
    )
    other = ledger.build_record(
        "table5",
        semantic_args={"circuits": ["lion"]},
        circuits=["lion"],
        wall_s=2.0,
        stage_seconds={"uio": 0.2, "generation": 1.7},
        metrics={"testgen.tests": {"value": 11}},
        resources={"cpu_user_s": 1.9, "cpu_system_s": 0.1,
                   "max_rss_kb": 1500},
        results={"lion": {"tests": 11}},
    )
    return [base, other]


class TestResolveRecord:
    def test_aliases_and_indices(self):
        records = two_records()
        assert resolve_record(records, "last")[0] == 1
        assert resolve_record(records, "prev")[0] == 0
        assert resolve_record(records, "@0")[0] == 0
        assert resolve_record(records, "-1")[0] == 1

    def test_id_prefix_lookup(self):
        records = two_records()
        target = record_id(records[0])
        index, found = resolve_record(records, target[:8])
        assert index == 0
        assert record_id(found) == target

    def test_args_hash_prefers_newest_match(self):
        records = two_records()
        # Both records share the args hash; the newest wins.
        index, _ = resolve_record(records, records[0]["args_hash"])
        assert index == 1

    def test_unknown_selector_raises(self):
        with pytest.raises(ValueError):
            resolve_record(two_records(), "zz-no-such")
        with pytest.raises(ValueError):
            resolve_record(two_records(), "@99")


class TestDiff:
    def test_stage_attribution_largest_first(self):
        base, other = two_records()
        diff = diff_records(base, other, 0, 1)
        assert diff.stages[0].name == "generation"
        assert diff.stages[0].delta == pytest.approx(0.9)
        assert diff.wall.delta == pytest.approx(1.0)

    def test_result_deltas_flattened(self):
        base, other = two_records()
        diff = diff_records(base, other)
        assert ("lion.tests", 9, 11) in diff.results

    def test_render_is_deterministic(self):
        base, other = two_records()
        first = render_diff(diff_records(base, other, 0, 1))
        second = render_diff(diff_records(base, other, 0, 1))
        assert first == second
        assert "stage attribution" in first

    def test_payload_validates(self):
        base, other = two_records()
        payload = diff_payload(diff_records(base, other, 0, 1))
        assert validate_diff_payload(payload) == []
        payload["stages"][0]["delta"] = 123.0
        assert any(
            "inconsistent" in p for p in validate_diff_payload(payload)
        )

    def test_attribution_shares_sum_to_100(self):
        deltas = attribute_deltas({"a": 1.0, "b": 2.0}, {"a": 2.0, "b": 2.0})
        text = render_attribution(deltas)
        assert "a +1.000s (100%)" in text


# -------------------------------------------------------------- anomalies


def repeated_records(walls: list[float]) -> list[dict]:
    return [
        ledger.build_record(
            "table5",
            semantic_args={"circuits": ["lion"]},
            circuits=["lion"],
            wall_s=wall,
            stage_seconds={"generation": wall / 2.0},
            resources={"cpu_user_s": wall, "cpu_system_s": 0.0,
                       "max_rss_kb": 1000},
            results={"lion": {"tests": 9}},
        )
        for wall in walls
    ]


class TestAnomalies:
    def test_robust_z_flags_the_outlier(self):
        scores = robust_z_scores([1.0, 1.1, 0.9, 1.0, 1.05, 10.0])
        assert abs(scores[-1]) > 3.5
        assert all(abs(score) < 3.5 for score in scores[:-1])

    def test_flat_history_never_flags(self):
        assert robust_z_scores([0.0] * 6) == [0.0] * 6
        assert detect_anomalies(repeated_records([1.0] * 8)) == []

    def test_outlier_run_detected(self):
        records = repeated_records([1.0, 1.1, 0.9, 1.0, 1.05, 1.0, 12.0])
        anomalies = detect_anomalies(records)
        assert anomalies
        worst = anomalies[0]
        assert worst.index == 6
        assert worst.field in ("wall_s", "cpu_s", "stage.generation")
        assert worst.z > 3.5

    def test_short_history_is_exempt(self):
        records = repeated_records([1.0, 1.0, 12.0])
        assert detect_anomalies(records) == []

    def test_history_renders_warnings(self):
        from repro.obs.history import render_history

        records = repeated_records([1.0, 1.1, 0.9, 1.0, 1.05, 1.0, 12.0])
        text = render_history(
            records, "table5", anomalies=detect_anomalies(records)
        )
        assert "anomalies (" in text
        assert "wall_s" in text

    def test_report_shows_anomaly_panel(self):
        from repro.obs.history import render_html

        records = repeated_records([1.0, 1.1, 0.9, 1.0, 1.05, 1.0, 12.0])
        html = render_html(records)
        assert "Anomalies" in html
        assert "&#9888;" in html


# ------------------------------------------------------------------ prune


class TestPrune:
    def write_ledger(self, tmp_path, records, corrupt_lines=0):
        root = tmp_path / "ledger"
        root.mkdir(parents=True, exist_ok=True)
        path = root / ledger.LEDGER_FILENAME
        with open(path, "w") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
            for _ in range(corrupt_lines):
                handle.write('{"truncated": \n')
        return root

    def test_keeps_newest_per_circuit(self, tmp_path):
        records = repeated_records([1.0, 2.0, 3.0, 4.0])
        root = self.write_ledger(tmp_path, records)
        summary = ledger.prune_records(2, root)
        assert summary == {"kept": 2, "pruned": 2, "corrupt": 0}
        kept = ledger.read_records(root)
        assert [r["wall_s"] for r in kept] == [3.0, 4.0]

    def test_multi_circuit_record_survives_via_any_group(self, tmp_path):
        shared = ledger.build_record(
            "table5", semantic_args={}, circuits=["lion", "mc"], wall_s=1.0
        )
        lion_only = repeated_records([2.0, 3.0])
        root = self.write_ledger(tmp_path, [shared] + lion_only)
        summary = ledger.prune_records(2, root)
        # `shared` is lion's 3rd-newest but mc's newest: it must survive.
        assert summary["kept"] == 3 and summary["pruned"] == 0
        kept = ledger.read_records(root)
        assert kept[0]["circuits"] == ["lion", "mc"]

    def test_corrupt_lines_dropped_and_counted(self, tmp_path):
        records = repeated_records([1.0, 2.0])
        root = self.write_ledger(tmp_path, records, corrupt_lines=2)
        summary = ledger.prune_records(5, root)
        assert summary == {"kept": 2, "pruned": 0, "corrupt": 2}
        assert len(ledger.read_records(root)) == 2

    def test_surviving_lines_are_byte_identical(self, tmp_path):
        records = repeated_records([1.0, 2.0, 3.0])
        root = self.write_ledger(tmp_path, records)
        before = (root / ledger.LEDGER_FILENAME).read_text().splitlines()
        ledger.prune_records(2, root)
        after = (root / ledger.LEDGER_FILENAME).read_text().splitlines()
        assert after == before[-2:]

    def test_missing_ledger_returns_none(self, tmp_path):
        assert ledger.prune_records(3, tmp_path / "nowhere") is None

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            ledger.prune_records(0, tmp_path)


# ------------------------------------------------------------ CLI plumbing


def seed_ledger(records):
    root = ledger.ledger_dir()
    assert root is not None
    for record in records:
        ledger.append_record(record, root)


class TestAnalyticsCli:
    def test_tables_byte_identical_across_runs(self, capsys):
        seed_ledger(planted_records())
        assert main(["tables"]) == 0
        first = capsys.readouterr().out
        assert main(["tables"]) == 0
        assert capsys.readouterr().out == first
        assert "Scaling fits" in first

    def test_tables_json_validates(self, capsys):
        seed_ledger(planted_records())
        assert main(["tables", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate_tables_payload(payload) == []

    def test_tables_latex_out_file(self, tmp_path, capsys):
        seed_ledger(planted_records())
        target = tmp_path / "fits.tex"
        assert main(["tables", "--format", "latex",
                     "--out", str(target)]) == 0
        assert r"\begin{table}" in target.read_text()

    def test_diff_cli_human_and_json(self, capsys):
        seed_ledger(two_records())
        assert main(["diff", "prev", "last"]) == 0
        human = capsys.readouterr().out
        assert "stage attribution" in human
        assert main(["diff", "@0", "@1", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate_diff_payload(payload) == []

    def test_diff_cli_byte_identical(self, capsys):
        seed_ledger(two_records())
        assert main(["diff", "prev", "last"]) == 0
        first = capsys.readouterr().out
        assert main(["diff", "prev", "last"]) == 0
        assert capsys.readouterr().out == first

    def test_diff_empty_ledger_errors(self, capsys):
        assert main(["diff", "last"]) == 2
        assert "empty" in capsys.readouterr().err

    def test_diff_unknown_selector_errors(self, capsys):
        seed_ledger(two_records())
        assert main(["diff", "zz-no-such", "last"]) == 2
        assert "no record matches" in capsys.readouterr().err

    def test_history_shows_and_suppresses_anomalies(self, capsys):
        seed_ledger(repeated_records([1.0, 1.1, 0.9, 1.0, 1.05, 1.0, 12.0]))
        assert main(["history", "table5"]) == 0
        assert "anomalies (" in capsys.readouterr().out
        assert main(["history", "table5", "--no-anomalies"]) == 0
        assert "anomalies (" not in capsys.readouterr().out

    def test_history_json_carries_anomalies(self, capsys):
        seed_ledger(repeated_records([1.0, 1.1, 0.9, 1.0, 1.05, 1.0, 12.0]))
        assert main(["history", "table5", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["anomalies"]
        assert payload["anomalies"][0]["z"] > 3.5

    def test_ledger_prune_cli(self, capsys):
        seed_ledger(repeated_records([1.0, 2.0, 3.0]))
        assert main(["ledger", "prune", "--keep", "1"]) == 0
        assert "kept 1 record(s), pruned 2" in capsys.readouterr().out
        assert len(ledger.read_records()) == 1

    def test_ledger_prune_empty(self, capsys):
        assert main(["ledger", "prune", "--keep", "3"]) == 0
        assert "nothing to prune" in capsys.readouterr().out

    def test_report_includes_scaling_plots(self, tmp_path):
        seed_ledger(planted_records())
        target = tmp_path / "report.html"
        assert main(["report", "--out", str(target)]) == 0
        text = target.read_text()
        assert "Scaling" in text
        assert "fitline" in text
        assert text.count("<figure>") >= 2


# --------------------------------------------------------------- run frame


class TestRunFrame:
    def test_run_frame_columns(self):
        frame = run_frame(planted_records(repeats=1))
        assert len(frame) == len(CIRCUITS)
        assert "stage_total_s" in frame.names
        assert all(isinstance(v, str) for v in frame.column("id"))

    def test_schema_1_records_lack_resources(self):
        record = {
            "schema": "repro-fsatpg-ledger/1",
            "ts": "2026-01-01T00:00:00Z",
            "command": "table5",
            "wall_s": 1.0,
            "circuits": ["lion"],
            "stage_seconds": {},
            "cache": {"hits": 0, "misses": 0},
            "results": {},
        }
        frame = run_frame([record])
        assert frame.column("max_rss_kb") == [None]
        assert frame.column("cpu_user_s") == [None]

"""Diagnostics and reports produced by the static analyzers.

A :class:`Diagnostic` is one finding: a rule id, a severity, a logical
location inside the analyzed artifact, a human message, and an optional fix
hint.  A :class:`LintReport` is an ordered, immutable collection of findings
with the aggregation helpers the CLI and the preflight hooks build on:
severity filters, exit-code logic, human rendering, and a SARIF-like JSON
serialization (``version``/``runs``/``results``, the subset of SARIF 2.1.0
that generic viewers understand).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.errors import LintError, ReproError

__all__ = ["Severity", "Diagnostic", "LintReport", "cap_diagnostics"]

#: Findings emitted per (rule, artifact) before the remainder is summarized.
MAX_PER_RULE = 25


class Severity(enum.IntEnum):
    """Severity levels, ordered so that ``max()`` picks the worst."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def sarif_level(self) -> str:
        """The SARIF ``level`` string for this severity."""
        return {"INFO": "note", "WARNING": "warning", "ERROR": "error"}[self.name]


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding.

    ``location`` is a logical path inside the artifact (``"state s3"``,
    ``"gate g17"``, ``"test 4, segment 2"``); ``artifact`` names the machine,
    netlist, or test set the finding belongs to so that multi-circuit runs
    stay attributable.
    """

    rule_id: str
    severity: Severity
    message: str
    location: str = ""
    hint: str = ""
    artifact: str = ""

    def format(self) -> str:
        """One human-readable line (without the artifact prefix)."""
        where = f" [{self.location}]" if self.location else ""
        tail = f"  (hint: {self.hint})" if self.hint else ""
        return f"{self.severity.name:7s} {self.rule_id}{where}: {self.message}{tail}"

    def to_sarif(self) -> dict[str, object]:
        """This finding as one SARIF ``result`` object."""
        qualified = "/".join(part for part in (self.artifact, self.location) if part)
        result: dict[str, object] = {
            "ruleId": self.rule_id,
            "level": self.severity.sarif_level,
            "message": {"text": self.message},
        }
        if qualified:
            result["locations"] = [
                {"logicalLocations": [{"fullyQualifiedName": qualified}]}
            ]
        if self.hint:
            result["properties"] = {"hint": self.hint}
        return result


@dataclass(frozen=True)
class LintReport:
    """An immutable, ordered collection of diagnostics."""

    diagnostics: tuple[Diagnostic, ...] = ()
    #: rule metadata for the SARIF tool section: id -> (name, description)
    rule_index: Mapping[str, tuple[str, str]] = field(default_factory=dict)

    # ------------------------------------------------------------ aggregation

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def by_severity(self, severity: Severity) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is severity)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return self.by_severity(Severity.INFO)

    @property
    def ok(self) -> bool:
        """True when no ERROR-level finding is present."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """True when there are no findings at all."""
        return not self.diagnostics

    def fired_rules(self) -> frozenset[str]:
        """Rule ids with at least one finding."""
        return frozenset(d.rule_id for d in self.diagnostics)

    def merged(self, *others: "LintReport") -> "LintReport":
        """This report plus ``others``, diagnostics concatenated in order."""
        diagnostics = list(self.diagnostics)
        rules = dict(self.rule_index)
        for other in others:
            diagnostics.extend(other.diagnostics)
            rules.update(other.rule_index)
        return LintReport(tuple(diagnostics), rules)

    # --------------------------------------------------------------- actions

    def raise_on_errors(self, exc_type: type[ReproError] = LintError) -> None:
        """Raise ``exc_type`` summarizing the ERROR findings, if any."""
        errors = self.errors
        if not errors:
            return
        first = errors[0]
        summary = first.message if not first.location else (
            f"{first.location}: {first.message}"
        )
        if len(errors) > 1:
            summary += f" (+{len(errors) - 1} more lint error"
            summary += "s)" if len(errors) > 2 else ")"
        raise exc_type(f"[{first.rule_id}] {summary}")

    # ------------------------------------------------------------- rendering

    def render(self, title: str = "") -> str:
        """Human-readable multi-line report."""
        lines: list[str] = []
        counts = (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.infos)} note(s)"
        )
        header = f"{title}: {counts}" if title else counts
        lines.append(header)
        current_artifact: str | None = None
        for diagnostic in self.diagnostics:
            if diagnostic.artifact != current_artifact:
                current_artifact = diagnostic.artifact
                if current_artifact:
                    lines.append(f"  {current_artifact}:")
            indent = "    " if diagnostic.artifact else "  "
            lines.append(indent + diagnostic.format())
        return "\n".join(lines)

    def to_sarif(self) -> dict[str, object]:
        """A genuine SARIF 2.1.0 document.

        The envelope (``$schema``/``version``/``runs``), driver metadata
        (``version``/``informationUri``), per-rule ``defaultConfiguration``
        levels, and per-result ``ruleIndex`` back-references follow the
        spec so GitHub code scanning and generic SARIF viewers ingest the
        output directly.
        """
        # Imported lazily: the registry imports this module for Severity.
        from repro import __version__
        from repro.lint.registry import get_rule

        def default_level(rule_id: str) -> str | None:
            try:
                return get_rule(rule_id).severity.sarif_level
            except ReproError:
                return None

        ordered = sorted(self.rule_index.items())
        rules: list[dict[str, object]] = []
        for rule_id, (name, description) in ordered:
            entry: dict[str, object] = {
                "id": rule_id,
                "name": name,
                "shortDescription": {"text": description},
            }
            level = default_level(rule_id)
            if level is not None:
                entry["defaultConfiguration"] = {"level": level}
            rules.append(entry)
        rule_position = {rule_id: i for i, (rule_id, _) in enumerate(ordered)}
        results: list[dict[str, object]] = []
        for diagnostic in self.diagnostics:
            result = diagnostic.to_sarif()
            position = rule_position.get(diagnostic.rule_id)
            if position is not None:
                result["ruleIndex"] = position
            results.append(result)
        return {
            "version": "2.1.0",
            "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro-lint",
                            "version": __version__,
                            "informationUri": (
                                "https://github.com/paper-repro/"
                                "repro-fsatpg"
                            ),
                            "rules": rules,
                        }
                    },
                    "columnKind": "utf16CodeUnits",
                    "results": results,
                }
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        """The SARIF-like document serialized as JSON text."""
        return json.dumps(self.to_sarif(), indent=indent)


def cap_diagnostics(
    diagnostics: Iterable[Diagnostic], limit: int = MAX_PER_RULE
) -> Iterator[Diagnostic]:
    """Yield at most ``limit`` findings, then one summarizing the overflow.

    The summary keeps the severity of the capped findings so that error
    counts (and exit codes) never understate the situation.
    """
    buffered: list[Diagnostic] = []
    overflow = 0
    last: Diagnostic | None = None
    for diagnostic in diagnostics:
        if len(buffered) < limit:
            buffered.append(diagnostic)
        else:
            overflow += 1
            last = diagnostic
    yield from buffered
    if overflow and last is not None:
        yield Diagnostic(
            last.rule_id,
            last.severity,
            f"... and {overflow} more finding(s) of rule {last.rule_id}",
            artifact=last.artifact,
        )
